package ldpmarginals_test

import (
	"math"
	"testing"

	"ldpmarginals"
)

func TestPublicQuickstartFlow(t *testing.T) {
	ds := ldpmarginals.NewTaxiDataset(200000, 1)
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, ldpmarginals.Config{
		D: ds.D, K: 2, Epsilon: 1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := ldpmarginals.Simulate(p, ds.Records, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := ds.Mask("CC", "Tip")
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Agg.Estimate(beta)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ldpmarginals.ExactMarginal(ds.Records, beta)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := got.TVDistance(exact)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.05 {
		t.Errorf("quickstart TV = %v, want < 0.05", tv)
	}
	if run.TotalBits != int64((ds.D+1)*ds.N()) {
		t.Errorf("TotalBits = %d", run.TotalBits)
	}
}

func TestPublicAllKindsRun(t *testing.T) {
	ds := ldpmarginals.NewTaxiDataset(5000, 2)
	for _, kind := range ldpmarginals.AllKinds() {
		p, err := ldpmarginals.NewProtocol(kind, ldpmarginals.Config{D: ds.D, K: 2, Epsilon: 2})
		if err != nil {
			t.Fatal(err)
		}
		run, err := ldpmarginals.Simulate(p, ds.Records, 1, 2)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if run.Agg.N() != ds.N() {
			t.Errorf("%v consumed %d reports", kind, run.Agg.N())
		}
	}
}

func TestPublicMeanTVAndMarginals(t *testing.T) {
	ds := ldpmarginals.NewTaxiDataset(40000, 3)
	betas := ldpmarginals.AllKWayMarginals(ds.D, 2)
	if len(betas) != 28 {
		t.Fatalf("C(8,2) = %d, want 28", len(betas))
	}
	p, err := ldpmarginals.NewProtocol(ldpmarginals.MargPS, ldpmarginals.Config{D: ds.D, K: 2, Epsilon: 3})
	if err != nil {
		t.Fatal(err)
	}
	run, err := ldpmarginals.Simulate(p, ds.Records, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := ldpmarginals.MeanTV(run.Agg, ds.Records, betas)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.1 {
		t.Errorf("MeanTV = %v", tv)
	}
}

func TestPublicIndependence(t *testing.T) {
	ds := ldpmarginals.NewTaxiDataset(100000, 4)
	beta, _ := ds.Mask("CC", "Tip")
	tab, err := ds.Marginal(beta)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ldpmarginals.TestIndependence(tab, float64(ds.N()), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dependent {
		t.Error("CC-Tip should test dependent")
	}
	mi, err := ldpmarginals.MutualInformation(tab)
	if err != nil {
		t.Fatal(err)
	}
	if mi <= 0 {
		t.Errorf("MI = %v, want positive", mi)
	}
}

func TestPublicDependencyTree(t *testing.T) {
	ds, err := ldpmarginals.NewMovieLensDataset(40000, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := ldpmarginals.FitDependencyTree(ldpmarginals.ExactEstimator{DS: ds}, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Edges) != ds.D-1 {
		t.Fatalf("tree has %d edges", len(tree.Edges))
	}
	model, err := ldpmarginals.BuildTreeModel(tree, ldpmarginals.ExactEstimator{DS: ds}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := model.LogLikelihood(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ll) || ll >= 0 {
		t.Errorf("log likelihood = %v", ll)
	}
}

func TestPublicEMBaseline(t *testing.T) {
	ds := ldpmarginals.NewTaxiDataset(30000, 6)
	p, err := ldpmarginals.NewEM(ldpmarginals.EMConfig{D: ds.D, K: 2, Epsilon: 6})
	if err != nil {
		t.Fatal(err)
	}
	run, err := ldpmarginals.Simulate(p, ds.Records, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	agg, ok := run.Agg.(*ldpmarginals.EMAggregator)
	if !ok {
		t.Fatal("EM aggregator type lost through the public API")
	}
	beta, _ := ds.Mask("Toll", "Far")
	dec, err := agg.EstimateDetailed(beta)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Failed {
		t.Error("EM should not fail at eps=6")
	}
}

func TestPublicFrequencyOracles(t *testing.T) {
	ds, err := ldpmarginals.NewSkewedDataset(30000, 6, 0.8, 7)
	if err != nil {
		t.Fatal(err)
	}
	olh, err := ldpmarginals.NewOLH(ldpmarginals.OLHConfig{D: ds.D, K: 2, Epsilon: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	hcms, err := ldpmarginals.NewHCMS(ldpmarginals.HCMSConfig{D: ds.D, K: 2, Epsilon: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []ldpmarginals.Protocol{olh, hcms} {
		run, err := ldpmarginals.Simulate(p, ds.Records, 3, 0)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if _, err := run.Agg.Estimate(0b11); err != nil {
			t.Fatalf("%s estimate: %v", p.Name(), err)
		}
	}
}

func TestPublicPearsonMatrix(t *testing.T) {
	ds := ldpmarginals.NewTaxiDataset(20000, 8)
	m, err := ldpmarginals.PearsonMatrix(ds.Records, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != ds.D {
		t.Fatalf("matrix size %d", len(m))
	}
}

func TestPublicCategorical(t *testing.T) {
	cat, err := ldpmarginals.NewCategoricalDataset(20000, []int{4, 3, 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := cat.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	if bin.D != cat.BinaryDimension() {
		t.Errorf("binary dimension mismatch: %d vs %d", bin.D, cat.BinaryDimension())
	}
	mask, err := cat.MaskFor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, ldpmarginals.Config{
		D: bin.D, K: 4, Epsilon: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := ldpmarginals.Simulate(p, bin.Records, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Agg.Estimate(mask)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := bin.Marginal(mask)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := got.TVDistance(exact)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.1 {
		t.Errorf("categorical pipeline TV = %v", tv)
	}
}

func TestPublicConjunctionQueries(t *testing.T) {
	ds := ldpmarginals.NewTaxiDataset(100000, 11)
	c, err := ldpmarginals.ParseConjunction("CC=1 AND Tip=1", ds.AttributeIndex)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ldpmarginals.EvaluateConjunction(ldpmarginals.ExactEstimator{DS: ds}, c, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, ldpmarginals.Config{D: ds.D, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := ldpmarginals.Simulate(p, ds.Records, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	private, err := ldpmarginals.EvaluateConjunction(run.Agg, c, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(private-exact) > 0.05 {
		t.Errorf("conjunction: private %v vs exact %v", private, exact)
	}
	cube, err := ldpmarginals.MaterializeCube(run.Agg, ds.D, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube) != 36 {
		t.Errorf("cube size %d, want 36", len(cube))
	}
}

func TestPublicConsistencyAndBounds(t *testing.T) {
	ds := ldpmarginals.NewTaxiDataset(60000, 12)
	p, err := ldpmarginals.NewProtocol(ldpmarginals.MargPS, ldpmarginals.Config{D: ds.D, K: 2, Epsilon: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := ldpmarginals.Simulate(p, ds.Records, 17, 0)
	if err != nil {
		t.Fatal(err)
	}
	var tables []*ldpmarginals.Table
	for _, beta := range []uint64{0b011, 0b101, 0b110} {
		tab, err := run.Agg.Estimate(beta)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tab)
	}
	before, err := ldpmarginals.MaxDisagreement(tables)
	if err != nil {
		t.Fatal(err)
	}
	if err := ldpmarginals.EnforceConsistency(tables, nil, ldpmarginals.ConsistencyOptions{}); err != nil {
		t.Fatal(err)
	}
	after, err := ldpmarginals.MaxDisagreement(tables)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("consistency did not improve: %v -> %v", before, after)
	}
	bound, err := ldpmarginals.TheoreticalErrorBound("InpHT", ldpmarginals.BoundParams{
		N: ds.N(), D: ds.D, K: 2, Epsilon: 1.1,
	})
	if err != nil || bound <= 0 {
		t.Errorf("bound = %v, %v", bound, err)
	}
}
