// Package ldpmarginals is a Go implementation of "Marginal Release Under
// Local Differential Privacy" (Cormode, Kulkarni, Srivastava — SIGMOD
// 2018): protocols that let an untrusted aggregator reconstruct any
// k-way marginal table over d binary attributes from a population of
// users, each of whom releases a single locally-differentially-private
// report.
//
// The package exposes the paper's six protocols (InpRR, InpPS, InpHT,
// MargRR, MargPS, MargHT), the evaluated baselines (InpEM expectation
// maximization, InpOLH and InpHTCMS frequency oracles), synthetic
// datasets mirroring the paper's evaluation data, and the downstream
// applications: chi-squared association testing and Chow-Liu dependency
// tree fitting.
//
// # Quick start
//
//	ds := ldpmarginals.NewTaxiDataset(100_000, 1)
//	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, ldpmarginals.Config{
//		D: ds.D, K: 2, Epsilon: 1.1,
//	})
//	if err != nil { ... }
//	run, err := ldpmarginals.Simulate(p, ds.Records, 42, 0)
//	if err != nil { ... }
//	beta, _ := ds.Mask("CC", "Tip")
//	table, err := run.Agg.Estimate(beta)
//
// The experiment harness that regenerates every table and figure of the
// paper lives in cmd/experiments; see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package ldpmarginals
