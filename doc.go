// Package ldpmarginals is a Go implementation of "Marginal Release Under
// Local Differential Privacy" (Cormode, Kulkarni, Srivastava — SIGMOD
// 2018): protocols that let an untrusted aggregator reconstruct any
// k-way marginal table over d binary attributes from a population of
// users, each of whom releases a single locally-differentially-private
// report.
//
// The package exposes the paper's six protocols (InpRR, InpPS, InpHT,
// MargRR, MargPS, MargHT), the evaluated baselines (InpEM expectation
// maximization, InpOLH and InpHTCMS frequency oracles), synthetic
// datasets mirroring the paper's evaluation data, and the downstream
// applications: chi-squared association testing and Chow-Liu dependency
// tree fitting.
//
// # Quick start
//
//	ds := ldpmarginals.NewTaxiDataset(100_000, 1)
//	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, ldpmarginals.Config{
//		D: ds.D, K: 2, Epsilon: 1.1,
//	})
//	if err != nil { ... }
//	run, err := ldpmarginals.Simulate(p, ds.Records, 42, 0)
//	if err != nil { ... }
//	beta, _ := ds.Mask("CC", "Tip")
//	table, err := run.Agg.Estimate(beta)
//
// The experiment harness that regenerates every table and figure of the
// paper lives in cmd/experiments; see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
//
// # Deployment
//
// cmd/ldpserver serves a deployment over HTTP: clients POST wire-encoded
// reports (internal/encoding) to /report one at a time or to
// /report/batch as length-prefixed frames. Ingestion is sharded across
// per-core accumulators (NewShardedAggregator) so throughput scales
// with the hardware; batch ingestion amortizes HTTP and locking
// overhead per report. Sharding never changes results: aggregation
// state is integer counters, so a sharded deployment answers
// byte-identically to a sequential one fed the same reports. The
// reconstruction hot paths (the Walsh-Hadamard transform and the
// per-marginal estimator scans) likewise parallelize across goroutines
// for large d, deterministically.
//
// # Epochs and the materialized view
//
// The paper's key property — one round of reports answers every k-way
// marginal — means a deployment should reconstruct once and serve many
// times. The read side (BuildView / NewViewEngine, internal/view) does
// exactly that: per epoch it snapshots the aggregator, reconstructs all
// C(d,k) k-way tables in parallel, enforces cross-marginal consistency
// (EnforceConsistency, weighted by per-marginal evidence), projects
// each table to the probability simplex, and publishes the result as an
// immutable view behind an atomic pointer. /marginal answers any
// |beta| <= k and /query evaluates conjunction batches from the cached
// epoch in O(2^k) work, lock-free, never blocking ingestion; answers
// are stale by at most one refresh period (wall-time interval,
// report-count delta, or explicit POST /refresh). Builds are
// deterministic, so a cached answer is bit-identical to a fresh
// rebuild of the same snapshot.
//
// # Refresh cost model
//
// Every estimator in the paper is linear in the aggregated counters:
// each scaled Hadamard coefficient and each RR/PS cell estimate is an
// unnormalized sum of per-report contributions divided by a count.
// The refresh pipeline exploits that split. The *linear stage* — the
// cumulative counter state — is cached between epochs in a reusable
// arena and advanced by folding only the aggregation shards (and, on a
// coordinator, peers) whose mutation version moved since the last
// epoch: integer unmerge/merge, exact to the bit, zero allocations at
// steady state. The *nonlinear stage* (normalize by n, consistency
// enforcement, simplex projection, the sub-k cube) re-runs per epoch
// over reusable reconstruction arenas and memoized (d, k) build plans;
// for the input-view protocols it reconstructs all C(d,k) tables from
// ONE full-domain Walsh-Hadamard transform of the counters instead of
// one 2^d scan per table. Incremental epochs therefore cost what
// changed, not what accumulated — at d=16 an epoch over a 1% delta
// builds an order of magnitude faster than a cold rebuild
// (BENCH_view.json) — and stay within 1e-9 total variation of a cold
// Build (bit-identical for the marginal-view protocols and InpHT).
// Every ViewOptions.FullRebuildEvery-th build (default 64) re-derives
// the cached sums from scratch and runs the cold path, pinned
// bit-identical to a standalone BuildView; a refresh that finds no
// delta at all republishes the serving epoch for free. GET
// /view/status reports the serving epoch's build kind, its snapshot
// (fold) and build cost, how many components were folded, and the
// running incremental/full build counters; -full-rebuild-every tunes
// the cadence and -pprof-addr serves net/http/pprof on a side listener
// for profiling refresh regressions in place.
//
// # Durability
//
// Under the one-round collection model every report is irreplaceable —
// a user reports once, ever — so a crash that loses aggregator state
// loses privacy budget that can never be re-spent. OpenStore
// (internal/store) gives a deployment a durable data directory: every
// accepted report is appended to a CRC-checked write-ahead log before
// the ack (fsynced per FsyncAlways / FsyncInterval / FsyncOff, with
// group commit so durability doesn't serialize the sharded ingest
// path), and the counters are periodically compacted into snapshots of
// the aggregator's canonical MarshalState blob — every protocol's
// state round-trips the codec byte-identically. Restarting recovers
// the newest valid snapshot, replays the WAL tail, truncates a torn
// final record, and seeds the sharded aggregator, so the view engine's
// first epoch already answers over everything that survived.
// cmd/ldpserver exposes this as -data-dir, -fsync, and
// -snapshot-every-n.
//
// # Continual release
//
// The cumulative model answers "marginals since the collection
// started"; a deployment started with -window W -bucket B answers
// "marginals over the last W of wall time" instead (internal/window).
// Incoming reports land in a live bucket — still a sharded aggregator,
// so ingestion keeps its lock-free fan-out — and every B the live
// bucket is sealed: snapshotted once, merged into the window's
// cumulative state, and frozen. When a sealed bucket slides out of the
// window it is expired by a single Unmerge of that same frozen state,
// the exact integer inverse of its seal-time Merge, so retiring a
// bucket costs one O(state) fold rather than an O(window) rebuild —
// at d=16 the fold publishes a fresh InpPS epoch ~50x faster than
// re-merging the window (BENCH_window.json). Because the counters are
// integers under a canonical codec, a window that still covers every
// bucket is bit-identical to a cumulative deployment fed the same
// reports, and the incremental view engine rides the same folds:
// newly sealed buckets merge into its arena, expired buckets unmerge,
// and the live bucket refolds only when its version moved.
//
// The WAL rotates at every bucket seal, so log segments line up with
// bucket boundaries and expiry doubles as retention: when buckets
// expire the store re-snapshots the shrunken window and prunes the
// expired buckets' segments whole. A crash mid-window recovers
// whatever the log retained and seeds it as one sealed bucket kept for
// a full window — the conservative choice, since the recovered
// reports' true arrival times are gone. Queries may pin the horizon
// they assume: /marginal?window=W and /query?window=W are answered iff
// W equals the deployment's configured span (400 otherwise), so an
// analyst never silently reads a cumulative answer where a windowed
// one was intended. -round-eps E adds a per-round privacy ledger on
// top: each reporting round (one window span) grants every report
// token E of budget, spends Epsilon per accepted report, rejects
// over-budget submissions with 429 and a Retry-After hinting at the
// next bucket rotation, and forgets spend as it slides out of the
// window. /status and
// /view/status describe the window shape (bucket counts, rotations,
// expiries, budget spend) under "window".
//
// # Cluster topology
//
// Real LDP fleets ingest at the edge and aggregate centrally, and the
// server composes into exactly that shape (internal/server, cmd/
// ldpserver -role). An *edge* node runs ingestion and durability only:
// it accepts /report and /report/batch, WAL-logs every ack, and exports
// its canonical aggregator state on GET /state as a CRC-checked frame
// carrying its node id and a state version. A *coordinator* node runs
// the read side over the whole fleet: it pulls /state from its
// configured peers on a fixed cadence (failing peers back off
// exponentially), replaces each peer's previous contribution with the
// freshly pulled full state — replacement keyed on the (node id,
// version) label makes re-pulls idempotent and makes an edge's
// WAL-recovery after a crash transparent — and materializes the view
// over the merged result. A *single* node (the default) is both at
// once.
//
// Because aggregation is associative integer counting and the state
// codec is canonical, the coordinator's marginals are byte-identical to
// a single node that consumed every edge's stream directly, crash or no
// crash. The coordinator's own restart story is a per-peer state
// snapshot (-data-dir on a coordinator): persisting the decomposition
// rather than the merged state is what keeps re-pulls after a restart
// from double-counting. Coordinators themselves serve /state over the
// merged fleet, so tiers stack into deeper aggregation trees. See
// examples/http_deployment/README.md for a two-edge walkthrough and the
// failure/staleness semantics.
//
// # Fleet topology and delta exchange
//
// Full-state pulls ship the edge's whole counter state every interval
// even when almost none of it moved, so the steady-state wire cost of a
// fleet grows with state size (2^d cells for the input-view protocols),
// not with report volume. The delta exchange removes that term. An
// exporter decomposes its state into named, individually versioned
// *components*: an edge ships one component per nonempty aggregation
// shard ("<node>/<shard>"), a windowed edge ships its window as one
// component, and a coordinator passes its accepted peer components
// through with their original ids and labels. A puller acknowledges the
// last export version it accepted (?since= on the query string plus a
// standard If-None-Match echo of the ETag), and the exporter answers
// with one of three replies: 304 Not Modified when nothing moved (a
// header-only reply, no state marshaling at all), a *delta frame*
// carrying only the components whose versions moved past the
// acknowledged base (plus ids removed since then), or a full frame
// whenever the base cannot be served — too old for the exporter's
// history ring, diverged, or from before a process restart (export
// labels carry a per-process random salt, so a restart is always
// detected and resolved with one full transfer, never skewed by a
// stale delta). The coordinator folds deltas through the same
// replacement path as full frames, so any mix of deltas, full frames,
// 304s, crashes, and legacy single-blob peers converges to the same
// bytes; -pull-delta=false on a coordinator is the operational escape
// hatch back to legacy full-frame pulls.
//
// Component ids are globally unique and flow through coordinators
// unchanged, which is what makes fan-in *hierarchical* rather than
// merely stackable: a root coordinator pulling a mid-tier coordinator
// sees the fleet's true constituents, so its duplicate-contribution
// guard catches the same edge reachable through two paths (a diamond
// topology) across any number of tiers, its cycle guard refuses frames
// carrying its own components back, its per-peer persistence records
// the real decomposition, and its delta pulls re-ship only the
// components that moved anywhere below it. BENCH_cluster.json records
// the wire savings (an 88x reduction at 1% shard churn for InpPS d=16;
// 145 bytes for an unchanged peer); TestClusterDeltaVsFullBitIdentity
// and TestClusterTwoTierBitIdentity pin delta-pulled and tree-pulled
// marginals byte-identical to flat full pulls.
//
// # Observability
//
// Every role serves GET /metrics in the Prometheus text exposition
// format, rendered by a zero-dependency registry (internal/metrics)
// whose hot-path instruments are single atomics — cheap enough to live
// on the ingest path. The scrape covers every layer the role runs:
// per-endpoint request latency histograms and status-class counters,
// ingest and shed totals, WAL append/fsync latency and segment counts,
// view build timings split incremental vs full, epoch age, window
// occupancy and rotations, ledger charges, per-peer pull latency and
// outcomes on a coordinator, and Go runtime stats. The same registry is
// mounted on the -pprof-addr side listener, so operators can scrape
// without touching the serving port. /healthz stays a pure liveness
// probe while GET /readyz reports readiness — a node is ready once WAL
// recovery finished and the first epoch serves (a coordinator, once it
// holds at least one peer's state) — and ingestion is guarded by
// bounded admission control (-max-inflight-ingest, -max-ingest-queue):
// excess load is shed with 429 + Retry-After and counted rather than
// queued without bound. cmd/ldpload load-tests a deployment in closed-
// or open-loop (coordinated-omission-aware) mode and emits the latency
// percentiles recorded in BENCH_load.json; CI soaks a real server with
// it and gates regressions via cmd/benchguard's load mode.
//
// # Tracing and accuracy diagnostics
//
// Metrics aggregate; traces explain. Every request is rooted in a span
// by the server middleware (internal/trace, zero dependencies), its
// trace id echoed back as X-LDP-Trace-Id and stamped into every JSON
// error body, and the request's context threads the trace through the
// layers it crosses: admission waits, ledger charges, WAL appends,
// window seals and expiries, and each stage of an epoch build. The
// fleet is one trace too — a coordinator injects a W3C traceparent
// header on its GET /state pulls and an edge joins the propagated
// trace id, so a single pull round reads as one tree across processes.
// Completed traces land in a bounded in-memory ring served as JSON on
// GET /debug/traces (also mounted on the -pprof-addr side listener);
// slow traces are logged, and background no-op work (idle pull rounds,
// no-boundary window ticks) is discarded rather than allowed to flood
// the ring. -log-level selects the leveled key=value logger's floor;
// debug adds one line per request carrying its trace id.
//
// The same spirit — observability grounded in the paper, not just in
// the process — drives GET /view/diagnostics: per serving epoch it
// reports the theoretical per-marginal total-variation error bound at
// the deployment's exact parameters (Theorem 4.5's sqrt(|T|) 2^{k/2} /
// (eps sqrt(n)) family, internal/bounds), the L1 cell mass the
// consistency-enforcement and simplex-projection stages moved, and the
// max/mean TV drift of the epoch's k-way tables against the previous
// epoch. The bound says how wrong the marginals may be; the correction
// magnitude says how inconsistent the raw reconstruction was; the
// drift says how fast the population is moving — together they answer
// "can I trust this epoch" without ground truth. All three are also
// exported as ldp_view_* gauges and stamped onto the build's span.
//
// # Failure modes and degraded operation
//
// Because reports are irreplaceable, the server's failure philosophy is
// refuse-don't-lie: it never acks a report it cannot make durable, and
// it never serves a view it cannot account for — but it keeps serving
// whatever it *can* account for instead of falling over. Two state
// machines implement that.
//
// A durable node tracks WAL health:
//
//	healthy ──WAL append/fsync/rotate fails──▶ degraded ──probe writes ok──▶ recovering ──WAL revived,
//	   ▲                                      (ingest shed 503,              (exclusive barrier,        memory re-snapshotted
//	   │                                       reads serve from memory)       tail repaired)                │
//	   └────────────────────────────────────────────────────────────────────────────────────────────────────┘
//
// The batch in flight when the disk dies is answered 500 with an
// Accepted count naming exactly how many reports entered memory —
// consumed but not durably acked — and every later write is shed with
// 503 + Retry-After while reads (/marginal, /query, /status, /state)
// keep serving from memory. A background sentinel probe
// (-degraded-probe-interval) rewrites a probe file in the data
// directory; once writes succeed it revives the WAL, repairs any torn
// segment tail, force-snapshots the in-memory state (making the
// consumed-but-unlogged reports durable after the fact), and flips the
// node back to healthy. Every 503 the server emits — degraded sheds and
// readiness refusals alike — carries Retry-After, a JSON reason, and
// the request's trace id.
//
// A coordinator tracks per-peer health: healthy, backing_off, or
// quarantined. Transient pull failures (dial, HTTP status, body read)
// back off exponentially and never quarantine — the peer rejoins the
// moment the network heals. Content failures (CRC mismatch, frame
// decode, validation, fold errors) are *poison*: after
// -quarantine-after consecutive poisoned pulls the circuit breaker
// trips, the peer's held contribution keeps serving unchanged, and
// pulls drop to a half-open probe cadence (-quarantine-interval). One
// clean pull — scheduled or forced via POST /pull — closes the breaker.
// Peer health is reported on /view/status, /readyz (which stays ready:
// the held state still serves), span attributes, and metrics.
//
// Alert on: ldp_health_state (0 healthy / 1 degraded / 2 recovering),
// ldp_degraded_transitions_total vs ldp_recoveries_total (a gap means a
// node is stuck degraded), ldp_disk_probe_failures_total,
// ldp_ingest_shed_degraded_total (reports being refused),
// ldp_wal_revives_total, ldp_cluster_peer_health (0/1/2 per peer), and
// ldp_cluster_peer_quarantines_total. ldp_fault_injections_total is
// nonzero only when -fault-spec armed the deterministic fault registry
// (internal/fault) — a dev/chaos-testing lever that must never be set
// in production. Recovery procedure and a chaos walkthrough live in
// examples/http_deployment/README.md.
package ldpmarginals
