// Command benchguard is the CI bench-regression smoke gate: it reads
// `go test -bench` output on stdin, looks each benchmark up in the
// checked-in BENCH_*.json baselines, and fails when any ns/op exceeds
// the baseline by more than the threshold factor.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchtime=0.3s -cpu=4 . | \
//	    go run ./cmd/benchguard -dir . -threshold 3
//
// The threshold is deliberately generous (default 3x): CI machines are
// noisy and differ from the box the baselines were recorded on, so the
// gate catches order-of-magnitude regressions — an accidentally
// quadratic loop, a lost fast path, a lock back on the hot path — not
// scheduling jitter. Benchmarks without a recorded baseline are listed
// and skipped, so adding a bench never breaks CI until its baseline is
// recorded.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// benchFile is the subset of the BENCH_*.json layout the guard needs;
// the files carry richer context (descriptions, derived ratios, notes)
// that is ignored here.
type benchFile struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkQueryCached-4   123456   117.3 ns/op   0 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op`)

func main() {
	dir := flag.String("dir", ".", "directory holding the BENCH_*.json baseline files")
	threshold := flag.Float64("threshold", 3, "fail when ns/op exceeds baseline by this factor")
	flag.Parse()

	baselines, err := loadBaselines(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if len(baselines) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no baselines under %s\n", *dir)
		os.Exit(2)
	}

	var (
		checked, skipped int
		failures         []string
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		got, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		base, ok := baselines[name]
		if !ok || base <= 0 {
			fmt.Printf("skip  %-60s %12.0f ns/op (no baseline)\n", name, got)
			skipped++
			continue
		}
		checked++
		ratio := got / base
		verdict := "ok"
		if ratio > *threshold {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op is %.1fx the %.0f ns/op baseline (limit %.1fx)",
				name, got, ratio, base, *threshold))
		}
		fmt.Printf("%-5s %-60s %12.0f ns/op  %5.2fx of baseline\n", verdict, name, got, ratio)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: reading stdin:", err)
		os.Exit(2)
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark in the input matched a baseline")
		os.Exit(2)
	}
	fmt.Printf("benchguard: %d checked, %d without baseline, %d regressions\n", checked, skipped, len(failures))
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchguard:", f)
		}
		os.Exit(1)
	}
}

// loadBaselines merges the benchmark entries of every BENCH_*.json in
// dir into one name -> ns/op map.
func loadBaselines(dir string) (map[string]float64, error) {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var bf benchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		for _, b := range bf.Benchmarks {
			if b.NsPerOp > 0 {
				out[b.Name] = b.NsPerOp
			}
		}
	}
	return out, nil
}
