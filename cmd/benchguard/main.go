// Command benchguard is the CI bench-regression smoke gate: it reads
// `go test -bench` output on stdin, looks each benchmark up in the
// checked-in BENCH_*.json baselines, and fails when any ns/op exceeds
// the baseline by more than the threshold factor.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchtime=0.3s -cpu=4 . | \
//	    go run ./cmd/benchguard -dir . -threshold 3
//
// The threshold is deliberately generous (default 3x): CI machines are
// noisy and differ from the box the baselines were recorded on, so the
// gate catches order-of-magnitude regressions — an accidentally
// quadratic loop, a lost fast path, a lock back on the hot path — not
// scheduling jitter. Benchmarks without a recorded baseline are listed
// and skipped, so adding a bench never breaks CI until its baseline is
// recorded.
//
// With -load-baseline the guard instead compares a cmd/ldpload result
// against the checked-in BENCH_load.json (stdin is not read):
//
//	benchguard -load-baseline BENCH_load.json -load-result load.json \
//	    -load-threshold 4
//
// The load gate fails when throughput drops below baseline divided by
// the threshold, when p99 latency exceeds the baseline p99 times the
// threshold, or when the run saw any 5xx reply or transport error —
// a soak that errors is a failure no matter how fast it went.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// benchFile is the subset of the BENCH_*.json layout the guard needs;
// the files carry richer context (descriptions, derived ratios, notes)
// that is ignored here.
type benchFile struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkQueryCached-4   123456   117.3 ns/op   0 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op`)

func main() {
	dir := flag.String("dir", ".", "directory holding the BENCH_*.json baseline files")
	threshold := flag.Float64("threshold", 3, "fail when ns/op exceeds baseline by this factor")
	loadBaseline := flag.String("load-baseline", "", "checked-in cmd/ldpload baseline JSON; selects load mode (stdin is not read)")
	loadResult := flag.String("load-result", "", "cmd/ldpload result JSON to check against -load-baseline")
	loadThreshold := flag.Float64("load-threshold", 4, "load mode: fail when throughput falls below baseline/threshold or p99 exceeds baseline*threshold")
	flag.Parse()

	if *loadBaseline != "" {
		if err := guardLoad(*loadBaseline, *loadResult, *loadThreshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		return
	}

	baselines, err := loadBaselines(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if len(baselines) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no baselines under %s\n", *dir)
		os.Exit(2)
	}

	var (
		checked, skipped int
		failures         []string
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		got, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		base, ok := baselines[name]
		if !ok || base <= 0 {
			fmt.Printf("skip  %-60s %12.0f ns/op (no baseline)\n", name, got)
			skipped++
			continue
		}
		checked++
		ratio := got / base
		verdict := "ok"
		if ratio > *threshold {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op is %.1fx the %.0f ns/op baseline (limit %.1fx)",
				name, got, ratio, base, *threshold))
		}
		fmt.Printf("%-5s %-60s %12.0f ns/op  %5.2fx of baseline\n", verdict, name, got, ratio)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: reading stdin:", err)
		os.Exit(2)
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark in the input matched a baseline")
		os.Exit(2)
	}
	fmt.Printf("benchguard: %d checked, %d without baseline, %d regressions\n", checked, skipped, len(failures))
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchguard:", f)
		}
		os.Exit(1)
	}
}

// loadFile is the subset of cmd/ldpload's LoadReport the guard reads.
type loadFile struct {
	ReportsSec float64 `json:"reports_per_sec"`
	Requests   uint64  `json:"requests"`
	Latency    struct {
		P99 float64 `json:"p99"`
	} `json:"latency_seconds"`
	Status struct {
		Err5xx      uint64 `json:"5xx"`
		Transport   uint64 `json:"errors"`
		SampleError string `json:"sample_error"`
	} `json:"status"`
}

// guardLoad compares one ldpload run against the checked-in baseline.
func guardLoad(basePath, resultPath string, threshold float64) error {
	if resultPath == "" {
		return fmt.Errorf("load mode needs -load-result")
	}
	read := func(path string) (loadFile, error) {
		var lf loadFile
		data, err := os.ReadFile(path)
		if err != nil {
			return lf, err
		}
		if err := json.Unmarshal(data, &lf); err != nil {
			return lf, fmt.Errorf("%s: %w", path, err)
		}
		return lf, nil
	}
	base, err := read(basePath)
	if err != nil {
		return err
	}
	got, err := read(resultPath)
	if err != nil {
		return err
	}
	if got.Requests == 0 {
		return fmt.Errorf("load result completed zero requests")
	}
	if got.Status.Err5xx > 0 || got.Status.Transport > 0 {
		return fmt.Errorf("load run saw %d 5xx replies and %d transport errors (first: %s)",
			got.Status.Err5xx, got.Status.Transport, got.Status.SampleError)
	}
	fmt.Printf("load: %.0f reports/s (baseline %.0f, floor %.0f), p99 %.2fms (baseline %.2fms, ceiling %.2fms)\n",
		got.ReportsSec, base.ReportsSec, base.ReportsSec/threshold,
		got.Latency.P99*1e3, base.Latency.P99*1e3, base.Latency.P99*threshold*1e3)
	if base.ReportsSec > 0 && got.ReportsSec < base.ReportsSec/threshold {
		return fmt.Errorf("throughput %.0f reports/s is below the %.0f floor (baseline %.0f / %.1fx)",
			got.ReportsSec, base.ReportsSec/threshold, base.ReportsSec, threshold)
	}
	if base.Latency.P99 > 0 && got.Latency.P99 > base.Latency.P99*threshold {
		return fmt.Errorf("p99 latency %.2fms exceeds the %.2fms ceiling (baseline %.2fms * %.1fx)",
			got.Latency.P99*1e3, base.Latency.P99*threshold*1e3, base.Latency.P99*1e3, threshold)
	}
	fmt.Println("benchguard: load within bounds")
	return nil
}

// loadBaselines merges the benchmark entries of every BENCH_*.json in
// dir into one name -> ns/op map.
func loadBaselines(dir string) (map[string]float64, error) {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var bf benchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		for _, b := range bf.Benchmarks {
			if b.NsPerOp > 0 {
				out[b.Name] = b.NsPerOp
			}
		}
	}
	return out, nil
}
