// Command ldpserver runs the HTTP collection endpoint for one marginal
// release deployment: clients POST wire-encoded reports to /report and
// analysts query reconstructed marginals from /marginal.
//
// Usage:
//
//	ldpserver -addr :8080 -protocol InpHT -d 8 -k 2 -eps 1.1 -shards 0
//
// Endpoints:
//
//	POST /report            binary report frame (internal/encoding)
//	POST /report/batch      length-prefixed report frames (encoding.MarshalBatch)
//	GET  /marginal?beta=N   reconstructed marginal over attribute mask N
//	GET  /status            deployment metadata and report count
//
// Ingestion is sharded across -shards per-shard accumulators (0 selects
// GOMAXPROCS) so multi-core hardware ingests reports in parallel; see
// internal/server for how to pick the shard count.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"strings"

	"ldpmarginals"
	"ldpmarginals/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldpserver: ")

	var (
		addr     = flag.String("addr", ":8080", "listen address")
		protocol = flag.String("protocol", "InpHT", "protocol name")
		d        = flag.Int("d", 8, "number of binary attributes")
		k        = flag.Int("k", 2, "largest marginal size supported")
		eps      = flag.Float64("eps", math.Log(3), "privacy budget epsilon")
		shards   = flag.Int("shards", 0, "aggregation shards (0 = GOMAXPROCS)")
		workers  = flag.Int("ingest-workers", 0, "bounded batch-ingestion workers (0 = shard count)")
	)
	flag.Parse()

	cfg := ldpmarginals.Config{D: *d, K: *k, Epsilon: *eps, OptimizedPRR: true}
	p, err := makeProtocol(*protocol, cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.NewWithOptions(p, server.Options{Shards: *shards, IngestWorkers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s (d=%d k=%d eps=%.3g, %d shards) on %s\n", p.Name(), *d, *k, *eps, srv.Shards(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func makeProtocol(name string, cfg ldpmarginals.Config) (ldpmarginals.Protocol, error) {
	for _, kind := range ldpmarginals.AllKinds() {
		if strings.EqualFold(kind.String(), name) {
			return ldpmarginals.NewProtocol(kind, cfg)
		}
	}
	switch strings.ToLower(name) {
	case "inpem":
		return ldpmarginals.NewEM(ldpmarginals.EMConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inpolh":
		return ldpmarginals.NewOLH(ldpmarginals.OLHConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inphtcms":
		return ldpmarginals.NewHCMS(ldpmarginals.HCMSConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}
