// Command ldpserver runs the HTTP collection endpoint for one marginal
// release deployment: clients POST wire-encoded reports to /report and
// analysts query reconstructed marginals from /marginal.
//
// Usage:
//
//	ldpserver -addr :8080 -protocol InpHT -d 8 -k 2 -eps 1.1
//
// Endpoints:
//
//	POST /report            binary report frame (internal/encoding)
//	GET  /marginal?beta=N   reconstructed marginal over attribute mask N
//	GET  /status            deployment metadata and report count
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"strings"

	"ldpmarginals"
	"ldpmarginals/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldpserver: ")

	var (
		addr     = flag.String("addr", ":8080", "listen address")
		protocol = flag.String("protocol", "InpHT", "protocol name")
		d        = flag.Int("d", 8, "number of binary attributes")
		k        = flag.Int("k", 2, "largest marginal size supported")
		eps      = flag.Float64("eps", math.Log(3), "privacy budget epsilon")
	)
	flag.Parse()

	cfg := ldpmarginals.Config{D: *d, K: *k, Epsilon: *eps, OptimizedPRR: true}
	p, err := makeProtocol(*protocol, cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s (d=%d k=%d eps=%.3g) on %s\n", p.Name(), *d, *k, *eps, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func makeProtocol(name string, cfg ldpmarginals.Config) (ldpmarginals.Protocol, error) {
	for _, kind := range ldpmarginals.AllKinds() {
		if strings.EqualFold(kind.String(), name) {
			return ldpmarginals.NewProtocol(kind, cfg)
		}
	}
	switch strings.ToLower(name) {
	case "inpem":
		return ldpmarginals.NewEM(ldpmarginals.EMConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inpolh":
		return ldpmarginals.NewOLH(ldpmarginals.OLHConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inphtcms":
		return ldpmarginals.NewHCMS(ldpmarginals.HCMSConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}
