// Command ldpserver runs the HTTP collection endpoint for one marginal
// release deployment: clients POST wire-encoded reports to /report and
// analysts read cached marginal and conjunction estimates.
//
// Usage:
//
//	ldpserver -addr :8080 -protocol InpHT -d 8 -k 2 -eps 1.1 \
//	    -shards 0 -refresh-interval 5s -refresh-every-n 0
//
// Endpoints:
//
//	POST /report            binary report frame (internal/encoding)
//	POST /report/batch      length-prefixed report frames (encoding.MarshalBatch)
//	GET  /marginal?beta=N   cached marginal over attribute mask N
//	POST /query             JSON conjunction batch against the cached epoch
//	POST /refresh           build and publish the next epoch now
//	GET  /view/status       serving epoch, staleness, build time
//	GET  /status            deployment metadata and report count
//	GET  /healthz           liveness probe
//
// Ingestion is sharded across -shards per-shard accumulators (0 selects
// GOMAXPROCS) so multi-core hardware ingests reports in parallel. Reads
// are served from a materialized view rebuilt on the refresh policy:
// every -refresh-interval of wall time, and/or whenever
// -refresh-every-n new reports have arrived (0 disables either
// trigger; with both at 0 the view only advances on POST /refresh).
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ldpmarginals"
	"ldpmarginals/internal/server"
	"ldpmarginals/internal/view"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldpserver: ")

	var (
		addr     = flag.String("addr", ":8080", "listen address")
		protocol = flag.String("protocol", "InpHT", "protocol name")
		d        = flag.Int("d", 8, "number of binary attributes")
		k        = flag.Int("k", 2, "largest marginal size supported")
		eps      = flag.Float64("eps", math.Log(3), "privacy budget epsilon")
		shards   = flag.Int("shards", 0, "aggregation shards (0 = GOMAXPROCS)")
		workers  = flag.Int("ingest-workers", 0, "bounded batch-ingestion workers (0 = shard count)")
		interval = flag.Duration("refresh-interval", 5*time.Second, "rebuild the view this often (0 = no time-based refresh)")
		everyN   = flag.Int("refresh-every-n", 0, "rebuild the view after this many new reports (0 = no count-based refresh)")
	)
	flag.Parse()

	cfg := ldpmarginals.Config{D: *d, K: *k, Epsilon: *eps, OptimizedPRR: true}
	p, err := makeProtocol(*protocol, cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.NewWithOptions(p, server.Options{
		Shards:        *shards,
		IngestWorkers: *workers,
		Refresh:       view.Policy{Interval: *interval, EveryN: *everyN},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Read timeouts bound how long a slow (or slow-loris) client can
	// hold a connection — and with it one of the server's bounded batch
	// slots — mid-request. Two minutes is ample for a 16 MiB batch on a
	// slow uplink; everything else completes in milliseconds.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("serving %s (d=%d k=%d eps=%.3g, %d shards, refresh %v/%d reports) on %s\n",
		p.Name(), *d, *k, *eps, srv.Shards(), *interval, *everyN, *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down: draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		log.Printf("served %d reports across %d epochs", srv.N(), srv.View().Epoch())
	}
}

func makeProtocol(name string, cfg ldpmarginals.Config) (ldpmarginals.Protocol, error) {
	for _, kind := range ldpmarginals.AllKinds() {
		if strings.EqualFold(kind.String(), name) {
			return ldpmarginals.NewProtocol(kind, cfg)
		}
	}
	switch strings.ToLower(name) {
	case "inpem":
		return ldpmarginals.NewEM(ldpmarginals.EMConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inpolh":
		return ldpmarginals.NewOLH(ldpmarginals.OLHConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inphtcms":
		return ldpmarginals.NewHCMS(ldpmarginals.HCMSConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}
