// Command ldpserver runs the HTTP collection endpoint for one marginal
// release deployment: clients POST wire-encoded reports to /report and
// analysts read cached marginal and conjunction estimates.
//
// Usage:
//
//	ldpserver -addr :8080 -protocol InpHT -d 8 -k 2 -eps 1.1 \
//	    -shards 0 -refresh-interval 5s -refresh-every-n 0 \
//	    -data-dir /var/lib/ldpserver -fsync interval -snapshot-every-n 1000000
//
// Endpoints:
//
//	POST /report            binary report frame (internal/encoding)
//	POST /report/batch      length-prefixed report frames (encoding.MarshalBatch)
//	GET  /marginal?beta=N   cached marginal over attribute mask N
//	POST /query             JSON conjunction batch against the cached epoch
//	POST /refresh           build and publish the next epoch now
//	GET  /view/status       serving epoch, staleness, build time
//	GET  /view/diagnostics  accuracy diagnostics: theoretical TV bound, consistency correction, drift
//	GET  /status            deployment metadata and report count
//	GET  /healthz           liveness probe
//	GET  /readyz            readiness probe (503 until ready to serve)
//	GET  /metrics           Prometheus text exposition
//	GET  /debug/traces      completed request and lifecycle traces (JSON)
//
// Ingestion is sharded across -shards per-shard accumulators (0 selects
// GOMAXPROCS) so multi-core hardware ingests reports in parallel. Reads
// are served from a materialized view rebuilt on the refresh policy:
// every -refresh-interval of wall time, and/or whenever
// -refresh-every-n new reports have arrived (0 disables either
// trigger; with both at 0 the view only advances on POST /refresh).
// Refreshes are incremental by default — only aggregation shards (and,
// on a coordinator, peers) that changed since the serving epoch are
// folded into the cached reconstruction state — with every
// -full-rebuild-every-th build a cold full rebuild that re-derives that
// state from scratch (see GET /view/status for per-epoch build kind and
// cost). SIGINT/SIGTERM drain in-flight requests before exiting.
//
// -pprof-addr serves net/http/pprof on a separate listener (disabled by
// default), so hot-path regressions can be profiled in place without
// exposing the debug handlers on the service port. The side listener
// also serves GET /metrics and GET /debug/traces, so scraping and trace
// inspection keep working when the service listener is saturated by
// ingest.
//
// Every request is traced: the middleware roots a span (joining the
// caller's W3C traceparent when present — a coordinator's pull and the
// edge's /state handler share one trace id), echoes the id as
// X-LDP-Trace-Id, and completed traces land in the bounded ring behind
// GET /debug/traces. -log-level tunes the leveled key=value logging on
// stderr; debug adds one line per request carrying its trace id.
//
// Ingest admission control bounds how many /report and /report/batch
// requests are processed at once (-max-inflight-ingest) and how many
// may queue behind them (-max-ingest-queue); arrivals beyond both are
// shed with 429 + Retry-After and counted in ldp_ingest_shed_total on
// /metrics, so overload degrades into visible, retryable refusals
// instead of unbounded goroutine and memory growth.
//
// A durable node that loses its disk degrades instead of falling over:
// a persistent WAL failure flips the server into read-only mode —
// ingest is shed with 503 + Retry-After while reads, /state, and
// /metrics keep serving from memory — and a background probe re-tests
// the disk every -degraded-probe-interval, reviving the log and
// re-snapshotting the in-memory state once writes succeed again. A
// coordinator likewise survives a misbehaving peer: after
// -quarantine-after consecutive pulls whose frames fail CRC, decode,
// or fold, the peer is quarantined — its last good contribution keeps
// serving, regular pulls stop, and a half-open probe retries every
// -quarantine-interval. -fault-spec arms deterministic fault injection
// at named sites (WAL appends, pull bodies, ...) for failure drills.
// The "Failure modes and degraded operation" section of the package
// documentation is the operator runbook for both state machines.
//
// With -data-dir set the deployment is durable: accepted reports are
// appended to a write-ahead log before the ack (fsynced per -fsync:
// always, interval, or off), the counters are compacted into snapshots
// every -snapshot-every-n reports and on shutdown, and a restart
// recovers the full aggregation state from the directory — the startup
// log reports how many reports were recovered, from which snapshot,
// how many WAL segments were replayed, and whether a torn tail was
// truncated. Without -data-dir the deployment lives in memory only, as
// before.
//
// -window turns the deployment into a continual release: reports land
// in a ring of time-bucketed sub-aggregators and every estimate covers
// only the last -window of wall time. The live bucket seals every
// -bucket (which must divide -window evenly); sealed state expires one
// bucket at a time with a single unmerge fold, and with -data-dir the
// WAL rotates a segment per bucket so expired buckets also prune their
// disk footprint once a snapshot covers them. -round-eps additionally
// caps each client's composed privacy loss per window: every report
// spends the deployment epsilon against the client's X-LDP-Token, and
// over-budget reports are rejected with 429 until the window slides.
// Analysts can pin the expected span with window= on /marginal and
// /query and read the ring's shape from GET /status and /view/status.
//
// -role selects the node's place in a cluster: "single" (default) runs
// the whole pipeline in one process; "edge" ingests and WAL-logs
// reports and exports its canonical aggregator state on GET /state;
// "coordinator" pulls GET /state from every -peers URL on the
// -pull-interval cadence (with per-peer exponential backoff on
// failure), merges the fleet, and serves /marginal and /query over the
// merged state. For a coordinator, -data-dir persists the latest
// accepted peer states so a restart resumes without waiting for
// re-pulls. A two-edge cluster:
//
//	ldpserver -role edge -addr :8081 -data-dir /var/lib/ldp-e1 ...
//	ldpserver -role edge -addr :8082 -data-dir /var/lib/ldp-e2 ...
//	ldpserver -role coordinator -addr :8080 \
//	    -peers http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	    -pull-interval 5s -data-dir /var/lib/ldp-coord ...
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ldpmarginals"
	"ldpmarginals/internal/fault"
	"ldpmarginals/internal/logx"
	"ldpmarginals/internal/server"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/view"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		protocol  = flag.String("protocol", "InpHT", "protocol name")
		d         = flag.Int("d", 8, "number of binary attributes")
		k         = flag.Int("k", 2, "largest marginal size supported")
		eps       = flag.Float64("eps", math.Log(3), "privacy budget epsilon")
		shards    = flag.Int("shards", 0, "aggregation shards (0 = GOMAXPROCS)")
		workers   = flag.Int("ingest-workers", 0, "bounded batch-ingestion workers (0 = shard count)")
		interval  = flag.Duration("refresh-interval", 5*time.Second, "rebuild the view this often (0 = no time-based refresh)")
		everyN    = flag.Int("refresh-every-n", 0, "rebuild the view after this many new reports (0 = no count-based refresh)")
		fullEvery = flag.Int("full-rebuild-every", 0,
			"make every Nth view build a full (cold) rebuild instead of an incremental delta fold (0 = default 64, 1 = always full, negative = never)")
		pprofAddr = flag.String("pprof-addr", "",
			"serve net/http/pprof and /metrics on this separate address (e.g. 127.0.0.1:6060; empty = disabled)")
		maxInflight = flag.Int("max-inflight-ingest", 0,
			"ingest requests processed concurrently before new arrivals queue (0 = 4x ingest workers, negative = no admission control)")
		maxQueue = flag.Int("max-ingest-queue", 0,
			"ingest requests allowed to queue for an in-flight slot before arrivals are shed with 429 (0 = 16x the in-flight cap)")

		dataDir    = flag.String("data-dir", "", "durable directory: WAL+snapshots for single/edge, peer-state snapshot for coordinator (empty = memory-only)")
		fsyncMode  = flag.String("fsync", "interval", "WAL fsync policy: always, interval, or off")
		fsyncEvery = flag.Duration("fsync-interval", 100*time.Millisecond, "fsync timer period for -fsync interval")
		snapEveryN = flag.Int("snapshot-every-n", 1_000_000, "compact the WAL into a counter snapshot after this many reports (0 = only on shutdown)")

		windowSpan = flag.Duration("window", 0, "serve a sliding window of this span instead of the cumulative release (requires -bucket; single and edge roles)")
		bucketSpan = flag.Duration("bucket", 0, "window rotation granularity; must divide -window evenly")
		roundEps   = flag.Float64("round-eps", 0, "per-client epsilon budget per window (0 = no budget; requires -window; clients identify via the X-LDP-Token header)")

		role         = flag.String("role", "single", "node role: single, edge, or coordinator")
		nodeID       = flag.String("node-id", "", "cluster node id (empty = random); must be unique across the fleet")
		peers        = flag.String("peers", "", "comma-separated peer base URLs a coordinator pulls state from")
		pullInterval = flag.Duration("pull-interval", 5*time.Second, "coordinator state-pull cadence (failing peers back off exponentially)")
		pullDelta    = flag.Bool("pull-delta", true, "negotiate componentized delta state pulls (ship only changed shards; false = legacy full-frame pulls)")

		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn, error, or off (debug adds one line per request, carrying its trace id)")

		degradedProbe = flag.Duration("degraded-probe-interval", 0,
			"disk-probe cadence while degraded by a WAL failure (0 = 2s); each probe rewrites a sentinel file and, once the disk accepts writes, auto-recovers the node")
		quarantineAfter = flag.Int("quarantine-after", 0,
			"consecutive poison pull failures (bad CRC/decode/fold) before a coordinator quarantines a peer (0 = 3)")
		quarantineInterval = flag.Duration("quarantine-interval", 0,
			"half-open probe cadence for quarantined peers (0 = 16x -pull-interval)")
		faultSpec = flag.String("fault-spec", "",
			"DEV ONLY: arm deterministic fault injection, e.g. 'store.wal.append=error:after=100;cluster.pull.body=corrupt:seed=7' (see internal/fault)")
	)
	flag.Parse()

	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldpserver:", err)
		os.Exit(1)
	}
	logger := logx.New(logx.Options{Writer: os.Stderr, Min: level, Timestamps: true})
	die := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}

	if *faultSpec != "" {
		rules, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			die(fmt.Errorf("-fault-spec: %w", err))
		}
		fault.Arm(rules...)
		logger.Warn("fault injection armed: this process WILL misbehave on the configured sites", "spec", *faultSpec)
	}

	nodeRole, err := server.ParseRole(*role)
	if err != nil {
		die(err)
	}
	var peerList []string
	if *peers != "" {
		for _, u := range strings.Split(*peers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				peerList = append(peerList, strings.TrimRight(u, "/"))
			}
		}
	}

	cfg := ldpmarginals.Config{D: *d, K: *k, Epsilon: *eps, OptimizedPRR: true}
	p, err := makeProtocol(*protocol, cfg)
	if err != nil {
		die(err)
	}
	// Validate the WAL flags for every role, so a typo fails identically
	// whether or not this node opens a store.
	policy, err := store.ParseFsync(*fsyncMode)
	if err != nil {
		die(err)
	}
	clusterDir := ""
	if nodeRole == server.RoleCoordinator && *dataDir != "" {
		// A coordinator's durable artifact is the per-peer state
		// snapshot, not a WAL: it ingests nothing itself. The WAL-tuning
		// flags are dead on this role.
		clusterDir = *dataDir
		*dataDir = ""
		if *fsyncMode != "interval" || *snapEveryN != 1_000_000 {
			logger.Info("-fsync and -snapshot-every-n tune the WAL and have no effect on a coordinator")
		}
	}
	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir, p, store.Options{
			Fsync:          policy,
			FsyncInterval:  *fsyncEvery,
			SnapshotEveryN: *snapEveryN,
		})
		if err != nil {
			die(err)
		}
		_, rec := st.Recovered()
		logger.Info("recovered reports", "reports", rec.Reports, "dir", *dataDir,
			"snapshot_seq", rec.SnapshotSeq, "snapshot_reports", rec.SnapshotReports,
			"replayed", rec.ReportsReplayed, "segments", rec.SegmentsReplayed)
		if rec.TornTailTruncations > 0 {
			logger.Warn("truncated torn WAL tail records from the previous crash", "records", rec.TornTailTruncations)
		}
		if rec.SnapshotsDiscarded > 0 {
			logger.Warn("discarded corrupt snapshots during recovery", "snapshots", rec.SnapshotsDiscarded)
		}
	}
	srv, err := server.NewWithOptions(p, server.Options{
		Role:                  nodeRole,
		NodeID:                *nodeID,
		Peers:                 peerList,
		PullInterval:          *pullInterval,
		DisableDeltaPull:      !*pullDelta,
		ClusterDir:            clusterDir,
		Shards:                *shards,
		IngestWorkers:         *workers,
		MaxInflightIngest:     *maxInflight,
		MaxIngestQueue:        *maxQueue,
		Refresh:               view.Policy{Interval: *interval, EveryN: *everyN},
		View:                  view.Options{FullRebuildEvery: *fullEvery},
		Store:                 st,
		Window:                *windowSpan,
		Bucket:                *bucketSpan,
		RoundEps:              *roundEps,
		DegradedProbeInterval: *degradedProbe,
		QuarantineAfter:       *quarantineAfter,
		QuarantineInterval:    *quarantineInterval,
		Log:                   logger,
	})
	if err != nil {
		die(err)
	}
	defer srv.Close()
	if *windowSpan > 0 {
		budget := "none"
		if *roundEps > 0 {
			budget = fmt.Sprintf("%.3g eps per client", *roundEps)
		}
		logger.Info("continual release", "window", *windowSpan, "bucket", *bucketSpan, "round_budget", budget)
	}
	if nodeRole == server.RoleCoordinator {
		if clusterDir != "" {
			logger.Info("coordinator pulling peers", "node", srv.NodeID(), "peers", len(peerList), "interval", *pullInterval, "resumed_reports", srv.N(), "cluster_dir", clusterDir)
		} else {
			logger.Info("coordinator pulling peers", "node", srv.NodeID(), "peers", len(peerList), "interval", *pullInterval)
		}
	}

	if *pprofAddr != "" {
		// Profiling stays off the service listener: the pprof handlers
		// register on http.DefaultServeMux (blank import below), which
		// the deployment mux never touches, and bind to their own —
		// typically loopback-only — address. Hot-path regressions can
		// then be profiled in place without exposing /debug to clients.
		// /metrics and /debug/traces ride along so scrapes and trace
		// inspection survive a saturated (or admission-shedding) service
		// listener.
		http.Handle("/metrics", srv.Metrics().Handler())
		http.Handle("/debug/traces", srv.TraceHandler())
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	// Read and write timeouts bound how long a slow (or slow-loris)
	// client can hold a connection — and with it one of the server's
	// bounded batch slots — mid-request or mid-response. Two minutes is
	// ample for a 16 MiB batch or state export on a slow uplink;
	// everything else completes in milliseconds. Without WriteTimeout a
	// peer that stops reading a large /state response would pin the
	// handler goroutine (and the exported state's memory) forever.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	durable := "memory-only"
	if st != nil {
		durable = fmt.Sprintf("durable in %s (fsync %s)", *dataDir, st.Fsync())
	} else if clusterDir != "" {
		durable = fmt.Sprintf("peer states in %s", clusterDir)
	}
	fmt.Printf("serving %s as %s node %s (d=%d k=%d eps=%.3g, %d shards, refresh %v/%d reports, %s) on %s\n",
		p.Name(), nodeRole, srv.NodeID(), *d, *k, *eps, srv.Shards(), *interval, *everyN, durable, *addr)

	select {
	case err := <-errc:
		die(err)
	case <-ctx.Done():
		stop()
		logger.Info("shutting down: draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Warn("shutdown incomplete", "err", err)
		}
		if err := srv.Close(); err != nil {
			logger.Error("closing store failed", "err", err)
		} else if st != nil {
			logger.Info("flushed WAL and wrote final snapshot", "dir", *dataDir)
		}
		if v := srv.View(); v != nil {
			logger.Info("served", "reports", srv.N(), "epochs", v.Epoch())
		} else {
			logger.Info("ingested", "reports", srv.N())
		}
	}
}

func makeProtocol(name string, cfg ldpmarginals.Config) (ldpmarginals.Protocol, error) {
	for _, kind := range ldpmarginals.AllKinds() {
		if strings.EqualFold(kind.String(), name) {
			return ldpmarginals.NewProtocol(kind, cfg)
		}
	}
	switch strings.ToLower(name) {
	case "inpem":
		return ldpmarginals.NewEM(ldpmarginals.EMConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inpolh":
		return ldpmarginals.NewOLH(ldpmarginals.OLHConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inphtcms":
		return ldpmarginals.NewHCMS(ldpmarginals.HCMSConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}
