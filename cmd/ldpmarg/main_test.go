package main

import (
	"math"
	"testing"

	"ldpmarginals"
)

func TestMakeDataset(t *testing.T) {
	ds, err := makeDataset("taxi", 100, 8, 1)
	if err != nil || ds.D != 8 {
		t.Errorf("taxi: %v, %v", ds, err)
	}
	ds, err = makeDataset("movielens", 100, 10, 1)
	if err != nil || ds.D != 10 {
		t.Errorf("movielens: %v", err)
	}
	ds, err = makeDataset("skewed", 100, 6, 1)
	if err != nil || ds.D != 6 {
		t.Errorf("skewed: %v", err)
	}
	if _, err := makeDataset("bogus", 100, 8, 1); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestMakeProtocolAllNames(t *testing.T) {
	cfg := ldpmarginals.Config{D: 8, K: 2, Epsilon: 1}
	names := []string{"InpRR", "inpps", "InpHT", "margrr", "MargPS", "MARGHT",
		"InpEM", "InpOLH", "InpHTCMS"}
	for _, name := range names {
		p, err := makeProtocol(name, cfg)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p == nil {
			t.Errorf("%s: nil protocol", name)
		}
	}
	if _, err := makeProtocol("nope", cfg); err == nil {
		t.Error("unknown protocol should error")
	}
}

func TestParseBeta(t *testing.T) {
	ds := ldpmarginals.NewTaxiDataset(10, 1)
	beta, err := parseBeta(ds, "CC,Tip", 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ds.Mask("CC", "Tip")
	if beta != want {
		t.Errorf("beta = %b, want %b", beta, want)
	}
	// Numeric indices work too.
	beta, err = parseBeta(ds, "0, 7", 2)
	if err != nil || beta != want {
		t.Errorf("numeric beta = %b, %v", beta, err)
	}
	// Default: first k attributes.
	beta, err = parseBeta(ds, "", 3)
	if err != nil || beta != 0b111 {
		t.Errorf("default beta = %b, %v", beta, err)
	}
	if _, err := parseBeta(ds, "Nope", 2); err == nil {
		t.Error("unknown attribute should error")
	}
	if _, err := parseBeta(ds, "CC,Tip,Far", 2); err == nil {
		t.Error("too many attributes should error")
	}
	if _, err := parseBeta(ds, "99", 2); err == nil {
		t.Error("out-of-range index should error")
	}
	if _, err := parseBeta(ds, "", 9); err == nil {
		t.Error("k > d should error")
	}
}

func TestBetaNamesAndCellLabel(t *testing.T) {
	ds := ldpmarginals.NewTaxiDataset(10, 1)
	beta, _ := ds.Mask("CC", "Tip")
	names := betaNames(ds, beta)
	if len(names) != 2 || names[0] != "CC" || names[1] != "Tip" {
		t.Errorf("names = %v", names)
	}
	if got := cellLabel(names, 0b01); got != "CC=1,Tip=0" {
		t.Errorf("label = %q", got)
	}
	if got := cellLabel(names, 0b10); got != "CC=0,Tip=1" {
		t.Errorf("label = %q", got)
	}
	_ = math.Pi // keep math import for symmetry with main
}
