// Command ldpmarg runs one LDP marginal-release protocol over a synthetic
// dataset and reports the reconstructed marginal against the exact one.
//
// Usage:
//
//	ldpmarg -protocol InpHT -data taxi -n 262144 -k 2 -eps 1.1 -attrs CC,Tip
//	ldpmarg -protocol MargPS -data movielens -d 10 -n 100000 -k 2 -attrs 0,3
//	ldpmarg -protocol InpEM -data skewed -d 8 -n 65536 -eps 0.5 -attrs 0,1
//
// Protocols: InpRR InpPS InpHT MargRR MargPS MargHT InpEM InpOLH InpHTCMS.
// Datasets: taxi (d fixed at 8), movielens, skewed.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strconv"
	"strings"

	"ldpmarginals"
	"ldpmarginals/internal/bitops"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldpmarg: ")

	var (
		protocol = flag.String("protocol", "InpHT", "protocol name (InpRR, InpPS, InpHT, MargRR, MargPS, MargHT, InpEM, InpOLH, InpHTCMS)")
		data     = flag.String("data", "taxi", "dataset: taxi, movielens, skewed")
		d        = flag.Int("d", 8, "number of binary attributes (movielens/skewed)")
		n        = flag.Int("n", 1<<17, "population size")
		k        = flag.Int("k", 2, "largest marginal size supported")
		eps      = flag.Float64("eps", math.Log(3), "privacy budget epsilon")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		attrs    = flag.String("attrs", "", "comma-separated attribute names or indices of the marginal to print (default: first k attributes)")
	)
	flag.Parse()

	ds, err := makeDataset(*data, *n, *d, *seed)
	if err != nil {
		log.Fatal(err)
	}
	p, err := makeProtocol(*protocol, ldpmarginals.Config{D: ds.D, K: *k, Epsilon: *eps, OptimizedPRR: true})
	if err != nil {
		log.Fatal(err)
	}
	beta, err := parseBeta(ds, *attrs, *k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol=%s data=%s d=%d n=%d k=%d eps=%.4g\n", p.Name(), *data, ds.D, ds.N(), *k, *eps)
	fmt.Printf("communication: %d bits/user, %d bits total\n", p.CommunicationBits(), int64(p.CommunicationBits())*int64(ds.N()))

	run, err := ldpmarginals.Simulate(p, ds.Records, *seed, *workers)
	if err != nil {
		log.Fatal(err)
	}
	got, err := run.Agg.Estimate(beta)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := ldpmarginals.ExactMarginal(ds.Records, beta)
	if err != nil {
		log.Fatal(err)
	}
	tv, err := got.TVDistance(exact)
	if err != nil {
		log.Fatal(err)
	}

	names := betaNames(ds, beta)
	fmt.Printf("\nmarginal over {%s} (beta=%b)\n", strings.Join(names, ", "), beta)
	fmt.Printf("%-20s %12s %12s\n", "cell", "estimated", "exact")
	for c := range got.Cells {
		fmt.Printf("%-20s %12.5f %12.5f\n", cellLabel(names, c), got.Cells[c], exact.Cells[c])
	}
	fmt.Printf("\ntotal variation distance: %.5f\n", tv)
}

func makeDataset(kind string, n, d int, seed uint64) (*ldpmarginals.Dataset, error) {
	switch kind {
	case "taxi":
		return ldpmarginals.NewTaxiDataset(n, seed), nil
	case "movielens":
		return ldpmarginals.NewMovieLensDataset(n, d, seed)
	case "skewed":
		return ldpmarginals.NewSkewedDataset(n, d, 0.85, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q (want taxi, movielens, or skewed)", kind)
	}
}

func makeProtocol(name string, cfg ldpmarginals.Config) (ldpmarginals.Protocol, error) {
	for _, kind := range ldpmarginals.AllKinds() {
		if strings.EqualFold(kind.String(), name) {
			return ldpmarginals.NewProtocol(kind, cfg)
		}
	}
	switch strings.ToLower(name) {
	case "inpem":
		return ldpmarginals.NewEM(ldpmarginals.EMConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inpolh":
		return ldpmarginals.NewOLH(ldpmarginals.OLHConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inphtcms":
		return ldpmarginals.NewHCMS(ldpmarginals.HCMSConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

func parseBeta(ds *ldpmarginals.Dataset, attrs string, k int) (uint64, error) {
	if attrs == "" {
		if k > ds.D {
			return 0, fmt.Errorf("k=%d exceeds d=%d", k, ds.D)
		}
		return (uint64(1) << uint(k)) - 1, nil
	}
	var beta uint64
	for _, tok := range strings.Split(attrs, ",") {
		tok = strings.TrimSpace(tok)
		if idx := ds.AttributeIndex(tok); idx >= 0 {
			beta |= 1 << uint(idx)
			continue
		}
		i, err := strconv.Atoi(tok)
		if err != nil || i < 0 || i >= ds.D {
			return 0, fmt.Errorf("unknown attribute %q", tok)
		}
		beta |= 1 << uint(i)
	}
	if bitops.OnesCount(beta) > k {
		return 0, fmt.Errorf("marginal has %d attributes but -k is %d", bitops.OnesCount(beta), k)
	}
	return beta, nil
}

func betaNames(ds *ldpmarginals.Dataset, beta uint64) []string {
	var names []string
	for _, pos := range bitops.BitPositions(beta) {
		names = append(names, ds.Names[pos])
	}
	return names
}

func cellLabel(names []string, cell int) string {
	parts := make([]string, len(names))
	for i, name := range names {
		v := (cell >> uint(i)) & 1
		parts[i] = fmt.Sprintf("%s=%d", name, v)
	}
	return strings.Join(parts, ",")
}
