// Command ldpload drives synthetic report traffic at a running
// ldpserver and records throughput and latency percentiles, so ingest
// capacity can be measured (and guarded in CI) against the real HTTP
// stack instead of in-process microbenchmarks.
//
// Usage:
//
//	ldpload -addr http://127.0.0.1:8080 -protocol InpHT -d 8 -k 2 -eps 1.1 \
//	    -clients 8 -batch 256 -duration 10s -rate 0 -zipf 1.1 \
//	    -out BENCH_load.json
//
// Each of -clients workers posts pre-generated report batches
// (-batch reports per request; -batch 1 posts single frames to
// /report instead of /report/batch). Attribute values are drawn
// zipf-skewed with exponent -zipf over the 2^d input domain (0 =
// uniform), matching the skewed populations real deployments see.
//
// With -rate 0 the run is closed-loop: every worker issues its next
// request the moment the previous one completes, measuring the
// server's saturation throughput. A positive -rate targets that many
// reports per second across all workers in an open loop: requests are
// placed on a fixed schedule and each latency is measured from its
// *scheduled* start, so queueing delay from a server that falls
// behind is charged to the measurement instead of being silently
// dropped (the coordinated-omission trap).
//
// The JSON report (written to -out, or stdout with -out -) records
// throughput, latency percentiles (p50/p95/p99 interpolated from a
// high-resolution histogram), and a status-class breakdown; transport
// failures and non-2xx replies never abort the run — they are what an
// overload experiment is trying to count.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldpmarginals"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/metrics"
	"ldpmarginals/internal/rng"
)

// LoadReport is the JSON shape of a run's results, consumed by
// cmd/benchguard's load mode.
type LoadReport struct {
	Recorded    string  `json:"recorded"`
	Go          string  `json:"go"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Command     string  `json:"command"`
	Protocol    string  `json:"protocol"`
	Mode        string  `json:"mode"` // "closed" or "open"
	Clients     int     `json:"clients"`
	BatchSize   int     `json:"batch_reports"`
	Zipf        float64 `json:"zipf"`
	Duration    float64 `json:"duration_seconds"`
	Requests    uint64  `json:"requests"`
	Reports     uint64  `json:"reports"`
	ReportsSec  float64 `json:"reports_per_sec"`
	RequestsSec float64 `json:"requests_per_sec"`

	Latency LatencySummary `json:"latency_seconds"`
	Status  StatusCounts   `json:"status"`

	Notes string `json:"notes,omitempty"`
}

// LatencySummary is the run's latency distribution in seconds. Open-loop
// latencies are measured from the scheduled send time.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// StatusCounts breaks replies down by class; 429 (shed or over-budget)
// is split out of 4xx because it is the signal overload experiments
// look for.
type StatusCounts struct {
	OK2xx       uint64 `json:"2xx"`
	Shed429     uint64 `json:"429"`
	Other4xx    uint64 `json:"4xx"`
	Err5xx      uint64 `json:"5xx"`
	Transport   uint64 `json:"errors"`
	SampleError string `json:"sample_error,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldpload: ")

	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "server base URL")
		protocol = flag.String("protocol", "InpHT", "protocol name (must match the server)")
		d        = flag.Int("d", 8, "number of binary attributes")
		k        = flag.Int("k", 2, "largest marginal size supported")
		eps      = flag.Float64("eps", math.Log(3), "privacy budget epsilon")
		clients  = flag.Int("clients", 8, "concurrent workers")
		batch    = flag.Int("batch", 256, "reports per request (1 = single-frame POST /report)")
		duration = flag.Duration("duration", 10*time.Second, "measured run length")
		warmup   = flag.Duration("warmup", 1*time.Second, "unmeasured warmup before the run")
		rate     = flag.Float64("rate", 0, "target reports/s across all workers (0 = closed loop)")
		zipf     = flag.Float64("zipf", 1.1, "zipf exponent for attribute values, > 1 (0 = uniform)")
		pregen   = flag.Int("pregen", 64, "distinct request bodies generated up front")
		token    = flag.String("token", "", "X-LDP-Token header value (required by servers with -round-eps)")
		seed     = flag.Int64("seed", 1, "value-generation seed")
		out      = flag.String("out", "-", "result JSON path (- = stdout)")
	)
	flag.Parse()
	if *clients < 1 || *batch < 1 || *pregen < 1 {
		log.Fatal("-clients, -batch, and -pregen must be positive")
	}
	if *zipf != 0 && *zipf <= 1 {
		log.Fatal("-zipf must be > 1 (or 0 for uniform values)")
	}

	cfg := ldpmarginals.Config{D: *d, K: *k, Epsilon: *eps, OptimizedPRR: true}
	p, err := makeProtocol(*protocol, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bodies, err := genBodies(p, *batch, *pregen, *zipf, *seed)
	if err != nil {
		log.Fatal(err)
	}
	path := *addr + "/report/batch"
	if *batch == 1 {
		path = *addr + "/report"
	}

	transport := &http.Transport{MaxIdleConnsPerHost: *clients, MaxConnsPerHost: 0}
	client := &http.Client{Transport: transport, Timeout: 2 * time.Minute}

	// High-resolution latency histogram: 120µs..~80s in 5%/bucket steps
	// keeps interpolation error on the reported percentiles under the
	// bucket ratio everywhere in the range a load test can produce.
	lat := metrics.NewHistogram(metrics.ExpBuckets(0.00012, 1.05, 280))
	var st StatusCounts
	var maxLatBits atomic.Uint64
	var sampleErr atomic.Pointer[string]

	shoot := func(body []byte, started time.Time) {
		req, err := http.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		if *token != "" {
			req.Header.Set("X-LDP-Token", *token)
		}
		resp, err := client.Do(req)
		el := time.Since(started).Seconds()
		lat.Observe(el)
		for {
			old := maxLatBits.Load()
			if el <= math.Float64frombits(old) || maxLatBits.CompareAndSwap(old, math.Float64bits(el)) {
				break
			}
		}
		if err != nil {
			atomic.AddUint64(&st.Transport, 1)
			msg := err.Error()
			sampleErr.CompareAndSwap(nil, &msg)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode < 300:
			atomic.AddUint64(&st.OK2xx, 1)
		case resp.StatusCode == http.StatusTooManyRequests:
			atomic.AddUint64(&st.Shed429, 1)
		case resp.StatusCode < 500:
			atomic.AddUint64(&st.Other4xx, 1)
			msg := fmt.Sprintf("status %d", resp.StatusCode)
			sampleErr.CompareAndSwap(nil, &msg)
		default:
			atomic.AddUint64(&st.Err5xx, 1)
			msg := fmt.Sprintf("status %d", resp.StatusCode)
			sampleErr.CompareAndSwap(nil, &msg)
		}
	}

	// Warmup primes connections and the server's first epoch outside the
	// measurement.
	if *warmup > 0 {
		wend := time.Now().Add(*warmup)
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; time.Now().Before(wend); i++ {
					shoot(bodies[i%len(bodies)], time.Now())
				}
			}(c)
		}
		wg.Wait()
		lat.Reset()
		st = StatusCounts{}
		maxLatBits.Store(0)
		sampleErr.Store(nil)
	}

	mode := "closed"
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	if *rate > 0 {
		mode = "open"
		// The schedule hands out send slots at a fixed cadence; workers
		// sleep until their slot and charge any backlog to the latency.
		interval := time.Duration(float64(*batch) / *rate * float64(time.Second))
		if interval <= 0 {
			log.Fatalf("-rate %g with -batch %d schedules requests faster than 1ns apart", *rate, *batch)
		}
		var slot atomic.Int64
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; ; i++ {
					due := start.Add(time.Duration(slot.Add(1)-1) * interval)
					if due.After(deadline) {
						return
					}
					time.Sleep(time.Until(due))
					shoot(bodies[i%len(bodies)], due)
				}
			}(c)
		}
	} else {
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; time.Now().Before(deadline); i++ {
					shoot(bodies[i%len(bodies)], time.Now())
				}
			}(c)
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	transport.CloseIdleConnections()

	requests := lat.Count()
	reports := requests * uint64(*batch)
	if msg := sampleErr.Load(); msg != nil {
		st.SampleError = *msg
	}
	rep := LoadReport{
		Recorded:   time.Now().Format("2006-01-02"),
		Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Command: fmt.Sprintf("ldpload -addr %s -protocol %s -d %d -k %d -eps %.4g -clients %d -batch %d -duration %s -rate %g -zipf %g",
			*addr, *protocol, *d, *k, *eps, *clients, *batch, *duration, *rate, *zipf),
		Protocol:    fmt.Sprintf("%s d=%d k=%d eps=%.4g", p.Name(), *d, *k, *eps),
		Mode:        mode,
		Clients:     *clients,
		BatchSize:   *batch,
		Zipf:        *zipf,
		Duration:    elapsed,
		Requests:    requests,
		Reports:     reports,
		ReportsSec:  float64(reports) / elapsed,
		RequestsSec: float64(requests) / elapsed,
		Latency: LatencySummary{
			P50:  lat.Quantile(0.50),
			P95:  lat.Quantile(0.95),
			P99:  lat.Quantile(0.99),
			Mean: lat.Sum() / math.Max(float64(requests), 1),
			Max:  math.Float64frombits(maxLatBits.Load()),
		},
		Status: st,
	}
	if mode == "open" {
		rep.Notes = "open-loop latencies are measured from the scheduled send time (coordinated-omission aware)"
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s: %.0f reports/s, p50 %.1fms p99 %.1fms, %d requests (%d shed, %d errors)",
			*out, rep.ReportsSec, rep.Latency.P50*1e3, rep.Latency.P99*1e3, requests, st.Shed429, st.Err5xx+st.Transport)
	}
}

// genBodies pre-marshals n distinct request bodies of batch reports
// each, with input values drawn zipf-skewed (exponent s; 0 = uniform)
// over the 2^d attribute domain. Generation happens before the clock
// starts so the measured path is pure HTTP + server work.
func genBodies(p ldpmarginals.Protocol, batch, n int, s float64, seed int64) ([][]byte, error) {
	d := p.Config().D
	domain := uint64(1) << d
	src := rand.New(rand.NewSource(seed))
	var nextVal func() uint64
	if s > 1 {
		z := rand.NewZipf(src, s, 1, domain-1)
		nextVal = z.Uint64
	} else {
		nextVal = func() uint64 { return src.Uint64() & (domain - 1) }
	}
	cl := p.NewClient()
	r := rng.New(uint64(seed))
	bodies := make([][]byte, n)
	for i := range bodies {
		if batch == 1 {
			rep, err := cl.Perturb(nextVal(), r)
			if err != nil {
				return nil, err
			}
			frame, err := encoding.Marshal(p.Name(), rep)
			if err != nil {
				return nil, err
			}
			bodies[i] = frame
			continue
		}
		reps := make([]ldpmarginals.Report, batch)
		for j := range reps {
			rep, err := cl.Perturb(nextVal(), r)
			if err != nil {
				return nil, err
			}
			reps[j] = rep
		}
		body, err := encoding.MarshalBatch(p.Name(), reps)
		if err != nil {
			return nil, err
		}
		bodies[i] = body
	}
	return bodies, nil
}

// makeProtocol mirrors ldpserver's protocol selection so a load run is
// wire-compatible with the server it targets.
func makeProtocol(name string, cfg ldpmarginals.Config) (ldpmarginals.Protocol, error) {
	for _, kind := range ldpmarginals.AllKinds() {
		if strings.EqualFold(kind.String(), name) {
			return ldpmarginals.NewProtocol(kind, cfg)
		}
	}
	switch strings.ToLower(name) {
	case "inpem":
		return ldpmarginals.NewEM(ldpmarginals.EMConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inpolh":
		return ldpmarginals.NewOLH(ldpmarginals.OLHConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	case "inphtcms":
		return ldpmarginals.NewHCMS(ldpmarginals.HCMSConfig{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon})
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}
