// Command experiments regenerates the tables and figures of the paper's
// evaluation from this repository's implementations.
//
// Usage:
//
//	experiments -exp fig4                # one experiment at full scale
//	experiments -exp all -scale 0.1      # everything, 10% population sizes
//	experiments -exp table3 -out results # also write text files
//
// Experiment ids: table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
// ablation-prr ablation-htnorm.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"ldpmarginals/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		scale   = flag.Float64("scale", 1, "population scale factor (1 = paper sizes)")
		seed    = flag.Uint64("seed", 20180610, "random seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		repeats = flag.Int("repeats", 0, "repeat count override (0 = per-experiment default)")
		maxMarg = flag.Int("max-marginals", 0, "cap on marginals averaged per point (0 = default)")
		out     = flag.String("out", "", "directory to write per-experiment text files (optional)")
	)
	flag.Parse()

	opts := experiments.Options{
		Scale:        *scale,
		Seed:         *seed,
		Workers:      *workers,
		Repeats:      *repeats,
		MaxMarginals: *maxMarg,
	}
	reg := experiments.Registry()

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		if _, ok := reg[*exp]; !ok {
			log.Fatalf("unknown experiment %q; available: %v", *exp, experiments.IDs())
		}
		ids = []string{*exp}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range ids {
		start := time.Now()
		res, err := reg[id](opts)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		text := res.Render()
		fmt.Println(text)
		fmt.Printf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			path := filepath.Join(*out, id+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				log.Fatalf("writing %s: %v", path, err)
			}
		}
	}
}
