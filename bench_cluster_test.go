package ldpmarginals_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ldpmarginals"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/server"
	"ldpmarginals/internal/wire"
)

// seedEdge ingests clusterStateN reports into a live edge over
// /report/batch, so pull benchmarks move a realistic state.
func seedEdge(b *testing.B, url string, p ldpmarginals.Protocol) {
	b.Helper()
	client := p.NewClient()
	r := rng.New(77)
	reps := make([]ldpmarginals.Report, 1<<13)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		b.Fatal(err)
	}
	for n := 0; n < clusterStateN; n += len(reps) {
		resp, err := http.Post(url+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("seeding edge: status %d", resp.StatusCode)
		}
	}
}

// Cluster state-exchange benchmarks: the cost of moving an edge's
// accumulated state to a coordinator, stage by stage, against the
// baseline of ingesting the same reports locally. Every stage reports a
// reports/s metric amortized over the state's report count — the figure
// of merit is how many edge reports one pull cycle "moves" per second,
// which is what bounds a coordinator's sustainable fleet size at a
// given pull interval. Recorded in BENCH_cluster.json.

// clusterStateN is the per-edge state size the exchange is amortized
// over: pulls move whole counter states, so their per-report cost
// shrinks as edges batch more reports between pulls.
const clusterStateN = 1 << 17

func clusterBenchSetup(b *testing.B) (ldpmarginals.Protocol, *ldpmarginals.ShardedAggregator, []byte) {
	b.Helper()
	cfg := ldpmarginals.Config{D: 8, K: 2, Epsilon: 1.0986, OptimizedPRR: true}
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(77)
	reps := make([]ldpmarginals.Report, 1<<13)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	agg := ldpmarginals.NewShardedAggregator(p, 0)
	for n := 0; n < clusterStateN; n += len(reps) {
		if err := agg.ConsumeBatch(reps); err != nil {
			b.Fatal(err)
		}
	}
	blob, err := agg.MarshalState()
	if err != nil {
		b.Fatal(err)
	}
	return p, agg, blob
}

// BenchmarkClusterStateExchange measures each stage of one pull cycle.
func BenchmarkClusterStateExchange(b *testing.B) {
	p, agg, blob := clusterBenchSetup(b)

	// marshal: what an edge pays per GET /state (snapshot + canonical
	// encode).
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := agg.MarshalState(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*clusterStateN/b.Elapsed().Seconds(), "reports/s")
	})

	// decode+validate: what a coordinator pays to check a pulled frame
	// before accepting it.
	b.Run("decode+validate", func(b *testing.B) {
		frame, err := wire.EncodeStateFrame(wire.StateFrame{NodeID: "edge-1", Version: 1, N: agg.N(), State: blob})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sf, err := wire.DecodeStateFrame(frame)
			if err != nil {
				b.Fatal(err)
			}
			probe := p.NewAggregator()
			if err := probe.UnmarshalState(sf.State); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*clusterStateN/b.Elapsed().Seconds(), "reports/s")
	})

	// merge: folding two edge blobs into the fleet snapshot.
	b.Run("merge", func(b *testing.B) {
		coord := ldpmarginals.NewShardedAggregator(p, 0)
		blobs := [][]byte{blob, blob}
		for i := 0; i < b.N; i++ {
			if _, err := coord.SnapshotWith(blobs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*2*clusterStateN/b.Elapsed().Seconds(), "reports/s")
	})

	// pull-http: the full edge-to-coordinator cycle over real HTTP —
	// GET /state off a live edge server, decode, validate, merge.
	b.Run("pull-http", func(b *testing.B) {
		edge, err := server.NewWithOptions(p, server.Options{Role: server.RoleEdge, NodeID: "bench-edge"})
		if err != nil {
			b.Fatal(err)
		}
		defer edge.Close()
		ts := httptest.NewServer(edge.Handler())
		defer ts.Close()
		seedEdge(b, ts.URL, p)
		coord := ldpmarginals.NewShardedAggregator(p, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(ts.URL + "/state")
			if err != nil {
				b.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			sf, err := wire.DecodeStateFrame(body)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := coord.SnapshotWith([][]byte{sf.State}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*clusterStateN/b.Elapsed().Seconds(), "reports/s")
	})

	// local-ingest: the baseline — the same state accumulated by local
	// batch ingestion instead of a pull (BenchmarkConsumeBatchParallel
	// is the steady-state version of this).
	b.Run("local-ingest", func(b *testing.B) {
		client := p.NewClient()
		r := rng.New(78)
		reps := make([]ldpmarginals.Report, 1<<13)
		for i := range reps {
			rep, err := client.Perturb(uint64(i%256), r)
			if err != nil {
				b.Fatal(err)
			}
			reps[i] = rep
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			local := ldpmarginals.NewShardedAggregator(p, 0)
			for n := 0; n < clusterStateN; n += len(reps) {
				if err := local.ConsumeBatch(reps); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*clusterStateN/b.Elapsed().Seconds(), "reports/s")
	})
}
