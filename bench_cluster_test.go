package ldpmarginals_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"testing"

	"ldpmarginals"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/server"
	"ldpmarginals/internal/wire"
)

// seedEdge ingests clusterStateN reports into a live edge over
// /report/batch, so pull benchmarks move a realistic state.
func seedEdge(b *testing.B, url string, p ldpmarginals.Protocol) {
	b.Helper()
	client := p.NewClient()
	r := rng.New(77)
	reps := make([]ldpmarginals.Report, 1<<13)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		b.Fatal(err)
	}
	for n := 0; n < clusterStateN; n += len(reps) {
		resp, err := http.Post(url+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("seeding edge: status %d", resp.StatusCode)
		}
	}
}

// Cluster state-exchange benchmarks: the cost of moving an edge's
// accumulated state to a coordinator, stage by stage, against the
// baseline of ingesting the same reports locally. Every stage reports a
// reports/s metric amortized over the state's report count — the figure
// of merit is how many edge reports one pull cycle "moves" per second,
// which is what bounds a coordinator's sustainable fleet size at a
// given pull interval. Recorded in BENCH_cluster.json.

// clusterStateN is the per-edge state size the exchange is amortized
// over: pulls move whole counter states, so their per-report cost
// shrinks as edges batch more reports between pulls.
const clusterStateN = 1 << 17

func clusterBenchSetup(b *testing.B) (ldpmarginals.Protocol, *ldpmarginals.ShardedAggregator, []byte) {
	b.Helper()
	cfg := ldpmarginals.Config{D: 8, K: 2, Epsilon: 1.0986, OptimizedPRR: true}
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(77)
	reps := make([]ldpmarginals.Report, 1<<13)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	agg := ldpmarginals.NewShardedAggregator(p, 0)
	for n := 0; n < clusterStateN; n += len(reps) {
		if err := agg.ConsumeBatch(reps); err != nil {
			b.Fatal(err)
		}
	}
	blob, err := agg.MarshalState()
	if err != nil {
		b.Fatal(err)
	}
	return p, agg, blob
}

// BenchmarkClusterStateExchange measures each stage of one pull cycle.
func BenchmarkClusterStateExchange(b *testing.B) {
	p, agg, blob := clusterBenchSetup(b)

	// marshal: what an edge pays per GET /state (snapshot + canonical
	// encode).
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := agg.MarshalState(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*clusterStateN/b.Elapsed().Seconds(), "reports/s")
	})

	// decode+validate: what a coordinator pays to check a pulled frame
	// before accepting it.
	b.Run("decode+validate", func(b *testing.B) {
		frame, err := wire.EncodeStateFrame(wire.StateFrame{NodeID: "edge-1", Version: 1, N: agg.N(), State: blob})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sf, err := wire.DecodeStateFrame(frame)
			if err != nil {
				b.Fatal(err)
			}
			probe := p.NewAggregator()
			if err := probe.UnmarshalState(sf.State); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*clusterStateN/b.Elapsed().Seconds(), "reports/s")
	})

	// merge: folding two edge blobs into the fleet snapshot.
	b.Run("merge", func(b *testing.B) {
		coord := ldpmarginals.NewShardedAggregator(p, 0)
		blobs := [][]byte{blob, blob}
		for i := 0; i < b.N; i++ {
			if _, err := coord.SnapshotWith(blobs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*2*clusterStateN/b.Elapsed().Seconds(), "reports/s")
	})

	// pull-http: the full edge-to-coordinator cycle over real HTTP —
	// GET /state off a live edge server, decode, validate, merge.
	b.Run("pull-http", func(b *testing.B) {
		edge, err := server.NewWithOptions(p, server.Options{Role: server.RoleEdge, NodeID: "bench-edge"})
		if err != nil {
			b.Fatal(err)
		}
		defer edge.Close()
		ts := httptest.NewServer(edge.Handler())
		defer ts.Close()
		seedEdge(b, ts.URL, p)
		coord := ldpmarginals.NewShardedAggregator(p, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(ts.URL + "/state")
			if err != nil {
				b.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			sf, err := wire.DecodeStateFrame(body)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := coord.SnapshotWith([][]byte{sf.State}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*clusterStateN/b.Elapsed().Seconds(), "reports/s")
	})

	// local-ingest: the baseline — the same state accumulated by local
	// batch ingestion instead of a pull (BenchmarkConsumeBatchParallel
	// is the steady-state version of this).
	b.Run("local-ingest", func(b *testing.B) {
		client := p.NewClient()
		r := rng.New(78)
		reps := make([]ldpmarginals.Report, 1<<13)
		for i := range reps {
			rep, err := client.Perturb(uint64(i%256), r)
			if err != nil {
				b.Fatal(err)
			}
			reps[i] = rep
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			local := ldpmarginals.NewShardedAggregator(p, 0)
			for n := 0; n < clusterStateN; n += len(reps) {
				if err := local.ConsumeBatch(reps); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*clusterStateN/b.Elapsed().Seconds(), "reports/s")
	})
}

// Delta-exchange benchmarks: bytes on the wire per pull cycle when only
// a fraction of an edge's shards moved between pulls. The deployment is
// the delta path's motivating worst case for full transfers — InpPS at
// d=16 materializes 2^16 counters per shard, so a 100-shard edge's full
// state is large even though a pull interval's worth of reports touches
// only the few shards the batches round-robined onto. The figure of
// merit is bytes/op: what one coordinator pull moves over the network.
// Recorded in BENCH_cluster.json.

// deltaBenchShards spreads the edge state over 100 shards so "1% delta"
// is literally one moved shard (ConsumeBatch locks exactly one
// round-robin shard per call).
const deltaBenchShards = 100

// deltaEdge builds a live InpPS d=16 edge with deltaBenchShards shards
// seeded with clusterStateN reports spread over every shard, and returns
// its base URL plus a mutate function that moves exactly k shards.
func deltaEdge(b *testing.B) (url string, mutate func(k int)) {
	b.Helper()
	cfg := ldpmarginals.Config{D: 16, K: 2, Epsilon: 1.0986, OptimizedPRR: true}
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpPS, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// One ingest worker keeps each POSTed batch a single ConsumeBatch
	// call — one round-robin shard per batch, so the moved-shard
	// fraction is exact.
	edge, err := server.NewWithOptions(p, server.Options{
		Role: server.RoleEdge, NodeID: "bench-edge",
		Shards: deltaBenchShards, IngestWorkers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = edge.Close() })
	ts := httptest.NewServer(edge.Handler())
	b.Cleanup(ts.Close)

	client := p.NewClient()
	r := rng.New(79)
	perturbBatch := func(n int) []byte {
		reps := make([]ldpmarginals.Report, n)
		for i := range reps {
			rep, err := client.Perturb(r.Uint64()&0xffff, r)
			if err != nil {
				b.Fatal(err)
			}
			reps[i] = rep
		}
		body, err := encoding.MarshalBatch(p.Name(), reps)
		if err != nil {
			b.Fatal(err)
		}
		return body
	}
	post := func(body []byte) {
		resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("seeding edge: status %d", resp.StatusCode)
		}
	}
	// Seed every shard: 2x shard-count batches round-robin over all of
	// them.
	seedBatch := perturbBatch(clusterStateN / (2 * deltaBenchShards))
	for i := 0; i < 2*deltaBenchShards; i++ {
		post(seedBatch)
	}
	moveBatch := perturbBatch(64)
	return ts.URL, func(k int) {
		for i := 0; i < k; i++ {
			post(moveBatch)
		}
	}
}

// deltaPull GETs /state with the delta handshake and returns the body
// and the reply's ETag (the base to acknowledge next time).
func deltaPull(b *testing.B, url, base string, components bool) (int, []byte, string) {
	b.Helper()
	target := url + "/state"
	if components {
		target += "?components=1"
	}
	req, err := http.NewRequest(http.MethodGet, target, nil)
	if err != nil {
		b.Fatal(err)
	}
	if base != "" {
		req.Header.Set("If-None-Match", base)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		etag = base
	}
	return resp.StatusCode, body, etag
}

// BenchmarkClusterDeltaExchange measures bytes on the wire per pull at
// different churn fractions: the legacy full frame, the componentized
// full frame, deltas at 1%/10%/100% moved shards, and the 304 reply of
// an unchanged peer.
func BenchmarkClusterDeltaExchange(b *testing.B) {
	url, mutate := deltaEdge(b)

	countBytes := func(b *testing.B, run func() int) {
		b.Helper()
		total := 0
		for i := 0; i < b.N; i++ {
			total += run()
		}
		b.ReportMetric(float64(total)/float64(b.N), "bytes/op")
	}

	b.Run("full-v1", func(b *testing.B) {
		countBytes(b, func() int {
			status, body, _ := deltaPull(b, url, "", false)
			if status != http.StatusOK {
				b.Fatalf("status %d", status)
			}
			if _, err := wire.DecodeStateFrame(body); err != nil {
				b.Fatal(err)
			}
			return len(body)
		})
	})

	b.Run("full-components", func(b *testing.B) {
		countBytes(b, func() int {
			status, body, _ := deltaPull(b, url, "", true)
			if status != http.StatusOK {
				b.Fatalf("status %d", status)
			}
			if _, err := wire.DecodeComponentFrame(body, 1<<30); err != nil {
				b.Fatal(err)
			}
			return len(body)
		})
	})

	deltaAt := func(moved int) func(b *testing.B) {
		return func(b *testing.B) {
			_, _, base := deltaPull(b, url, "", true)
			b.ResetTimer()
			countBytes(b, func() int {
				mutate(moved)
				status, body, etag := deltaPull(b, url, base, true)
				if status != http.StatusOK {
					b.Fatalf("status %d", status)
				}
				cf, err := wire.DecodeComponentFrame(body, 1<<30)
				if err != nil {
					b.Fatal(err)
				}
				if !cf.Delta {
					b.Fatal("moved-shard pull did not negotiate a delta frame")
				}
				base = etag
				return len(body)
			})
		}
	}
	b.Run("delta-1pct", deltaAt(deltaBenchShards/100))
	b.Run("delta-10pct", deltaAt(deltaBenchShards/10))
	b.Run("delta-100pct", deltaAt(deltaBenchShards))

	b.Run("unchanged-304", func(b *testing.B) {
		_, _, base := deltaPull(b, url, "", true)
		b.ResetTimer()
		countBytes(b, func() int {
			req, err := http.NewRequest(http.MethodGet, url+"/state?components=1", nil)
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("If-None-Match", base)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			dump, err := httputil.DumpResponse(resp, true)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusNotModified {
				b.Fatalf("status %d, want 304", resp.StatusCode)
			}
			// The whole reply, headers included: an unchanged peer costs
			// one header block, no state bytes.
			return len(dump)
		})
	})
}
