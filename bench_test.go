// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per artifact, plus protocol microbenchmarks. The
// experiment benches run reduced-scale populations (the harness exposes a
// scale knob; cmd/experiments reproduces full size) and report the key
// accuracy metric of the artifact via b.ReportMetric so regressions in
// the *shape* of the result are visible, not just in runtime.
package ldpmarginals_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"ldpmarginals"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/experiments"
	"ldpmarginals/internal/rng"
)

// benchOpts is the reduced-scale configuration shared by the experiment
// benchmarks.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.05, Seed: 20180610, Workers: 0, MaxMarginals: 10}
}

// lastY returns the final point of the named series, or -1.
func lastY(res *experiments.Result, name string) float64 {
	for _, s := range res.Series {
		if s.Name == name && len(s.Y) > 0 {
			return s.Y[len(s.Y)-1]
		}
	}
	return -1
}

func BenchmarkTable2_CommunicationAndError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_EMFailureRate(b *testing.B) {
	opts := benchOpts()
	opts.Scale = 0.02
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_TaxiCorrelationHeatmap(b *testing.B) {
	opts := benchOpts()
	opts.Scale = 0.01
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_VaryN(b *testing.B) {
	var tv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		tv = lastY(res, "InpHT/d=8,k=2")
	}
	b.ReportMetric(tv, "InpHT-TV(d=8,k=2,maxN)")
}

func BenchmarkFig5_VaryK(b *testing.B) {
	var tv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		tv = lastY(res, "InpHT")
	}
	b.ReportMetric(tv, "InpHT-TV(k=7)")
}

func BenchmarkFig6_LargeD_EM(b *testing.B) {
	var tv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		tv = lastY(res, "InpEM/d=16")
	}
	b.ReportMetric(tv, "InpEM-TV(d=16,eps=1.4)")
}

func BenchmarkFig7_ChiSquare(b *testing.B) {
	opts := benchOpts()
	opts.Scale = 0.1
	var stat float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(opts)
		if err != nil {
			b.Fatal(err)
		}
		stat = lastY(res, "InpHT")
	}
	b.ReportMetric(stat, "InpHT-chi2(last-pair)")
}

func BenchmarkFig8_ChowLiu(b *testing.B) {
	opts := benchOpts()
	opts.Scale = 0.1
	opts.Repeats = 1
	var mi float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(opts)
		if err != nil {
			b.Fatal(err)
		}
		mi = lastY(res, "InpHT")
	}
	b.ReportMetric(mi, "InpHT-treeMI(eps=1.4)")
}

func BenchmarkFig9_VaryEps(b *testing.B) {
	var tv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		tv = lastY(res, "InpHT/d=8,k=2")
	}
	b.ReportMetric(tv, "InpHT-TV(d=8,k=2,eps=1.4)")
}

func BenchmarkFig10_FrequencyOracles(b *testing.B) {
	var tv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		tv = lastY(res, "InpHTCMS")
	}
	b.ReportMetric(tv, "InpHTCMS-TV(d=16)")
}

func BenchmarkAblationPRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPRR(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHTNormalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHTNormalization(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// Microbenchmarks: per-user client cost and per-marginal estimate cost of
// each protocol at the paper's default d=8, k=2, eps=ln3.
func benchProtocols(b *testing.B) []ldpmarginals.Protocol {
	b.Helper()
	cfg := ldpmarginals.Config{D: 8, K: 2, Epsilon: 1.0986, OptimizedPRR: true}
	var ps []ldpmarginals.Protocol
	for _, kind := range ldpmarginals.AllKinds() {
		p, err := ldpmarginals.NewProtocol(kind, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

func BenchmarkClientPerturb(b *testing.B) {
	for _, p := range benchProtocols(b) {
		b.Run(p.Name(), func(b *testing.B) {
			client := p.NewClient()
			r := rng.New(1)
			for i := 0; i < b.N; i++ {
				if _, err := client.Perturb(uint64(i)&255, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAggregatorEstimate(b *testing.B) {
	ds := ldpmarginals.NewTaxiDataset(20000, 1)
	for _, p := range benchProtocols(b) {
		b.Run(p.Name(), func(b *testing.B) {
			run, err := core.Run(p, ds.Records, 1, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := run.Agg.Estimate(0b11); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ingestion benchmarks: the seed server architecture (one aggregator
// behind one mutex, one report per operation) against the sharded batch
// pipeline (core.ShardedAggregator fed ConsumeBatch). Both report a
// reports/s metric so the throughput ratio is directly readable; on a
// machine with >= 4 cores the batch pipeline is expected to exceed 2x.

// ingestBatchSize matches the server's per-lock chunk size.
const ingestBatchSize = 1024

func ingestSetup(b *testing.B) (ldpmarginals.Protocol, []ldpmarginals.Report) {
	b.Helper()
	cfg := ldpmarginals.Config{D: 8, K: 2, Epsilon: 1.0986, OptimizedPRR: true}
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(77)
	reps := make([]ldpmarginals.Report, 1<<14)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	return p, reps
}

// BenchmarkConsumeSingle is the pre-sharding baseline: every writer
// contends on one mutex and consumes one report per acquisition.
func BenchmarkConsumeSingle(b *testing.B) {
	p, reps := ingestSetup(b)
	agg := p.NewAggregator()
	var mu sync.Mutex
	var firstErr atomic.Pointer[error]
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rep := reps[i%len(reps)]
			i++
			mu.Lock()
			err := agg.Consume(rep)
			mu.Unlock()
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
		}
	})
	b.StopTimer()
	if errp := firstErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/s")
}

// BenchmarkConsumeBatchParallel is the sharded pipeline: concurrent
// writers feed ConsumeBatch chunks into round-robin shards, one lock
// acquisition per chunk. One benchmark operation ingests a whole chunk,
// so compare via the reports/s metric, not ns/op.
func BenchmarkConsumeBatchParallel(b *testing.B) {
	p, reps := ingestSetup(b)
	sh := ldpmarginals.NewShardedAggregator(p, 0)
	var firstErr atomic.Pointer[error]
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		lo := 0
		for pb.Next() {
			if lo+ingestBatchSize > len(reps) {
				lo = 0
			}
			batch := reps[lo : lo+ingestBatchSize]
			lo += ingestBatchSize
			if err := sh.ConsumeBatch(batch); err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
		}
	})
	b.StopTimer()
	if errp := firstErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
	b.ReportMetric(float64(b.N)*ingestBatchSize/b.Elapsed().Seconds(), "reports/s")
}

// Query-serving benchmarks: the pre-view read path (every query cuts a
// snapshot of the sharded aggregator and reconstructs the requested
// marginal) against the materialized view (reconstruct once per epoch,
// serve every query from the cached tables). Both report a queries/s
// metric; the ratio is recorded in BENCH_query.json and is the point of
// the epoch architecture — at d=8, k=2 the cached path is expected to
// exceed 10x on any hardware, and the gap widens with d.

// querySetup builds a d=16 InpHT deployment — the wide-schema regime
// the read-side architecture exists for, where every per-request
// snapshot merges hundreds of coefficient counters per shard.
func querySetup(b *testing.B) (ldpmarginals.Protocol, *ldpmarginals.ShardedAggregator) {
	b.Helper()
	cfg := ldpmarginals.Config{D: 16, K: 2, Epsilon: 1.0986, OptimizedPRR: true}
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(77)
	reps := make([]ldpmarginals.Report, 1<<14)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%65536), r)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	sh := ldpmarginals.NewShardedAggregator(p, 0)
	if err := sh.ConsumeBatch(reps); err != nil {
		b.Fatal(err)
	}
	return p, sh
}

// BenchmarkQueryUncached is the per-request-reconstruction baseline:
// each query merges all shards into a private snapshot and reconstructs
// the marginal from it (the pre-epoch /marginal implementation).
func BenchmarkQueryUncached(b *testing.B) {
	_, sh := querySetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := sh.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snap.Estimate(0b11); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkQueryCached serves the same marginal from a materialized
// view built once for the epoch.
func BenchmarkQueryCached(b *testing.B) {
	p, sh := querySetup(b)
	snap, err := sh.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	v, err := ldpmarginals.BuildView(snap, p, ldpmarginals.ViewOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Marginal(0b11); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkQueryCachedParallel hammers one immutable view from every
// core at once — the lock-free read path has no shared mutable state,
// so throughput should scale near-linearly with readers.
func BenchmarkQueryCachedParallel(b *testing.B) {
	p, sh := querySetup(b)
	snap, err := sh.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	v, err := ldpmarginals.BuildView(snap, p, ldpmarginals.ViewOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var firstErr atomic.Pointer[error]
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := v.Marginal(0b11); err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
		}
	})
	b.StopTimer()
	if errp := firstErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkSimulatePopulation(b *testing.B) {
	ds := ldpmarginals.NewTaxiDataset(1<<15, 2)
	for _, p := range benchProtocols(b) {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(p, ds.Records, uint64(i), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Durable-ingestion benchmarks: the sharded batch pipeline with the
// write-ahead log at each fsync policy, against the WAL-off (memory
// only) baseline. One benchmark operation ingests one chunk through
// store.Ingest exactly as the server's /report/batch path does —
// consume into a round-robin shard, then append the chunk's frames to
// the log before acking. Compare via the reports/s metric; the ratios
// are recorded in BENCH_persist.json.

// durableSetup pre-marshals the report stream into per-chunk batch
// bodies (the /report/batch wire layout) so the benchmark measures
// ingestion, not client-side encoding — exactly the bytes a server
// handler would hand the store.
func durableSetup(b *testing.B) (ldpmarginals.Protocol, [][]ldpmarginals.Report, [][]byte) {
	b.Helper()
	p, reps := ingestSetup(b)
	var chunks [][]ldpmarginals.Report
	var batches [][]byte
	for lo := 0; lo+ingestBatchSize <= len(reps); lo += ingestBatchSize {
		chunk := reps[lo : lo+ingestBatchSize]
		body, err := encoding.MarshalBatch(p.Name(), chunk)
		if err != nil {
			b.Fatal(err)
		}
		chunks = append(chunks, chunk)
		batches = append(batches, body)
	}
	return p, chunks, batches
}

func benchDurableIngest(b *testing.B, open func(b *testing.B, p ldpmarginals.Protocol) *ldpmarginals.ReportStore) {
	p, chunks, batches := durableSetup(b)
	sh := ldpmarginals.NewShardedAggregator(p, 0)
	var st *ldpmarginals.ReportStore
	if open != nil {
		st = open(b, p)
		st.SetSource(sh.Snapshot)
		defer func() {
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}()
	}
	var firstErr atomic.Pointer[error]
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		j := 0
		for pb.Next() {
			chunk, batch := chunks[j%len(chunks)], batches[j%len(batches)]
			j++
			var err error
			if st == nil {
				err = sh.ConsumeBatch(chunk)
			} else {
				err = st.Ingest(batch, func() (int, int, error) {
					if err := sh.ConsumeBatch(chunk); err != nil {
						return 0, 0, err
					}
					return len(chunk), len(batch), nil
				})
			}
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
		}
	})
	b.StopTimer()
	if errp := firstErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
	b.ReportMetric(float64(b.N)*ingestBatchSize/b.Elapsed().Seconds(), "reports/s")
}

func openBenchStore(fsync ldpmarginals.FsyncPolicy) func(b *testing.B, p ldpmarginals.Protocol) *ldpmarginals.ReportStore {
	return func(b *testing.B, p ldpmarginals.Protocol) *ldpmarginals.ReportStore {
		b.Helper()
		st, err := ldpmarginals.OpenStore(b.TempDir(), p, ldpmarginals.StoreOptions{Fsync: fsync})
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
}

// BenchmarkIngestDurable ingests the sharded batch pipeline with the
// WAL disabled entirely (the PR 1 architecture) and enabled under each
// fsync policy.
func BenchmarkIngestDurable(b *testing.B) {
	b.Run("nowal", func(b *testing.B) { benchDurableIngest(b, nil) })
	b.Run("fsync=off", func(b *testing.B) { benchDurableIngest(b, openBenchStore(ldpmarginals.FsyncOff)) })
	b.Run("fsync=interval", func(b *testing.B) { benchDurableIngest(b, openBenchStore(ldpmarginals.FsyncInterval)) })
	b.Run("fsync=always", func(b *testing.B) { benchDurableIngest(b, openBenchStore(ldpmarginals.FsyncAlways)) })
}
