// View-refresh benchmarks: the cold full epoch build (snapshot every
// shard, reconstruct every table from scratch) against the incremental
// engine path (fold only the shards touched since the last epoch into
// the cached linear sums, re-run the nonlinear stage over reusable
// arenas). One benchmark operation ingests a delta of the named size
// off-timer and then pays one epoch refresh on-timer, so ns/op is the
// refresh cost at that delta. The ratios across d in {8, 12, 16} and
// deltas of {1%, 10%, 100%} of the base population are recorded in
// BENCH_view.json; the snapshot+fold stage is benchmarked separately
// with allocation reporting (steady state must be ~zero allocs/op).
package ldpmarginals_test

import (
	"fmt"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/view"
)

// benchViewBase is the base population behind every view-refresh bench.
const benchViewBase = 1 << 17

// viewBenchSetup builds a populated sharded pipeline plus a stream of
// delta batches of the requested size.
func viewBenchSetup(b *testing.B, kind core.Kind, d, k, deltaPct int) (core.Protocol, *core.ShardedAggregator, func()) {
	b.Helper()
	cfg := core.Config{D: d, K: k, Epsilon: 1.0986, OptimizedPRR: true}
	p, err := core.New(kind, cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(20260726)
	makeReports := func(n int) []core.Report {
		reps := make([]core.Report, n)
		for i := range reps {
			rep, err := client.Perturb(uint64(i)%(1<<uint(d)), r)
			if err != nil {
				b.Fatal(err)
			}
			reps[i] = rep
		}
		return reps
	}
	sh := core.NewSharded(p, 4)
	base := makeReports(benchViewBase)
	for lo := 0; lo < len(base); lo += 1024 {
		hi := min(lo+1024, len(base))
		if err := sh.ConsumeBatch(base[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	deltaSize := benchViewBase * deltaPct / 100
	delta := makeReports(deltaSize)
	ingestDelta := func() {
		// The server's batch path lands one 1024-report chunk per shard
		// lock; a small delta therefore touches few shards.
		for lo := 0; lo < len(delta); lo += 1024 {
			hi := min(lo+1024, len(delta))
			if err := sh.ConsumeBatch(delta[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	return p, sh, ingestDelta
}

// viewBenchGrid is the d × delta matrix shared by the epoch-build
// benchmarks; k is capped at 3 per the d=16 refresh target.
var viewBenchGrid = []struct{ d, k, deltaPct int }{
	{8, 3, 1}, {8, 3, 10}, {8, 3, 100},
	{12, 3, 1}, {12, 3, 10}, {12, 3, 100},
	{16, 3, 1}, {16, 3, 10}, {16, 3, 100},
}

// benchViewProtocols are the two representative refresh workloads: the
// paper's overall winner (InpHT, compact coefficient state) and an
// input-view protocol (InpPS, 2^d-cell state) whose cold reconstruction
// cost is dominated by per-table full-domain scans.
var benchViewProtocols = []core.Kind{core.InpHT, core.InpPS}

// BenchmarkViewEpochFull is the cold path: every operation cuts a full
// snapshot of all shards and rebuilds every table from scratch —
// exactly what view.Build did for every epoch before delta refresh.
func BenchmarkViewEpochFull(b *testing.B) {
	for _, kind := range benchViewProtocols {
		for _, g := range viewBenchGrid {
			name := fmt.Sprintf("%s/d=%d/delta=%dpct", kind, g.d, g.deltaPct)
			b.Run(name, func(b *testing.B) {
				p, sh, ingestDelta := viewBenchSetup(b, kind, g.d, g.k, g.deltaPct)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					ingestDelta()
					b.StartTimer()
					snap, err := sh.Snapshot()
					if err != nil {
						b.Fatal(err)
					}
					if _, err := view.Build(snap, p, view.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkViewEpochIncremental is the delta path through the real
// engine: every operation folds the freshly ingested delta into the
// cached linear sums and re-runs the nonlinear stage over the engine's
// reusable arenas.
func BenchmarkViewEpochIncremental(b *testing.B) {
	for _, kind := range benchViewProtocols {
		for _, g := range viewBenchGrid {
			name := fmt.Sprintf("%s/d=%d/delta=%dpct", kind, g.d, g.deltaPct)
			b.Run(name, func(b *testing.B) {
				p, sh, ingestDelta := viewBenchSetup(b, kind, g.d, g.k, g.deltaPct)
				eng, err := view.NewEngine(sh, p, view.EngineOptions{
					Build: view.Options{FullRebuildEvery: -1},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				if !eng.Incremental() {
					b.Fatal("engine is not incremental")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					ingestDelta()
					b.StartTimer()
					if _, err := eng.Refresh(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSnapshotFold isolates the snapshot+fold stage: advancing the
// engine's cached linear sums past a freshly ingested 1% delta. With
// allocation reporting on, steady state must show ~zero allocs/op — the
// arena reuses every buffer.
func BenchmarkSnapshotFold(b *testing.B) {
	for _, kind := range []core.Kind{core.InpHT, core.InpPS, core.MargRR} {
		b.Run(kind.String(), func(b *testing.B) {
			_, sh, ingestDelta := viewBenchSetup(b, kind, 16, 3, 1)
			arena := sh.NewSnapshotArena()
			if arena == nil {
				b.Fatal("no arena")
			}
			if _, err := sh.SnapshotDeltaInto(arena); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ingestDelta()
				b.StartTimer()
				if _, err := sh.SnapshotDeltaInto(arena); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotFullBaseline is BenchmarkSnapshotFold's cold
// counterpart: the pre-delta architecture pays one full O(shards ×
// state) merge (plus a fresh aggregator allocation) per refresh
// regardless of how little changed.
func BenchmarkSnapshotFullBaseline(b *testing.B) {
	for _, kind := range []core.Kind{core.InpHT, core.InpPS, core.MargRR} {
		b.Run(kind.String(), func(b *testing.B) {
			_, sh, ingestDelta := viewBenchSetup(b, kind, 16, 3, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ingestDelta()
				b.StartTimer()
				if _, err := sh.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchDecode measures the /report/batch decode stage with and
// without the pooled buffers (allocs/op is the point: the pooled path
// reuses the record slices across requests).
func BenchmarkBatchDecode(b *testing.B) {
	cfg := core.Config{D: 16, K: 3, Epsilon: 1.0986, OptimizedPRR: true}
	p, err := core.New(core.InpHT, cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(7)
	reps := make([]core.Report, 1024)
	for i := range reps {
		rep, err := client.Perturb(uint64(i), r)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := encoding.UnmarshalBatchEnds(body, 1<<20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		var (
			rs []core.Report
			es []int
		)
		_, rs, es, err := encoding.UnmarshalBatchEndsInto(body, 1<<20, rs, es)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, rs, es, err = encoding.UnmarshalBatchEndsInto(body, 1<<20, rs, es); err != nil {
				b.Fatal(err)
			}
		}
	})
}
