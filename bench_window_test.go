// Continual-release benchmarks: the cost of sliding the window by one
// bucket. One benchmark operation fills the live bucket off-timer, then
// pays the bucket boundary on-timer — seal the live bucket, expire the
// oldest one, and publish a fresh epoch over the new window. The
// expiry-fold path retires a bucket with one Unmerge of its frozen
// sealed state and refreshes through the incremental engine; the full
// rebuild is the pre-window architecture for the same slide: re-merge
// every retained bucket and run a cold view.Build. The ratios across
// d in {8, 12, 16} are recorded in BENCH_window.json.
package ldpmarginals_test

import (
	"fmt"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/view"
	"ldpmarginals/internal/window"
)

const (
	// benchWindowBuckets is the window capacity in buckets (including
	// the live one); benchWindowBase reports cover a full window, spread
	// evenly across the buckets.
	benchWindowBuckets = 8
	benchWindowBase    = 1 << 16
)

// windowBenchSetup builds a ring whose window is one bucket short of
// full — benchWindowBuckets-1 sealed buckets and an empty live one — so
// the steady-state loop (fill live, cross one boundary) seals and
// expires exactly one bucket per operation. fill ingests one bucket's
// population into the live bucket; advance crosses the next bucket
// boundary.
func windowBenchSetup(b *testing.B, kind core.Kind, d int) (p core.Protocol, r *window.Ring, fill, advance func()) {
	b.Helper()
	cfg := core.Config{D: d, K: 3, Epsilon: 1.0986, OptimizedPRR: true}
	p, err := core.New(kind, cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := p.NewClient()
	rg := rng.New(20260807)
	reps := make([]core.Report, benchWindowBase/benchWindowBuckets)
	for i := range reps {
		rep, err := client.Perturb(uint64(i)%(1<<uint(d)), rg)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	base := time.Unix(1754500000, 0)
	r, err = window.NewRing(p, window.Options{
		Window: benchWindowBuckets * time.Minute,
		Bucket: time.Minute,
		Shards: 4,
		Start:  base,
	})
	if err != nil {
		b.Fatal(err)
	}
	now := base
	fill = func() {
		// Mirror the server's batch path: one ~1024-report chunk per
		// shard lock.
		for lo := 0; lo < len(reps); lo += 1024 {
			hi := min(lo+1024, len(reps))
			if err := r.ConsumeBatch(reps[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	advance = func() {
		now = now.Add(time.Minute)
		if _, _, err := r.Advance(now); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < benchWindowBuckets-1; i++ {
		fill()
		advance()
	}
	return p, r, fill, advance
}

// windowBenchProtocols mirrors the view-refresh benchmarks: the paper's
// overall winner (InpHT, compact coefficient state) and an input-view
// protocol (InpPS) whose cold reconstruction is dominated by
// full-domain scans — the workload where the expiry fold pays off most.
var windowBenchProtocols = []core.Kind{core.InpHT, core.InpPS}

// BenchmarkWindowExpiryFold is the continual-release retire path: the
// boundary crossing seals the live bucket (one Merge of its snapshot)
// and expires the oldest (one Unmerge of its frozen state), and the
// incremental engine folds just those deltas into its arena before
// re-running the nonlinear build stage.
func BenchmarkWindowExpiryFold(b *testing.B) {
	for _, kind := range windowBenchProtocols {
		for _, d := range []int{8, 12, 16} {
			b.Run(fmt.Sprintf("%s/d=%d", kind, d), func(b *testing.B) {
				p, ring, fill, advance := windowBenchSetup(b, kind, d)
				eng, err := view.NewEngine(ring, p, view.EngineOptions{
					Build: view.Options{FullRebuildEvery: -1},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				if !eng.Incremental() {
					b.Fatal("ring source is not incremental")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fill()
					b.StartTimer()
					advance()
					if _, err := eng.Refresh(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWindowFullRebuild is the same slide without the fold: every
// boundary crossing re-merges all retained buckets into a fresh
// snapshot and pays a cold view.Build — O(window) state movement per
// epoch where the expiry fold pays O(bucket).
func BenchmarkWindowFullRebuild(b *testing.B) {
	for _, kind := range windowBenchProtocols {
		for _, d := range []int{8, 12, 16} {
			b.Run(fmt.Sprintf("%s/d=%d", kind, d), func(b *testing.B) {
				p, ring, fill, advance := windowBenchSetup(b, kind, d)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fill()
					b.StartTimer()
					advance()
					snap, err := ring.Snapshot()
					if err != nil {
						b.Fatal(err)
					}
					if _, err := view.Build(snap, p, view.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
