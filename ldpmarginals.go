package ldpmarginals

import (
	"ldpmarginals/internal/bounds"
	"ldpmarginals/internal/chowliu"
	"ldpmarginals/internal/consistency"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/efronstein"
	"ldpmarginals/internal/em"
	"ldpmarginals/internal/freqoracle"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/query"
	"ldpmarginals/internal/stats"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/view"
)

// Config carries the deployment parameters shared by all protocols: the
// number of binary attributes D, the largest marginal size K the
// collection must support, the privacy budget Epsilon, and whether the
// PRR-based protocols use the Wang et al. optimized probabilities.
type Config = core.Config

// Protocol couples a client-side randomizer with its aggregator; see
// NewProtocol.
type Protocol = core.Protocol

// Client produces one locally-private report per user record.
type Client = core.Client

// Aggregator accumulates reports and answers Estimate(beta) queries.
type Aggregator = core.Aggregator

// Report is the single message a user sends to the aggregator.
type Report = core.Report

// Kind identifies one of the six protocols of the paper's Table 2.
type Kind = core.Kind

// The six protocol kinds.
const (
	InpRR  = core.InpRR
	InpPS  = core.InpPS
	InpHT  = core.InpHT
	MargRR = core.MargRR
	MargPS = core.MargPS
	MargHT = core.MargHT
)

// AllKinds lists the six protocol kinds in Table 2 order.
func AllKinds() []Kind { return core.AllKinds() }

// Table is a (possibly estimated) marginal over an attribute subset.
type Table = marginal.Table

// Dataset is a collection of user records over binary attributes.
type Dataset = dataset.Dataset

// RunResult is the outcome of Simulate: the merged aggregator and the
// total communication cost of the run.
type RunResult = core.RunResult

// NewProtocol constructs one of the paper's six protocols.
func NewProtocol(kind Kind, cfg Config) (Protocol, error) { return core.New(kind, cfg) }

// Simulate runs the full protocol over the records: every record is
// perturbed by a client with an independent RNG stream and consumed by a
// (sharded, merged) aggregator. workers <= 0 selects GOMAXPROCS.
func Simulate(p Protocol, records []uint64, seed uint64, workers int) (*RunResult, error) {
	return core.Run(p, records, seed, workers)
}

// ShardedAggregator fans ingestion across per-shard accumulators behind
// per-shard locks, with a lock-free report counter — the multi-core
// ingestion path used by the HTTP deployment (internal/server). It
// satisfies Aggregator and produces byte-identical estimates to a
// sequential aggregator fed the same reports.
type ShardedAggregator = core.ShardedAggregator

// NewShardedAggregator wraps a protocol's aggregation in shards
// per-shard accumulators; shards <= 0 selects GOMAXPROCS. See
// internal/core.ShardedAggregator for how to pick the shard count.
func NewShardedAggregator(p Protocol, shards int) *ShardedAggregator {
	return core.NewSharded(p, shards)
}

// AllKWayMarginals enumerates the attribute masks of all C(d,k) k-way
// marginals.
func AllKWayMarginals(d, k int) []uint64 { return marginal.AllKWay(d, k) }

// ExactMarginal computes the exact empirical marginal of a record stream.
func ExactMarginal(records []uint64, beta uint64) (*Table, error) {
	return marginal.FromRecords(records, beta)
}

// MeanTV evaluates an aggregator against exact marginals of the record
// stream, returning the mean total variation distance across the given
// attribute masks — the paper's accuracy metric.
func MeanTV(agg Aggregator, records []uint64, betas []uint64) (float64, error) {
	return marginal.MeanTV(agg, records, betas)
}

// NewTaxiDataset synthesizes n records with the dependence structure of
// the paper's NYC taxi data (Table 1 / Figure 3); see DESIGN.md for the
// substitution rationale.
func NewTaxiDataset(n int, seed uint64) *Dataset { return dataset.NewTaxi(n, seed) }

// NewMovieLensDataset synthesizes n genre-preference records over d
// attributes with the all-positive correlations of the paper's movielens
// derivation.
func NewMovieLensDataset(n, d int, seed uint64) (*Dataset, error) {
	return dataset.NewMovieLens(n, d, seed)
}

// NewSkewedDataset synthesizes n records of d independent bits whose
// 1-rates decay geometrically — the "lightly skewed" data of Appendix
// B.2.
func NewSkewedDataset(n, d int, decay float64, seed uint64) (*Dataset, error) {
	return dataset.NewSkewed(n, d, decay, seed)
}

// EMConfig parameterizes the InpEM baseline (Section 4.4).
type EMConfig = em.Config

// NewEM constructs the InpEM baseline protocol (budget-split randomized
// response with expectation-maximization decoding). The returned protocol
// runs under Simulate like any other; its aggregator can be asserted to
// *EMAggregator for EM diagnostics.
func NewEM(cfg EMConfig) (Protocol, error) { return em.New(cfg) }

// EMAggregator exposes the EM baseline's decoding diagnostics.
type EMAggregator = em.Aggregator

// EMResult is a decoded marginal with EM iteration/failure diagnostics.
type EMResult = em.Result

// OLHConfig parameterizes the InpOLH frequency-oracle baseline.
type OLHConfig = freqoracle.OLHConfig

// NewOLH constructs the InpOLH baseline (optimized local hashing).
func NewOLH(cfg OLHConfig) (Protocol, error) { return freqoracle.NewOLH(cfg) }

// HCMSConfig parameterizes the InpHTCMS frequency-oracle baseline.
type HCMSConfig = freqoracle.HCMSConfig

// NewHCMS constructs the InpHTCMS baseline (Hadamard count-min/mean
// sketch).
func NewHCMS(cfg HCMSConfig) (Protocol, error) { return freqoracle.NewHCMS(cfg) }

// IndependenceResult is the outcome of a chi-squared independence test.
type IndependenceResult = stats.TestResult

// TestIndependence runs the chi-squared independence test of Section 6.1
// on a 2-way marginal table over a population of n users at significance
// level alpha (e.g. 0.05). Estimated tables are simplex-projected
// internally.
func TestIndependence(tab *Table, n float64, alpha float64) (*IndependenceResult, error) {
	return stats.ChiSquareIndependence(tab, n, alpha)
}

// MutualInformation computes I(A;B) in bits from a 2-way marginal.
func MutualInformation(tab *Table) (float64, error) { return stats.MutualInformation(tab) }

// DependencyTree is a fitted Chow-Liu tree (Section 6.2).
type DependencyTree = chowliu.Tree

// TreeModel is a dependency tree with conditional probability tables,
// defining a samplable joint distribution.
type TreeModel = chowliu.Model

// FitDependencyTree learns the Chow-Liu dependency tree over d
// attributes from any marginal source: an LDP aggregator or exact
// marginals (wrap a dataset with ExactEstimator).
func FitDependencyTree(est marginal.Estimator, d int) (*DependencyTree, error) {
	return chowliu.FitFromEstimator(est, d)
}

// BuildTreeModel fills conditional probability tables for a fitted tree,
// rooted at the given attribute.
func BuildTreeModel(tree *DependencyTree, est marginal.Estimator, root int) (*TreeModel, error) {
	return chowliu.BuildModel(tree, est, root)
}

// ExactEstimator answers marginal queries exactly from a dataset,
// providing the non-private reference line of the paper's figures.
type ExactEstimator struct {
	// DS is the dataset to answer from.
	DS *Dataset
}

// Estimate computes the exact marginal over beta.
func (e ExactEstimator) Estimate(beta uint64) (*Table, error) {
	return e.DS.Marginal(beta)
}

// PearsonMatrix computes the pairwise correlation matrix of the binary
// attribute columns (Figure 3's heatmap data).
func PearsonMatrix(records []uint64, d int) ([][]float64, error) {
	return stats.PearsonMatrix(records, d)
}

// CategoricalDataset is a dataset over attributes with more than two
// values, reduced to the binary protocols via bit encoding (Section 6.3).
type CategoricalDataset = dataset.Categorical

// NewCategoricalDataset synthesizes n correlated records over the given
// attribute cardinalities.
func NewCategoricalDataset(n int, cardinalities []int, seed uint64) (*CategoricalDataset, error) {
	return dataset.NewCategoricalCorrelated(n, cardinalities, seed)
}

// ESConfig parameterizes the InpES protocol: the Efron-Stein
// generalization of InpHT to categorical attributes conjectured in the
// paper's Section 6.3.
type ESConfig = efronstein.Config

// ESProtocol is the InpES protocol; its aggregator (assert to
// *ESAggregator) additionally answers EstimateCategorical queries in
// native category space.
type ESProtocol = efronstein.Protocol

// ESAggregator is the InpES aggregator.
type ESAggregator = efronstein.Aggregator

// NewES constructs the InpES protocol. Run it with Simulate over
// bit-group-encoded categorical records (CategoricalDataset.EncodeBinary).
func NewES(cfg ESConfig) (*ESProtocol, error) { return efronstein.New(cfg) }

// Conjunction is a set of attribute=value terms interpreted as their
// logical AND — the workload the paper's introduction motivates.
type Conjunction = query.Conjunction

// ConjunctionTerm fixes one attribute to a boolean value.
type ConjunctionTerm = query.Term

// ParseConjunction reads a conjunction such as "CC=1 AND Tip=0",
// resolving attribute names through the resolver (e.g.
// Dataset.AttributeIndex).
func ParseConjunction(s string, resolve func(name string) int) (Conjunction, error) {
	return query.Parse(s, resolve)
}

// EvaluateConjunction answers the fraction of the population matching
// the conjunction, from any marginal estimator (an LDP aggregator or
// ExactEstimator).
func EvaluateConjunction(est marginal.Estimator, c Conjunction, d int) (float64, error) {
	return query.Evaluate(est, c, d)
}

// MaterializeCube materializes every j-way marginal for j <= k, keyed by
// attribute mask — the OLAP datacube slice.
func MaterializeCube(est marginal.Estimator, d, k int) (map[uint64]*Table, error) {
	return query.Cube(est, d, k)
}

// MarginalView is one immutable materialized epoch: every k-way
// collection table reconstructed from a single snapshot, made mutually
// consistent, and frozen for lock-free serving. It satisfies the same
// estimator interface as an aggregator, so it drops into conjunction
// evaluation, Chow-Liu fitting, and chi-squared testing.
type MarginalView = view.View

// ViewOptions tunes the per-epoch post-processing of BuildView.
type ViewOptions = view.Options

// ViewEngine owns the materialized view of a deployment, rebuilding it
// on a refresh policy and publishing epochs through an atomic pointer so
// readers never take a lock.
type ViewEngine = view.Engine

// ViewEngineOptions configures NewViewEngine (refresh policy and build
// post-processing).
type ViewEngineOptions = view.EngineOptions

// RefreshPolicy selects when a ViewEngine rebuilds on its own: a
// wall-time interval, a report-count delta, or neither (manual Refresh
// only).
type RefreshPolicy = view.Policy

// BuildView materializes a view from one aggregator snapshot: all
// C(d,k) k-way marginals reconstructed in parallel, consistency
// enforced, simplex projected. Equal snapshots build bit-identical
// views.
func BuildView(snap Aggregator, p Protocol, opts ViewOptions) (*MarginalView, error) {
	return view.Build(snap, p, opts)
}

// NewViewEngine builds the first epoch over the sharded aggregator and
// starts the refresh policy (if any). Close the engine to stop it.
func NewViewEngine(src *ShardedAggregator, p Protocol, opts ViewEngineOptions) (*ViewEngine, error) {
	return view.NewEngine(src, p, opts)
}

// ReportStore is the durability layer of a deployment: an append-only
// write-ahead log of report frames plus periodic counter snapshots in
// one data directory. Opening a directory recovers the aggregation
// state a previous process persisted — including after a crash, where
// the WAL tail is replayed and a torn final record is truncated.
type ReportStore = store.Store

// StoreOptions tunes a ReportStore (fsync policy, segment size,
// snapshot cadence).
type StoreOptions = store.Options

// FsyncPolicy selects when WAL appends are made durable.
type FsyncPolicy = store.FsyncPolicy

// The WAL fsync policies: group-committed fsync per ack, timer-batched
// fsync, or none.
const (
	FsyncAlways   = store.FsyncAlways
	FsyncInterval = store.FsyncInterval
	FsyncOff      = store.FsyncOff
)

// StoreRecoveryStats describes what OpenStore reconstructed from a data
// directory.
type StoreRecoveryStats = store.RecoveryStats

// OpenStore recovers the deployment state persisted in dir (creating
// it if needed) and starts the write-ahead log. Pass the store to the
// HTTP server (internal/server Options.Store) to make ingestion
// durable; every aggregator state round-trips through the codec because
// Aggregator.MarshalState is canonical for all protocols.
func OpenStore(dir string, p Protocol, opts StoreOptions) (*ReportStore, error) {
	return store.Open(dir, p, opts)
}

// ConsistencyOptions controls EnforceConsistency.
type ConsistencyOptions = consistency.Options

// EnforceConsistency adjusts a set of estimated marginal tables in place
// so that overlapping marginals agree on their shared sub-marginals,
// preserving each table's total mass. weights (nil = uniform) set
// per-table trust.
func EnforceConsistency(tables []*Table, weights []float64, opts ConsistencyOptions) error {
	return consistency.Enforce(tables, weights, opts)
}

// MaxDisagreement measures the largest gap between sub-marginals implied
// by any two tables on shared attributes (0 = fully consistent).
func MaxDisagreement(tables []*Table) (float64, error) {
	return consistency.MaxDisagreement(tables)
}

// BoundParams carries the parameters of the paper's theoretical error
// bounds.
type BoundParams = bounds.Params

// TheoreticalErrorBound returns the paper's total-variation error bound
// (up to logarithmic factors) for the named protocol — Theorems 4.3-4.5
// and Lemma 4.6.
func TheoreticalErrorBound(protocol string, p BoundParams) (float64, error) {
	return bounds.ForProtocol(protocol, p)
}
