// Categorical attributes under LDP (paper Section 6.3): encode
// higher-cardinality attributes into binary, run InpHT on the encoded
// records, and decode the reconstructed marginal back to category
// values.
package main

import (
	"fmt"
	"log"

	"ldpmarginals"
)

func main() {
	// Three correlated categorical attributes: a 5-valued "region", a
	// 4-valued "fare band" and a 3-valued "time of day".
	cat, err := ldpmarginals.NewCategoricalDataset(150_000, []int{5, 4, 3}, 21)
	if err != nil {
		log.Fatal(err)
	}
	cat.Names = []string{"region", "fare", "time"}

	// Binary encoding: ceil(log2 5) + ceil(log2 4) + ceil(log2 3)
	// = 3 + 2 + 2 = 7 binary attributes (Corollary 6.1's d2).
	bin, err := cat.EncodeBinary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d categorical attributes into d2=%d binary attributes\n",
		len(cat.Cardinalities), bin.D)

	// Query the (region, fare) marginal: its binary mask spans both
	// attributes' bit groups, k2 = 5 bits.
	mask, err := cat.MaskFor(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, ldpmarginals.Config{
		D: bin.D, K: 5, Epsilon: 1.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := ldpmarginals.Simulate(p, bin.Records, 8, 0)
	if err != nil {
		log.Fatal(err)
	}
	private, err := run.Agg.Estimate(mask)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := bin.Marginal(mask)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nP(region, fare):  private    exact\n")
	for cell := range private.Cells {
		vals, ok := cat.DecodeCell(uint64(cell), 0, 1)
		if !ok {
			continue // padding cell of the non-power-of-two cardinality
		}
		fmt.Printf("  region=%d fare=%d %9.4f %8.4f\n",
			vals[0], vals[1], private.Cells[cell], exact.Cells[cell])
	}
	tv, err := private.TVDistance(exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal variation distance: %.4f\n", tv)
}
