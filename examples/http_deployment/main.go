// HTTP deployment example: stand up the collection server in-process
// on a durable data directory, drive it with simulated clients posting
// wire-encoded reports over HTTP, restart the deployment to show the
// collected state surviving (the paper's one-round reports are
// irreplaceable), publish an epoch of the materialized view, and read
// a marginal and a batch of conjunction queries back from the cache —
// the end-to-end shape of the browser/mobile deployments the paper
// targets (Section 7). See README.md for the epoch/staleness and
// durability models.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"ldpmarginals"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/server"
)

func main() {
	// Aggregator side: an InpHT deployment over the taxi schema.
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, ldpmarginals.Config{
		D: 8, K: 2, Epsilon: 1.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Durable deployment: reports are WAL-logged before every ack, so
	// the irreplaceable one-round collection survives a crash or
	// redeploy (cmd/ldpserver exposes the same thing as -data-dir).
	dataDir, err := os.MkdirTemp("", "ldpserver-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	openServer := func() (*server.Server, *httptest.Server) {
		st, err := ldpmarginals.OpenStore(dataDir, p, ldpmarginals.StoreOptions{})
		if err != nil {
			log.Fatal(err)
		}
		srv, err := server.NewWithOptions(p, server.Options{Store: st})
		if err != nil {
			log.Fatal(err)
		}
		return srv, httptest.NewServer(srv.Handler())
	}
	srv, ts := openServer()
	fmt.Printf("collection server for %s listening at %s (durable in %s)\n", p.Name(), ts.URL, dataDir)

	// Client side: 50K users randomize locally. The first 1000 POST
	// individually to /report (the one-frame-per-user mobile shape); the
	// rest arrive as length-prefixed batches on /report/batch (the shape
	// of an edge collector forwarding accumulated frames), which the
	// server fans out across its aggregation shards.
	ds := ldpmarginals.NewTaxiDataset(50_000, 3)
	client := p.NewClient()
	r := rng.New(1)
	reports := make([]ldpmarginals.Report, ds.N())
	for i, rec := range ds.Records {
		rep, err := client.Perturb(rec, r)
		if err != nil {
			log.Fatal(err)
		}
		reports[i] = rep
	}
	const singles = 1000
	for _, rep := range reports[:singles] {
		frame, err := encoding.Marshal(p.Name(), rep)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			log.Fatalf("report rejected: %d", resp.StatusCode)
		}
	}
	const batchSize = 4096
	for lo := singles; lo < len(reports); lo += batchSize {
		hi := min(lo+batchSize, len(reports))
		body, err := encoding.MarshalBatch(p.Name(), reports[lo:hi])
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("batch rejected: %d", resp.StatusCode)
		}
	}
	fmt.Printf("posted %d reports (%d singly, the rest in batches of %d; %d bits each on the wire budget)\n",
		ds.N(), singles, batchSize, p.CommunicationBits())

	// Kill-and-restart: shut the deployment down (flushing the WAL and
	// writing a counter snapshot) and bring it back up from the same
	// data directory. The report count — and with it every marginal the
	// epochs below will serve — survives the restart byte-for-byte.
	before := getStatus(ts.URL)
	ts.Close()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	srv, ts = openServer()
	defer ts.Close()
	defer srv.Close()
	after := getStatus(ts.URL)
	fmt.Printf("restarted from %s: %d reports before shutdown, %d recovered (fsync %s, %d in last snapshot)\n",
		dataDir, before.N, after.N, after.Durability.Fsync, after.Durability.LastSnapshotReports)
	if before.N != after.N {
		log.Fatalf("recovery lost reports: %d != %d", after.N, before.N)
	}

	// Publish an epoch: one POST /refresh reconstructs all C(8,2) = 28
	// two-way marginals, makes them mutually consistent, and swaps the
	// result in for lock-free serving. Every read below is a cache hit.
	refreshResp, err := http.Post(ts.URL+"/refresh", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer refreshResp.Body.Close()
	var vs server.ViewStatusResponse
	if err := json.NewDecoder(refreshResp.Body).Decode(&vs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published epoch %d over %d reports (%d tables, built in %.1fms)\n",
		vs.Epoch, vs.ViewN, vs.Tables, vs.BuildMillis)

	// Analyst side: fetch the CC-Tip marginal from the cached epoch.
	beta, err := ds.Mask("CC", "Tip")
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/marginal?beta=%d", ts.URL, beta))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var got server.MarginalResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		log.Fatal(err)
	}

	exact, err := ds.Marginal(beta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nP(CC, Tip) from epoch %d:        private    exact\n", got.Epoch)
	labels := []string{"CC=0,Tip=0", "CC=1,Tip=0", "CC=0,Tip=1", "CC=1,Tip=1"}
	for c, label := range labels {
		fmt.Printf("  %-14s %22.4f %8.4f\n", label, got.Cells[c], exact.Cells[c])
	}

	// Conjunction workload, batched over one epoch: the introduction's
	// "fraction of users with A and B but not C" queries. The server
	// only knows positional names (a0..a7), so map the schema's names.
	cc, tip := ds.AttributeIndex("CC"), ds.AttributeIndex("Tip")
	queries := server.QueryRequest{Queries: []string{
		fmt.Sprintf("a%d=1 AND a%d=1", cc, tip), // card payers who tip
		fmt.Sprintf("a%d=1 AND a%d=0", cc, tip), // card payers who stiff
		fmt.Sprintf("a%d=1", tip),               // tippers overall
	}}
	qBody, err := json.Marshal(queries)
	if err != nil {
		log.Fatal(err)
	}
	qResp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(qBody))
	if err != nil {
		log.Fatal(err)
	}
	defer qResp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(qResp.Body).Decode(&qr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconjunctions against epoch %d (n=%d):\n", qr.Epoch, qr.N)
	for _, res := range qr.Results {
		if res.Error != "" {
			fmt.Printf("  %-22s error: %s\n", res.Query, res.Error)
			continue
		}
		fmt.Printf("  %-22s fraction %.4f (~%.0f users)\n", res.Query, res.Fraction, res.Count)
	}

	// Cluster topology: the same 50K reports, but ingested the way a
	// real fleet would — split across two edge collectors that only
	// ingest and WAL-log, merged by a coordinator that pulls each edge's
	// canonical state and serves the fleet-wide view. Aggregation is
	// associative integer counting and the state codec is canonical, so
	// the coordinator's marginal is byte-identical to the single-node
	// answer above (cmd/ldpserver exposes the same topology as -role,
	// -peers, -pull-interval).
	newNode := func(opts server.Options) (*server.Server, *httptest.Server) {
		node, err := server.NewWithOptions(p, opts)
		if err != nil {
			log.Fatal(err)
		}
		return node, httptest.NewServer(node.Handler())
	}
	edge1, edge1TS := newNode(server.Options{Role: server.RoleEdge, NodeID: "edge-1"})
	edge2, edge2TS := newNode(server.Options{Role: server.RoleEdge, NodeID: "edge-2"})
	defer edge1TS.Close()
	defer edge2TS.Close()
	defer edge1.Close()
	defer edge2.Close()
	edgeURLs := []string{edge1TS.URL, edge2TS.URL}
	for i := 0; i < len(reports); i += batchSize {
		hi := min(i+batchSize, len(reports))
		body, err := encoding.MarshalBatch(p.Name(), reports[i:hi])
		if err != nil {
			log.Fatal(err)
		}
		// Alternate batches across the two edges, like a load balancer.
		resp, err := http.Post(edgeURLs[(i/batchSize)%2]+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("edge batch rejected: %d", resp.StatusCode)
		}
	}
	coord, coordTS := newNode(server.Options{
		Role:   server.RoleCoordinator,
		NodeID: "coord",
		Peers:  edgeURLs,
	})
	defer coordTS.Close()
	defer coord.Close()
	// POST /pull fetches both edges' states now (the background puller
	// would do the same on its -pull-interval cadence); POST /refresh
	// publishes an epoch over the merged fleet.
	pullResp, err := http.Post(coordTS.URL+"/pull", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	pullResp.Body.Close()
	if pullResp.StatusCode != http.StatusOK {
		log.Fatalf("pull failed: %d", pullResp.StatusCode)
	}
	refResp, err := http.Post(coordTS.URL+"/refresh", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	refResp.Body.Close()
	if refResp.StatusCode != http.StatusOK {
		log.Fatalf("refresh failed: %d", refResp.StatusCode)
	}
	cResp, err := http.Get(fmt.Sprintf("%s/marginal?beta=%d", coordTS.URL, beta))
	if err != nil {
		log.Fatal(err)
	}
	defer cResp.Body.Close()
	var clustered server.MarginalResponse
	if err := json.NewDecoder(cResp.Body).Decode(&clustered); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncluster (2 edges + coordinator, n=%d): P(CC, Tip) = %.6v\n", clustered.N, clustered.Cells)
	for c := range clustered.Cells {
		if clustered.Cells[c] != got.Cells[c] {
			log.Fatalf("cluster cell %d = %v differs from single-node %v", c, clustered.Cells[c], got.Cells[c])
		}
	}
	fmt.Println("cluster marginal is bit-identical to the single-node deployment")
}

func getStatus(url string) server.StatusResponse {
	resp, err := http.Get(url + "/status")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var sr server.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		log.Fatal(err)
	}
	return sr
}
