// Bayesian modeling under LDP (paper Section 6.2): fit a Chow-Liu
// dependency tree from privately collected 2-way marginals, compare its
// quality with the non-private tree, and use the fitted model to sample
// synthetic data.
package main

import (
	"fmt"
	"log"

	"ldpmarginals"
	"ldpmarginals/internal/rng"
)

func main() {
	const d = 10
	ds, err := ldpmarginals.NewMovieLensDataset(200_000, d, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Non-private reference tree.
	exactEst := ldpmarginals.ExactEstimator{DS: ds}
	exactTree, err := ldpmarginals.FitDependencyTree(exactEst, d)
	if err != nil {
		log.Fatal(err)
	}

	// Private tree from InpHT marginals at eps = 1.1.
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, ldpmarginals.Config{
		D: d, K: 2, Epsilon: 1.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := ldpmarginals.Simulate(p, ds.Records, 17, 0)
	if err != nil {
		log.Fatal(err)
	}
	privTree, err := ldpmarginals.FitDependencyTree(run.Agg, d)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Chow-Liu trees over %d movielens genres (N=%d)\n\n", d, ds.N())
	fmt.Printf("non-private tree: total MI %.4f bits\n", exactTree.TotalMI)
	for _, e := range exactTree.Edges {
		fmt.Printf("  %-12s - %-12s  MI=%.4f\n", ds.Names[e.A], ds.Names[e.B], e.MI)
	}
	fmt.Printf("\nprivate tree (InpHT, eps=1.1): total MI %.4f bits (estimated)\n", privTree.TotalMI)
	shared := 0
	for _, e := range privTree.Edges {
		marker := " "
		if exactTree.HasEdge(e.A, e.B) {
			marker = "*"
			shared++
		}
		fmt.Printf("  %-12s - %-12s  MI=%.4f %s\n", ds.Names[e.A], ds.Names[e.B], e.MI, marker)
	}
	fmt.Printf("\n%d of %d private edges match the non-private tree (*)\n", shared, len(privTree.Edges))

	// Build the generative model from the private marginals and sample.
	model, err := ldpmarginals.BuildTreeModel(privTree, run.Agg, 0)
	if err != nil {
		log.Fatal(err)
	}
	r := rng.New(5)
	sampled := make([]uint64, 50_000)
	for i := range sampled {
		sampled[i] = model.Sample(r)
	}
	ll, err := model.LogLikelihood(ds.Records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsampled %d synthetic records from the private model\n", len(sampled))
	fmt.Printf("model log2-likelihood on the real data: %.3f bits/record\n", ll)
}
