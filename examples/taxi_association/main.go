// Association testing under LDP (paper Section 6.1): run chi-squared
// independence tests on marginals reconstructed privately with InpHT and
// compare the verdicts with the non-private tests — reproducing the
// accept/reject pattern of the paper's Figure 7.
package main

import (
	"fmt"
	"log"

	"ldpmarginals"
)

// pairs mixes strongly associated attribute pairs with independent ones.
var pairs = []struct {
	a, b string
}{
	{"Night_pick", "Night_drop"},
	{"Toll", "Far"},
	{"CC", "Tip"},
	{"M_drop", "CC"},
	{"Far", "Night_pick"},
	{"Toll", "Night_pick"},
}

func main() {
	ds := ldpmarginals.NewTaxiDataset(1<<18, 7)
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, ldpmarginals.Config{
		D: ds.D, K: 2, Epsilon: 1.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := ldpmarginals.Simulate(p, ds.Records, 99, 0)
	if err != nil {
		log.Fatal(err)
	}

	n := float64(ds.N())
	fmt.Printf("chi-squared independence tests, N=%d, eps=1.1, alpha=0.05\n\n", ds.N())
	fmt.Printf("%-26s %14s %14s %10s %10s\n", "pair", "chi2(exact)", "chi2(InpHT)", "exact", "private")
	for _, pair := range pairs {
		beta, err := ds.Mask(pair.a, pair.b)
		if err != nil {
			log.Fatal(err)
		}
		exactTab, err := ds.Marginal(beta)
		if err != nil {
			log.Fatal(err)
		}
		privTab, err := run.Agg.Estimate(beta)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := ldpmarginals.TestIndependence(exactTab, n, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		priv, err := ldpmarginals.TestIndependence(privTab, n, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %14.1f %14.1f %10s %10s\n",
			pair.a+"-"+pair.b, exact.Stat, priv.Stat, verdict(exact), verdict(priv))
	}
	crit, _ := ldpmarginals.TestIndependence(mustUniform(), n, 0.05)
	fmt.Printf("\ncritical value (df=1, 95%%): %.3f\n", crit.Critical)
}

func verdict(r *ldpmarginals.IndependenceResult) string {
	if r.Dependent {
		return "dep"
	}
	return "indep"
}

// mustUniform builds a throwaway 2-way table just to read the critical
// value from a TestResult.
func mustUniform() *ldpmarginals.Table {
	ds := ldpmarginals.NewTaxiDataset(100, 1)
	beta, _ := ds.Mask("CC", "Tip")
	tab, err := ds.Marginal(beta)
	if err != nil {
		log.Fatal(err)
	}
	return tab
}
