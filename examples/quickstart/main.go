// Quickstart: collect a 2-way marginal under local differential privacy
// with the paper's best protocol (InpHT) and compare it with the truth.
package main

import (
	"fmt"
	"log"

	"ldpmarginals"
)

func main() {
	// A population of 256K synthetic taxi trips over 8 binary attributes.
	ds := ldpmarginals.NewTaxiDataset(1<<18, 1)

	// Deploy InpHT: every user sends d+1 = 9 bits, and afterwards any
	// marginal over at most K=2 attributes can be reconstructed.
	p, err := ldpmarginals.NewProtocol(ldpmarginals.InpHT, ldpmarginals.Config{
		D: ds.D, K: 2, Epsilon: 1.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := ldpmarginals.Simulate(p, ds.Records, 42, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d reports, %d bits each\n", run.Agg.N(), p.CommunicationBits())

	// Reconstruct the credit-card / tip marginal and compare with truth.
	beta, err := ds.Mask("CC", "Tip")
	if err != nil {
		log.Fatal(err)
	}
	private, err := run.Agg.Estimate(beta)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := ldpmarginals.ExactMarginal(ds.Records, beta)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nP(CC, Tip):       private    exact")
	labels := []string{"CC=0,Tip=0", "CC=1,Tip=0", "CC=0,Tip=1", "CC=1,Tip=1"}
	for c, label := range labels {
		fmt.Printf("  %-14s %9.4f %8.4f\n", label, private.Cells[c], exact.Cells[c])
	}
	tv, err := private.TVDistance(exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal variation distance: %.4f\n", tv)
}
