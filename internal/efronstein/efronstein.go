// Package efronstein implements the categorical-data extension
// conjectured in Section 6.3 of the paper: a protocol in the style of
// InpHT built on the Efron-Stein orthogonal decomposition, which
// generalizes the Hadamard transform from the Boolean hypercube to
// products of arbitrary finite domains.
//
// For an attribute with r values we use the Helmert orthonormal basis
// {chi_0 = 1, chi_1, ..., chi_{r-1}} of real functions on [r] under the
// uniform measure. Tensor products of per-attribute basis functions give
// an orthonormal basis of the product domain, indexed by a "level"
// vector; the Efron-Stein component of a subset S collects indices whose
// non-zero levels sit exactly on S. As with the Hadamard case, a k-way
// marginal over attributes A is determined by the coefficients supported
// inside A, so collecting levels with support size 1..k suffices for all
// k-way marginals.
//
// Each user samples one coefficient, evaluates it on their record (a
// bounded real value, not just +-1), rounds it to a single unbiased bit,
// and releases that bit through eps-randomized response — so the
// per-user privacy analysis is exactly Warner's, and the estimator stays
// unbiased.
package efronstein

import (
	"fmt"
	"math"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/wire"
)

// Basis returns the Helmert-style orthonormal basis of functions on an
// r-valued domain under the uniform measure: Basis(r)[j][x] is
// chi_j(x), with chi_0 identically 1 and
// (1/r) * sum_x chi_j(x) chi_k(x) = delta_{jk}.
func Basis(r int) ([][]float64, error) {
	if r < 2 {
		return nil, fmt.Errorf("efronstein: domain size %d must be at least 2", r)
	}
	chi := make([][]float64, r)
	for j := range chi {
		chi[j] = make([]float64, r)
	}
	for x := 0; x < r; x++ {
		chi[0][x] = 1
	}
	// Helmert rows orthonormal under counting measure, scaled by sqrt(r)
	// for the uniform probability measure: row j has j entries of
	// 1/sqrt(j(j+1)), then -j/sqrt(j(j+1)), then zeros.
	for j := 1; j < r; j++ {
		scale := math.Sqrt(float64(r) / float64(j*(j+1)))
		for x := 0; x < j; x++ {
			chi[j][x] = scale
		}
		chi[j][j] = -scale * float64(j)
	}
	return chi, nil
}

// Config parameterizes the InpES protocol.
type Config struct {
	// Cardinalities lists the categorical attribute sizes (each >= 2).
	Cardinalities []int
	// K is the largest number of attributes per queried marginal.
	K int
	// Epsilon is the local privacy budget.
	Epsilon float64
}

// coeff is one collected Efron-Stein coefficient: the attributes of its
// support, the per-attribute basis levels (all >= 1), and the public
// bound on |chi| over the domain.
type coeff struct {
	attrs  []int
	levels []int
	bound  float64
}

// Protocol is InpES. It satisfies core.Protocol over bit-group-encoded
// categorical records (dataset.Categorical.EncodeBinary), so the shared
// runner drives it directly and its estimates are comparable cell-by-cell
// with the binary protocols on the same encoded data.
type Protocol struct {
	cfg    Config
	rr     *mech.RR
	bases  [][][]float64 // per attribute: chi[j][x]
	coeffs []coeff
	// bit-group layout of the encoded records
	groups  []uint64
	offsets []int
	widths  []int
	d2      int
}

var _ core.Protocol = (*Protocol)(nil)

// New constructs the InpES protocol.
func New(cfg Config) (*Protocol, error) {
	d := len(cfg.Cardinalities)
	if d == 0 {
		return nil, fmt.Errorf("efronstein: no attributes")
	}
	if cfg.K < 1 || cfg.K > d {
		return nil, fmt.Errorf("efronstein: k=%d out of range (1..%d)", cfg.K, d)
	}
	if cfg.Epsilon <= 0 {
		return nil, fmt.Errorf("efronstein: epsilon must be positive, got %v", cfg.Epsilon)
	}
	rr, err := mech.NewRR(cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	p := &Protocol{cfg: cfg, rr: rr}
	offset := 0
	for _, r := range cfg.Cardinalities {
		if r < 2 || r > 256 {
			return nil, fmt.Errorf("efronstein: cardinality %d out of range (2..256)", r)
		}
		basis, err := Basis(r)
		if err != nil {
			return nil, err
		}
		p.bases = append(p.bases, basis)
		width := bitsLen(r - 1)
		p.offsets = append(p.offsets, offset)
		p.widths = append(p.widths, width)
		p.groups = append(p.groups, ((uint64(1)<<uint(width))-1)<<uint(offset))
		offset += width
	}
	p.d2 = offset
	if p.d2 > bitops.MaxAttributes {
		return nil, fmt.Errorf("efronstein: encoded dimension %d exceeds limit %d", p.d2, bitops.MaxAttributes)
	}
	p.coeffs = enumerateCoeffs(cfg.Cardinalities, cfg.K, p.bases)
	if len(p.coeffs) == 0 {
		return nil, fmt.Errorf("efronstein: empty coefficient set")
	}
	return p, nil
}

func bitsLen(v int) int {
	n := 0
	for ; v > 0; v >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}

// enumerateCoeffs lists every coefficient with support size 1..k: for
// each attribute subset, the cross product of levels 1..r_i-1.
func enumerateCoeffs(cards []int, k int, bases [][][]float64) []coeff {
	d := len(cards)
	var out []coeff
	for size := 1; size <= k; size++ {
		for _, mask := range bitops.MasksWithExactlyK(d, size) {
			attrs := bitops.BitPositions(mask)
			levels := make([]int, len(attrs))
			for i := range levels {
				levels[i] = 1
			}
			for {
				// Record the current level combination.
				c := coeff{
					attrs:  append([]int(nil), attrs...),
					levels: append([]int(nil), levels...),
					bound:  1,
				}
				for i, a := range attrs {
					c.bound *= maxAbs(bases[a][levels[i]])
				}
				out = append(out, c)
				// Advance the mixed-radix counter over levels.
				i := 0
				for ; i < len(levels); i++ {
					levels[i]++
					if levels[i] < cards[attrs[i]] {
						break
					}
					levels[i] = 1
				}
				if i == len(levels) {
					break
				}
			}
		}
	}
	return out
}

func maxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Name returns "InpES".
func (p *Protocol) Name() string { return "InpES" }

// Config adapts the deployment to the shared core form: D is the encoded
// binary dimension, K the binary width of the largest supported marginal.
func (p *Protocol) Config() core.Config {
	// K in binary terms: the widest K-attribute combination.
	return core.Config{D: p.d2, K: p.d2, Epsilon: p.cfg.Epsilon}
}

// CoefficientCount returns |T|, the number of collected coefficients.
func (p *Protocol) CoefficientCount() int { return len(p.coeffs) }

// CommunicationBits counts the coefficient index plus the single
// randomized bit.
func (p *Protocol) CommunicationBits() int {
	return bitsLen(len(p.coeffs)-1) + 1
}

// NewClient returns an InpES client.
func (p *Protocol) NewClient() core.Client { return &client{p: p} }

// NewAggregator returns an empty InpES aggregator.
func (p *Protocol) NewAggregator() core.Aggregator {
	return &Aggregator{
		p:      p,
		sums:   make([]int64, len(p.coeffs)),
		counts: make([]int64, len(p.coeffs)),
	}
}

// values unpacks the per-attribute categorical values from an encoded
// record.
func (p *Protocol) values(record uint64) ([]int, error) {
	vals := make([]int, len(p.cfg.Cardinalities))
	for i := range vals {
		v := int((record >> uint(p.offsets[i])) & ((1 << uint(p.widths[i])) - 1))
		if v >= p.cfg.Cardinalities[i] {
			return nil, fmt.Errorf("efronstein: record encodes value %d for attribute %d (cardinality %d)",
				v, i, p.cfg.Cardinalities[i])
		}
		vals[i] = v
	}
	return vals, nil
}

type client struct{ p *Protocol }

// Perturb samples a coefficient, evaluates it on the record, rounds the
// bounded value to one unbiased bit, and flips that bit with
// eps-randomized response.
func (c *client) Perturb(record uint64, r *rng.RNG) (core.Report, error) {
	vals, err := c.p.values(record)
	if err != nil {
		return core.Report{}, err
	}
	idx := r.Intn(len(c.p.coeffs))
	co := &c.p.coeffs[idx]
	v := 1.0
	for i, a := range co.attrs {
		v *= c.p.bases[a][co.levels[i]][vals[a]]
	}
	// Unbiased one-bit rounding of v in [-B, B]: P(+1) = 1/2 + v/2B.
	q := 0.5 + v/(2*co.bound)
	bit := r.Bernoulli(q)
	sign := 1.0
	if !bit {
		sign = -1
	}
	sign = c.p.rr.PerturbSign(sign, r)
	return core.Report{Index: uint64(idx), Sign: int8(sign)}, nil
}

// Aggregator accumulates InpES reports and reconstructs categorical
// marginals.
type Aggregator struct {
	p      *Protocol
	sums   []int64
	counts []int64
	n      int
}

// N returns the number of reports consumed.
func (a *Aggregator) N() int { return a.n }

// Consume incorporates one report.
func (a *Aggregator) Consume(rep core.Report) error {
	if rep.Index >= uint64(len(a.p.coeffs)) {
		return fmt.Errorf("efronstein: coefficient index %d out of range", rep.Index)
	}
	if rep.Sign != 1 && rep.Sign != -1 {
		return fmt.Errorf("efronstein: sign %d is not +-1", rep.Sign)
	}
	a.sums[rep.Index] += int64(rep.Sign)
	a.counts[rep.Index]++
	a.n++
	return nil
}

// ConsumeBatch incorporates a batch of reports; see core.Aggregator.
func (a *Aggregator) ConsumeBatch(reps []core.Report) error {
	return core.ConsumeAll(a, reps)
}

// Merge folds another InpES aggregator into this one.
func (a *Aggregator) Merge(other core.Aggregator) error {
	o, ok := other.(*Aggregator)
	if !ok {
		return fmt.Errorf("efronstein: merging %T into InpES aggregator", other)
	}
	for i := range a.sums {
		a.sums[i] += o.sums[i]
		a.counts[i] += o.counts[i]
	}
	a.n += o.n
	return nil
}

// stateKindES continues the state-kind numbering of internal/core and
// internal/freqoracle; part of the persisted snapshot format.
const (
	stateKindES  byte = 10
	stateVersion byte = 1
)

// MarshalState serializes the per-coefficient counters; see
// core.Aggregator.
func (a *Aggregator) MarshalState() ([]byte, error) {
	e := wire.NewStateEncoder(stateKindES, stateVersion)
	e.Uvarint(uint64(a.n))
	e.Int64s(a.sums)
	e.Int64s(a.counts)
	return e.Bytes(), nil
}

// UnmarshalState replaces the per-coefficient counters; see
// core.Aggregator.
func (a *Aggregator) UnmarshalState(data []byte) error {
	d, err := wire.NewStateDecoder(data, stateKindES, stateVersion)
	if err != nil {
		return fmt.Errorf("efronstein: state: %w", err)
	}
	n := d.Count()
	sums := d.Int64s(len(a.p.coeffs))
	counts := d.Int64s(len(a.p.coeffs))
	if err := d.Finish(); err != nil {
		return fmt.Errorf("efronstein: state: %w", err)
	}
	var total int64
	for i, c := range counts {
		if c < 0 || sums[i] > c || sums[i] < -c {
			return fmt.Errorf("efronstein: state: coefficient %d has sum %d over %d reports", i, sums[i], c)
		}
		total += c
	}
	if total != int64(n) {
		return fmt.Errorf("efronstein: state: coefficient counts sum to %d, want %d reports", total, n)
	}
	a.n, a.sums, a.counts = n, sums, counts
	return nil
}

// theta returns the unbiased estimate of coefficient i:
// E[sign] = (2p-1) * v/B, so theta = B * mean / (2p-1).
func (a *Aggregator) theta(i int) float64 {
	if a.counts[i] == 0 {
		return 0
	}
	mean := float64(a.sums[i]) / float64(a.counts[i])
	return a.p.coeffs[i].bound * a.p.rr.UnbiasSign(mean)
}

// EstimateCategorical reconstructs the joint distribution of the given
// attribute subset (at most K attributes) as a dense vector in
// mixed-radix order: index = v_{a0} + r_{a0}*(v_{a1} + ...).
func (a *Aggregator) EstimateCategorical(attrs []int) ([]float64, error) {
	if a.n == 0 {
		return nil, fmt.Errorf("efronstein: no reports")
	}
	if len(attrs) == 0 || len(attrs) > a.p.cfg.K {
		return nil, fmt.Errorf("efronstein: marginal over %d attributes unsupported (k=%d)", len(attrs), a.p.cfg.K)
	}
	seen := map[int]bool{}
	size := 1
	for _, at := range attrs {
		if at < 0 || at >= len(a.p.cfg.Cardinalities) {
			return nil, fmt.Errorf("efronstein: attribute %d out of range", at)
		}
		if seen[at] {
			return nil, fmt.Errorf("efronstein: attribute %d repeated", at)
		}
		seen[at] = true
		size *= a.p.cfg.Cardinalities[at]
	}
	attrPos := map[int]int{}
	for i, at := range attrs {
		attrPos[at] = i
	}
	out := make([]float64, size)
	inv := 1 / float64(size)
	// Start from the constant coefficient (theta_0 = 1)...
	for cell := range out {
		out[cell] = inv
	}
	// ...and add every coefficient supported inside attrs.
	for i := range a.p.coeffs {
		co := &a.p.coeffs[i]
		inside := true
		for _, at := range co.attrs {
			if !seen[at] {
				inside = false
				break
			}
		}
		if !inside {
			continue
		}
		th := a.theta(i)
		if th == 0 {
			continue
		}
		for cell := 0; cell < size; cell++ {
			vals := a.decodeCell(cell, attrs)
			prod := th
			for j, at := range co.attrs {
				prod *= a.p.bases[at][co.levels[j]][vals[attrPos[at]]]
			}
			out[cell] += inv * prod
		}
	}
	return out, nil
}

// decodeCell unpacks a mixed-radix cell index into per-attribute values.
func (a *Aggregator) decodeCell(cell int, attrs []int) []int {
	vals := make([]int, len(attrs))
	for i, at := range attrs {
		r := a.p.cfg.Cardinalities[at]
		vals[i] = cell % r
		cell /= r
	}
	return vals
}

// Estimate satisfies core.Aggregator: beta must be the union of the bit
// groups of some attribute subset (as produced by
// dataset.Categorical.MaskFor); the reconstructed categorical marginal is
// written into the compact bit-group cells, with impossible encodings 0.
func (a *Aggregator) Estimate(beta uint64) (*marginal.Table, error) {
	attrs, err := a.attrsForMask(beta)
	if err != nil {
		return nil, err
	}
	dist, err := a.EstimateCategorical(attrs)
	if err != nil {
		return nil, err
	}
	tab, err := marginal.New(beta)
	if err != nil {
		return nil, err
	}
	for cell, v := range dist {
		vals := a.decodeCell(cell, attrs)
		var full uint64
		for i, at := range attrs {
			full |= uint64(vals[i]) << uint(a.p.offsets[at])
		}
		tab.SetCell(full, v)
	}
	return tab, nil
}

// attrsForMask maps a bit-group union back to the attribute list.
func (a *Aggregator) attrsForMask(beta uint64) ([]int, error) {
	var attrs []int
	var covered uint64
	for i, g := range a.p.groups {
		if beta&g == g {
			attrs = append(attrs, i)
			covered |= g
		}
	}
	if covered != beta {
		return nil, fmt.Errorf("efronstein: mask %b does not align with attribute bit groups", beta)
	}
	return attrs, nil
}

// MaskFor returns the encoded-record mask covering the given attributes,
// mirroring dataset.Categorical.MaskFor for this protocol's layout.
func (p *Protocol) MaskFor(attrs ...int) (uint64, error) {
	var m uint64
	for _, at := range attrs {
		if at < 0 || at >= len(p.groups) {
			return 0, fmt.Errorf("efronstein: attribute %d out of range", at)
		}
		m |= p.groups[at]
	}
	return m, nil
}

// ExactCategorical computes the exact mixed-radix joint distribution of
// the attribute subset from categorical records, for evaluation.
func ExactCategorical(c *dataset.Categorical, attrs []int) ([]float64, error) {
	if len(c.Records) == 0 {
		return nil, fmt.Errorf("efronstein: no records")
	}
	size := 1
	for _, at := range attrs {
		if at < 0 || at >= len(c.Cardinalities) {
			return nil, fmt.Errorf("efronstein: attribute %d out of range", at)
		}
		size *= c.Cardinalities[at]
	}
	out := make([]float64, size)
	w := 1 / float64(len(c.Records))
	for _, rec := range c.Records {
		idx := 0
		stride := 1
		for _, at := range attrs {
			idx += int(rec[at]) * stride
			stride *= c.Cardinalities[at]
		}
		out[idx] += w
	}
	return out, nil
}
