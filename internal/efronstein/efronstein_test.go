package efronstein

import (
	"bytes"
	"math"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/vec"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBasisOrthonormal(t *testing.T) {
	for _, r := range []int{2, 3, 4, 5, 7, 16} {
		chi, err := Basis(r)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < r; j++ {
			for k := 0; k < r; k++ {
				var dot float64
				for x := 0; x < r; x++ {
					dot += chi[j][x] * chi[k][x]
				}
				dot /= float64(r)
				want := 0.0
				if j == k {
					want = 1
				}
				if !almostEq(dot, want, 1e-10) {
					t.Errorf("r=%d: <chi_%d, chi_%d> = %v, want %v", r, j, k, dot, want)
				}
			}
		}
		// chi_0 is the constant 1.
		for x := 0; x < r; x++ {
			if chi[0][x] != 1 {
				t.Errorf("r=%d: chi_0[%d] = %v", r, x, chi[0][x])
			}
		}
	}
	if _, err := Basis(1); err == nil {
		t.Error("r=1 should error")
	}
}

func TestBasisReducesToRademacherForBinary(t *testing.T) {
	// For r=2 the non-constant basis function is +-1 — the Hadamard
	// character — up to sign.
	chi, err := Basis(2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(math.Abs(chi[1][0]), 1, 1e-12) || !almostEq(math.Abs(chi[1][1]), 1, 1e-12) {
		t.Errorf("binary basis should be +-1, got %v", chi[1])
	}
	if chi[1][0]*chi[1][1] > 0 {
		t.Error("binary basis values should have opposite signs")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Cardinalities: nil, K: 1, Epsilon: 1}); err == nil {
		t.Error("no attributes should error")
	}
	if _, err := New(Config{Cardinalities: []int{3, 4}, K: 0, Epsilon: 1}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := New(Config{Cardinalities: []int{3, 4}, K: 3, Epsilon: 1}); err == nil {
		t.Error("k>d should error")
	}
	if _, err := New(Config{Cardinalities: []int{3}, K: 1, Epsilon: 0}); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := New(Config{Cardinalities: []int{1}, K: 1, Epsilon: 1}); err == nil {
		t.Error("cardinality 1 should error")
	}
}

func TestCoefficientEnumeration(t *testing.T) {
	// Cardinalities (3, 4), k=2: singles 2 + 3, pairs 2*3 => 11.
	p, err := New(Config{Cardinalities: []int{3, 4}, K: 2, Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CoefficientCount(); got != 11 {
		t.Errorf("|T| = %d, want 11", got)
	}
	if p.Name() != "InpES" {
		t.Errorf("name = %q", p.Name())
	}
	// Communication: ceil(log2 11) + 1 = 4 + 1.
	if got := p.CommunicationBits(); got != 5 {
		t.Errorf("comm bits = %d, want 5", got)
	}
}

func TestEndToEndCategoricalAccuracy(t *testing.T) {
	cards := []int{4, 3, 5}
	cat, err := dataset.NewCategoricalCorrelated(200000, cards, 1)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := cat.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Cardinalities: cards, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := core.Run(p, bin.Records, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	agg := run.Agg.(*Aggregator)
	for _, attrs := range [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}} {
		got, err := agg.EstimateCategorical(attrs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExactCategorical(cat, attrs)
		if err != nil {
			t.Fatal(err)
		}
		if tv := vec.TVDist(got, want); tv > 0.09 {
			t.Errorf("attrs %v: TV = %v, want < 0.09", attrs, tv)
		}
	}
}

func TestEstimateViaBinaryMaskMatchesCategorical(t *testing.T) {
	cards := []int{3, 4}
	cat, err := dataset.NewCategoricalCorrelated(100000, cards, 2)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := cat.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Cardinalities: cards, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := core.Run(p, bin.Records, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	agg := run.Agg.(*Aggregator)
	mask, err := p.MaskFor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := agg.Estimate(mask)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := agg.EstimateCategorical([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Each valid (v0, v1) pair must map to the same value via the table.
	for v0 := 0; v0 < 3; v0++ {
		for v1 := 0; v1 < 4; v1++ {
			full := uint64(v0) | uint64(v1)<<2
			got := tab.Cell(full)
			want := direct[v0+3*v1]
			if !almostEq(got, want, 1e-12) {
				t.Errorf("cell (%d,%d): table %v vs direct %v", v0, v1, got, want)
			}
		}
	}
	// The paper's comparison: the encoded-mask estimate aligns with the
	// exact binary marginal of the encoded dataset.
	exact, err := bin.Marginal(mask)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := tab.TVDistance(exact)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.05 {
		t.Errorf("binary-mask TV = %v, want < 0.05", tv)
	}
}

func TestEstimateRejectsMisalignedMask(t *testing.T) {
	p, err := New(Config{Cardinalities: []int{3, 4}, K: 2, Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator().(*Aggregator)
	rep, err := p.NewClient().Perturb(0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Consume(rep); err != nil {
		t.Fatal(err)
	}
	// Bit 0 alone is half of attribute 0's group.
	if _, err := agg.Estimate(0b1); err == nil {
		t.Error("misaligned mask should error")
	}
}

func TestAggregatorValidation(t *testing.T) {
	p, _ := New(Config{Cardinalities: []int{3, 3}, K: 1, Epsilon: 1})
	agg := p.NewAggregator().(*Aggregator)
	if err := agg.Consume(core.Report{Index: 999, Sign: 1}); err == nil {
		t.Error("out-of-range coefficient should error")
	}
	if err := agg.Consume(core.Report{Index: 0, Sign: 0}); err == nil {
		t.Error("sign 0 should error")
	}
	if _, err := agg.EstimateCategorical([]int{0}); err == nil {
		t.Error("empty aggregator should error")
	}
	_ = agg.Consume(core.Report{Index: 0, Sign: 1})
	if _, err := agg.EstimateCategorical([]int{0, 1}); err == nil {
		t.Error("marginal above k should error")
	}
	if _, err := agg.EstimateCategorical([]int{0, 0}); err == nil {
		t.Error("repeated attribute should error")
	}
	if _, err := agg.EstimateCategorical([]int{5}); err == nil {
		t.Error("unknown attribute should error")
	}
	other, _ := core.New(core.InpHT, core.Config{D: 4, K: 1, Epsilon: 1})
	if err := agg.Merge(other.NewAggregator()); err == nil {
		t.Error("foreign merge should error")
	}
}

func TestClientRejectsInvalidEncoding(t *testing.T) {
	// Cardinality 3 uses 2 bits; value 3 is an invalid encoding.
	p, _ := New(Config{Cardinalities: []int{3}, K: 1, Epsilon: 1})
	if _, err := p.NewClient().Perturb(0b11, rng.New(1)); err == nil {
		t.Error("invalid encoded value should error")
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	cards := []int{3, 4}
	p, _ := New(Config{Cardinalities: cards, K: 2, Epsilon: 2})
	client := p.NewClient()
	r := rng.New(5)
	whole := p.NewAggregator()
	left := p.NewAggregator()
	right := p.NewAggregator()
	for i := 0; i < 3000; i++ {
		rec := uint64(i%3) | uint64(i%4)<<2
		rep, err := client.Perturb(rec, r)
		if err != nil {
			t.Fatal(err)
		}
		_ = whole.Consume(rep)
		if i%2 == 0 {
			_ = left.Consume(rep)
		} else {
			_ = right.Consume(rep)
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	a, err := whole.(*Aggregator).EstimateCategorical([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := left.(*Aggregator).EstimateCategorical([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if vec.TVDist(a, b) > 1e-12 {
		t.Error("merged estimate differs from sequential")
	}
}

func TestMarginalMassNearOne(t *testing.T) {
	cards := []int{5, 4}
	cat, err := dataset.NewCategoricalCorrelated(120000, cards, 3)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := cat.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Cardinalities: cards, K: 2, Epsilon: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	run, err := core.Run(p, bin.Records, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := run.Agg.(*Aggregator).EstimateCategorical([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// The constant coefficient guarantees the estimate integrates to 1.
	if !almostEq(vec.Sum(dist), 1, 1e-9) {
		t.Errorf("estimated mass = %v", vec.Sum(dist))
	}
}

func TestStateRoundTrip(t *testing.T) {
	p, err := New(Config{Cardinalities: []int{3, 4, 2}, K: 2, Epsilon: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator()
	client := p.NewClient()
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		record := uint64(i%3)<<uint(p.offsets[0]) |
			uint64((i/3)%4)<<uint(p.offsets[1]) |
			uint64((i/12)%2)<<uint(p.offsets[2])
		rep, err := client.Perturb(record, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := agg.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored := p.NewAggregator().(*Aggregator)
	if err := restored.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if restored.N() != agg.N() {
		t.Fatalf("restored N = %d, want %d", restored.N(), agg.N())
	}
	again, err := restored.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("re-marshaled state differs")
	}
	want, err := agg.(*Aggregator).EstimateCategorical([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.EstimateCategorical([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for c := range want {
		if math.Float64bits(got[c]) != math.Float64bits(want[c]) {
			t.Fatalf("cell %d: %v vs %v", c, got[c], want[c])
		}
	}
}
