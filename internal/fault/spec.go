package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the -fault-spec dev-flag grammar into rules:
//
//	spec := rule (';' rule)*
//	rule := site '=' mode (':' opt)*
//	mode := 'error' | 'latency' | 'corrupt'
//	opt  := 'after=' N | 'times=' N | 'prob=' F | 'seed=' N
//	      | 'delay=' duration | 'msg=' text
//
// Example:
//
//	store.wal.append=error:after=50:times=30:msg=no space left on device;cluster.pull.body=corrupt:times=8:seed=7
//
// times defaults to 0 (persistent); use times=1 for error-once. msg
// consumes the remainder of its rule, so it must be the last option.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		site, rest, ok := strings.Cut(raw, "=")
		site = strings.TrimSpace(site)
		if !ok || site == "" {
			return nil, fmt.Errorf("fault spec %q: want site=mode[:opts]", raw)
		}
		parts := strings.Split(rest, ":")
		rule := Rule{Site: site}
		switch strings.TrimSpace(parts[0]) {
		case "error":
			rule.Mode = ModeError
		case "latency":
			rule.Mode = ModeLatency
		case "corrupt":
			rule.Mode = ModeCorrupt
		default:
			return nil, fmt.Errorf("fault spec %q: unknown mode %q", raw, parts[0])
		}
		for i := 1; i < len(parts); i++ {
			key, val, ok := strings.Cut(parts[i], "=")
			if !ok {
				return nil, fmt.Errorf("fault spec %q: bad option %q", raw, parts[i])
			}
			key = strings.TrimSpace(key)
			var err error
			switch key {
			case "after":
				rule.After, err = strconv.Atoi(val)
			case "times":
				rule.Times, err = strconv.Atoi(val)
			case "prob":
				rule.Prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (rule.Prob < 0 || rule.Prob > 1) {
					err = fmt.Errorf("prob %v out of [0,1]", rule.Prob)
				}
			case "seed":
				rule.Seed, err = strconv.ParseUint(val, 10, 64)
			case "delay":
				rule.Delay, err = time.ParseDuration(val)
			case "msg":
				// msg swallows the rest of the rule, colons included.
				rule.Msg = strings.Join(append([]string{val}, parts[i+1:]...), ":")
				i = len(parts)
			default:
				return nil, fmt.Errorf("fault spec %q: unknown option %q", raw, key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault spec %q: option %q: %v", raw, key, err)
			}
		}
		if rule.Mode == ModeLatency && rule.Delay <= 0 {
			return nil, fmt.Errorf("fault spec %q: latency rule needs delay=", raw)
		}
		if rule.After < 0 || rule.Times < 0 {
			return nil, fmt.Errorf("fault spec %q: after/times must be >= 0", raw)
		}
		rules = append(rules, rule)
	}
	return rules, nil
}
