package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	r := New()
	if r.Enabled() {
		t.Fatal("fresh registry reports enabled")
	}
	if err := r.Hit("any.site"); err != nil {
		t.Fatalf("disarmed Hit: %v", err)
	}
	b := []byte("payload")
	if got := r.Mangle("any.site", b); &got[0] != &b[0] {
		t.Fatal("disarmed Mangle copied the payload")
	}
}

func TestErrorOnceSchedule(t *testing.T) {
	r := New()
	r.Arm(Rule{Site: "s", Mode: ModeError, After: 2, Times: 1, Msg: "boom"})
	for i := 1; i <= 5; i++ {
		err := r.Hit("s")
		if i == 3 {
			if err == nil {
				t.Fatalf("call %d: want injected error", i)
			}
			if !IsInjected(err) {
				t.Fatalf("call %d: error not InjectedError: %v", i, err)
			}
			var ie *InjectedError
			errors.As(err, &ie)
			if ie.Site != "s" || ie.Msg != "boom" {
				t.Fatalf("call %d: wrong error payload: %+v", i, ie)
			}
		} else if err != nil {
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
}

func TestPersistentErrorUntilDisarm(t *testing.T) {
	r := New()
	r.Arm(Rule{Site: "s", Mode: ModeError}) // times=0 → forever
	for i := 0; i < 10; i++ {
		if r.Hit("s") == nil {
			t.Fatalf("call %d: persistent rule did not fire", i)
		}
	}
	if r.Fired() != 10 {
		t.Fatalf("Fired() = %d, want 10", r.Fired())
	}
	r.Disarm()
	if r.Hit("s") != nil {
		t.Fatal("rule survived Disarm")
	}
}

func TestLatencyInjection(t *testing.T) {
	r := New()
	r.Arm(Rule{Site: "s", Mode: ModeLatency, Delay: 30 * time.Millisecond, Times: 1})
	start := time.Now()
	if err := r.Hit("s"); err != nil {
		t.Fatalf("latency Hit returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency rule slept %v, want >= 30ms", d)
	}
	// Schedule exhausted: second call must be fast.
	start = time.Now()
	r.Hit("s")
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("exhausted latency rule still slept %v", d)
	}
}

func TestCorruptionDeterministicAndCopies(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 256)
	orig := bytes.Clone(payload)

	r1 := New()
	r1.Arm(Rule{Site: "s", Mode: ModeCorrupt, Seed: 42})
	got1 := r1.Mangle("s", payload)

	if !bytes.Equal(payload, orig) {
		t.Fatal("Mangle modified the input slice")
	}
	if bytes.Equal(got1, orig) {
		t.Fatal("Mangle did not corrupt the payload")
	}

	r2 := New()
	r2.Arm(Rule{Site: "s", Mode: ModeCorrupt, Seed: 42})
	got2 := r2.Mangle("s", orig)
	if !bytes.Equal(got1, got2) {
		t.Fatal("same seed produced different corruption")
	}

	r3 := New()
	r3.Arm(Rule{Site: "s", Mode: ModeCorrupt, Seed: 43})
	got3 := r3.Mangle("s", orig)
	if bytes.Equal(got1, got3) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestSitesAreIndependent(t *testing.T) {
	r := New()
	r.Arm(Rule{Site: "a", Mode: ModeError})
	if err := r.Hit("b"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if err := r.Hit("a"); err == nil {
		t.Fatal("armed site did not fire")
	}
	stats := r.Stats()
	if len(stats) != 1 || stats[0].Site != "a" || stats[0].Calls != 1 || stats[0].Fired != 1 {
		t.Fatalf("unexpected stats: %+v", stats)
	}
}

func TestProbZeroAndOne(t *testing.T) {
	r := New()
	r.Arm(Rule{Site: "always", Mode: ModeError, Prob: 1})
	r.Arm(Rule{Site: "default", Mode: ModeError}) // prob 0 means "always" too
	if r.Hit("always") == nil || r.Hit("default") == nil {
		t.Fatal("prob 0/1 rules must always fire")
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec(
		"store.wal.append=error:after=50:times=30:msg=no space left on device; " +
			"cluster.pull.body=corrupt:times=8:seed=7;" +
			"server.ingest.admit=latency:delay=5ms:prob=0.5",
	)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	want0 := Rule{Site: "store.wal.append", Mode: ModeError, After: 50, Times: 30, Msg: "no space left on device"}
	if rules[0] != want0 {
		t.Fatalf("rule 0 = %+v, want %+v", rules[0], want0)
	}
	want1 := Rule{Site: "cluster.pull.body", Mode: ModeCorrupt, Times: 8, Seed: 7}
	if rules[1] != want1 {
		t.Fatalf("rule 1 = %+v, want %+v", rules[1], want1)
	}
	want2 := Rule{Site: "server.ingest.admit", Mode: ModeLatency, Delay: 5 * time.Millisecond, Prob: 0.5}
	if rules[2] != want2 {
		t.Fatalf("rule 2 = %+v, want %+v", rules[2], want2)
	}
}

func TestParseSpecMsgSwallowsColons(t *testing.T) {
	rules, err := ParseSpec("s=error:msg=a:b:c")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if rules[0].Msg != "a:b:c" {
		t.Fatalf("msg = %q, want %q", rules[0].Msg, "a:b:c")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"nosite",
		"s=explode",
		"s=error:bogus=1",
		"s=error:times=x",
		"s=latency",          // missing delay
		"s=error:prob=1.5",   // out of range
		"s=error:after=-1",   // negative
		"s=error:timesbogus", // option without '='
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestParseSpecEmpty(t *testing.T) {
	rules, err := ParseSpec("")
	if err != nil || len(rules) != 0 {
		t.Fatalf("empty spec: rules=%v err=%v", rules, err)
	}
}
