// Package fault is a zero-dependency, deterministic fault-injection
// registry. Code under test declares named sites (plain strings like
// "store.wal.append") and consults the package at each one:
//
//	if err := fault.Hit(siteWALAppend); err != nil {
//	    return err // injected failure
//	}
//	body = fault.Mangle(siteClusterPullBody, body)
//
// When no rules are armed — the production steady state — every call
// costs a single atomic load and returns immediately; there are no
// locks, allocations, or map lookups on the disarmed path.
//
// Rules are armed programmatically (tests) via Arm, or from the
// -fault-spec dev flag via ParseSpec. Schedules are deterministic:
// each rule carries its own call counter, so "fail calls 51..80 at
// this site" replays identically run to run, and corruption is driven
// by a seeded PRNG so a corrupt frame is byte-identical across runs
// with the same seed.
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed rule does when its schedule fires.
type Mode int

const (
	// ModeError makes Hit return an injected error.
	ModeError Mode = iota
	// ModeLatency makes Hit sleep for Rule.Delay before returning nil.
	ModeLatency
	// ModeCorrupt makes Mangle flip deterministic pseudo-random bits
	// in the payload.
	ModeCorrupt
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModeCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Rule describes one armed fault. The schedule counts calls at the
// rule's site: the first After calls pass untouched, the next Times
// calls fire, and later calls pass again. Times == 0 means the rule
// fires forever once past After (an ENOSPC-style persistent fault).
type Rule struct {
	Site  string
	Mode  Mode
	After int           // skip this many calls before firing
	Times int           // fire for this many calls; 0 = persistent
	Prob  float64       // fire probability per eligible call; 0 or 1 = always
	Seed  uint64        // seeds the rule's private PRNG (Prob and corruption)
	Delay time.Duration // ModeLatency sleep duration
	Msg   string        // ModeError message override
}

// InjectedError is the error type returned by fired ModeError rules,
// so tests and callers can distinguish injected failures with
// errors.As when needed.
type InjectedError struct {
	Site string
	Msg  string
}

func (e *InjectedError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("fault: %s: %s", e.Site, e.Msg)
	}
	return fmt.Sprintf("fault: injected error at %s", e.Site)
}

// IsInjected reports whether err originated from a fired ModeError rule.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

type armedRule struct {
	Rule
	calls atomic.Uint64 // consultations at this site since arming
	fired atomic.Uint64 // times the rule actually injected
	mu    sync.Mutex    // guards rng
	rng   *rand.Rand
}

// eligible advances the rule's call counter and reports whether this
// call should fire, honouring After, Times, and Prob deterministically.
func (ar *armedRule) eligible() bool {
	n := ar.calls.Add(1)
	if n <= uint64(ar.After) {
		return false
	}
	if ar.Times > 0 && n > uint64(ar.After)+uint64(ar.Times) {
		return false
	}
	if ar.Prob > 0 && ar.Prob < 1 {
		ar.mu.Lock()
		roll := ar.rng.Float64()
		ar.mu.Unlock()
		if roll >= ar.Prob {
			return false
		}
	}
	ar.fired.Add(1)
	return true
}

// Registry holds armed rules keyed by site. The zero value is unusable;
// construct with New. Most code uses the package-level Default registry
// through Hit, Mangle, Arm, and Disarm.
type Registry struct {
	armed atomic.Bool
	mu    sync.RWMutex
	rules map[string][]*armedRule
}

// New returns an empty, disarmed registry.
func New() *Registry {
	return &Registry{rules: make(map[string][]*armedRule)}
}

// Default is the process-wide registry consulted by the package-level
// convenience functions.
var Default = New()

// Arm adds rules to the registry and enables injection. Call counters
// start fresh for the added rules; existing rules are untouched.
func (r *Registry) Arm(rules ...Rule) {
	if len(rules) == 0 {
		return
	}
	r.mu.Lock()
	for _, rule := range rules {
		ar := &armedRule{Rule: rule}
		ar.rng = rand.New(rand.NewPCG(rule.Seed, rule.Seed^0x9e3779b97f4a7c15))
		r.rules[rule.Site] = append(r.rules[rule.Site], ar)
	}
	r.mu.Unlock()
	r.armed.Store(true)
}

// Disarm removes every rule and restores the single-atomic-load
// fast path.
func (r *Registry) Disarm() {
	r.armed.Store(false)
	r.mu.Lock()
	r.rules = make(map[string][]*armedRule)
	r.mu.Unlock()
}

// Enabled reports whether any rules are armed.
func (r *Registry) Enabled() bool { return r.armed.Load() }

// Hit consults error and latency rules at site. Latency rules that
// fire sleep inline; the first error rule that fires returns its
// injected error. Disarmed, it costs one atomic load.
func (r *Registry) Hit(site string) error {
	if !r.armed.Load() {
		return nil
	}
	r.mu.RLock()
	rules := r.rules[site]
	r.mu.RUnlock()
	var err error
	for _, ar := range rules {
		switch ar.Mode {
		case ModeLatency:
			if ar.eligible() {
				time.Sleep(ar.Delay)
			}
		case ModeError:
			if err == nil && ar.eligible() {
				err = &InjectedError{Site: site, Msg: ar.Msg}
			}
		}
	}
	return err
}

// Mangle consults corruption rules at site. If one fires it returns a
// corrupted copy of b (the input slice is never modified); otherwise
// it returns b unchanged. Disarmed, it costs one atomic load.
func (r *Registry) Mangle(site string, b []byte) []byte {
	if !r.armed.Load() {
		return b
	}
	r.mu.RLock()
	rules := r.rules[site]
	r.mu.RUnlock()
	for _, ar := range rules {
		if ar.Mode != ModeCorrupt || !ar.eligible() {
			continue
		}
		if len(b) == 0 {
			continue
		}
		out := make([]byte, len(b))
		copy(out, b)
		ar.mu.Lock()
		// Flip a handful of bits spread across the payload: enough to
		// defeat any CRC, deterministic under the rule's seed.
		flips := 1 + len(out)/64
		for i := 0; i < flips; i++ {
			pos := ar.rng.IntN(len(out))
			bit := ar.rng.IntN(8)
			out[pos] ^= 1 << bit
		}
		ar.mu.Unlock()
		b = out
	}
	return b
}

// SiteStat reports per-site injection activity, for metrics and test
// assertions.
type SiteStat struct {
	Site  string `json:"site"`
	Calls uint64 `json:"calls"`
	Fired uint64 `json:"fired"`
}

// Stats returns activity for every armed site, sorted by site name.
func (r *Registry) Stats() []SiteStat {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bySite := make(map[string]*SiteStat)
	order := make([]string, 0, len(r.rules))
	for site, rules := range r.rules {
		st := &SiteStat{Site: site}
		for _, ar := range rules {
			st.Calls += ar.calls.Load()
			st.Fired += ar.fired.Load()
		}
		bySite[site] = st
		order = append(order, site)
	}
	sortStrings(order)
	out := make([]SiteStat, 0, len(order))
	for _, site := range order {
		out = append(out, *bySite[site])
	}
	return out
}

// Fired returns the total number of injections fired across all sites.
func (r *Registry) Fired() uint64 {
	var n uint64
	r.mu.RLock()
	for _, rules := range r.rules {
		for _, ar := range rules {
			n += ar.fired.Load()
		}
	}
	r.mu.RUnlock()
	return n
}

func sortStrings(s []string) {
	// Insertion sort: site counts are tiny and this keeps the package
	// dependency-free beyond the standard runtime.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Hit consults the Default registry at site. See Registry.Hit.
func Hit(site string) error {
	if !Default.armed.Load() {
		return nil
	}
	return Default.Hit(site)
}

// Mangle consults the Default registry at site. See Registry.Mangle.
func Mangle(site string, b []byte) []byte {
	if !Default.armed.Load() {
		return b
	}
	return Default.Mangle(site, b)
}

// Arm adds rules to the Default registry.
func Arm(rules ...Rule) { Default.Arm(rules...) }

// Disarm clears the Default registry.
func Disarm() { Default.Disarm() }

// Enabled reports whether the Default registry has armed rules.
func Enabled() bool { return Default.Enabled() }
