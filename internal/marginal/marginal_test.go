package marginal

import (
	"math"
	"testing"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomDist(r *rng.RNG, n int) []float64 {
	d := make([]float64, n)
	var sum float64
	for i := range d {
		d[i] = r.Float64()
		sum += d[i]
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

func TestNewAndUniform(t *testing.T) {
	tab, err := New(0b101)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cells) != 4 || tab.K() != 2 {
		t.Fatalf("unexpected table shape: %d cells, k=%d", len(tab.Cells), tab.K())
	}
	u, err := Uniform(0b11)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range u.Cells {
		if c != 0.25 {
			t.Fatalf("uniform cells = %v", u.Cells)
		}
	}
	big := uint64(1)<<27 - 1
	if _, err := New(big); err == nil {
		t.Error("should reject k > MaxTableAttributes")
	}
}

func TestFromCells(t *testing.T) {
	if _, err := FromCells(0b11, []float64{1, 2}); err == nil {
		t.Error("wrong cell count should error")
	}
	tab, err := FromCells(0b11, []float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Sum() != 1.0 {
		t.Errorf("Sum = %v", tab.Sum())
	}
}

func TestCellIndexing(t *testing.T) {
	tab, _ := New(0b0101)
	tab.SetCell(0b0100, 0.7)
	if got := tab.Cell(0b0100); got != 0.7 {
		t.Errorf("Cell = %v", got)
	}
	// Bits outside beta are ignored.
	if got := tab.Cell(0b1110); got != 0.7 {
		t.Errorf("Cell with extra bits = %v, want 0.7", got)
	}
}

func TestFromDistributionExample(t *testing.T) {
	// Paper Example 3.1: C_0101 groups full indices by their bits at
	// positions 0 and 2.
	r := rng.New(1)
	dist := randomDist(r, 16)
	tab, err := FromDistribution(dist, 4, 0b0101)
	if err != nil {
		t.Fatal(err)
	}
	want := dist[0b0000] + dist[0b0010] + dist[0b1000] + dist[0b1010]
	if !almostEq(tab.Cell(0b0000), want, 1e-12) {
		t.Errorf("cell 0000 = %v, want %v", tab.Cell(0b0000), want)
	}
	if !almostEq(tab.Sum(), 1, 1e-12) {
		t.Errorf("marginal mass = %v", tab.Sum())
	}
}

func TestFromDistributionErrors(t *testing.T) {
	if _, err := FromDistribution(make([]float64, 15), 4, 1); err == nil {
		t.Error("bad length should error")
	}
	if _, err := FromDistribution(make([]float64, 16), 4, 1<<5); err == nil {
		t.Error("beta outside d should error")
	}
}

func TestFromRecordsMatchesFromDistribution(t *testing.T) {
	r := rng.New(2)
	const d = 5
	records := make([]uint64, 4000)
	for i := range records {
		records[i] = r.Uint64n(1 << d)
	}
	dist := make([]float64, 1<<d)
	for _, rec := range records {
		dist[rec] += 1.0 / float64(len(records))
	}
	for _, beta := range bitops.MasksWithAtMostK(d, 1, 3) {
		a, err := FromRecords(records, beta)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FromDistribution(dist, d, beta)
		if err != nil {
			t.Fatal(err)
		}
		tv, err := a.TVDistance(b)
		if err != nil {
			t.Fatal(err)
		}
		if tv > 1e-10 {
			t.Fatalf("beta=%b: FromRecords and FromDistribution disagree (TV=%v)", beta, tv)
		}
	}
}

func TestFromRecordsEmpty(t *testing.T) {
	if _, err := FromRecords(nil, 1); err == nil {
		t.Error("empty records should error")
	}
}

func TestTVDistance(t *testing.T) {
	a, _ := FromCells(0b11, []float64{0.5, 0.5, 0, 0})
	b, _ := FromCells(0b11, []float64{0.25, 0.25, 0.25, 0.25})
	tv, err := a.TVDistance(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tv, 0.5, 1e-12) {
		t.Errorf("TV = %v, want 0.5", tv)
	}
	c, _ := New(0b101)
	if _, err := a.TVDistance(c); err == nil {
		t.Error("mismatched betas should error")
	}
}

func TestMarginalizeTo(t *testing.T) {
	r := rng.New(3)
	dist := randomDist(r, 1<<4)
	full, _ := FromDistribution(dist, 4, 0b0111)
	sub, err := full.MarginalizeTo(0b0101)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := FromDistribution(dist, 4, 0b0101)
	tv, _ := sub.TVDistance(direct)
	if tv > 1e-12 {
		t.Errorf("marginalization inconsistent with direct computation: TV=%v", tv)
	}
	if _, err := full.MarginalizeTo(0b1000); err == nil {
		t.Error("non-subset should error")
	}
}

func TestMarginalizePreservesMass(t *testing.T) {
	r := rng.New(4)
	dist := randomDist(r, 1<<6)
	full, _ := FromDistribution(dist, 6, 0b111000)
	for _, sub := range bitops.SubMasks(0b111000) {
		m, err := full.MarginalizeTo(sub)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(m.Sum(), 1, 1e-10) {
			t.Errorf("sub=%b mass = %v", sub, m.Sum())
		}
	}
}

func TestCellOfRecord(t *testing.T) {
	// Record 0b1010 restricted to beta=0b0110 has bits (1,0) at
	// positions (1,2) -> compact 0b01.
	if got := CellOfRecord(0b1010, 0b0110); got != 0b01 {
		t.Errorf("CellOfRecord = %b, want 01", got)
	}
}

func TestAddScaleClone(t *testing.T) {
	a, _ := FromCells(0b1, []float64{0.4, 0.6})
	b := a.Clone()
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if !almostEq(a.Cells[0], 0.8, 1e-12) {
		t.Errorf("Add failed: %v", a.Cells)
	}
	a.Scale(0.5)
	if !almostEq(a.Cells[0], 0.4, 1e-12) {
		t.Errorf("Scale failed: %v", a.Cells)
	}
	c, _ := New(0b10)
	if err := a.Add(c); err == nil {
		t.Error("Add with mismatched beta should error")
	}
	if b.Cells[0] != 0.4 {
		t.Error("Clone not independent")
	}
}

func TestProjectToSimplex(t *testing.T) {
	tab, _ := FromCells(0b11, []float64{0.6, 0.6, -0.1, -0.1})
	tab.ProjectToSimplex()
	var sum float64
	for _, c := range tab.Cells {
		if c < 0 {
			t.Errorf("negative cell after projection: %v", tab.Cells)
		}
		sum += c
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Errorf("projected mass = %v", sum)
	}
}

func TestAllKWay(t *testing.T) {
	if got := len(AllKWay(8, 2)); got != 28 {
		t.Errorf("AllKWay(8,2) has %d masks, want 28", got)
	}
}

type exactEstimator struct {
	records []uint64
}

func (e exactEstimator) Estimate(beta uint64) (*Table, error) {
	return FromRecords(e.records, beta)
}

func TestMeanTVZeroForExact(t *testing.T) {
	r := rng.New(5)
	records := make([]uint64, 1000)
	for i := range records {
		records[i] = r.Uint64n(1 << 6)
	}
	tv, err := MeanTV(exactEstimator{records}, records, AllKWay(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if tv != 0 {
		t.Errorf("exact estimator should have zero TV, got %v", tv)
	}
	if _, err := MeanTV(exactEstimator{records}, records, nil); err == nil {
		t.Error("empty beta list should error")
	}
}

func BenchmarkFromRecords(b *testing.B) {
	r := rng.New(1)
	records := make([]uint64, 100000)
	for i := range records {
		records[i] = r.Uint64n(1 << 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromRecords(records, 0b1010101); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarginalizeTo(b *testing.B) {
	r := rng.New(2)
	tab, _ := New(0b11111111)
	for c := range tab.Cells {
		tab.Cells[c] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.MarginalizeTo(0b1001); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFromRecordsParallelBitIdentical checks that the parallel counting
// path (len >= parallelRecordThreshold) produces the same table as the
// sequential loop: counts are integers, so partial-histogram merging is
// exact in any grouping.
func TestFromRecordsParallelBitIdentical(t *testing.T) {
	r := rng.New(11)
	records := make([]uint64, parallelRecordThreshold+123)
	for i := range records {
		records[i] = r.Uint64() & 0xff
	}
	const beta = 0b1011
	par, err := FromRecords(records, beta)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference below the threshold machinery.
	seq, err := New(beta)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		seq.Cells[bitops.Compress(rec, beta)]++
	}
	seq.Scale(1 / float64(len(records)))
	for c := range seq.Cells {
		if math.Float64bits(par.Cells[c]) != math.Float64bits(seq.Cells[c]) {
			t.Fatalf("cell %d: parallel %v vs sequential %v", c, par.Cells[c], seq.Cells[c])
		}
	}
}
