// Package marginal implements the marginal operator C_beta of Definition
// 3.2 and the marginal Table type exchanged between protocols, baselines,
// and applications.
//
// A marginal over the attribute subset beta (a bitmask over d attributes,
// |beta| = k) is stored as a dense vector of 2^k cells indexed compactly:
// cell c holds the (estimated) probability mass of the full-domain indices
// eta with bitops.Compress(eta, beta) == c. Tables computed from exact
// data are genuine probability distributions; tables estimated under LDP
// are unbiased but may have negative cells until post-processed.
package marginal

import (
	"fmt"
	"runtime"
	"sync"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/vec"
)

// MaxTableAttributes bounds |beta|: a table materializes 2^k cells.
const MaxTableAttributes = 26

// Table is a (possibly estimated) k-way marginal over attribute set Beta.
type Table struct {
	// Beta identifies the attribute subset of this marginal.
	Beta uint64
	// Cells holds the 2^k compactly-indexed cell values.
	Cells []float64
}

// New returns a zero-valued table over beta.
func New(beta uint64) (*Table, error) {
	k := bitops.OnesCount(beta)
	if k > MaxTableAttributes {
		return nil, fmt.Errorf("marginal: |beta| = %d exceeds limit %d", k, MaxTableAttributes)
	}
	return &Table{Beta: beta, Cells: make([]float64, 1<<uint(k))}, nil
}

// Uniform returns the uniform marginal over beta.
func Uniform(beta uint64) (*Table, error) {
	t, err := New(beta)
	if err != nil {
		return nil, err
	}
	copy(t.Cells, vec.Uniform(len(t.Cells)))
	return t, nil
}

// FromCells wraps an existing cell vector; len(cells) must be 2^|beta|.
func FromCells(beta uint64, cells []float64) (*Table, error) {
	k := bitops.OnesCount(beta)
	if len(cells) != 1<<uint(k) {
		return nil, fmt.Errorf("marginal: beta has %d attributes but %d cells given", k, len(cells))
	}
	return &Table{Beta: beta, Cells: cells}, nil
}

// K returns the number of attributes in this marginal.
func (t *Table) K() int { return bitops.OnesCount(t.Beta) }

// Cell returns the value at the full-domain index gamma (only the bits of
// gamma within Beta matter, matching the paper's indexing convention).
func (t *Table) Cell(gamma uint64) float64 {
	return t.Cells[bitops.Compress(gamma, t.Beta)]
}

// SetCell assigns the value at full-domain index gamma.
func (t *Table) SetCell(gamma uint64, v float64) {
	t.Cells[bitops.Compress(gamma, t.Beta)] = v
}

// Clone returns a deep copy of t.
func (t *Table) Clone() *Table {
	return &Table{Beta: t.Beta, Cells: vec.Clone(t.Cells)}
}

// Sum returns the total mass of the table (1 for exact marginals).
func (t *Table) Sum() float64 { return vec.Sum(t.Cells) }

// TVDistance returns the total variation distance to another table over
// the same beta (Definition 3.4).
func (t *Table) TVDistance(o *Table) (float64, error) {
	if t.Beta != o.Beta {
		return 0, fmt.Errorf("marginal: TV between different marginals %b and %b", t.Beta, o.Beta)
	}
	return vec.TVDist(t.Cells, o.Cells), nil
}

// ProjectToSimplex post-processes the table in place into a valid
// probability distribution (non-negative cells summing to one) and
// returns t. Applications that interpret cells as probabilities (chi^2,
// mutual information, model fitting) call this first.
func (t *Table) ProjectToSimplex() *Table {
	vec.ProjectToSimplex(t.Cells)
	return t
}

// MarginalizeTo sums out the attributes of t not present in subBeta,
// producing the marginal over subBeta. subBeta must be a subset of
// t.Beta.
func (t *Table) MarginalizeTo(subBeta uint64) (*Table, error) {
	if !bitops.IsSubset(subBeta, t.Beta) {
		return nil, fmt.Errorf("marginal: %b is not a subset of %b", subBeta, t.Beta)
	}
	out, err := New(subBeta)
	if err != nil {
		return nil, err
	}
	for c, v := range t.Cells {
		full := bitops.Expand(uint64(c), t.Beta)
		out.Cells[bitops.Compress(full, subBeta)] += v
	}
	return out, nil
}

// Scale multiplies all cells by f in place and returns t.
func (t *Table) Scale(f float64) *Table {
	vec.Scale(t.Cells, f)
	return t
}

// Add accumulates o into t (cells must align). Used to average estimates.
func (t *Table) Add(o *Table) error {
	if t.Beta != o.Beta {
		return fmt.Errorf("marginal: adding mismatched marginals %b and %b", t.Beta, o.Beta)
	}
	vec.Add(t.Cells, o.Cells)
	return nil
}

// FromDistribution computes the exact marginal C_beta(t) of a full
// distribution over 2^d cells (equation 3 of the paper).
func FromDistribution(dist []float64, d int, beta uint64) (*Table, error) {
	if len(dist) != 1<<uint(d) {
		return nil, fmt.Errorf("marginal: distribution has %d cells, want 2^%d", len(dist), d)
	}
	if beta >= 1<<uint(d) {
		return nil, fmt.Errorf("marginal: beta %b outside %d attributes", beta, d)
	}
	out, err := New(beta)
	if err != nil {
		return nil, err
	}
	for eta, v := range dist {
		out.Cells[bitops.Compress(uint64(eta), beta)] += v
	}
	return out, nil
}

// parallelRecordThreshold is the record count from which FromRecords
// counts in parallel. Cell counts are integers (exact in float64 up to
// 2^53), so partial histograms merge bit-identically in any grouping —
// parallelism never changes the result.
const parallelRecordThreshold = 1 << 16

// FromRecords computes the exact empirical marginal of a record stream
// without materializing the 2^d distribution, enabling exact answers for
// large d. Records are attribute bitmasks. Large streams are counted in
// parallel across goroutines; the result is identical either way.
func FromRecords(records []uint64, beta uint64) (*Table, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("marginal: no records")
	}
	out, err := New(beta)
	if err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	if len(records) < parallelRecordThreshold || workers == 1 {
		for _, rec := range records {
			out.Cells[bitops.Compress(rec, beta)]++
		}
	} else {
		chunk := (len(records) + workers - 1) / workers
		partials := make([][]float64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, min((w+1)*chunk, len(records))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				part := make([]float64, len(out.Cells))
				for _, rec := range records[lo:hi] {
					part[bitops.Compress(rec, beta)]++
				}
				partials[w] = part
			}(w, lo, hi)
		}
		wg.Wait()
		for _, part := range partials {
			if part == nil {
				continue
			}
			vec.Add(out.Cells, part)
		}
	}
	out.Scale(1 / float64(len(records)))
	return out, nil
}

// CellOfRecord returns the compact cell index that record rec occupies in
// the marginal beta. A single user's marginal is one-hot at this index
// (Section 3.2).
func CellOfRecord(rec, beta uint64) uint64 {
	return bitops.Compress(rec, beta)
}

// AllKWay enumerates the attribute masks of all C(d,k) k-way marginals.
func AllKWay(d, k int) []uint64 { return bitops.MasksWithExactlyK(d, k) }

// Estimator produces a marginal estimate for an attribute mask. Both the
// core protocols' aggregators and the baselines satisfy this.
type Estimator interface {
	Estimate(beta uint64) (*Table, error)
}

// MeanTV evaluates an estimator against exact marginals computed from the
// record stream, returning the mean total variation distance across the
// given attribute masks. This is the quality metric of every accuracy
// figure in the paper.
func MeanTV(est Estimator, records []uint64, betas []uint64) (float64, error) {
	if len(betas) == 0 {
		return 0, fmt.Errorf("marginal: no marginals to evaluate")
	}
	var total float64
	for _, beta := range betas {
		got, err := est.Estimate(beta)
		if err != nil {
			return 0, fmt.Errorf("estimating %b: %w", beta, err)
		}
		want, err := FromRecords(records, beta)
		if err != nil {
			return 0, err
		}
		tv, err := got.TVDistance(want)
		if err != nil {
			return 0, err
		}
		total += tv
	}
	return total / float64(len(betas)), nil
}
