package dataset

import (
	"testing"

	"ldpmarginals/internal/bitops"
)

func TestBitsFor(t *testing.T) {
	cases := []struct{ r, want int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {256, 8},
	}
	for _, c := range cases {
		if got := bitsFor(c.r); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestBinaryDimension(t *testing.T) {
	c := &Categorical{Cardinalities: []int{4, 3, 2}, Names: []string{"a", "b", "c"}}
	// 2 + 2 + 1 = 5 (Corollary 6.1's d2).
	if got := c.BinaryDimension(); got != 5 {
		t.Errorf("BinaryDimension = %d, want 5", got)
	}
}

func TestBitGroupAndMaskFor(t *testing.T) {
	c := &Categorical{Cardinalities: []int{4, 3, 2}, Names: []string{"a", "b", "c"}}
	g0, err := c.BitGroup(0)
	if err != nil || g0 != 0b00011 {
		t.Errorf("BitGroup(0) = %b, %v", g0, err)
	}
	g1, _ := c.BitGroup(1)
	if g1 != 0b01100 {
		t.Errorf("BitGroup(1) = %b", g1)
	}
	g2, _ := c.BitGroup(2)
	if g2 != 0b10000 {
		t.Errorf("BitGroup(2) = %b", g2)
	}
	m, err := c.MaskFor(0, 2)
	if err != nil || m != 0b10011 {
		t.Errorf("MaskFor(0,2) = %b, %v", m, err)
	}
	if _, err := c.BitGroup(3); err == nil {
		t.Error("out-of-range attribute should error")
	}
}

func TestEncodeBinaryRoundTrip(t *testing.T) {
	c := &Categorical{
		Cardinalities: []int{4, 3},
		Names:         []string{"color", "size"},
		Records:       [][]uint8{{3, 2}, {0, 0}, {1, 1}},
	}
	ds, err := c.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	if ds.D != 4 {
		t.Fatalf("binary d = %d, want 4", ds.D)
	}
	// Record {3, 2}: color=3 -> bits 11, size=2 -> bits 10 => 0b1011.
	if ds.Records[0] != 0b1011 {
		t.Errorf("encoded record = %04b, want 1011", ds.Records[0])
	}
	if ds.Records[1] != 0 {
		t.Errorf("zero record should encode to 0, got %b", ds.Records[1])
	}
	// Record {1, 1}: color=1 -> 01, size=1 -> 01 => 0b0101.
	if ds.Records[2] != 0b0101 {
		t.Errorf("encoded record = %04b, want 0101", ds.Records[2])
	}
}

func TestEncodeBinaryValidates(t *testing.T) {
	bad := &Categorical{
		Cardinalities: []int{2},
		Names:         []string{"x"},
		Records:       [][]uint8{{5}},
	}
	if _, err := bad.EncodeBinary(); err == nil {
		t.Error("out-of-range value should fail encoding")
	}
	huge := &Categorical{
		Cardinalities: []int{256, 256, 256, 256, 256, 256},
		Names:         []string{"a", "b", "c", "d", "e", "f"},
	}
	if _, err := huge.EncodeBinary(); err == nil {
		t.Error("binary dimension over limit should error")
	}
}

func TestDecodeCell(t *testing.T) {
	c := &Categorical{Cardinalities: []int{3, 2}, Names: []string{"a", "b"}}
	// Querying both attributes: cell layout is a's 2 bits then b's 1 bit.
	vals, ok := c.DecodeCell(0b101, 0, 1)
	if !ok || vals[0] != 1 || vals[1] != 1 {
		t.Errorf("DecodeCell = %v, %v", vals, ok)
	}
	// Cell with a-value 3 is invalid for cardinality 3.
	if _, ok := c.DecodeCell(0b011, 0, 1); ok {
		t.Error("invalid encoding should report !ok")
	}
}

func TestNewCategoricalCorrelated(t *testing.T) {
	c, err := NewCategoricalCorrelated(20000, []int{4, 4, 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Correlation through the shared latent level: large values of
	// attribute 0 should co-occur with large values of attribute 1.
	var bothHigh, aHigh, bHigh int
	n := len(c.Records)
	for _, rec := range c.Records {
		ha := rec[0] >= 2
		hb := rec[1] >= 2
		if ha {
			aHigh++
		}
		if hb {
			bHigh++
		}
		if ha && hb {
			bothHigh++
		}
	}
	joint := float64(bothHigh) / float64(n)
	indep := float64(aHigh) / float64(n) * float64(bHigh) / float64(n)
	if joint < indep+0.05 {
		t.Errorf("attributes not positively correlated: joint=%v indep=%v", joint, indep)
	}
	if _, err := NewCategoricalCorrelated(5, []int{1}, 1); err == nil {
		t.Error("cardinality 1 should error")
	}
	if _, err := NewCategoricalCorrelated(5, nil, 1); err == nil {
		t.Error("no cardinalities should error")
	}
}

func TestCategoricalEncodedMarginalConsistency(t *testing.T) {
	// End-to-end: exact marginal over the encoded bits of attributes
	// (0,1) must match direct counting of categorical values.
	c, err := NewCategoricalCorrelated(5000, []int{3, 4}, 13)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := c.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	mask, _ := c.MaskFor(0, 1)
	tab, err := ds.Marginal(mask)
	if err != nil {
		t.Fatal(err)
	}
	// Count (v0=2, v1=3) directly.
	direct := 0
	for _, rec := range c.Records {
		if rec[0] == 2 && rec[1] == 3 {
			direct++
		}
	}
	// Find the matching compact cell.
	var got float64
	for cell := range tab.Cells {
		vals, ok := c.DecodeCell(uint64(cell), 0, 1)
		if ok && vals[0] == 2 && vals[1] == 3 {
			got = tab.Cells[cell]
		}
	}
	want := float64(direct) / float64(len(c.Records))
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("encoded marginal cell = %v, direct count = %v", got, want)
	}
	_ = bitops.OnesCount(mask) // document that mask covers 4 bits
}
