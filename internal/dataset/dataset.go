// Package dataset provides the datasets of the paper's evaluation
// (Section 5.1) as reproducible synthetic generators, plus encoding and
// I/O utilities.
//
// The original study used NYC taxi trip records and MovieLens ratings.
// Neither raw dataset is available in this offline reproduction, so both
// are replaced by latent-factor generators that reproduce the statistical
// structure the paper relies on: the taxi generator realizes the exact
// dependent/independent attribute pairs exercised by the chi-squared study
// (Figure 7) and correlation heatmap (Figure 3); the movielens generator
// produces the all-positive pairwise correlations described in Section
// 5.1. DESIGN.md documents the substitution rationale.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
)

// Dataset is a collection of user records over D binary attributes. A
// record is a bitmask: bit a holds the value of attribute a.
type Dataset struct {
	// D is the number of binary attributes (at most bitops.MaxAttributes).
	D int
	// Names holds one label per attribute.
	Names []string
	// Records holds one bitmask per user.
	Records []uint64
}

// N returns the number of records.
func (ds *Dataset) N() int { return len(ds.Records) }

// Validate checks structural invariants: D within range, names aligned,
// records within the 2^D domain.
func (ds *Dataset) Validate() error {
	if ds.D <= 0 || ds.D > bitops.MaxAttributes {
		return fmt.Errorf("dataset: d=%d out of range (1..%d)", ds.D, bitops.MaxAttributes)
	}
	if len(ds.Names) != ds.D {
		return fmt.Errorf("dataset: %d names for %d attributes", len(ds.Names), ds.D)
	}
	limit := uint64(1) << uint(ds.D)
	for i, r := range ds.Records {
		if r >= limit {
			return fmt.Errorf("dataset: record %d (%b) outside %d-attribute domain", i, r, ds.D)
		}
	}
	return nil
}

// AttributeIndex returns the position of the named attribute, or -1.
func (ds *Dataset) AttributeIndex(name string) int {
	for i, n := range ds.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Mask builds an attribute mask from attribute names. Unknown names
// produce an error.
func (ds *Dataset) Mask(names ...string) (uint64, error) {
	var m uint64
	for _, n := range names {
		i := ds.AttributeIndex(n)
		if i < 0 {
			return 0, fmt.Errorf("dataset: unknown attribute %q", n)
		}
		m |= 1 << uint(i)
	}
	return m, nil
}

// Marginal computes the exact empirical marginal over beta.
func (ds *Dataset) Marginal(beta uint64) (*marginal.Table, error) {
	return marginal.FromRecords(ds.Records, beta)
}

// FullDistribution materializes the empirical distribution over all 2^D
// cells. It refuses d > 20 to bound memory; most code paths should use
// Marginal instead.
func (ds *Dataset) FullDistribution() ([]float64, error) {
	if ds.D > 20 {
		return nil, fmt.Errorf("dataset: full distribution for d=%d would need 2^%d cells", ds.D, ds.D)
	}
	if len(ds.Records) == 0 {
		return nil, fmt.Errorf("dataset: no records")
	}
	dist := make([]float64, 1<<uint(ds.D))
	w := 1 / float64(len(ds.Records))
	for _, r := range ds.Records {
		dist[r] += w
	}
	return dist, nil
}

// Sample draws n records uniformly with replacement, as the paper's
// experiments do when varying the population size N.
func (ds *Dataset) Sample(n int, r *rng.RNG) *Dataset {
	out := &Dataset{D: ds.D, Names: append([]string(nil), ds.Names...), Records: make([]uint64, n)}
	for i := range out.Records {
		out.Records[i] = ds.Records[r.Intn(len(ds.Records))]
	}
	return out
}

// DuplicateColumns extends the dataset to targetD attributes by repeating
// the original columns cyclically — the trick the paper uses to study
// larger dimensionalities on the taxi data (Section 5.4).
func DuplicateColumns(ds *Dataset, targetD int) (*Dataset, error) {
	if targetD < ds.D {
		return nil, fmt.Errorf("dataset: target d=%d smaller than current %d", targetD, ds.D)
	}
	if targetD > bitops.MaxAttributes {
		return nil, fmt.Errorf("dataset: target d=%d exceeds limit %d", targetD, bitops.MaxAttributes)
	}
	out := &Dataset{D: targetD, Names: make([]string, targetD), Records: make([]uint64, len(ds.Records))}
	for j := 0; j < targetD; j++ {
		src := j % ds.D
		if j < ds.D {
			out.Names[j] = ds.Names[src]
		} else {
			out.Names[j] = fmt.Sprintf("%s_dup%d", ds.Names[src], j/ds.D)
		}
	}
	for i, rec := range ds.Records {
		var ext uint64
		for j := 0; j < targetD; j++ {
			if rec&(1<<uint(j%ds.D)) != 0 {
				ext |= 1 << uint(j)
			}
		}
		out.Records[i] = ext
	}
	return out, nil
}

// WriteCSV writes the dataset as a header row of attribute names followed
// by one 0/1 row per record.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(ds.Names); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	row := make([]string, ds.D)
	for _, rec := range ds.Records {
		for j := 0; j < ds.D; j++ {
			if rec&(1<<uint(j)) != 0 {
				row[j] = "1"
			} else {
				row[j] = "0"
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or any CSV of 0/1 values
// with a header row).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	d := len(header)
	if d == 0 || d > bitops.MaxAttributes {
		return nil, fmt.Errorf("dataset: %d attributes out of range", d)
	}
	ds := &Dataset{D: d, Names: header}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		var rec uint64
		for j, cell := range row {
			v, err := strconv.Atoi(cell)
			if err != nil || (v != 0 && v != 1) {
				return nil, fmt.Errorf("dataset: line %d column %d: %q is not 0/1", line, j+1, cell)
			}
			if v == 1 {
				rec |= 1 << uint(j)
			}
		}
		ds.Records = append(ds.Records, rec)
	}
	return ds, ds.Validate()
}

// TaxiNames lists the 8 attributes of the synthetic taxi dataset in bit
// order, matching Table 1 of the paper.
var TaxiNames = []string{"CC", "Toll", "Far", "Night_pick", "Night_drop", "M_pick", "M_drop", "Tip"}

// Taxi attribute bit positions.
const (
	TaxiCC = iota
	TaxiToll
	TaxiFar
	TaxiNightPick
	TaxiNightDrop
	TaxiMPick
	TaxiMDrop
	TaxiTip
)

// NewTaxi synthesizes n records with the dependence structure of the NYC
// taxi data (see the package comment). Three independent latent factors
// (night, long-trip, card-payment) plus a manhattan factor negatively
// coupled to trip length drive the attributes:
//
//   - strongly dependent pairs: (Night_pick, Night_drop), (Toll, Far),
//     (CC, Tip), (M_pick, M_drop);
//   - independent pairs: (M_drop, CC), (Far, Night_pick),
//     (Toll, Night_pick) — the factors behind them never interact.
func NewTaxi(n int, seed uint64) *Dataset {
	r := rng.New(seed)
	ds := &Dataset{D: 8, Names: append([]string(nil), TaxiNames...), Records: make([]uint64, n)}
	for i := 0; i < n; i++ {
		night := r.Bernoulli(0.30)
		far := r.Bernoulli(0.15)
		card := r.Bernoulli(0.60)
		// Long trips usually leave Manhattan.
		var manhattan bool
		if far {
			manhattan = r.Bernoulli(0.35)
		} else {
			manhattan = r.Bernoulli(0.80)
		}
		var rec uint64
		set := func(bit int, v bool) {
			if v {
				rec |= 1 << uint(bit)
			}
		}
		flip := func(v bool, p float64) bool {
			if r.Bernoulli(p) {
				return !v
			}
			return v
		}
		set(TaxiCC, flip(card, 0.05))
		set(TaxiFar, flip(far, 0.05))
		if far {
			set(TaxiToll, r.Bernoulli(0.70))
		} else {
			set(TaxiToll, r.Bernoulli(0.05))
		}
		set(TaxiNightPick, flip(night, 0.10))
		set(TaxiNightDrop, flip(night, 0.10))
		set(TaxiMPick, flip(manhattan, 0.08))
		set(TaxiMDrop, flip(manhattan, 0.08))
		if card {
			set(TaxiTip, r.Bernoulli(0.55))
		} else {
			set(TaxiTip, r.Bernoulli(0.10))
		}
		ds.Records[i] = rec
	}
	return ds
}

// movieGenres are the 17 MovieLens genre labels (Section 5.1).
var movieGenres = []string{
	"Action", "Adventure", "Animation", "Children", "Comedy", "Crime",
	"Documentary", "Drama", "Fantasy", "FilmNoir", "Horror", "Musical",
	"Mystery", "Romance", "SciFi", "Thriller", "Western",
}

// NewMovieLens synthesizes n user genre-preference vectors over d
// attributes. A shared per-user latent activity level makes every
// attribute pair positively correlated, as the paper observes of the real
// data; per-genre popularity offsets keep base rates heterogeneous.
// d may exceed 17, in which case genre labels repeat with a suffix.
func NewMovieLens(n, d int, seed uint64) (*Dataset, error) {
	if d <= 0 || d > bitops.MaxAttributes {
		return nil, fmt.Errorf("dataset: d=%d out of range (1..%d)", d, bitops.MaxAttributes)
	}
	r := rng.New(seed)
	names := make([]string, d)
	offsets := make([]float64, d)
	for j := 0; j < d; j++ {
		g := j % len(movieGenres)
		if j < len(movieGenres) {
			names[j] = movieGenres[g]
		} else {
			names[j] = fmt.Sprintf("%s_%d", movieGenres[g], j/len(movieGenres))
		}
		// Popularity offsets spread base rates over roughly [0.25, 0.75].
		offsets[j] = -1.1 + 2.2*float64(g%7)/6
	}
	sigmoid := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	ds := &Dataset{D: d, Names: names, Records: make([]uint64, n)}
	for i := 0; i < n; i++ {
		activity := r.Normal() * 1.3
		var rec uint64
		for j := 0; j < d; j++ {
			if r.Bernoulli(sigmoid(offsets[j] + activity)) {
				rec |= 1 << uint(j)
			}
		}
		ds.Records[i] = rec
	}
	return ds, nil
}

// NewSkewed synthesizes n records with d independent bits whose 1-rates
// decay geometrically from 0.5 by the given factor per attribute — the
// "lightly skewed" synthetic data of Appendix B.2. decay must be in
// (0, 1]; decay = 1 gives the uniform distribution.
func NewSkewed(n, d int, decay float64, seed uint64) (*Dataset, error) {
	if d <= 0 || d > bitops.MaxAttributes {
		return nil, fmt.Errorf("dataset: d=%d out of range (1..%d)", d, bitops.MaxAttributes)
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("dataset: decay %v out of (0, 1]", decay)
	}
	r := rng.New(seed)
	probs := make([]float64, d)
	p := 0.5
	for j := range probs {
		probs[j] = math.Max(p, 0.02)
		p *= decay
	}
	names := make([]string, d)
	for j := range names {
		names[j] = fmt.Sprintf("attr%d", j)
	}
	ds := &Dataset{D: d, Names: names, Records: make([]uint64, n)}
	for i := 0; i < n; i++ {
		var rec uint64
		for j := 0; j < d; j++ {
			if r.Bernoulli(probs[j]) {
				rec |= 1 << uint(j)
			}
		}
		ds.Records[i] = rec
	}
	return ds, nil
}
