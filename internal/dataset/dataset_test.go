package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ldpmarginals/internal/rng"
)

// pearson computes the correlation of two attribute columns.
func pearson(ds *Dataset, a, b int) float64 {
	n := float64(ds.N())
	var sa, sb, sab float64
	for _, rec := range ds.Records {
		va := float64((rec >> uint(a)) & 1)
		vb := float64((rec >> uint(b)) & 1)
		sa += va
		sb += vb
		sab += va * vb
	}
	ma, mb := sa/n, sb/n
	cov := sab/n - ma*mb
	return cov / math.Sqrt(ma*(1-ma)*mb*(1-mb))
}

func TestTaxiStructure(t *testing.T) {
	ds := NewTaxi(60000, 1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.D != 8 || ds.N() != 60000 {
		t.Fatalf("unexpected shape d=%d n=%d", ds.D, ds.N())
	}
	// Strongly dependent pairs from the paper's Figure 3 / Section 6.1.
	strong := [][2]int{
		{TaxiNightPick, TaxiNightDrop},
		{TaxiToll, TaxiFar},
		{TaxiCC, TaxiTip},
		{TaxiMPick, TaxiMDrop},
	}
	for _, p := range strong {
		if r := pearson(ds, p[0], p[1]); r < 0.3 {
			t.Errorf("pair (%s, %s) correlation %v, want strong positive",
				ds.Names[p[0]], ds.Names[p[1]], r)
		}
	}
	// Independent pairs used as chi-squared negatives in Figure 7.
	indep := [][2]int{
		{TaxiMDrop, TaxiCC},
		{TaxiFar, TaxiNightPick},
		{TaxiToll, TaxiNightPick},
	}
	for _, p := range indep {
		if r := math.Abs(pearson(ds, p[0], p[1])); r > 0.03 {
			t.Errorf("pair (%s, %s) correlation %v, want ~0",
				ds.Names[p[0]], ds.Names[p[1]], r)
		}
	}
}

func TestTaxiDeterministic(t *testing.T) {
	a := NewTaxi(100, 7)
	b := NewTaxi(100, 7)
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("same seed should reproduce records")
		}
	}
	c := NewTaxi(100, 8)
	diff := 0
	for i := range a.Records {
		if a.Records[i] != c.Records[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds should differ")
	}
}

func TestMovieLensPositiveCorrelations(t *testing.T) {
	ds, err := NewMovieLens(50000, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < ds.D; a++ {
		for b := a + 1; b < ds.D; b++ {
			if r := pearson(ds, a, b); r < 0.05 {
				t.Errorf("pair (%d,%d) correlation %v, want positive", a, b, r)
			}
		}
	}
}

func TestMovieLensLargeD(t *testing.T) {
	ds, err := NewMovieLens(1000, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.D != 24 || len(ds.Names) != 24 {
		t.Fatal("wrong shape for d=24")
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMovieLens(10, 0, 1); err == nil {
		t.Error("d=0 should error")
	}
	if _, err := NewMovieLens(10, 99, 1); err == nil {
		t.Error("d too large should error")
	}
}

func TestSkewedRates(t *testing.T) {
	ds, err := NewSkewed(80000, 6, 0.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for j := 0; j < ds.D; j++ {
		ones := 0
		for _, rec := range ds.Records {
			if rec&(1<<uint(j)) != 0 {
				ones++
			}
		}
		rate := float64(ones) / float64(ds.N())
		if rate > prev+0.01 {
			t.Errorf("attribute %d rate %v not decaying (prev %v)", j, rate, prev)
		}
		prev = rate
	}
	if _, err := NewSkewed(10, 4, 0, 1); err == nil {
		t.Error("decay=0 should error")
	}
	if _, err := NewSkewed(10, 4, 1.5, 1); err == nil {
		t.Error("decay>1 should error")
	}
}

func TestSampleWithReplacement(t *testing.T) {
	ds := NewTaxi(1000, 5)
	s := ds.Sample(500, rng.New(1))
	if s.N() != 500 || s.D != ds.D {
		t.Fatalf("sample shape wrong: n=%d d=%d", s.N(), s.D)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateColumns(t *testing.T) {
	ds := NewTaxi(2000, 6)
	big, err := DuplicateColumns(ds, 20)
	if err != nil {
		t.Fatal(err)
	}
	if big.D != 20 {
		t.Fatalf("d = %d", big.D)
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicated columns are exact copies.
	for i, rec := range big.Records {
		for j := 8; j < 20; j++ {
			orig := (ds.Records[i] >> uint(j%8)) & 1
			dup := (rec >> uint(j)) & 1
			if orig != dup {
				t.Fatalf("record %d: column %d does not mirror column %d", i, j, j%8)
			}
		}
	}
	if _, err := DuplicateColumns(ds, 4); err == nil {
		t.Error("shrinking should error")
	}
	if _, err := DuplicateColumns(ds, 99); err == nil {
		t.Error("over-limit should error")
	}
}

func TestMaskAndAttributeIndex(t *testing.T) {
	ds := NewTaxi(10, 1)
	m, err := ds.Mask("CC", "Tip")
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(1<<TaxiCC | 1<<TaxiTip)
	if m != want {
		t.Errorf("Mask = %b, want %b", m, want)
	}
	if _, err := ds.Mask("Nope"); err == nil {
		t.Error("unknown attribute should error")
	}
	if ds.AttributeIndex("Far") != TaxiFar {
		t.Error("AttributeIndex wrong")
	}
	if ds.AttributeIndex("zzz") != -1 {
		t.Error("missing attribute should be -1")
	}
}

func TestFullDistribution(t *testing.T) {
	ds := NewTaxi(5000, 2)
	dist, err := ds.FullDistribution()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution mass = %v", sum)
	}
	big, _ := DuplicateColumns(ds, 24)
	if _, err := big.FullDistribution(); err == nil {
		t.Error("d=24 full distribution should be refused")
	}
	empty := &Dataset{D: 2, Names: []string{"a", "b"}}
	if _, err := empty.FullDistribution(); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestMarginalMatchesFullDistribution(t *testing.T) {
	ds := NewTaxi(20000, 3)
	dist, _ := ds.FullDistribution()
	beta := uint64(0b00000101)
	fromRecords, err := ds.Marginal(beta)
	if err != nil {
		t.Fatal(err)
	}
	var want [4]float64
	for eta, p := range dist {
		idx := (eta & 1) | ((eta >> 2) & 1 << 1)
		want[idx] += p
	}
	for c := range want {
		if math.Abs(fromRecords.Cells[c]-want[c]) > 1e-9 {
			t.Errorf("cell %d: %v vs %v", c, fromRecords.Cells[c], want[c])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := NewTaxi(200, 9)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != ds.D || got.N() != ds.N() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := range ds.Records {
		if got.Records[i] != ds.Records[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	for j := range ds.Names {
		if got.Names[j] != ds.Names[j] {
			t.Fatalf("name %d mismatch", j)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("non-binary value should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\nx,0\n")); err == nil {
		t.Error("non-numeric value should error")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
}

func TestValidateRejectsBadRecords(t *testing.T) {
	ds := &Dataset{D: 2, Names: []string{"a", "b"}, Records: []uint64{5}}
	if err := ds.Validate(); err == nil {
		t.Error("record outside domain should fail validation")
	}
	ds2 := &Dataset{D: 2, Names: []string{"a"}}
	if err := ds2.Validate(); err == nil {
		t.Error("name/attribute mismatch should fail validation")
	}
	ds3 := &Dataset{D: 0, Names: nil}
	if err := ds3.Validate(); err == nil {
		t.Error("d=0 should fail validation")
	}
}
