package dataset

import (
	"fmt"
	"math/bits"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/rng"
)

// Categorical is a dataset of records over attributes with cardinality
// greater than two, supporting the binary-encoding reduction of Section
// 6.3: each attribute with r values is encoded as ceil(log2 r) binary
// attributes, after which any of the binary protocols apply.
type Categorical struct {
	// Cardinalities[j] is the number of distinct values of attribute j
	// (at least 2 each).
	Cardinalities []int
	// Names labels the categorical attributes.
	Names []string
	// Records[i][j] is user i's value of attribute j, in
	// [0, Cardinalities[j]).
	Records [][]uint8
}

// Validate checks structural invariants.
func (c *Categorical) Validate() error {
	if len(c.Cardinalities) == 0 {
		return fmt.Errorf("dataset: categorical with no attributes")
	}
	if len(c.Names) != len(c.Cardinalities) {
		return fmt.Errorf("dataset: %d names for %d attributes", len(c.Names), len(c.Cardinalities))
	}
	for j, card := range c.Cardinalities {
		if card < 2 || card > 256 {
			return fmt.Errorf("dataset: attribute %d cardinality %d out of range (2..256)", j, card)
		}
	}
	for i, rec := range c.Records {
		if len(rec) != len(c.Cardinalities) {
			return fmt.Errorf("dataset: record %d has %d values, want %d", i, len(rec), len(c.Cardinalities))
		}
		for j, v := range rec {
			if int(v) >= c.Cardinalities[j] {
				return fmt.Errorf("dataset: record %d attribute %d value %d out of range", i, j, v)
			}
		}
	}
	return nil
}

// bitsFor returns ceil(log2 r), the binary width of an r-valued attribute.
func bitsFor(r int) int {
	if r <= 1 {
		return 1
	}
	return bits.Len(uint(r - 1))
}

// BinaryDimension returns d2 = sum of ceil(log2 r_i) — the effective
// binary dimension of Corollary 6.1.
func (c *Categorical) BinaryDimension() int {
	var d2 int
	for _, card := range c.Cardinalities {
		d2 += bitsFor(card)
	}
	return d2
}

// BitGroup returns the mask of binary attributes that encode categorical
// attribute j after EncodeBinary.
func (c *Categorical) BitGroup(j int) (uint64, error) {
	if j < 0 || j >= len(c.Cardinalities) {
		return 0, fmt.Errorf("dataset: attribute index %d out of range", j)
	}
	var offset int
	for i := 0; i < j; i++ {
		offset += bitsFor(c.Cardinalities[i])
	}
	width := bitsFor(c.Cardinalities[j])
	return ((uint64(1) << uint(width)) - 1) << uint(offset), nil
}

// MaskFor returns the binary attribute mask covering the given
// categorical attributes, i.e. the beta to query after binary encoding.
func (c *Categorical) MaskFor(attrs ...int) (uint64, error) {
	var m uint64
	for _, j := range attrs {
		g, err := c.BitGroup(j)
		if err != nil {
			return 0, err
		}
		m |= g
	}
	return m, nil
}

// EncodeBinary converts the categorical records to a binary Dataset by
// writing each attribute value in ceil(log2 r) bits (Section 6.3). The
// resulting binary dimension must fit within bitops.MaxAttributes.
func (c *Categorical) EncodeBinary() (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	d2 := c.BinaryDimension()
	if d2 > bitops.MaxAttributes {
		return nil, fmt.Errorf("dataset: binary dimension %d exceeds limit %d", d2, bitops.MaxAttributes)
	}
	names := make([]string, 0, d2)
	for j, card := range c.Cardinalities {
		for b := 0; b < bitsFor(card); b++ {
			names = append(names, fmt.Sprintf("%s_b%d", c.Names[j], b))
		}
	}
	ds := &Dataset{D: d2, Names: names, Records: make([]uint64, len(c.Records))}
	for i, rec := range c.Records {
		var enc uint64
		offset := 0
		for j, v := range rec {
			enc |= uint64(v) << uint(offset)
			offset += bitsFor(c.Cardinalities[j])
		}
		ds.Records[i] = enc
	}
	return ds, ds.Validate()
}

// DecodeCell translates a compact cell index of a binary marginal over
// the mask returned by MaskFor back to the categorical values it encodes.
// attrs must match the MaskFor call. Cells that decode to out-of-range
// values (possible when a cardinality is not a power of two) return
// ok = false; exact data never occupies those cells.
func (c *Categorical) DecodeCell(cell uint64, attrs ...int) (values []int, ok bool) {
	values = make([]int, len(attrs))
	shift := 0
	for i, j := range attrs {
		width := bitsFor(c.Cardinalities[j])
		v := int((cell >> uint(shift)) & ((1 << uint(width)) - 1))
		if v >= c.Cardinalities[j] {
			return nil, false
		}
		values[i] = v
		shift += width
	}
	return values, true
}

// NewCategoricalCorrelated synthesizes n records over the given
// cardinalities where consecutive attributes are positively correlated
// through a shared latent level, exercising the categorical pipeline end
// to end.
func NewCategoricalCorrelated(n int, cardinalities []int, seed uint64) (*Categorical, error) {
	c := &Categorical{
		Cardinalities: append([]int(nil), cardinalities...),
		Names:         make([]string, len(cardinalities)),
		Records:       make([][]uint8, n),
	}
	for j := range c.Names {
		c.Names[j] = fmt.Sprintf("cat%d", j)
	}
	if err := validateCards(cardinalities); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		// Latent level in [0,1) shared across attributes.
		level := r.Float64()
		rec := make([]uint8, len(cardinalities))
		for j, card := range cardinalities {
			// Attribute value concentrates near level*card with noise.
			center := level * float64(card)
			v := int(center + r.Normal()*float64(card)/4)
			if v < 0 {
				v = 0
			}
			if v >= card {
				v = card - 1
			}
			rec[j] = uint8(v)
		}
		c.Records[i] = rec
	}
	return c, c.Validate()
}

func validateCards(cards []int) error {
	if len(cards) == 0 {
		return fmt.Errorf("dataset: no cardinalities")
	}
	for j, card := range cards {
		if card < 2 || card > 256 {
			return fmt.Errorf("dataset: cardinality[%d] = %d out of range (2..256)", j, card)
		}
	}
	return nil
}
