// Package metrics is a zero-dependency instrumentation registry speaking
// the Prometheus text exposition format (version 0.0.4). It exists so the
// serving tier can be observed at ingest rates without importing a client
// library: every increment path is a single atomic operation — no locks,
// no maps, no allocation — and the registry's mutex is touched only at
// registration and scrape time.
//
// Instruments are allocated standalone (NewCounter, NewGauge,
// NewHistogram) so components can embed them unconditionally and update
// them without nil checks; wiring them to a name happens later via
// Registry.MustRegister (or the Must* sugar that allocates and registers
// in one step). Derived values that are only worth computing at scrape
// time — segment counts, staleness ages — register as GaugeFunc or
// CounterFunc closures.
//
// The exposition writer renders families sorted by name and series
// sorted by their label set, so output is deterministic and diffable in
// golden tests.
package metrics

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Labels is one series' label set. The zero value (nil) is a series with
// no labels. Rendered sorted by key, so any map order is canonical.
type Labels map[string]string

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// NewCounter allocates a counter at zero.
func NewCounter() *Counter { return new(Counter) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; Add of a negative delta is not
// expressible by construction (the argument is unsigned).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricType() string { return "counter" }

func (c *Counter) write(b *bytes.Buffer, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

// Gauge is an integer gauge: a value that can go up and down. The zero
// value is ready to use. Float-valued gauges register as a GaugeFunc.
type Gauge struct{ v atomic.Int64 }

// NewGauge allocates a gauge at zero.
func NewGauge() *Gauge { return new(Gauge) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricType() string { return "gauge" }

func (g *Gauge) write(b *bytes.Buffer, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(g.v.Load(), 10))
	b.WriteByte('\n')
}

// GaugeFunc derives a float gauge at scrape time. The function must be
// safe for concurrent use and should be cheap relative to scrape cadence.
type GaugeFunc func() float64

func (GaugeFunc) metricType() string { return "gauge" }

func (f GaugeFunc) write(b *bytes.Buffer, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f()))
	b.WriteByte('\n')
}

// CounterFunc derives a counter at scrape time from a value that is
// already monotone (an existing atomic the component maintains).
type CounterFunc func() float64

func (CounterFunc) metricType() string { return "counter" }

func (f CounterFunc) write(b *bytes.Buffer, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f()))
	b.WriteByte('\n')
}

// Histogram is a fixed-bucket histogram. Observations index a bucket by
// binary search over the upper bounds and land in per-bucket atomic
// counters; the running sum is a CAS loop over the value's float64 bits.
// No locks anywhere, so concurrent Observe calls scale with cores.
//
// A scrape reads the buckets without stopping writers, so a rendered
// histogram is a near-consistent snapshot: _count, _sum, and the +Inf
// bucket may disagree by the handful of observations that landed
// mid-render. Prometheus semantics tolerate this (each series is
// individually monotone).
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds; +Inf implied
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram allocates a histogram over the given strictly increasing
// upper bounds (the +Inf bucket is implicit). Panics on unsorted or
// empty bounds — bucket layout is a programming decision, not input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram bounds not strictly increasing at %d (%g after %g)", i, bounds[i], bounds[i-1]))
		}
	}
	if math.IsInf(bounds[len(bounds)-1], +1) {
		bounds = bounds[:len(bounds)-1]
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound covers v (le semantics); everything
	// above the last finite bound lands in the implicit +Inf bucket.
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Reset zeroes the histogram. Only for standalone measurement use
// (e.g. discarding a warmup phase) with no concurrent observers — a
// registered histogram must stay monotonic or scrapes misread it as a
// counter reset.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the target rank, the same estimate a
// Prometheus histogram_quantile would produce. Observations beyond the
// last finite bound clamp to that bound. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if float64(cum) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			inBucket := float64(h.buckets[i].Load())
			if inBucket == 0 {
				return hi
			}
			below := float64(cum) - inBucket
			return lo + (hi-lo)*((rank-below)/inBucket)
		}
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) metricType() string { return "histogram" }

func (h *Histogram) write(b *bytes.Buffer, name, labels string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		writeBucket(b, name, labels, formatFloat(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	writeBucket(b, name, labels, "+Inf", cum)
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// writeBucket renders one name_bucket line with the le label merged into
// the series' own label set.
func writeBucket(b *bytes.Buffer, name, labels, le string, cum uint64) {
	b.WriteString(name)
	b.WriteString("_bucket")
	if labels == "" {
		b.WriteString(`{le="`)
	} else {
		b.WriteString(labels[:len(labels)-1]) // drop closing brace
		b.WriteString(`,le="`)
	}
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor. Panics on nonsense arguments.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DurationBuckets is the default latency layout: 100µs to 10s, roughly
// logarithmic — wide enough for an in-memory handler and a slow fsync.
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// collector is the family-member contract: a typed instrument that can
// render its sample lines. Implemented only inside this package.
type collector interface {
	metricType() string
	write(b *bytes.Buffer, name, labels string)
}

type series struct {
	labels string // pre-rendered {k="v",...}, "" for none
	c      collector
}

type family struct {
	name, help, typ string
	series          []series
	seen            map[string]bool
}

// Registry holds named metric families and renders them in exposition
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
	sorted   bool
}

// NewRegistry allocates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// MustRegister attaches an existing instrument to the family name with
// the given label set. Panics on an invalid name or label, a type
// conflict within the family, or a duplicate (name, labels) series —
// all programming errors, caught at construction.
func (r *Registry) MustRegister(name, help string, labels Labels, c collector) {
	if !nameRe.MatchString(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: c.metricType(), seen: make(map[string]bool)}
		r.families[name] = f
		r.names = append(r.names, name)
		r.sorted = false
	} else if f.typ != c.metricType() {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, c.metricType()))
	}
	if f.seen[rendered] {
		panic(fmt.Sprintf("metrics: duplicate series %s%s", name, rendered))
	}
	f.seen[rendered] = true
	f.series = append(f.series, series{labels: rendered, c: c})
}

// MustCounter allocates a counter and registers it.
func (r *Registry) MustCounter(name, help string, labels Labels) *Counter {
	c := NewCounter()
	r.MustRegister(name, help, labels, c)
	return c
}

// MustGauge allocates a gauge and registers it.
func (r *Registry) MustGauge(name, help string, labels Labels) *Gauge {
	g := NewGauge()
	r.MustRegister(name, help, labels, g)
	return g
}

// MustHistogram allocates a histogram over bounds and registers it.
func (r *Registry) MustHistogram(name, help string, labels Labels, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.MustRegister(name, help, labels, h)
	return h
}

// MustGaugeFunc registers a scrape-time derived gauge.
func (r *Registry) MustGaugeFunc(name, help string, labels Labels, f func() float64) {
	r.MustRegister(name, help, labels, GaugeFunc(f))
}

// MustCounterFunc registers a scrape-time derived counter; f must be
// monotone.
func (r *Registry) MustCounterFunc(name, help string, labels Labels, f func() float64) {
	r.MustRegister(name, help, labels, CounterFunc(f))
}

// renderLabels canonicalizes a label set to its exposition form, sorted
// by key. Panics on invalid label names ("le" is reserved for histogram
// buckets).
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !labelRe.MatchString(k) || k == "le" {
			panic("metrics: invalid label name " + strconv.Quote(k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !bytes.ContainsAny([]byte(v), "\\\"\n") {
		return v
	}
	var b bytes.Buffer
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	if !bytes.ContainsAny([]byte(v), "\\\n") {
		return v
	}
	var b bytes.Buffer
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders every family in exposition format 0.0.4: families
// sorted by name, series sorted by label set, one HELP/TYPE header per
// family. Derived funcs run while the registry lock is held, so they
// must not re-enter the registry.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	r.mu.Lock()
	if !r.sorted {
		sort.Strings(r.names)
		r.sorted = true
	}
	for _, name := range r.names {
		f := r.families[name]
		buf.WriteString("# HELP ")
		buf.WriteString(f.name)
		buf.WriteByte(' ')
		buf.WriteString(escapeHelp(f.help))
		buf.WriteString("\n# TYPE ")
		buf.WriteString(f.name)
		buf.WriteByte(' ')
		buf.WriteString(f.typ)
		buf.WriteByte('\n')
		sort.SliceStable(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, s := range f.series {
			s.c.write(&buf, f.name, s.labels)
		}
	}
	r.mu.Unlock()
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ContentType is the exposition format's media type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry over HTTP: GET (or HEAD) only, with a 405
// naming the allowed method otherwise.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, http.MethodGet+" required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		_, _ = r.WriteTo(w)
	})
}
