package metrics

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact exposition rendering: family
// ordering, HELP/TYPE headers, label canonicalization, histogram bucket
// lines. Any format drift breaks real Prometheus scrapers, so it is a
// byte-for-byte golden.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("req_seconds", "Request latency.", Labels{"path": "/a"}, []float64{0.1, 1})
	c := r.MustCounter("zz_total", "Trailing family (sorted after).", nil)
	g := r.MustGauge("inflight", "In-flight requests.", Labels{"b": "2", "a": "1"})
	r.MustGaugeFunc("derived", "A derived value.", nil, func() float64 { return 1.5 })

	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	c.Add(7)
	g.Set(-2)

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP derived A derived value.
# TYPE derived gauge
derived 1.5
# HELP inflight In-flight requests.
# TYPE inflight gauge
inflight{a="1",b="2"} -2
# HELP req_seconds Request latency.
# TYPE req_seconds histogram
req_seconds_bucket{path="/a",le="0.1"} 1
req_seconds_bucket{path="/a",le="1"} 2
req_seconds_bucket{path="/a",le="+Inf"} 3
req_seconds_sum{path="/a"} 3.55
req_seconds_count{path="/a"} 3
# HELP zz_total Trailing family (sorted after).
# TYPE zz_total counter
zz_total 7
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("c_total", "help with \\ and\nnewline", Labels{"k": "a\"b\\c\nd"})
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP c_total help with \\ and\nnewline`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `c_total{k="a\"b\\c\nd"} 0`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.MustCounter("ok_total", "", Labels{"a": "1"})
	mustPanic("duplicate series", func() { r.MustCounter("ok_total", "", Labels{"a": "1"}) })
	mustPanic("type conflict", func() { r.MustGauge("ok_total", "", Labels{"a": "2"}) })
	mustPanic("bad name", func() { r.MustCounter("0bad", "", nil) })
	mustPanic("bad label", func() { r.MustCounter("ok2_total", "", Labels{"0k": "v"}) })
	mustPanic("reserved le", func() { r.MustCounter("ok3_total", "", Labels{"le": "v"}) })
	mustPanic("unsorted bounds", func() { NewHistogram([]float64{1, 1}) })
	mustPanic("empty bounds", func() { NewHistogram(nil) })

	// Distinct label values on one family are fine.
	r.MustCounter("ok_total", "", Labels{"a": "2"})
}

// TestCounterMonotonic hammers a counter from many goroutines while a
// reader scrapes, asserting every observed value is >= the last — the
// monotonicity a rate() query depends on.
func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("mono_total", "", nil)
	const writers, perWriter = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var last uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := c.Value()
			if v < last {
				t.Errorf("counter went backwards: %d after %d", v, last)
				return
			}
			last = v
		}
	}()
	var ww sync.WaitGroup
	for i := 0; i < writers; i++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := c.Value(); got != writers*perWriter {
		t.Errorf("final count %d, want %d", got, writers*perWriter)
	}
}

// TestHistogramInvariants checks the structural guarantees of a rendered
// histogram: cumulative buckets are nondecreasing, the +Inf bucket
// equals _count, and _sum matches the observations.
func TestHistogramInvariants(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	vals := []float64{0.5, 1, 1.5, 2, 3, 7, 9, 100}
	sum := 0.0
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count %d, want %d", h.Count(), len(vals))
	}
	if math.Abs(h.Sum()-sum) > 1e-9 {
		t.Fatalf("sum %g, want %g", h.Sum(), sum)
	}
	// le semantics: an observation equal to a bound lands in that bucket.
	var buf bytes.Buffer
	h.write(&buf, "h", "")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantLines := []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="2"} 4`,
		`h_bucket{le="4"} 5`,
		`h_bucket{le="8"} 6`,
		`h_bucket{le="+Inf"} 8`,
		`h_sum 124`,
		`h_count 8`,
	}
	for i, want := range wantLines {
		if lines[i] != want {
			t.Errorf("line %d: got %q, want %q", i, lines[i], want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(0.001, 2, 16))
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 100) // 0..9.99 uniform
	}
	if p50 := h.Quantile(0.5); p50 < 3 || p50 > 8.2 {
		t.Errorf("p50 %g outside bucketed-uniform range", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 8 || p99 > 33 {
		t.Errorf("p99 %g implausible", p99)
	}
	if p0 := h.Quantile(0); p0 < 0 || p0 > 0.01 {
		t.Errorf("p0 %g should sit in the first occupied bucket", p0)
	}
	// Beyond the last finite bound clamps.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile %g, want clamp to 1", got)
	}
}

// TestScrapeUnderConcurrentIngest is the race-stress pin: writers on
// every instrument type while scrapes render continuously. Run with
// -race in CI; the assertions here are the coarse sanity that rendered
// output stays parseable and counts only grow.
func TestScrapeUnderConcurrentIngest(t *testing.T) {
	r := NewRegistry()
	r.RegisterGoRuntime()
	c := r.MustCounter("ldp_test_ingest_total", "", nil)
	g := r.MustGauge("ldp_test_inflight", "", nil)
	h := r.MustHistogram("ldp_test_latency_seconds", "", nil, DurationBuckets())

	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v := float64(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Inc()
				h.Observe(math.Mod(v, 1.5))
				v += 0.013
				g.Dec()
			}
		}(i)
	}
	var lastCount uint64
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, "ldp_test_ingest_total ") {
			t.Fatal("scrape missing counter family")
		}
		if c.Value() < lastCount {
			t.Fatal("counter regressed across scrapes")
		}
		lastCount = c.Value()
	}
	// At GOMAXPROCS=1 the scrape loop above can run to completion before
	// the writer goroutines are ever scheduled; yield until they have
	// demonstrably run before stopping them.
	deadline := time.Now().Add(5 * time.Second)
	for (h.Count() == 0 || c.Value() == 0) && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if h.Count() == 0 || c.Value() == 0 {
		t.Fatal("writers made no progress")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("x_total", "", nil).Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x_total 3") {
		t.Fatalf("body missing sample:\n%s", buf.String())
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp2.StatusCode)
	}
	if allow := resp2.Header.Get("Allow"); allow != http.MethodGet {
		t.Fatalf("Allow %q, want GET", allow)
	}
}

func TestGoRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	r.RegisterGoRuntime()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"go_goroutines ", "go_heap_alloc_bytes ", "go_gc_cycles_total ", "go_gc_pause_seconds_total "} {
		if !strings.Contains(out, name) {
			t.Errorf("runtime scrape missing %s", name)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets())
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0001
		for pb.Next() {
			h.Observe(v)
			v *= 1.1
			if v > 20 {
				v = 0.0001
			}
		}
	})
}

func BenchmarkScrape(b *testing.B) {
	r := NewRegistry()
	r.RegisterGoRuntime()
	for _, path := range []string{"/report", "/report/batch", "/marginal", "/query"} {
		r.MustCounter("ldp_http_requests_total", "", Labels{"path": path, "code": "2xx"})
		r.MustHistogram("ldp_http_request_seconds", "", Labels{"path": path}, DurationBuckets())
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := r.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
