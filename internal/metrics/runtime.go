package metrics

import (
	"runtime"
	"sync"
	"time"
)

// memReader caches runtime.ReadMemStats between scrapes: the read stops
// the world briefly, and one /metrics scrape asks for half a dozen heap
// figures that should all come from the same snapshot anyway.
type memReader struct {
	mu   sync.Mutex
	at   time.Time
	ms   runtime.MemStats
	once bool
}

func (m *memReader) get() *runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.once || time.Since(m.at) > 500*time.Millisecond {
		runtime.ReadMemStats(&m.ms)
		m.at = time.Now()
		m.once = true
	}
	return &m.ms
}

// RegisterGoRuntime registers process-level Go runtime health under the
// conventional go_* names: goroutine count, heap occupancy and
// allocation throughput, and GC cycle/pause totals.
func (r *Registry) RegisterGoRuntime() {
	mem := new(memReader)
	r.MustGaugeFunc("go_goroutines", "Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.MustGaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		func() float64 { return float64(mem.get().HeapAlloc) })
	r.MustGaugeFunc("go_heap_objects", "Number of allocated heap objects.", nil,
		func() float64 { return float64(mem.get().HeapObjects) })
	r.MustGaugeFunc("go_sys_bytes", "Total bytes obtained from the OS.", nil,
		func() float64 { return float64(mem.get().Sys) })
	r.MustGaugeFunc("go_next_gc_bytes", "Heap size at which the next GC cycle triggers.", nil,
		func() float64 { return float64(mem.get().NextGC) })
	r.MustCounterFunc("go_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", nil,
		func() float64 { return float64(mem.get().TotalAlloc) })
	r.MustCounterFunc("go_gc_cycles_total", "Completed GC cycles.", nil,
		func() float64 { return float64(mem.get().NumGC) })
	r.MustCounterFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", nil,
		func() float64 { return float64(mem.get().PauseTotalNs) / 1e9 })
}
