package privacy

import (
	"errors"
	"testing"
)

func TestLedgerChargeUntilSpent(t *testing.T) {
	l, err := NewLedger(3.0, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Charge("alice", 1); err != nil {
			t.Fatalf("report %d within budget rejected: %v", i, err)
		}
	}
	if err := l.Charge("alice", 1); !errors.Is(err, ErrBudgetSpent) {
		t.Fatalf("over-budget charge: %v, want ErrBudgetSpent", err)
	}
	// Another token has its own budget.
	if err := l.Charge("bob", 3); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
	st := l.Stats()
	if st.Tokens != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 2 tokens and 1 rejection", st)
	}
}

func TestLedgerChargeIsAllOrNothing(t *testing.T) {
	l, err := NewLedger(3.0, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("alice", 4); !errors.Is(err, ErrBudgetSpent) {
		t.Fatalf("oversized batch: %v", err)
	}
	// The rejected batch must not have recorded partial spend.
	if err := l.Charge("alice", 3); err != nil {
		t.Fatalf("full budget unavailable after rejected batch: %v", err)
	}
}

func TestLedgerRotateRecoversBudget(t *testing.T) {
	l, err := NewLedger(2.0, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("alice", 2); err != nil {
		t.Fatal(err)
	}
	// Spend stays inside the window across rotations short of it.
	l.Rotate(1)
	l.Rotate(1)
	if err := l.Charge("alice", 1); !errors.Is(err, ErrBudgetSpent) {
		t.Fatalf("spend forgot early: %v", err)
	}
	// The third rotation slides the spend out of the window.
	l.Rotate(1)
	if err := l.Charge("alice", 2); err != nil {
		t.Fatalf("budget not recovered after window slid past the spend: %v", err)
	}
	// Overshoot rotation clears everything at once.
	l.Rotate(100)
	if err := l.Charge("alice", 2); err != nil {
		t.Fatalf("budget not recovered after overshoot rotation: %v", err)
	}
}

func TestLedgerExactBudgetNoFloatTrip(t *testing.T) {
	// budget = 4 reports at eps=1.1: the sum 4*1.1 must not trip on
	// float accumulation.
	l, err := NewLedger(4.4, 1.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Charge("alice", 1); err != nil {
			t.Fatalf("exact-budget report %d rejected: %v", i, err)
		}
	}
	if err := l.Charge("alice", 1); !errors.Is(err, ErrBudgetSpent) {
		t.Fatalf("fifth report: %v", err)
	}
}

func TestLedgerRejectsMisconfiguration(t *testing.T) {
	if _, err := NewLedger(0.5, 1.0, 2); err == nil {
		t.Fatal("budget below one report's epsilon accepted")
	}
	if _, err := NewLedger(2.0, 0, 2); err == nil {
		t.Fatal("zero per-report epsilon accepted")
	}
	if _, err := NewLedger(2.0, 1.0, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}
