// Package privacy empirically verifies local differential privacy
// guarantees: it estimates the realized privacy loss of a randomizer by
// Monte Carlo, comparing the output distributions induced by two
// adjacent inputs. Tests use it to confirm that every client mechanism
// in this repository provides (no more than) its configured epsilon —
// the executable counterpart of the paper's Facts 3.1 and 3.2.
//
// It also enforces budgets at serving time: Ledger (ledger.go) caps a
// client token's composed epsilon spend inside one continual-release
// window, the accounting guard a windowed deployment puts in front of
// repeat reporters.
package privacy

import (
	"fmt"
	"math"
	"sort"

	"ldpmarginals/internal/rng"
)

// Randomizer produces one output for a fixed input; successive calls
// must be independent given the RNG stream. Outputs are compared by
// string key, so any serializable output space works.
type Randomizer func(r *rng.RNG) string

// Estimate is the result of an empirical privacy measurement.
type Estimate struct {
	// Epsilon is the estimated max |log P1(o)/P2(o)| over reliably
	// observed outputs.
	Epsilon float64
	// Outputs is the number of distinct outputs observed.
	Outputs int
	// Ignored counts outputs excluded for insufficient observations
	// (frequency estimates too noisy to trust).
	Ignored int
	// WorstOutput is the output achieving the max ratio.
	WorstOutput string
}

// EstimateEpsilon samples each randomizer `samples` times and returns
// the empirical privacy loss between them. minCount excludes outputs
// observed fewer times in either distribution (default 25 when <= 0):
// rare outputs give unreliable ratio estimates.
//
// The estimate converges to the true epsilon from below as samples grow
// (rare worst-case outputs may be missed); tests should use output
// spaces small enough that every outcome is well observed.
func EstimateEpsilon(m1, m2 Randomizer, samples int, minCount int, seed uint64) (*Estimate, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("privacy: samples must be positive")
	}
	if minCount <= 0 {
		minCount = 25
	}
	r1 := rng.New(seed)
	r2 := rng.New(seed ^ 0x51ed2701)
	c1 := map[string]int{}
	c2 := map[string]int{}
	for i := 0; i < samples; i++ {
		c1[m1(r1)]++
		c2[m2(r2)]++
	}
	keys := map[string]bool{}
	for k := range c1 {
		keys[k] = true
	}
	for k := range c2 {
		keys[k] = true
	}
	est := &Estimate{Outputs: len(keys)}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	for _, k := range ordered {
		n1, n2 := c1[k], c2[k]
		if n1 < minCount || n2 < minCount {
			est.Ignored++
			continue
		}
		ratio := math.Abs(math.Log(float64(n1) / float64(n2)))
		if ratio > est.Epsilon {
			est.Epsilon = ratio
			est.WorstOutput = k
		}
	}
	return est, nil
}
