package privacy

import (
	"ldpmarginals/internal/metrics"
)

// RegisterMetrics attaches the ledger's budget accounting to r. The
// token gauge walks the spend buckets under the ledger's mutex at scrape
// time; charges and rejections are plain counters the Charge path
// already maintains.
func (l *Ledger) RegisterMetrics(r *metrics.Registry) {
	r.MustCounterFunc("ldp_ledger_charges_total", "Accepted budget charges (one per charged report or batch).", nil,
		func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(l.charges)
		})
	r.MustCounterFunc("ldp_ledger_rejected_total", "Charges refused because the token's window budget was spent (served as 429).", nil,
		func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(l.rejected)
		})
	r.MustGaugeFunc("ldp_ledger_tokens", "Distinct tokens with live spend inside the current window.", nil,
		func() float64 { return float64(l.Stats().Tokens) })
	r.MustGaugeFunc("ldp_ledger_budget_eps", "Configured per-token window budget (epsilon).", nil,
		func() float64 { return l.budget })
}
