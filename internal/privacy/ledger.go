package privacy

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBudgetSpent marks a Charge rejected because the token's windowed
// privacy budget is exhausted; callers match it with errors.Is.
var ErrBudgetSpent = errors.New("privacy: window budget spent")

// Ledger enforces a per-client epsilon budget over a sliding window of
// collection rounds. Under continual release a client that reports in
// every round leaks its epsilon once per round; the ledger caps the
// composed loss inside any one window at Budget by rejecting reports
// from tokens whose recorded spend would exceed it. Spend is recorded
// in window-aligned buckets and Rotate retires the oldest bucket in
// step with the aggregation ring, so spend from more than a window ago
// stops counting — exactly mirroring the data it paid for sliding out
// of the release.
//
// The ledger trusts the token to identify a client; it is an accounting
// guard against well-behaved clients over-reporting (and a backstop
// against misconfigured replay loops), not an authentication mechanism.
type Ledger struct {
	budget float64 // max eps spend per token inside one window
	cost   float64 // eps cost of one report (the deployment's epsilon)

	mu       sync.Mutex
	buckets  []map[string]float64 // per-round spend by token; last is live
	rejected uint64
	charges  uint64 // accepted charges since startup
}

// NewLedger builds a ledger granting each token `budget` epsilon per
// window of `buckets` rounds, with every report costing `perReport`
// (the deployment's randomizer epsilon). A budget smaller than one
// report's cost would reject everything and is refused as a
// misconfiguration.
func NewLedger(budget, perReport float64, buckets int) (*Ledger, error) {
	if perReport <= 0 {
		return nil, fmt.Errorf("privacy: per-report epsilon must be positive, got %g", perReport)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("privacy: ledger needs at least one round bucket, got %d", buckets)
	}
	if budget < perReport {
		return nil, fmt.Errorf("privacy: round budget %g is below one report's epsilon %g; every report would be rejected", budget, perReport)
	}
	return &Ledger{
		budget:  budget,
		cost:    perReport,
		buckets: make([]map[string]float64, buckets),
	}, nil
}

// Charge spends count reports' epsilon against token's window budget,
// all or nothing: either the whole batch fits and is recorded in the
// live round, or nothing is recorded and the error wraps
// ErrBudgetSpent. Charge before ingesting — a spend whose reports are
// later rejected only over-counts, which errs on the private side.
func (l *Ledger) Charge(token string, count int) error {
	if count <= 0 {
		return nil
	}
	cost := l.cost * float64(count)
	l.mu.Lock()
	defer l.mu.Unlock()
	spent := 0.0
	for _, b := range l.buckets {
		spent += b[token]
	}
	// The tiny relative slack keeps exact-budget clients (e.g. budget =
	// 4*eps, four reports) from tripping on float accumulation.
	if spent+cost > l.budget*(1+1e-9) {
		l.rejected++
		return fmt.Errorf("%w: %.6g of %.6g eps already spent this window, %d report(s) cost %.6g more", ErrBudgetSpent, spent, l.budget, count, cost)
	}
	live := l.buckets[len(l.buckets)-1]
	if live == nil {
		live = make(map[string]float64)
		l.buckets[len(l.buckets)-1] = live
	}
	live[token] += cost
	l.charges++
	return nil
}

// Rotate advances the ledger n rounds, retiring the n oldest spend
// buckets. Drive it from the same rotation that seals and expires the
// aggregation ring's buckets so budget recovery tracks data expiry.
func (l *Ledger) Rotate(n int) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n >= len(l.buckets) {
		for i := range l.buckets {
			l.buckets[i] = nil
		}
		return
	}
	copy(l.buckets, l.buckets[n:])
	for i := len(l.buckets) - n; i < len(l.buckets); i++ {
		l.buckets[i] = nil
	}
}

// LedgerStats is a point-in-time description of the ledger for status
// reporting.
type LedgerStats struct {
	// Budget and PerReport echo the configured budget and report cost.
	Budget    float64
	PerReport float64
	// Tokens is the number of distinct tokens with live spend inside the
	// current window.
	Tokens int
	// Rejected counts charges refused since startup.
	Rejected uint64
}

// Stats reports the ledger's current shape.
func (l *Ledger) Stats() LedgerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	tokens := make(map[string]bool)
	for _, b := range l.buckets {
		for tok := range b {
			tokens[tok] = true
		}
	}
	return LedgerStats{
		Budget:    l.budget,
		PerReport: l.cost,
		Tokens:    len(tokens),
		Rejected:  l.rejected,
	}
}
