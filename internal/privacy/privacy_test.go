package privacy

import (
	"fmt"
	"math"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/efronstein"
	"ldpmarginals/internal/em"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
)

// clientRandomizer adapts a protocol client on a fixed record to a
// Randomizer over serialized reports.
func clientRandomizer(t *testing.T, c core.Client, record uint64) Randomizer {
	t.Helper()
	return func(r *rng.RNG) string {
		rep, err := c.Perturb(record, r)
		if err != nil {
			t.Fatalf("perturb: %v", err)
		}
		return fmt.Sprintf("%d|%d|%d|%v", rep.Beta, rep.Index, rep.Sign, rep.Bits)
	}
}

// checkEpsilon asserts the empirical epsilon is close to (and in
// particular not meaningfully above) the configured budget.
func checkEpsilon(t *testing.T, name string, est *Estimate, eps float64) {
	t.Helper()
	// Allow sampling slack above, and require the mechanism actually
	// spends a recognisable fraction of its budget (far-below means the
	// test is not exercising the worst case).
	if est.Epsilon > eps*1.25+0.1 {
		t.Errorf("%s: empirical eps %.3f exceeds budget %.3f (worst output %q)",
			name, est.Epsilon, eps, est.WorstOutput)
	}
	if est.Epsilon < eps*0.5 {
		t.Errorf("%s: empirical eps %.3f far below budget %.3f — adjacent pair not worst-case?",
			name, est.Epsilon, eps)
	}
}

func TestRRBudget(t *testing.T) {
	const eps = 1.0
	m, err := mech.NewRR(eps)
	if err != nil {
		t.Fatal(err)
	}
	r1 := func(r *rng.RNG) string { return fmt.Sprint(m.PerturbBit(true, r)) }
	r2 := func(r *rng.RNG) string { return fmt.Sprint(m.PerturbBit(false, r)) }
	est, err := EstimateEpsilon(r1, r2, 400000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkEpsilon(t, "RR", est, eps)
}

func TestGRRBudget(t *testing.T) {
	const eps = 1.1
	g, err := mech.NewGRR(eps, 8)
	if err != nil {
		t.Fatal(err)
	}
	r1 := func(r *rng.RNG) string { return fmt.Sprint(g.Perturb(3, r)) }
	r2 := func(r *rng.RNG) string { return fmt.Sprint(g.Perturb(5, r)) }
	est, err := EstimateEpsilon(r1, r2, 600000, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkEpsilon(t, "GRR", est, eps)
}

func TestPRRSparseBudget(t *testing.T) {
	const eps = 1.0
	for _, optimized := range []bool{false, true} {
		m, err := mech.NewPRR(eps, optimized)
		if err != nil {
			t.Fatal(err)
		}
		perturb := func(signal uint64) Randomizer {
			return func(r *rng.RNG) string {
				bits, err := m.PerturbOneHot(signal, 8, r)
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprint(bits)
			}
		}
		est, err := EstimateEpsilon(perturb(2), perturb(6), 800000, 40, 3)
		if err != nil {
			t.Fatal(err)
		}
		// The 2^8 output space spreads samples thin: accept a wider
		// band but still reject overspending.
		if est.Epsilon > eps*1.4+0.1 {
			t.Errorf("PRR(optimized=%v): empirical eps %.3f exceeds %.3f", optimized, est.Epsilon, eps)
		}
	}
}

func TestProtocolClientBudgets(t *testing.T) {
	// Every client, on two adjacent records, must stay within epsilon.
	const eps = 1.1
	cfg := core.Config{D: 3, K: 2, Epsilon: eps, OptimizedPRR: true}
	samples := map[core.Kind]int{
		core.InpRR:  600000,
		core.InpPS:  600000,
		core.InpHT:  600000,
		core.MargRR: 600000,
		core.MargPS: 600000,
		core.MargHT: 600000,
	}
	for kind, n := range samples {
		p, err := core.New(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c1 := clientRandomizer(t, p.NewClient(), 0b010)
		c2 := clientRandomizer(t, p.NewClient(), 0b101)
		est, err := EstimateEpsilon(c1, c2, n, 50, 7)
		if err != nil {
			t.Fatal(err)
		}
		if est.Epsilon > eps*1.3+0.1 {
			t.Errorf("%v: empirical eps %.3f exceeds budget %.3f (worst %q)",
				kind, est.Epsilon, eps, est.WorstOutput)
		}
		if est.Epsilon == 0 {
			t.Errorf("%v: empirical eps 0 — outputs independent of input?", kind)
		}
	}
}

func TestEMClientBudget(t *testing.T) {
	const eps = 1.2
	p, err := em.New(em.Config{D: 3, K: 2, Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent records in the LDP sense differ arbitrarily; the worst
	// case flips all d bits.
	c1 := clientRandomizer(t, p.NewClient(), 0b000)
	c2 := clientRandomizer(t, p.NewClient(), 0b111)
	est, err := EstimateEpsilon(c1, c2, 600000, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkEpsilon(t, "InpEM", est, eps)
}

func TestESClientBudget(t *testing.T) {
	const eps = 1.0
	p, err := efronstein.New(efronstein.Config{Cardinalities: []int{3, 4}, K: 2, Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	// Records (v0=0, v1=0) and (v0=2, v1=3).
	rec1 := uint64(0)
	rec2 := uint64(2) | uint64(3)<<2
	c1 := clientRandomizer(t, p.NewClient(), rec1)
	c2 := clientRandomizer(t, p.NewClient(), rec2)
	est, err := EstimateEpsilon(c1, c2, 800000, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	if est.Epsilon > eps*1.3+0.1 {
		t.Errorf("InpES: empirical eps %.3f exceeds budget %.3f", est.Epsilon, eps)
	}
	if est.Epsilon == 0 {
		t.Error("InpES: outputs independent of input?")
	}
}

func TestEstimateEpsilonValidation(t *testing.T) {
	id := func(r *rng.RNG) string { return "x" }
	if _, err := EstimateEpsilon(id, id, 0, 0, 1); err == nil {
		t.Error("samples=0 should error")
	}
	est, err := EstimateEpsilon(id, id, 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Epsilon != 0 || est.Outputs != 1 {
		t.Errorf("identical mechanisms should give eps 0: %+v", est)
	}
}

func TestEstimateDetectsNonPrivateMechanism(t *testing.T) {
	// A mechanism leaking its input plainly has unbounded empirical
	// epsilon — approximated by a large finite value... but with
	// disjoint supports every output is ignored on one side, so the
	// verifier reports what it can and flags the ignores.
	m1 := func(r *rng.RNG) string { return "a" }
	m2 := func(r *rng.RNG) string { return "b" }
	est, err := EstimateEpsilon(m1, m2, 10000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Ignored != 2 {
		t.Errorf("disjoint supports should be flagged as ignored outputs, got %+v", est)
	}
}

func TestEstimateRespectsBudgetWithLaplaceLikeNoise(t *testing.T) {
	// Sanity: a mechanism with a known likelihood ratio bound e^0.5.
	const eps = 0.5
	p := math.Exp(eps) / (1 + math.Exp(eps))
	m1 := func(r *rng.RNG) string { return fmt.Sprint(r.Bernoulli(p)) }
	m2 := func(r *rng.RNG) string { return fmt.Sprint(r.Bernoulli(1 - p)) }
	est, err := EstimateEpsilon(m1, m2, 400000, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	checkEpsilon(t, "biased-coin", est, eps)
}
