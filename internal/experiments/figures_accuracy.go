package experiments

import (
	"fmt"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
)

// fig4NBases are the population sizes of Figure 4 (50K to 0.5M as powers
// of two).
var fig4NBases = []int{1 << 16, 1 << 17, 1 << 18, 1 << 19}

// Fig4 reproduces Figure 4: mean total variation distance of k-way
// marginal reconstruction on the movielens data as N varies, for every
// combination of d in {4, 8, 16} and k in {1, 2, 3}, across all six
// protocols. Series are named "Proto/d=D,k=K".
func Fig4(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{
		ID:     "fig4",
		Title:  "Mean TV of 1,2,3-way marginals on movielens as N varies (eps=ln3)",
		XLabel: "N",
		YLabel: "mean TV",
	}
	for _, d := range []int{4, 8, 16} {
		maxN := opts.scaledN(fig4NBases[len(fig4NBases)-1])
		ds, err := dataset.NewMovieLens(maxN, d, opts.Seed+11)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{1, 2, 3} {
			if k > d {
				continue
			}
			cfg := core.Config{D: d, K: k, Epsilon: ln3, OptimizedPRR: true}
			betas := evalBetas(d, k, defaultMaxMarginals(opts, 60), opts.Seed)
			for _, kind := range core.AllKinds() {
				p, err := core.New(kind, cfg)
				if err != nil {
					return nil, err
				}
				s := Series{Name: fmt.Sprintf("%s/d=%d,k=%d", p.Name(), d, k)}
				for _, nBase := range fig4NBases {
					n := opts.scaledN(nBase)
					if n > len(ds.Records) {
						n = len(ds.Records)
					}
					tv, sd, err := meanTVOverRepeats(p, ds.Records[:n], betas, opts, 1)
					if err != nil {
						return nil, err
					}
					s.X = append(s.X, float64(n))
					s.Y = append(s.Y, tv)
					s.Err = append(s.Err, sd)
				}
				res.Series = append(res.Series, s)
			}
		}
	}
	return res, nil
}

// Fig5 reproduces Figure 5: the effect of the marginal size k (1..7) at
// d=8, N=2^18, e^eps=3 on the taxi data. Each protocol is deployed with
// K=k and evaluated on all k-way marginals.
func Fig5(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const d = 8
	n := opts.scaledN(1 << 18)
	ds := dataset.NewTaxi(n, opts.Seed+12)
	res := &Result{
		ID:     "fig5",
		Title:  "Effect of varying k on taxi data (d=8, N=2^18, eps=ln3)",
		XLabel: "k",
		YLabel: "mean TV",
	}
	series := map[core.Kind]*Series{}
	for _, kind := range core.AllKinds() {
		series[kind] = &Series{Name: kind.String()}
	}
	for k := 1; k <= 7; k++ {
		cfg := core.Config{D: d, K: k, Epsilon: ln3, OptimizedPRR: true}
		betas := evalBetas(d, k, defaultMaxMarginals(opts, 40), opts.Seed+uint64(k))
		for _, kind := range core.AllKinds() {
			p, err := core.New(kind, cfg)
			if err != nil {
				return nil, err
			}
			tv, sd, err := meanTVOverRepeats(p, ds.Records, betas, opts, 1)
			if err != nil {
				return nil, err
			}
			s := series[kind]
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, tv)
			s.Err = append(s.Err, sd)
		}
	}
	for _, kind := range core.AllKinds() {
		res.Series = append(res.Series, *series[kind])
	}
	return res, nil
}

// fig9Eps is the epsilon grid of Figure 9 (and Figures 6 and 8).
var fig9Eps = []float64{0.4, 0.6, 0.8, 1.0, 1.2, 1.4}

// Fig9 reproduces Figure 9 (Appendix B.1): mean TV on movielens for
// N=2^18 as epsilon varies, across d in {4, 8, 16} and k in {1, 2, 3}.
func Fig9(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := opts.scaledN(1 << 18)
	res := &Result{
		ID:     "fig9",
		Title:  "Mean TV of 1,2,3-way marginals on movielens as eps varies (N=2^18)",
		XLabel: "eps",
		YLabel: "mean TV",
	}
	for _, d := range []int{4, 8, 16} {
		ds, err := dataset.NewMovieLens(n, d, opts.Seed+13)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{1, 2, 3} {
			if k > d {
				continue
			}
			betas := evalBetas(d, k, defaultMaxMarginals(opts, 60), opts.Seed)
			for _, kind := range core.AllKinds() {
				s := Series{Name: fmt.Sprintf("%s/d=%d,k=%d", kind, d, k)}
				for _, eps := range fig9Eps {
					cfg := core.Config{D: d, K: k, Epsilon: eps, OptimizedPRR: true}
					p, err := core.New(kind, cfg)
					if err != nil {
						return nil, err
					}
					tv, sd, err := meanTVOverRepeats(p, ds.Records, betas, opts, 1)
					if err != nil {
						return nil, err
					}
					s.X = append(s.X, eps)
					s.Y = append(s.Y, tv)
					s.Err = append(s.Err, sd)
				}
				res.Series = append(res.Series, s)
			}
		}
	}
	return res, nil
}

// defaultMaxMarginals resolves the per-measurement marginal cap.
func defaultMaxMarginals(opts Options, def int) int {
	if opts.MaxMarginals > 0 {
		return opts.MaxMarginals
	}
	return def
}
