package experiments

import (
	"fmt"
	"strings"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/efronstein"
	"ldpmarginals/internal/vec"
)

// ExtensionEfronStein evaluates the Section 6.3 conjecture: on
// categorical data, an Efron-Stein-based InpES protocol against InpHT on
// the binary-encoded records, over single-attribute and pairwise
// marginals. The paper conjectures the decomposition-based scheme "will
// be among the best solutions" for low-order categorical marginals.
func ExtensionEfronStein(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	cards := []int{5, 4, 3, 6}
	n := opts.scaledN(1 << 18)
	cat, err := dataset.NewCategoricalCorrelated(n, cards, opts.Seed+51)
	if err != nil {
		return nil, err
	}
	bin, err := cat.EncodeBinary()
	if err != nil {
		return nil, err
	}

	// Attribute pairs to evaluate, plus singletons.
	queries := [][]int{{0}, {1}, {2}, {3}, {0, 1}, {0, 2}, {1, 3}, {2, 3}}

	// InpES in native category space.
	es, err := efronstein.New(efronstein.Config{Cardinalities: cards, K: 2, Epsilon: ln3})
	if err != nil {
		return nil, err
	}
	esRun, err := core.Run(es, bin.Records, opts.Seed+1, opts.Workers)
	if err != nil {
		return nil, err
	}
	esAgg := esRun.Agg.(*efronstein.Aggregator)

	// InpHT on the binary encoding: the k for a 2-attribute categorical
	// marginal is the total bit width of the two widest attributes.
	maxK := 0
	for _, q := range queries {
		w := 0
		for _, at := range q {
			w += bitsLenInt(cards[at] - 1)
		}
		if w > maxK {
			maxK = w
		}
	}
	ht, err := core.New(core.InpHT, core.Config{D: bin.D, K: maxK, Epsilon: ln3})
	if err != nil {
		return nil, err
	}
	htRun, err := core.Run(ht, bin.Records, opts.Seed+2, opts.Workers)
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "cards=%v N=%d eps=ln3 (TV per marginal)\n", cards, n)
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "attrs", "InpES", "InpHT(bin)")
	var esTotal, htTotal float64
	for _, q := range queries {
		exact, err := efronstein.ExactCategorical(cat, q)
		if err != nil {
			return nil, err
		}
		esDist, err := esAgg.EstimateCategorical(q)
		if err != nil {
			return nil, err
		}
		esTV := vec.TVDist(esDist, exact)

		mask, err := cat.MaskFor(q...)
		if err != nil {
			return nil, err
		}
		htTab, err := htRun.Agg.Estimate(mask)
		if err != nil {
			return nil, err
		}
		exactTab, err := bin.Marginal(mask)
		if err != nil {
			return nil, err
		}
		htTV, err := htTab.TVDistance(exactTab)
		if err != nil {
			return nil, err
		}
		esTotal += esTV
		htTotal += htTV
		fmt.Fprintf(&b, "%-12s %12.5f %12.5f\n", fmt.Sprint(q), esTV, htTV)
	}
	fmt.Fprintf(&b, "%-12s %12.5f %12.5f\n", "mean",
		esTotal/float64(len(queries)), htTotal/float64(len(queries)))
	return &Result{
		ID:    "ext-es",
		Title: "Efron-Stein InpES vs binary-encoded InpHT on categorical data (Section 6.3)",
		Text:  b.String(),
	}, nil
}

func bitsLenInt(v int) int {
	n := 0
	for ; v > 0; v >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}
