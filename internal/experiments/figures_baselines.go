package experiments

import (
	"fmt"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/em"
	"ldpmarginals/internal/freqoracle"
)

// Fig6 reproduces Figure 6: 2-way marginal accuracy on the taxi data at
// larger dimensionalities (columns duplicated to d in {8, 16, 24}) as
// epsilon varies, comparing InpHT and MargPS against the InpEM baseline.
// Series are named "Proto/d=D".
func Fig6(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := opts.scaledN(1 << 18)
	base := dataset.NewTaxi(n, opts.Seed+31)
	res := &Result{
		ID:     "fig6",
		Title:  "2-way marginal TV on taxi data for larger d (InpEM vs InpHT/MargPS)",
		XLabel: "eps",
		YLabel: "mean TV",
	}
	for _, d := range []int{8, 16, 24} {
		ds := base
		if d != base.D {
			var err error
			ds, err = dataset.DuplicateColumns(base, d)
			if err != nil {
				return nil, err
			}
		}
		betas := evalBetas(d, 2, defaultMaxMarginals(opts, 40), opts.Seed+uint64(d))
		build := []struct {
			name string
			make func(eps float64) (core.Protocol, error)
		}{
			{"InpHT", func(eps float64) (core.Protocol, error) {
				return core.New(core.InpHT, core.Config{D: d, K: 2, Epsilon: eps, OptimizedPRR: true})
			}},
			{"MargPS", func(eps float64) (core.Protocol, error) {
				return core.New(core.MargPS, core.Config{D: d, K: 2, Epsilon: eps, OptimizedPRR: true})
			}},
			{"InpEM", func(eps float64) (core.Protocol, error) {
				return em.New(em.Config{D: d, K: 2, Epsilon: eps})
			}},
		}
		for _, bld := range build {
			s := Series{Name: fmt.Sprintf("%s/d=%d", bld.name, d)}
			for _, eps := range fig9Eps {
				p, err := bld.make(eps)
				if err != nil {
					return nil, err
				}
				tv, sd, err := meanTVOverRepeats(p, ds.Records, betas, opts, 1)
				if err != nil {
					return nil, err
				}
				s.X = append(s.X, eps)
				s.Y = append(s.Y, tv)
				s.Err = append(s.Err, sd)
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// fig10DValues are the dimensionalities swept by Figure 10. The paper
// reports that InpOLH timed out beyond d=8 (12 hours at d=12); we skip
// it there for the same reason, leaving gaps in its series exactly as
// the paper's plot does.
var fig10DValues = []int{4, 6, 8, 12, 16}

// fig10OLHMaxD is the largest d at which the InpOLH decode (O(N * 2^d))
// is attempted.
const fig10OLHMaxD = 8

// Fig10 reproduces Figure 10 (Appendix B.2): 2-way marginal accuracy of
// the frequency-oracle baselines (InpOLH, InpHTCMS with g=5, w=256)
// against InpHT on lightly skewed synthetic data at e^eps = 3.
func Fig10(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := opts.scaledN(1 << 17)
	res := &Result{
		ID:     "fig10",
		Title:  "Frequency-oracle baselines vs InpHT on skewed synthetic data (eps=ln3)",
		XLabel: "d",
		YLabel: "mean TV",
	}
	ht := Series{Name: "InpHT"}
	olh := Series{Name: "InpOLH"}
	hcms := Series{Name: "InpHTCMS"}
	for _, d := range fig10DValues {
		ds, err := dataset.NewSkewed(n, d, 0.85, opts.Seed+uint64(d)*17+32)
		if err != nil {
			return nil, err
		}
		betas := evalBetas(d, 2, defaultMaxMarginals(opts, 30), opts.Seed+uint64(d))

		p, err := core.New(core.InpHT, core.Config{D: d, K: 2, Epsilon: ln3, OptimizedPRR: true})
		if err != nil {
			return nil, err
		}
		tv, _, err := meanTVOverRepeats(p, ds.Records, betas, opts, 1)
		if err != nil {
			return nil, err
		}
		ht.X = append(ht.X, float64(d))
		ht.Y = append(ht.Y, tv)

		if d <= fig10OLHMaxD {
			o, err := freqoracle.NewOLH(freqoracle.OLHConfig{D: d, K: 2, Epsilon: ln3})
			if err != nil {
				return nil, err
			}
			tv, _, err := meanTVOverRepeats(o, ds.Records, betas, opts, 1)
			if err != nil {
				return nil, err
			}
			olh.X = append(olh.X, float64(d))
			olh.Y = append(olh.Y, tv)
		}

		h, err := freqoracle.NewHCMS(freqoracle.HCMSConfig{D: d, K: 2, Epsilon: ln3, Seed: opts.Seed + 33})
		if err != nil {
			return nil, err
		}
		tv, _, err = meanTVOverRepeats(h, ds.Records, betas, opts, 1)
		if err != nil {
			return nil, err
		}
		hcms.X = append(hcms.X, float64(d))
		hcms.Y = append(hcms.Y, tv)
	}
	res.Series = []Series{ht, olh, hcms}
	return res, nil
}
