package experiments

import (
	"fmt"
	"math"
	"strings"

	"ldpmarginals/internal/chowliu"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/stats"
)

// datasetEstimator adapts a dataset's exact marginals to the
// marginal.Estimator interface, for non-private reference lines.
type datasetEstimator struct{ ds *dataset.Dataset }

func (e datasetEstimator) Estimate(beta uint64) (*marginal.Table, error) {
	return e.ds.Marginal(beta)
}

// Fig3 reproduces Figure 3: the Pearson correlation heatmap of the taxi
// attributes, rendered as a text matrix.
func Fig3(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ds := dataset.NewTaxi(opts.scaledN(3_000_000), opts.Seed+21)
	m, err := stats.PearsonMatrix(ds.Records, ds.D)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "")
	for _, name := range ds.Names {
		fmt.Fprintf(&b, "%12s", name)
	}
	b.WriteString("\n")
	for i, name := range ds.Names {
		fmt.Fprintf(&b, "%-12s", name)
		for j := range ds.Names {
			fmt.Fprintf(&b, "%12.3f", m[i][j])
		}
		b.WriteString("\n")
	}
	return &Result{
		ID:    "fig3",
		Title: "Attribute correlation heatmap of (synthetic) NYC taxi data",
		Text:  b.String(),
	}, nil
}

// fig7Pairs are the attribute pairs of Figure 7 with the paper's
// expectation for each.
var fig7Pairs = []struct {
	a, b      string
	dependent bool
}{
	{"Night_pick", "Night_drop", true},
	{"Toll", "Far", true},
	{"CC", "Tip", true},
	{"M_drop", "CC", false},
	{"Far", "Night_pick", false},
	{"Toll", "Night_pick", false},
}

// Fig7 reproduces Figure 7: chi-squared independence test values on
// N=256K taxi trips at eps=1.1, comparing the non-private statistic with
// the statistics computed from InpHT and MargPS marginals against the
// critical value (df=1, 95%).
func Fig7(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := opts.scaledN(1 << 18)
	ds := dataset.NewTaxi(n, opts.Seed+22)
	cfg := core.Config{D: ds.D, K: 2, Epsilon: 1.1, OptimizedPRR: true}

	inpht, err := core.New(core.InpHT, cfg)
	if err != nil {
		return nil, err
	}
	margps, err := core.New(core.MargPS, cfg)
	if err != nil {
		return nil, err
	}
	htRun, err := core.Run(inpht, ds.Records, opts.Seed+1, opts.Workers)
	if err != nil {
		return nil, err
	}
	psRun, err := core.Run(margps, ds.Records, opts.Seed+2, opts.Workers)
	if err != nil {
		return nil, err
	}

	crit, err := stats.ChiSquareCritical(1, 0.05)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d eps=1.1 critical=%.3f (df=1, 95%%)\n", n, crit)
	fmt.Fprintf(&b, "%-24s %14s %14s %14s %10s\n", "Pair", "NonPrivate", "InpHT", "MargPS", "expect")
	exact := Series{Name: "NonPrivate"}
	ht := Series{Name: "InpHT"}
	ps := Series{Name: "MargPS"}
	for i, pair := range fig7Pairs {
		beta, err := ds.Mask(pair.a, pair.b)
		if err != nil {
			return nil, err
		}
		nonPriv, err := ds.Marginal(beta)
		if err != nil {
			return nil, err
		}
		htTab, err := htRun.Agg.Estimate(beta)
		if err != nil {
			return nil, err
		}
		psTab, err := psRun.Agg.Estimate(beta)
		if err != nil {
			return nil, err
		}
		nf := float64(n)
		r0, err := stats.ChiSquareIndependence(nonPriv, nf, 0.05)
		if err != nil {
			return nil, err
		}
		r1, err := stats.ChiSquareIndependence(htTab, nf, 0.05)
		if err != nil {
			return nil, err
		}
		r2, err := stats.ChiSquareIndependence(psTab, nf, 0.05)
		if err != nil {
			return nil, err
		}
		expect := "indep"
		if pair.dependent {
			expect = "dep"
		}
		fmt.Fprintf(&b, "%-24s %14.2f %14.2f %14.2f %10s\n",
			pair.a+"-"+pair.b, r0.Stat, r1.Stat, r2.Stat, expect)
		x := float64(i)
		exact.X = append(exact.X, x)
		exact.Y = append(exact.Y, r0.Stat)
		ht.X = append(ht.X, x)
		ht.Y = append(ht.Y, r1.Stat)
		ps.X = append(ps.X, x)
		ps.Y = append(ps.Y, r2.Stat)
	}
	return &Result{
		ID:     "fig7",
		Title:  "Chi-squared test values on taxi trips (eps=1.1)",
		XLabel: "pair index",
		YLabel: "chi-squared statistic",
		Series: []Series{exact, ht, ps},
		Text:   b.String(),
	}, nil
}

// Fig8 reproduces Figure 8: total mutual information of Chow-Liu
// dependency trees on movielens (d=10, N~200K) as epsilon varies. Tree
// structures are learned from exact, InpHT, and MargPS marginals; every
// structure is scored by the sum of *true* mutual informations over its
// edges, so a worse private structure shows up as a lower line.
func Fig8(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const d = 10
	n := opts.scaledN(200_000)
	ds, err := dataset.NewMovieLens(n, d, opts.Seed+23)
	if err != nil {
		return nil, err
	}
	exactMI, err := chowliu.PairMI(datasetEstimator{ds}, d)
	if err != nil {
		return nil, err
	}
	exactTree, err := chowliu.Fit(exactMI)
	if err != nil {
		return nil, err
	}

	repeats := 3
	if opts.Repeats > 0 {
		repeats = opts.Repeats
	}
	scoreTree := func(t *chowliu.Tree) float64 {
		var total float64
		for _, e := range t.Edges {
			total += exactMI[e.A][e.B]
		}
		return total
	}

	res := &Result{
		ID:     "fig8",
		Title:  "Total mutual information of Chow-Liu trees on movielens (d=10)",
		XLabel: "eps",
		YLabel: "total MI of learned tree (bits, scored on true MI)",
	}
	nonPriv := Series{Name: "NonPrivate"}
	for _, eps := range fig9Eps {
		nonPriv.X = append(nonPriv.X, eps)
		nonPriv.Y = append(nonPriv.Y, exactTree.TotalMI)
		nonPriv.Err = append(nonPriv.Err, 0)
	}
	res.Series = append(res.Series, nonPriv)

	for _, kind := range []core.Kind{core.InpHT, core.MargPS} {
		s := Series{Name: kind.String()}
		for _, eps := range fig9Eps {
			cfg := core.Config{D: d, K: 2, Epsilon: eps, OptimizedPRR: true}
			p, err := core.New(kind, cfg)
			if err != nil {
				return nil, err
			}
			var vals []float64
			for rep := 0; rep < repeats; rep++ {
				run, err := core.Run(p, ds.Records, opts.Seed+uint64(rep)*101+uint64(eps*1000), opts.Workers)
				if err != nil {
					return nil, err
				}
				tree, err := chowliu.FitFromEstimator(run.Agg, d)
				if err != nil {
					return nil, err
				}
				vals = append(vals, scoreTree(tree))
			}
			var mean float64
			for _, v := range vals {
				mean += v
			}
			mean /= float64(len(vals))
			var sq float64
			for _, v := range vals {
				sq += (v - mean) * (v - mean)
			}
			s.X = append(s.X, eps)
			s.Y = append(s.Y, mean)
			s.Err = append(s.Err, math.Sqrt(sq/float64(len(vals))))
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
