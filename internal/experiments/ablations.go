package experiments

import (
	"fmt"
	"strings"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/marginal"
)

// AblationPRR quantifies the design note of Section 5.1: the Wang et al.
// optimized PRR probabilities versus the vanilla symmetric eps/2 setting,
// for the two PRR-based protocols. The paper reports "little difference";
// this experiment measures it.
func AblationPRR(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const d, k = 8, 2
	n := opts.scaledN(1 << 17)
	ds, err := dataset.NewMovieLens(n, d, opts.Seed+41)
	if err != nil {
		return nil, err
	}
	betas := evalBetas(d, k, defaultMaxMarginals(opts, 28), opts.Seed)
	var b strings.Builder
	fmt.Fprintf(&b, "d=%d k=%d eps=ln3 N=%d\n", d, k, n)
	fmt.Fprintf(&b, "%-8s %18s %18s\n", "Method", "optimized (OUE)", "vanilla eps/2")
	for _, kind := range []core.Kind{core.InpRR, core.MargRR} {
		row := make([]float64, 2)
		for i, optimized := range []bool{true, false} {
			cfg := core.Config{D: d, K: k, Epsilon: ln3, OptimizedPRR: optimized}
			p, err := core.New(kind, cfg)
			if err != nil {
				return nil, err
			}
			tv, _, err := meanTVOverRepeats(p, ds.Records, betas, opts, 1)
			if err != nil {
				return nil, err
			}
			row[i] = tv
		}
		fmt.Fprintf(&b, "%-8s %18.5f %18.5f\n", kind, row[0], row[1])
	}
	return &Result{
		ID:    "ablation-prr",
		Title: "OUE vs vanilla PRR probabilities (Section 5.1 note)",
		Text:  b.String(),
	}, nil
}

// AblationHTNormalization compares InpHT's Algorithm 2 normalization (the
// realized per-coefficient count N_j) against dividing by the expected
// count N/|T|, a DESIGN.md design-choice callout.
func AblationHTNormalization(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const d, k = 12, 2
	n := opts.scaledN(1 << 16)
	ds, err := dataset.NewMovieLens(n, d, opts.Seed+42)
	if err != nil {
		return nil, err
	}
	betas := evalBetas(d, k, defaultMaxMarginals(opts, 30), opts.Seed)
	cfg := core.Config{D: d, K: k, Epsilon: ln3}
	p, err := core.New(core.InpHT, cfg)
	if err != nil {
		return nil, err
	}
	run, err := core.Run(p, ds.Records, opts.Seed+5, opts.Workers)
	if err != nil {
		return nil, err
	}
	toggler, ok := run.Agg.(interface{ SetNormalizeByExpected(bool) })
	if !ok {
		return nil, fmt.Errorf("experiments: InpHT aggregator lost its normalization toggle")
	}
	measure := func() (float64, error) {
		return marginal.MeanTV(run.Agg, ds.Records, betas)
	}
	toggler.SetNormalizeByExpected(false)
	realized, err := measure()
	if err != nil {
		return nil, err
	}
	toggler.SetNormalizeByExpected(true)
	expected, err := measure()
	if err != nil {
		return nil, err
	}
	toggler.SetNormalizeByExpected(false)
	var b strings.Builder
	fmt.Fprintf(&b, "d=%d k=%d eps=ln3 N=%d\n", d, k, n)
	fmt.Fprintf(&b, "%-32s %12.5f\n", "normalize by realized N_j", realized)
	fmt.Fprintf(&b, "%-32s %12.5f\n", "normalize by expected N/|T|", expected)
	return &Result{
		ID:    "ablation-htnorm",
		Title: "InpHT coefficient normalization: realized vs expected counts",
		Text:  b.String(),
	}, nil
}
