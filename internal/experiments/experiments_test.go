package experiments

import (
	"strings"
	"testing"
)

// quick returns options that shrink the experiments enough for CI while
// preserving their qualitative shape.
func quick(scale float64) Options {
	return Options{Scale: scale, Seed: 424242, Workers: 4, MaxMarginals: 12}
}

func findSeries(t *testing.T, res *Result, name string) Series {
	t.Helper()
	for _, s := range res.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q not found in %s (have %d series)", name, res.ID, len(res.Series))
	return Series{}
}

func TestRegistryAndIDs(t *testing.T) {
	reg := Registry()
	if len(reg) != 13 {
		t.Errorf("registry has %d experiments, want 13", len(reg))
	}
	ids := IDs()
	if len(ids) != len(reg) {
		t.Error("IDs() disagrees with Registry()")
	}
	for _, id := range []string{"table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 {
		t.Errorf("default scale = %v, want 1", o.Scale)
	}
	if n := (Options{Scale: 0.001}).scaledN(1 << 18); n < 500 {
		t.Errorf("scaledN floor violated: %d", n)
	}
}

func TestEvalBetasSubsampling(t *testing.T) {
	all := evalBetas(16, 2, 0, 1)
	if len(all) != 120 {
		t.Fatalf("expected all 120 marginals, got %d", len(all))
	}
	sub := evalBetas(16, 2, 10, 1)
	if len(sub) != 10 {
		t.Fatalf("expected 10 subsampled marginals, got %d", len(sub))
	}
	again := evalBetas(16, 2, 10, 1)
	for i := range sub {
		if sub[i] != again[i] {
			t.Fatal("subsampling is not deterministic")
		}
	}
	other := evalBetas(16, 2, 10, 2)
	diff := false
	for i := range sub {
		if sub[i] != other[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should select different subsets")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(quick(0.05))
	if err != nil {
		t.Fatal(err)
	}
	text := res.Render()
	for _, name := range []string{"InpRR", "InpPS", "InpHT", "MargRR", "MargPS", "MargHT"} {
		if !strings.Contains(text, name) {
			t.Errorf("table2 output missing %s:\n%s", name, text)
		}
	}
	// The communication column must show InpRR's 2^8 = 256 bits.
	if !strings.Contains(text, "256") {
		t.Errorf("table2 should report InpRR's 256-bit cost:\n%s", text)
	}
}

func TestTable3FailureGradient(t *testing.T) {
	res, err := Table3(quick(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "Failed") && !strings.Contains(res.Text, "/") {
		t.Errorf("table3 output malformed:\n%s", res.Text)
	}
}

func TestFig3HeatmapShape(t *testing.T) {
	res, err := Fig3(quick(0.01))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"CC", "Toll", "Far", "Night_pick", "M_drop", "Tip"} {
		if !strings.Contains(res.Text, name) {
			t.Errorf("fig3 heatmap missing attribute %s", name)
		}
	}
	if !strings.Contains(res.Text, "1.000") {
		t.Error("fig3 diagonal should contain 1.000")
	}
}

func TestFig4ErrorDecreasesWithN(t *testing.T) {
	opts := quick(0.08)
	res, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 3 d-values x 3 k-values x 6 protocols.
	if len(res.Series) != 54 {
		t.Fatalf("fig4 has %d series, want 54", len(res.Series))
	}
	// InpHT at d=8,k=2: the error at the largest N must be below the
	// error at the smallest N (1/sqrt(N) decay).
	s := findSeries(t, res, "InpHT/d=8,k=2")
	if len(s.Y) < 2 {
		t.Fatal("series too short")
	}
	if s.Y[len(s.Y)-1] >= s.Y[0] {
		t.Errorf("InpHT error should fall with N: %v", s.Y)
	}
	// InpHT should beat InpPS at d=16, k=2 on the largest N.
	ht := findSeries(t, res, "InpHT/d=16,k=2")
	ps := findSeries(t, res, "InpPS/d=16,k=2")
	last := len(ht.Y) - 1
	if ht.Y[last] >= ps.Y[last] {
		t.Errorf("InpHT (%v) should beat InpPS (%v) at d=16", ht.Y[last], ps.Y[last])
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(quick(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("fig5 has %d series, want 6", len(res.Series))
	}
	s := findSeries(t, res, "InpHT")
	if len(s.X) != 7 {
		t.Fatalf("fig5 should sweep k=1..7, got %d points", len(s.X))
	}
	// Error grows with k for InpHT.
	if s.Y[6] <= s.Y[0] {
		t.Errorf("InpHT error should grow with k: %v", s.Y)
	}
}

func TestFig6EMWorseThanHT(t *testing.T) {
	res, err := Fig6(quick(0.08))
	if err != nil {
		t.Fatal(err)
	}
	ht := findSeries(t, res, "InpHT/d=16")
	emS := findSeries(t, res, "InpEM/d=16")
	// At the largest epsilon InpEM should still be clearly worse.
	last := len(ht.Y) - 1
	if emS.Y[last] <= ht.Y[last] {
		t.Errorf("InpEM (%v) should be worse than InpHT (%v)", emS.Y[last], ht.Y[last])
	}
}

func TestFig7AgreementPattern(t *testing.T) {
	res, err := Fig7(quick(0.25))
	if err != nil {
		t.Fatal(err)
	}
	exact := findSeries(t, res, "NonPrivate")
	ht := findSeries(t, res, "InpHT")
	// Critical value for df=1 at 95%.
	const crit = 3.841
	// Pairs 0..2 are dependent, 3..5 independent: the non-private stat
	// must respect that, and InpHT must agree on the dependent ones.
	for i := 0; i < 3; i++ {
		if exact.Y[i] < crit {
			t.Errorf("dependent pair %d non-private stat %v below critical", i, exact.Y[i])
		}
		if ht.Y[i] < crit {
			t.Errorf("dependent pair %d InpHT stat %v below critical", i, ht.Y[i])
		}
	}
	for i := 3; i < 6; i++ {
		if exact.Y[i] > crit {
			t.Errorf("independent pair %d non-private stat %v above critical", i, exact.Y[i])
		}
	}
}

func TestFig8TreeQualityOrdering(t *testing.T) {
	opts := quick(0.15)
	opts.Repeats = 1
	res, err := Fig8(opts)
	if err != nil {
		t.Fatal(err)
	}
	nonPriv := findSeries(t, res, "NonPrivate")
	ht := findSeries(t, res, "InpHT")
	// The non-private tree is optimal: its total MI upper-bounds the
	// private trees' scores at every epsilon.
	for i := range ht.Y {
		if ht.Y[i] > nonPriv.Y[i]+1e-9 {
			t.Errorf("InpHT tree score %v exceeds optimal %v", ht.Y[i], nonPriv.Y[i])
		}
	}
	// At the largest epsilon InpHT should recover most of the MI.
	last := len(ht.Y) - 1
	if ht.Y[last] < 0.5*nonPriv.Y[last] {
		t.Errorf("InpHT at eps=1.4 recovers only %v of %v", ht.Y[last], nonPriv.Y[last])
	}
}

func TestFig9ErrorDecreasesWithEps(t *testing.T) {
	res, err := Fig9(quick(0.05))
	if err != nil {
		t.Fatal(err)
	}
	s := findSeries(t, res, "InpHT/d=8,k=2")
	first, last := s.Y[0], s.Y[len(s.Y)-1]
	if last >= first {
		t.Errorf("InpHT error should fall with eps: %v", s.Y)
	}
}

func TestFig10OLHGapsAndOrdering(t *testing.T) {
	res, err := Fig10(quick(0.1))
	if err != nil {
		t.Fatal(err)
	}
	ht := findSeries(t, res, "InpHT")
	olh := findSeries(t, res, "InpOLH")
	hcms := findSeries(t, res, "InpHTCMS")
	if len(ht.X) != len(fig10DValues) {
		t.Errorf("InpHT should cover all d values")
	}
	// OLH stops at d=8, like the paper's timeout.
	for _, x := range olh.X {
		if x > fig10OLHMaxD {
			t.Errorf("InpOLH ran at d=%v despite the decode limit", x)
		}
	}
	// HCMS is not competitive with InpHT at the largest d.
	lastHT := ht.Y[len(ht.Y)-1]
	lastCMS := hcms.Y[len(hcms.Y)-1]
	if lastCMS <= lastHT {
		t.Errorf("InpHTCMS (%v) should trail InpHT (%v) at d=16", lastCMS, lastHT)
	}
}

func TestAblationPRRSmallGap(t *testing.T) {
	res, err := AblationPRR(quick(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "InpRR") || !strings.Contains(res.Text, "MargRR") {
		t.Errorf("ablation output malformed:\n%s", res.Text)
	}
}

func TestAblationHTNormalization(t *testing.T) {
	res, err := AblationHTNormalization(quick(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "realized") || !strings.Contains(res.Text, "expected") {
		t.Errorf("ablation output malformed:\n%s", res.Text)
	}
}

func TestRenderSeriesTable(t *testing.T) {
	res := &Result{
		ID:     "x",
		Title:  "demo",
		XLabel: "n",
		YLabel: "tv",
		Series: []Series{
			{Name: "A", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
			{Name: "B", X: []float64{1}, Y: []float64{0.9}},
		},
	}
	text := res.Render()
	if !strings.Contains(text, "A") || !strings.Contains(text, "B") {
		t.Errorf("render missing series names:\n%s", text)
	}
	// B has no point at x=2: rendered as "-".
	if !strings.Contains(text, "-") {
		t.Errorf("render should mark missing points:\n%s", text)
	}
}

func TestExtensionEfronStein(t *testing.T) {
	res, err := ExtensionEfronStein(quick(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "InpES") || !strings.Contains(res.Text, "mean") {
		t.Errorf("ext-es output malformed:\n%s", res.Text)
	}
}
