package experiments

import (
	"fmt"
	"strings"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/em"
	"ldpmarginals/internal/marginal"
)

// Table2 reproduces the paper's Table 2: per-user communication cost of
// each protocol, augmented with the error actually measured at a fixed
// configuration (d=8, k=2, eps=ln 3, movielens-style data). The paper's
// column is an asymptotic bound; the measured column confirms the
// ordering it predicts.
func Table2(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const d, k = 8, 2
	n := opts.scaledN(1 << 17)
	ds, err := dataset.NewMovieLens(n, d, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{D: d, K: k, Epsilon: ln3, OptimizedPRR: true}
	betas := evalBetas(d, k, opts.MaxMarginals, opts.Seed)

	var b strings.Builder
	fmt.Fprintf(&b, "d=%d k=%d eps=ln3 N=%d  (paper Table 2 columns + measured mean TV)\n", d, k, n)
	fmt.Fprintf(&b, "%-8s %18s %18s\n", "Method", "Comm. bits/user", "Measured mean TV")
	for _, kind := range core.AllKinds() {
		p, err := core.New(kind, cfg)
		if err != nil {
			return nil, err
		}
		tv, _, err := meanTVOverRepeats(p, ds.Records, betas, opts, 1)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%-8s %18d %18.5f\n", p.Name(), p.CommunicationBits(), tv)
	}
	return &Result{
		ID:    "table2",
		Title: "Communication cost and measured error per protocol",
		Text:  b.String(),
	}, nil
}

// table3Rows are the exact configurations of the paper's Table 3.
type table3Row struct {
	logN int
	d    int
	k    int
	eps  float64
}

var table3Rows = []table3Row{
	{16, 8, 1, 0.2},
	{18, 8, 2, 0.1},
	{16, 8, 2, 0.2},
	{16, 12, 2, 0.2},
	{18, 16, 2, 0.1},
	{18, 16, 2, 0.2},
	{19, 24, 2, 0.2},
}

// Table3 reproduces Table 3: the failure rate of the InpEM baseline on
// the taxi dataset at small epsilon — the fraction of marginals whose EM
// decoding converges immediately to the uniform prior.
func Table3(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	base := dataset.NewTaxi(opts.scaledN(1<<19), opts.Seed+2)

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %4s %3s %5s %18s\n", "N", "d", "k", "eps", "Failed/Total")
	for i, row := range table3Rows {
		n := opts.scaledN(1 << uint(row.logN))
		ds := base
		if row.d != ds.D {
			var err error
			ds, err = dataset.DuplicateColumns(base, row.d)
			if err != nil {
				return nil, err
			}
		}
		records := ds.Records
		if n < len(records) {
			records = records[:n]
		}
		p, err := em.New(em.Config{D: row.d, K: row.k, Epsilon: row.eps})
		if err != nil {
			return nil, err
		}
		res, err := core.Run(p, records, opts.Seed+uint64(i)*31+3, opts.Workers)
		if err != nil {
			return nil, err
		}
		agg := res.Agg.(*em.Aggregator)
		betas := evalBetas(row.d, row.k, opts.MaxMarginals, opts.Seed+uint64(i))
		failed := 0
		for _, beta := range betas {
			dec, err := agg.EstimateDetailed(beta)
			if err != nil {
				return nil, err
			}
			if dec.Failed {
				failed++
			}
		}
		total := len(marginal.AllKWay(row.d, row.k))
		fmt.Fprintf(&b, "%-8d %4d %3d %5.2g %11d/%d (evaluated %d)\n",
			n, row.d, row.k, row.eps, failed, len(betas), total)
	}
	return &Result{
		ID:    "table3",
		Title: "InpEM failure rate on taxi data for small epsilon",
		Text:  b.String(),
	}, nil
}
