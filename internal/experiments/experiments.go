// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5, Section 6, Appendix B) from this repository's
// implementations. Each experiment is a named runner returning a
// structured Result with the same rows/series the paper reports, plus a
// plain-text rendering.
//
// Runners take an Options value whose Scale field shrinks population
// sizes proportionally, so the identical code drives quick tests, the
// benchmark harness, and full-size CLI reproductions.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
)

// Options controls an experiment run.
type Options struct {
	// Scale multiplies every population size; 1 reproduces the paper's
	// N. Values below 1 shrink runs for quick iteration.
	Scale float64
	// Seed fixes all randomness of the run.
	Seed uint64
	// Workers is passed to the protocol runner (0 = GOMAXPROCS).
	Workers int
	// Repeats overrides the experiment's default repeat count when > 0.
	Repeats int
	// MaxMarginals caps how many marginals are averaged per measurement
	// (0 = experiment default). Large-d configurations subsample
	// deterministically to keep runtimes sane; the subset is seeded, so
	// runs remain reproducible.
	MaxMarginals int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Repeats < 0 {
		o.Repeats = 0
	}
	return o
}

// scaledN applies the scale factor with a floor that keeps estimates
// meaningful.
func (o Options) scaledN(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 500 {
		n = 500
	}
	return n
}

// Series is one plotted line: a name and aligned X/Y points, with an
// optional per-point standard deviation across repeats.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	Err  []float64
}

// Result is a regenerated table or figure.
type Result struct {
	// ID is the experiment identifier (e.g. "fig4", "table3").
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// XLabel / YLabel document the series axes, when the result is a
	// plot-shaped experiment.
	XLabel, YLabel string
	// Series holds the plotted lines, grouped by the Group key.
	Series []Series
	// Text is a pre-rendered table for table-shaped results; when empty,
	// Render synthesizes one from the series.
	Text string
}

// Render returns a plain-text rendering of the result: the pre-rendered
// Text if present, otherwise an aligned table of the series.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Text != "" {
		b.WriteString(r.Text)
		return b.String()
	}
	if len(r.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%s vs %s\n", r.YLabel, r.XLabel)
	// Collect the union of x values.
	xsSet := map[float64]bool{}
	for _, s := range r.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%-14s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14.4g", x)
		for _, s := range r.Series {
			v := math.NaN()
			for i, sx := range s.X {
				if sx == x {
					v = s.Y[i]
					break
				}
			}
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "%16s", "-")
			} else {
				fmt.Fprintf(&b, "%16.5f", v)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Runner regenerates one paper artifact.
type Runner func(Options) (*Result, error)

// Registry maps experiment ids to runners, in the paper's order.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table2":          Table2,
		"table3":          Table3,
		"fig3":            Fig3,
		"fig4":            Fig4,
		"fig5":            Fig5,
		"fig6":            Fig6,
		"fig7":            Fig7,
		"fig8":            Fig8,
		"fig9":            Fig9,
		"fig10":           Fig10,
		"ablation-prr":    AblationPRR,
		"ablation-htnorm": AblationHTNormalization,
		"ext-es":          ExtensionEfronStein,
	}
}

// IDs returns the registered experiment ids in deterministic order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ln3 is the epsilon used throughout the paper's default setting
// (e^eps = 3).
var ln3 = math.Log(3)

// evalBetas returns the marginals to average over: all k-way marginals,
// subsampled deterministically to at most maxCount when positive.
func evalBetas(d, k, maxCount int, seed uint64) []uint64 {
	betas := marginal.AllKWay(d, k)
	if maxCount <= 0 || len(betas) <= maxCount {
		return betas
	}
	r := rng.New(seed ^ 0xb37a5)
	r.Shuffle(len(betas), func(i, j int) { betas[i], betas[j] = betas[j], betas[i] })
	betas = betas[:maxCount]
	sort.Slice(betas, func(i, j int) bool { return betas[i] < betas[j] })
	return betas
}

// meanTVOverRepeats runs the protocol `repeats` times with distinct seeds
// and returns the mean and standard deviation of the mean-TV metric.
func meanTVOverRepeats(p core.Protocol, records []uint64, betas []uint64, opts Options, repeats int) (mean, stddev float64, err error) {
	if opts.Repeats > 0 {
		repeats = opts.Repeats
	}
	if repeats < 1 {
		repeats = 1
	}
	var vals []float64
	for rep := 0; rep < repeats; rep++ {
		res, err := core.Run(p, records, opts.Seed+uint64(rep)*7919+1, opts.Workers)
		if err != nil {
			return 0, 0, err
		}
		tv, err := marginal.MeanTV(res.Agg, records, betas)
		if err != nil {
			return 0, 0, err
		}
		vals = append(vals, tv)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean = sum / float64(len(vals))
	var sq float64
	for _, v := range vals {
		sq += (v - mean) * (v - mean)
	}
	stddev = math.Sqrt(sq / float64(len(vals)))
	return mean, stddev, nil
}
