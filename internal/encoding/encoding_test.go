package encoding

import (
	"testing"
	"testing/quick"

	"ldpmarginals/internal/core"
)

func TestTagForProtocol(t *testing.T) {
	names := []string{"InpRR", "InpPS", "InpHT", "MargRR", "MargPS", "MargHT", "InpEM", "InpOLH", "InpHTCMS"}
	seen := map[Tag]bool{}
	for _, name := range names {
		tag, err := TagForProtocol(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if seen[tag] {
			t.Errorf("tag %d reused", tag)
		}
		seen[tag] = true
	}
	if _, err := TagForProtocol("Nope"); err == nil {
		t.Error("unknown protocol should error")
	}
}

func roundTrip(t *testing.T, name string, rep core.Report) core.Report {
	t.Helper()
	frame, err := Marshal(name, rep)
	if err != nil {
		t.Fatalf("%s marshal: %v", name, err)
	}
	tag, got, err := Unmarshal(frame)
	if err != nil {
		t.Fatalf("%s unmarshal: %v", name, err)
	}
	want, _ := TagForProtocol(name)
	if tag != want {
		t.Fatalf("%s tag = %d, want %d", name, tag, want)
	}
	return got
}

func reportsEqual(a, b core.Report) bool {
	if a.Beta != b.Beta || a.Index != b.Index || a.Sign != b.Sign {
		return false
	}
	if len(a.Bits) != len(b.Bits) {
		return false
	}
	for i := range a.Bits {
		if a.Bits[i] != b.Bits[i] {
			return false
		}
	}
	return true
}

func TestRoundTripAllProtocols(t *testing.T) {
	cases := map[string]core.Report{
		"InpRR":    {Bits: []uint64{0xdeadbeef, 42}},
		"InpPS":    {Index: 123456},
		"InpHT":    {Index: 0b1010, Sign: -1},
		"MargRR":   {Beta: 0b0110, Bits: []uint64{7}},
		"MargPS":   {Beta: 0b0110, Index: 3},
		"MargHT":   {Beta: 0b0110, Index: 2, Sign: 1},
		"InpEM":    {Index: 0b11011},
		"InpOLH":   {Beta: 0xffffffffffffffff, Index: 3},
		"InpHTCMS": {Beta: 4, Index: 200, Sign: -1},
	}
	for name, rep := range cases {
		got := roundTrip(t, name, rep)
		// Normalize: Unmarshal only fills fields the protocol carries.
		if !reportsEqual(got, normalizeFor(name, rep)) {
			t.Errorf("%s round trip: got %+v, want %+v", name, got, rep)
		}
	}
}

// normalizeFor zeroes fields the wire format does not carry for the
// protocol (none, today — every used field is carried).
func normalizeFor(_ string, rep core.Report) core.Report { return rep }

func TestRoundTripPropertyHT(t *testing.T) {
	f := func(index uint64, positive bool) bool {
		sign := int8(-1)
		if positive {
			sign = 1
		}
		rep := core.Report{Index: index, Sign: sign}
		frame, err := Marshal("InpHT", rep)
		if err != nil {
			return false
		}
		_, got, err := Unmarshal(frame)
		return err == nil && got.Index == index && got.Sign == sign
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripPropertyMargPS(t *testing.T) {
	f := func(beta, index uint64) bool {
		rep := core.Report{Beta: beta, Index: index}
		frame, err := Marshal("MargPS", rep)
		if err != nil {
			return false
		}
		_, got, err := Unmarshal(frame)
		return err == nil && got.Beta == beta && got.Index == index
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarshalRejectsBadSign(t *testing.T) {
	if _, err := Marshal("InpHT", core.Report{Index: 1, Sign: 0}); err == nil {
		t.Error("sign 0 should fail to marshal")
	}
	if _, err := Marshal("MargHT", core.Report{Beta: 1, Index: 1, Sign: 5}); err == nil {
		t.Error("sign 5 should fail to marshal")
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	bad := [][]byte{
		nil,                     // empty
		{99},                    // unknown tag
		{byte(TagInpHT)},        // missing payload
		{byte(TagInpHT), 5},     // missing sign
		{byte(TagInpRR), 3, 1},  // truncated bitmap
		{byte(TagOLH), 1, 2, 3}, // truncated seed
		{byte(TagInpPS), 1, 0},  // trailing bytes
		{byte(TagInpHT), 1, 2},  // malformed sign byte
		{byte(TagMargPS), 0x80}, // truncated varint
	}
	for i, frame := range bad {
		if _, _, err := Unmarshal(frame); err == nil {
			t.Errorf("case %d: malformed frame accepted: %v", i, frame)
		}
	}
}

func TestUnmarshalRejectsHugeBitmap(t *testing.T) {
	frame := []byte{byte(TagInpRR)}
	// Varint for 1<<20 words (over the cap).
	frame = append(frame, 0x80, 0x80, 0x40)
	if _, _, err := Unmarshal(frame); err == nil {
		t.Error("oversized bitmap should be rejected")
	}
}

func TestWireSizeMatchesTable2Ordering(t *testing.T) {
	// The wire sizes should preserve Table 2's ordering: InpRR largest,
	// index-based protocols a handful of bytes.
	inprr, _ := Marshal("InpRR", core.Report{Bits: make([]uint64, 4)}) // d=8: 256 bits
	inpht, _ := Marshal("InpHT", core.Report{Index: 0b11, Sign: 1})
	margps, _ := Marshal("MargPS", core.Report{Beta: 0b11, Index: 2})
	if len(inprr) <= len(inpht) || len(inprr) <= len(margps) {
		t.Errorf("InpRR frame (%dB) should dwarf InpHT (%dB) and MargPS (%dB)",
			len(inprr), len(inpht), len(margps))
	}
	if len(inpht) > 12 || len(margps) > 12 {
		t.Errorf("index protocols should be a few bytes: InpHT=%dB MargPS=%dB", len(inpht), len(margps))
	}
}
