package encoding

import (
	"reflect"
	"strings"
	"testing"

	"ldpmarginals/internal/core"
)

func TestBatchRoundTrip(t *testing.T) {
	reps := []core.Report{
		{Beta: 0b11, Index: 1, Sign: 1},
		{Beta: 0b101, Index: 3, Sign: -1},
		{Beta: 0b110, Index: 2, Sign: 1},
	}
	buf, err := MarshalBatch("MargHT", reps)
	if err != nil {
		t.Fatal(err)
	}
	tag, got, err := UnmarshalBatch(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tag != TagMargHT || !reflect.DeepEqual(reps, got) {
		t.Fatalf("round trip: tag %d, reports %+v", tag, got)
	}
}

func TestUnmarshalBatchEnforcesMaxReports(t *testing.T) {
	reps := make([]core.Report, 5)
	for i := range reps {
		reps[i] = core.Report{Index: uint64(i)}
	}
	buf, err := MarshalBatch("InpPS", reps)
	if err != nil {
		t.Fatal(err)
	}
	if _, got, err := UnmarshalBatch(buf, 5); err != nil || len(got) != 5 {
		t.Fatalf("batch at the limit rejected: %v", err)
	}
	if _, _, err := UnmarshalBatch(buf, 4); err == nil || !strings.Contains(err.Error(), "exceeds 4 reports") {
		t.Fatalf("over-limit batch error = %v", err)
	}
}

func TestUnmarshalBatchRejectsOversizedFrame(t *testing.T) {
	var buf []byte
	buf = append(buf, 0xff, 0xff, 0x7f) // uvarint length ~2M > MaxFrameBytes
	if _, _, err := UnmarshalBatch(buf, 0); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}
