package encoding

import (
	"reflect"
	"testing"

	"ldpmarginals/internal/core"
)

// corpusReports holds one representative report per wire tag, so the
// fuzzers start from every branch of the format.
func corpusReports(t testing.TB) map[string]core.Report {
	t.Helper()
	return map[string]core.Report{
		"InpRR":    {Bits: []uint64{0xdeadbeef, 0x0102030405060708}},
		"InpPS":    {Index: 173},
		"InpHT":    {Index: 0b1001, Sign: -1},
		"MargRR":   {Beta: 0b110, Bits: []uint64{0b1011}},
		"MargPS":   {Beta: 0b101, Index: 2},
		"MargHT":   {Beta: 0b11, Index: 3, Sign: 1},
		"InpEM":    {Index: 255},
		"InpOLH":   {Beta: 0xfeedface31337, Index: 11},
		"InpHTCMS": {Beta: 7, Index: 129, Sign: 1},
	}
}

// FuzzMarshalRoundTrip asserts that Unmarshal never panics on arbitrary
// frames, and that any frame it accepts round-trips: re-marshaling the
// decoded report yields a frame that decodes to the same report. This is
// the property the batch ingestion endpoint relies on — a malformed
// frame is an error, never a crash or a silently different report.
func FuzzMarshalRoundTrip(f *testing.F) {
	for name, rep := range corpusReports(f) {
		frame, err := Marshal(name, rep)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	// Malformed seeds: unknown tag, truncated varint, trailing bytes.
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01})
	f.Add([]byte{byte(TagInpHT), 0x80})
	f.Add([]byte{byte(TagInpPS), 0x01, 0x02})
	f.Fuzz(func(t *testing.T, frame []byte) {
		tag, rep, err := Unmarshal(frame)
		if err != nil {
			return
		}
		name, err := ProtocolForTag(tag)
		if err != nil {
			t.Fatalf("accepted frame has unmappable tag %d", tag)
		}
		out, err := Marshal(name, rep)
		if err != nil {
			t.Fatalf("re-marshal of accepted report failed: %v", err)
		}
		tag2, rep2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if tag2 != tag || !reflect.DeepEqual(rep, rep2) {
			t.Fatalf("round trip changed report: %+v -> %+v", rep, rep2)
		}
	})
}

// FuzzUnmarshalBatch asserts that batch parsing never panics and that
// accepted batches round-trip through MarshalBatch.
func FuzzUnmarshalBatch(f *testing.F) {
	for name, rep := range corpusReports(f) {
		batch, err := MarshalBatch(name, []core.Report{rep, rep})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(batch)
	}
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x01})       // length prefix longer than body
	f.Add([]byte{0xff, 0xff, 0xff}) // runaway length varint
	f.Fuzz(func(t *testing.T, buf []byte) {
		tag, reps, err := UnmarshalBatch(buf, 1<<12)
		if err != nil {
			return
		}
		if len(reps) == 0 {
			t.Fatal("accepted batch decoded to zero reports")
		}
		name, err := ProtocolForTag(tag)
		if err != nil {
			t.Fatalf("accepted batch has unmappable tag %d", tag)
		}
		out, err := MarshalBatch(name, reps)
		if err != nil {
			t.Fatalf("re-marshal of accepted batch failed: %v", err)
		}
		tag2, reps2, err := UnmarshalBatch(out, 0)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if tag2 != tag || !reflect.DeepEqual(reps, reps2) {
			t.Fatal("batch round trip changed reports")
		}
	})
}
