package encoding

import (
	"fmt"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/wire"
)

// Batch wire format. A batch is a concatenation of length-prefixed
// report frames (the shared wire framing, which the durable WAL's
// segment format reuses record-for-record):
//
//	repeat: uvarint frame length, then that many bytes of a Marshal frame
//
// Every frame in a batch must carry the same protocol tag; a deployment
// collects exactly one protocol, so a mixed batch is malformed. The
// framing carries no count header — the batch ends at the end of the
// buffer — so producers can stream frames into a request body without
// knowing the final count up front.

// MaxFrameBytes bounds a single frame within a batch (the largest legal
// report is InpRR at d=20: 2^20 bits = 128 KiB, plus framing).
const MaxFrameBytes = 1 << 18

// AppendFrame appends one length-prefixed frame to dst and returns the
// extended buffer.
func AppendFrame(dst, frame []byte) []byte {
	return wire.AppendFrame(dst, frame)
}

// MarshalBatch serializes a batch of reports of the named protocol into
// the length-prefixed batch format.
func MarshalBatch(name string, reps []core.Report) ([]byte, error) {
	var buf []byte
	for i := range reps {
		frame, err := Marshal(name, reps[i])
		if err != nil {
			return nil, fmt.Errorf("encoding: batch report %d: %w", i, err)
		}
		buf = AppendFrame(buf, frame)
	}
	return buf, nil
}

// UnmarshalBatch parses a length-prefixed batch of report frames,
// requiring every frame to carry the same protocol tag. maxReports
// bounds the number of frames (0 means no bound) so a hostile body
// cannot force unbounded decoding work beyond its own size.
func UnmarshalBatch(buf []byte, maxReports int) (Tag, []core.Report, error) {
	tag, reps, _, err := UnmarshalBatchEnds(buf, maxReports)
	return tag, reps, err
}

// UnmarshalBatchEnds is UnmarshalBatch returning, alongside the decoded
// reports, the byte offset just past each report's frame: buf[:ends[i]]
// is itself a valid batch of the first i+1 reports, and
// buf[ends[i]:ends[j]] one of reports i+1..j. The durable ingestion
// path uses these bounds to append the accepted prefix of a request
// body to the write-ahead log verbatim — the record payload is the
// already-validated wire bytes, with no re-marshal and no per-frame
// re-framing.
func UnmarshalBatchEnds(buf []byte, maxReports int) (Tag, []core.Report, []int, error) {
	return UnmarshalBatchEndsInto(buf, maxReports, nil, nil)
}

// UnmarshalBatchEndsInto is UnmarshalBatchEnds appending into the
// caller's (typically pooled, length-zero) report and offset slices, so
// a steady-state ingest path stops allocating the per-request decode
// buffers. Only the slice headers are reused: per-report payloads (the
// Bits bitmaps of the RR protocols) are freshly decoded, so a consumer
// that retained an earlier batch's reports is unaffected.
func UnmarshalBatchEndsInto(buf []byte, maxReports int, reps []core.Report, ends []int) (Tag, []core.Report, []int, error) {
	var tag Tag
	reps, ends = reps[:0], ends[:0]
	total := len(buf)
	for len(buf) > 0 {
		frame, rest, err := wire.NextFrame(buf, MaxFrameBytes)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("encoding: batch frame %d: %w", len(reps), err)
		}
		if maxReports > 0 && len(reps) == maxReports {
			return 0, nil, nil, fmt.Errorf("encoding: batch exceeds %d reports", maxReports)
		}
		t, rep, err := Unmarshal(frame)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("encoding: batch frame %d: %w", len(reps), err)
		}
		buf = rest
		if len(reps) == 0 {
			tag = t
		} else if t != tag {
			return 0, nil, nil, fmt.Errorf("encoding: batch mixes tags %d and %d", tag, t)
		}
		reps = append(reps, rep)
		ends = append(ends, total-len(buf))
	}
	if len(reps) == 0 {
		return 0, nil, nil, fmt.Errorf("encoding: empty batch")
	}
	return tag, reps, ends, nil
}
