package encoding

import (
	"encoding/binary"
	"fmt"

	"ldpmarginals/internal/core"
)

// Batch wire format. A batch is a concatenation of length-prefixed
// report frames:
//
//	repeat: uvarint frame length, then that many bytes of a Marshal frame
//
// Every frame in a batch must carry the same protocol tag; a deployment
// collects exactly one protocol, so a mixed batch is malformed. The
// framing carries no count header — the batch ends at the end of the
// buffer — so producers can stream frames into a request body without
// knowing the final count up front.

// MaxFrameBytes bounds a single frame within a batch (the largest legal
// report is InpRR at d=20: 2^20 bits = 128 KiB, plus framing).
const MaxFrameBytes = 1 << 18

// AppendFrame appends one length-prefixed frame to dst and returns the
// extended buffer.
func AppendFrame(dst, frame []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(frame)))
	return append(dst, frame...)
}

// MarshalBatch serializes a batch of reports of the named protocol into
// the length-prefixed batch format.
func MarshalBatch(name string, reps []core.Report) ([]byte, error) {
	var buf []byte
	for i := range reps {
		frame, err := Marshal(name, reps[i])
		if err != nil {
			return nil, fmt.Errorf("encoding: batch report %d: %w", i, err)
		}
		buf = AppendFrame(buf, frame)
	}
	return buf, nil
}

// UnmarshalBatch parses a length-prefixed batch of report frames,
// requiring every frame to carry the same protocol tag. maxReports
// bounds the number of frames (0 means no bound) so a hostile body
// cannot force unbounded decoding work beyond its own size.
func UnmarshalBatch(buf []byte, maxReports int) (Tag, []core.Report, error) {
	var (
		tag  Tag
		reps []core.Report
	)
	for len(buf) > 0 {
		n, w := binary.Uvarint(buf)
		if w <= 0 {
			return 0, nil, fmt.Errorf("encoding: batch frame %d: truncated length prefix", len(reps))
		}
		buf = buf[w:]
		if n > MaxFrameBytes {
			return 0, nil, fmt.Errorf("encoding: batch frame %d: %d bytes exceeds limit %d", len(reps), n, MaxFrameBytes)
		}
		if uint64(len(buf)) < n {
			return 0, nil, fmt.Errorf("encoding: batch frame %d: truncated frame (%d of %d bytes)", len(reps), len(buf), n)
		}
		if maxReports > 0 && len(reps) == maxReports {
			return 0, nil, fmt.Errorf("encoding: batch exceeds %d reports", maxReports)
		}
		t, rep, err := Unmarshal(buf[:n])
		if err != nil {
			return 0, nil, fmt.Errorf("encoding: batch frame %d: %w", len(reps), err)
		}
		buf = buf[n:]
		if len(reps) == 0 {
			tag = t
		} else if t != tag {
			return 0, nil, fmt.Errorf("encoding: batch mixes tags %d and %d", tag, t)
		}
		reps = append(reps, rep)
	}
	if len(reps) == 0 {
		return 0, nil, fmt.Errorf("encoding: empty batch")
	}
	return tag, reps, nil
}
