// Package encoding provides the compact binary wire format for protocol
// reports, so the communication costs accounted analytically in Table 2
// correspond to real bytes on the wire. The format is
// protocol-parameterized: each protocol serializes only the fields it
// uses, with variable-length integers for indices whose ranges the
// deployment configuration bounds.
//
// Frame layout (little endian):
//
//	byte 0:    protocol tag
//	remainder: protocol-specific payload (see Marshal)
package encoding

import (
	"encoding/binary"
	"fmt"

	"ldpmarginals/internal/core"
)

// Tag identifies the protocol of an encoded report on the wire.
type Tag byte

// Wire tags. These are part of the persisted format: do not renumber.
const (
	TagInpRR  Tag = 1
	TagInpPS  Tag = 2
	TagInpHT  Tag = 3
	TagMargRR Tag = 4
	TagMargPS Tag = 5
	TagMargHT Tag = 6
	TagInpEM  Tag = 7
	TagOLH    Tag = 8
	TagHCMS   Tag = 9
)

// protocolTags is the single source of the name <-> tag mapping; the
// reverse direction is derived from it below, so a new protocol is
// registered in exactly one place.
var protocolTags = map[string]Tag{
	"InpRR":    TagInpRR,
	"InpPS":    TagInpPS,
	"InpHT":    TagInpHT,
	"MargRR":   TagMargRR,
	"MargPS":   TagMargPS,
	"MargHT":   TagMargHT,
	"InpEM":    TagInpEM,
	"InpOLH":   TagOLH,
	"InpHTCMS": TagHCMS,
}

var tagProtocols = func() map[Tag]string {
	m := make(map[Tag]string, len(protocolTags))
	for name, tag := range protocolTags {
		m[tag] = name
	}
	return m
}()

// TagForProtocol maps a protocol name to its wire tag.
func TagForProtocol(name string) (Tag, error) {
	tag, ok := protocolTags[name]
	if !ok {
		return 0, fmt.Errorf("encoding: unknown protocol %q", name)
	}
	return tag, nil
}

// ProtocolForTag maps a wire tag back to its protocol name — the
// inverse of TagForProtocol.
func ProtocolForTag(tag Tag) (string, error) {
	name, ok := tagProtocols[tag]
	if !ok {
		return "", fmt.Errorf("encoding: unknown tag %d", tag)
	}
	return name, nil
}

// signByte encodes a +-1 sign into one byte.
func signByte(s int8) (byte, error) {
	switch s {
	case 1:
		return 1, nil
	case -1:
		return 0, nil
	default:
		return 0, fmt.Errorf("encoding: sign %d is not +-1", s)
	}
}

func byteSign(b byte) (int8, error) {
	switch b {
	case 1:
		return 1, nil
	case 0:
		return -1, nil
	default:
		return 0, fmt.Errorf("encoding: malformed sign byte %d", b)
	}
}

// Marshal serializes a report produced by the named protocol.
func Marshal(name string, rep core.Report) ([]byte, error) {
	tag, err := TagForProtocol(name)
	if err != nil {
		return nil, err
	}
	buf := []byte{byte(tag)}
	putUvarint := func(v uint64) {
		buf = binary.AppendUvarint(buf, v)
	}
	switch tag {
	case TagInpRR:
		// Bitmap payload: word count then words.
		putUvarint(uint64(len(rep.Bits)))
		for _, w := range rep.Bits {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	case TagInpPS, TagInpEM:
		putUvarint(rep.Index)
	case TagInpHT:
		putUvarint(rep.Index)
		sb, err := signByte(rep.Sign)
		if err != nil {
			return nil, err
		}
		buf = append(buf, sb)
	case TagMargRR:
		putUvarint(rep.Beta)
		putUvarint(uint64(len(rep.Bits)))
		for _, w := range rep.Bits {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	case TagMargPS:
		putUvarint(rep.Beta)
		putUvarint(rep.Index)
	case TagMargHT, TagHCMS:
		putUvarint(rep.Beta)
		putUvarint(rep.Index)
		sb, err := signByte(rep.Sign)
		if err != nil {
			return nil, err
		}
		buf = append(buf, sb)
	case TagOLH:
		// The hash seed needs all 64 bits; fixed width.
		buf = binary.LittleEndian.AppendUint64(buf, rep.Beta)
		putUvarint(rep.Index)
	}
	return buf, nil
}

// Unmarshal parses a frame produced by Marshal, returning the protocol
// tag and the decoded report.
func Unmarshal(frame []byte) (Tag, core.Report, error) {
	if len(frame) == 0 {
		return 0, core.Report{}, fmt.Errorf("encoding: empty frame")
	}
	tag := Tag(frame[0])
	rest := frame[1:]
	var rep core.Report
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("encoding: truncated varint")
		}
		rest = rest[n:]
		return v, nil
	}
	readWords := func() ([]uint64, error) {
		count, err := readUvarint()
		if err != nil {
			return nil, err
		}
		const maxWords = 1 << 16 // matches the 2^20-bit report cap
		if count > maxWords {
			return nil, fmt.Errorf("encoding: bitmap of %d words exceeds limit", count)
		}
		if uint64(len(rest)) < count*8 {
			return nil, fmt.Errorf("encoding: truncated bitmap")
		}
		words := make([]uint64, count)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(rest[i*8:])
		}
		rest = rest[count*8:]
		return words, nil
	}
	var err error
	switch tag {
	case TagInpRR:
		rep.Bits, err = readWords()
	case TagInpPS, TagInpEM:
		rep.Index, err = readUvarint()
	case TagInpHT:
		if rep.Index, err = readUvarint(); err == nil {
			if len(rest) < 1 {
				err = fmt.Errorf("encoding: missing sign byte")
			} else {
				rep.Sign, err = byteSign(rest[0])
				rest = rest[1:]
			}
		}
	case TagMargRR:
		if rep.Beta, err = readUvarint(); err == nil {
			rep.Bits, err = readWords()
		}
	case TagMargPS:
		if rep.Beta, err = readUvarint(); err == nil {
			rep.Index, err = readUvarint()
		}
	case TagMargHT, TagHCMS:
		if rep.Beta, err = readUvarint(); err == nil {
			if rep.Index, err = readUvarint(); err == nil {
				if len(rest) < 1 {
					err = fmt.Errorf("encoding: missing sign byte")
				} else {
					rep.Sign, err = byteSign(rest[0])
					rest = rest[1:]
				}
			}
		}
	case TagOLH:
		if len(rest) < 8 {
			err = fmt.Errorf("encoding: truncated OLH seed")
		} else {
			rep.Beta = binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
			rep.Index, err = readUvarint()
		}
	default:
		return 0, core.Report{}, fmt.Errorf("encoding: unknown tag %d", tag)
	}
	if err != nil {
		return 0, core.Report{}, err
	}
	if len(rest) != 0 {
		return 0, core.Report{}, fmt.Errorf("encoding: %d trailing bytes", len(rest))
	}
	return tag, rep, nil
}
