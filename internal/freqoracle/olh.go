// Package freqoracle implements the frequency-oracle baselines of
// Appendix B.2: optimized local hashing (InpOLH, Wang et al.) and the
// Hadamard count-min/mean sketch (InpHTCMS, as deployed by Apple). A
// frequency oracle estimates the frequency of any item in the 2^d
// domain; marginals are materialized generically by aggregating the
// estimated item frequencies — exactly the comparison the paper runs in
// Figure 10.
//
// Both oracles satisfy core.Protocol so the shared runner drives them.
package freqoracle

import (
	"fmt"
	"math"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/hashing"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
)

// MaxOracleAttributes bounds d for oracle-backed marginal estimation:
// decoding enumerates all 2^d candidate items. The OLH decode is
// additionally O(N * 2^d), which the paper observes becomes impractical
// even at d=12.
const MaxOracleAttributes = 16

// OLHConfig parameterizes the InpOLH oracle.
type OLHConfig struct {
	// D, K, Epsilon as in core.Config.
	D       int
	K       int
	Epsilon float64
	// G overrides the hash range; 0 selects the optimal g = e^eps + 1
	// (rounded) from Wang et al.
	G uint64
}

// OLH is the optimized-local-hashing frequency oracle: each user draws a
// universal hash h: [2^d] -> [g], hashes their record, perturbs the
// hashed value with GRR over g categories, and reports (hash seed,
// perturbed value). Decoding scans, for every candidate item, how many
// users "support" it (their reported value equals their hash of the
// candidate).
type OLH struct {
	cfg OLHConfig
	g   uint64
	grr *mech.GRR
}

var _ core.Protocol = (*OLH)(nil)

// NewOLH constructs the InpOLH oracle.
func NewOLH(cfg OLHConfig) (*OLH, error) {
	cc := core.Config{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon}
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	if cfg.D > MaxOracleAttributes {
		return nil, fmt.Errorf("freqoracle: OLH decode is O(N*2^d); d=%d exceeds limit %d", cfg.D, MaxOracleAttributes)
	}
	g := cfg.G
	if g == 0 {
		g = uint64(math.Round(math.Exp(cfg.Epsilon))) + 1
	}
	if g < 2 {
		return nil, fmt.Errorf("freqoracle: hash range g=%d must be at least 2", g)
	}
	grr, err := mech.NewGRR(cfg.Epsilon, g)
	if err != nil {
		return nil, err
	}
	return &OLH{cfg: cfg, g: g, grr: grr}, nil
}

// Name returns "InpOLH".
func (o *OLH) Name() string { return "InpOLH" }

// Config adapts to the shared core form.
func (o *OLH) Config() core.Config {
	return core.Config{D: o.cfg.D, K: o.cfg.K, Epsilon: o.cfg.Epsilon}
}

// G returns the hash range in use.
func (o *OLH) G() uint64 { return o.g }

// CommunicationBits counts the hash seed (64 bits, identifying the hash
// function) plus the perturbed value. The paper idealizes this as O(eps)
// by sharing hash choices; we report the literal message size.
func (o *OLH) CommunicationBits() int {
	return 64 + bitsFor(o.g)
}

func bitsFor(m uint64) int {
	b := 1
	for (uint64(1) << uint(b)) < m {
		b++
	}
	return b
}

// NewClient returns an OLH client.
func (o *OLH) NewClient() core.Client { return &olhClient{o: o} }

// NewAggregator returns an empty OLH aggregator.
func (o *OLH) NewAggregator() core.Aggregator { return &olhAgg{o: o} }

type olhClient struct{ o *OLH }

// Perturb draws a fresh hash function (identified by its seed, carried in
// Report.Beta), hashes the record and perturbs the hashed value with GRR
// (carried in Report.Index).
func (c *olhClient) Perturb(record uint64, r *rng.RNG) (core.Report, error) {
	if record >= 1<<uint(c.o.cfg.D) {
		return core.Report{}, fmt.Errorf("freqoracle: record %d outside 2^%d domain", record, c.o.cfg.D)
	}
	seed := r.Uint64()
	h, err := hashing.NewUniversal(seed, c.o.g)
	if err != nil {
		return core.Report{}, err
	}
	return core.Report{Beta: seed, Index: c.o.grr.Perturb(h.Hash(record), r)}, nil
}

type olhAgg struct {
	o       *OLH
	seeds   []uint64
	values  []uint64
	decoded []float64 // cached full-domain frequency estimates
}

func (a *olhAgg) N() int { return len(a.seeds) }

func (a *olhAgg) Consume(rep core.Report) error {
	if rep.Index >= a.o.g {
		return fmt.Errorf("freqoracle: OLH report value %d out of range", rep.Index)
	}
	a.seeds = append(a.seeds, rep.Beta)
	a.values = append(a.values, rep.Index)
	a.decoded = nil
	return nil
}

// ConsumeBatch incorporates a batch of reports; see core.Aggregator.
func (a *olhAgg) ConsumeBatch(reps []core.Report) error {
	return core.ConsumeAll(a, reps)
}

func (a *olhAgg) Merge(other core.Aggregator) error {
	ot, ok := other.(*olhAgg)
	if !ok {
		return fmt.Errorf("freqoracle: merging %T into OLH aggregator", other)
	}
	a.seeds = append(a.seeds, ot.seeds...)
	a.values = append(a.values, ot.values...)
	a.decoded = nil
	return nil
}

// EstimateAll decodes frequency estimates for every item in the domain —
// the O(N * 2^d) support scan the paper times out beyond small d. The
// result is cached until new reports arrive.
func (a *olhAgg) EstimateAll() ([]float64, error) {
	if a.decoded != nil {
		return a.decoded, nil
	}
	n := len(a.seeds)
	if n == 0 {
		return nil, fmt.Errorf("freqoracle: OLH aggregator has no reports")
	}
	size := uint64(1) << uint(a.o.cfg.D)
	support := make([]float64, size)
	for i := 0; i < n; i++ {
		h, err := hashing.NewUniversal(a.seeds[i], a.o.g)
		if err != nil {
			return nil, err
		}
		v := a.values[i]
		for x := uint64(0); x < size; x++ {
			if h.Hash(x) == v {
				support[x]++
			}
		}
	}
	// Unbias: E[support(x)/N] = f_x * p + (1 - f_x) / g, with p the GRR
	// keep probability (a non-matching item is supported when the
	// perturbed value lands on its hash bucket, probability 1/g under a
	// fresh universal hash).
	p := a.o.grr.Ps
	invG := 1 / float64(a.o.g)
	est := make([]float64, size)
	for x := range est {
		est[x] = (support[x]/float64(n) - invG) / (p - invG)
	}
	a.decoded = est
	return est, nil
}

// EstimateFrequency returns the estimated frequency of a single item.
func (a *olhAgg) EstimateFrequency(x uint64) (float64, error) {
	est, err := a.EstimateAll()
	if err != nil {
		return 0, err
	}
	if x >= uint64(len(est)) {
		return 0, fmt.Errorf("freqoracle: item %d outside domain", x)
	}
	return est[x], nil
}

// Estimate materializes the marginal over beta from the decoded item
// frequencies.
func (a *olhAgg) Estimate(beta uint64) (*marginal.Table, error) {
	if err := checkBeta(beta, a.o.cfg.D, a.o.cfg.K); err != nil {
		return nil, err
	}
	est, err := a.EstimateAll()
	if err != nil {
		return nil, err
	}
	return tableFromFrequencies(est, beta)
}

func checkBeta(beta uint64, d, k int) error {
	if beta == 0 {
		return fmt.Errorf("freqoracle: empty marginal query")
	}
	if beta >= 1<<uint(d) {
		return fmt.Errorf("freqoracle: marginal %b outside %d attributes", beta, d)
	}
	if kk := bitops.OnesCount(beta); kk > k {
		return fmt.Errorf("freqoracle: marginal has %d attributes but k<=%d supported", kk, k)
	}
	return nil
}

func tableFromFrequencies(freqs []float64, beta uint64) (*marginal.Table, error) {
	out, err := marginal.New(beta)
	if err != nil {
		return nil, err
	}
	for x, f := range freqs {
		out.Cells[bitops.Compress(uint64(x), beta)] += f
	}
	return out, nil
}
