package freqoracle

import (
	"fmt"
	"sort"
)

// HeavyHitter is an item with its estimated frequency.
type HeavyHitter struct {
	Item      uint64
	Frequency float64
}

// FrequencyEstimator is anything that can decode full-domain frequency
// estimates; both oracle aggregators satisfy it.
type FrequencyEstimator interface {
	EstimateAll() ([]float64, error)
}

// TopK returns the k items with the largest estimated frequencies in
// descending order — the heavy-hitter identification task the
// frequency-oracle line of work (Bassily-Smith, RAPPOR, Apple) targets,
// and the regime where InpHTCMS is competitive.
func TopK(est FrequencyEstimator, k int) ([]HeavyHitter, error) {
	if k <= 0 {
		return nil, fmt.Errorf("freqoracle: top-k needs k >= 1, got %d", k)
	}
	freqs, err := est.EstimateAll()
	if err != nil {
		return nil, err
	}
	if k > len(freqs) {
		k = len(freqs)
	}
	items := make([]HeavyHitter, len(freqs))
	for i, f := range freqs {
		items[i] = HeavyHitter{Item: uint64(i), Frequency: f}
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].Frequency != items[b].Frequency {
			return items[a].Frequency > items[b].Frequency
		}
		return items[a].Item < items[b].Item
	})
	return items[:k], nil
}

// AboveThreshold returns every item whose estimated frequency is at
// least the threshold, in descending frequency order.
func AboveThreshold(est FrequencyEstimator, threshold float64) ([]HeavyHitter, error) {
	freqs, err := est.EstimateAll()
	if err != nil {
		return nil, err
	}
	var out []HeavyHitter
	for i, f := range freqs {
		if f >= threshold {
			out = append(out, HeavyHitter{Item: uint64(i), Frequency: f})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Frequency != out[b].Frequency {
			return out[a].Frequency > out[b].Frequency
		}
		return out[a].Item < out[b].Item
	})
	return out, nil
}
