package freqoracle

import (
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/rng"
)

// planted builds a population with two planted heavy items over an
// 8-bit domain.
func planted(n int, seed uint64) []uint64 {
	r := rng.New(seed)
	records := make([]uint64, n)
	for i := range records {
		switch {
		case r.Bernoulli(0.30):
			records[i] = 42
		case r.Bernoulli(0.25):
			records[i] = 200
		default:
			records[i] = r.Uint64n(256)
		}
	}
	return records
}

func TestTopKFindsPlantedHeavyHitters(t *testing.T) {
	records := planted(150000, 1)
	for name, mk := range map[string]func() (core.Protocol, error){
		"OLH": func() (core.Protocol, error) {
			return NewOLH(OLHConfig{D: 8, K: 1, Epsilon: 2})
		},
		"HCMS": func() (core.Protocol, error) {
			return NewHCMS(HCMSConfig{D: 8, K: 1, Epsilon: 2, Seed: 3})
		},
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		run, err := core.Run(p, records, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		top, err := TopK(run.Agg.(FrequencyEstimator), 2)
		if err != nil {
			t.Fatal(err)
		}
		found := map[uint64]bool{}
		for _, h := range top {
			found[h.Item] = true
		}
		if !found[42] || !found[200] {
			t.Errorf("%s: top-2 = %v, want items 42 and 200", name, top)
		}
		if top[0].Frequency < top[1].Frequency {
			t.Errorf("%s: results not sorted", name)
		}
	}
}

func TestTopKValidation(t *testing.T) {
	o, _ := NewOLH(OLHConfig{D: 4, K: 1, Epsilon: 1})
	agg := o.NewAggregator().(FrequencyEstimator)
	if _, err := TopK(agg, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := TopK(agg, 3); err == nil {
		t.Error("empty aggregator should surface its error")
	}
}

func TestTopKClampsToDomain(t *testing.T) {
	h, _ := NewHCMS(HCMSConfig{D: 4, K: 1, Epsilon: 2, Seed: 1})
	small := make([]uint64, 20000)
	r := rng.New(3)
	for i := range small {
		small[i] = r.Uint64n(16)
	}
	run2, err := core.Run(h, small, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopK(run2.Agg.(FrequencyEstimator), 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 16 {
		t.Errorf("top-99 over 16 items returned %d", len(top))
	}
}

func TestAboveThreshold(t *testing.T) {
	records := planted(120000, 4)
	o, _ := NewOLH(OLHConfig{D: 8, K: 1, Epsilon: 2})
	run, err := core.Run(o, records, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := AboveThreshold(run.Agg.(FrequencyEstimator), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < 2 {
		t.Fatalf("expected at least the two planted items, got %v", hits)
	}
	if hits[0].Item != 42 && hits[0].Item != 200 {
		t.Errorf("top hit %v is not a planted item", hits[0])
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Frequency > hits[i-1].Frequency {
			t.Error("results not sorted")
		}
	}
}
