package freqoracle

import (
	"fmt"

	"ldpmarginals/internal/wire"
)

// State codecs for the frequency-oracle aggregators; see
// core.Aggregator. The kind bytes continue the internal/core numbering
// (mirroring the encoding wire tags) and are part of the persisted
// snapshot format: do not renumber.
const (
	stateKindOLH  byte = 8
	stateKindHCMS byte = 9
	stateVersion  byte = 1
)

// MarshalState serializes the stored (hash seed, perturbed value)
// pairs. Like EM, OLH keeps raw reports rather than counters, so the
// state preserves their arrival order.
func (a *olhAgg) MarshalState() ([]byte, error) {
	e := wire.NewStateEncoder(stateKindOLH, stateVersion)
	e.Uint64s(a.seeds)
	e.Uint64s(a.values)
	return e.Bytes(), nil
}

// UnmarshalState replaces the stored report pairs; see core.Aggregator.
func (a *olhAgg) UnmarshalState(data []byte) error {
	d, err := wire.NewStateDecoder(data, stateKindOLH, stateVersion)
	if err != nil {
		return fmt.Errorf("freqoracle: OLH state: %w", err)
	}
	seeds := d.Uint64s(-1)
	values := d.Uint64s(len(seeds))
	if err := d.Finish(); err != nil {
		return fmt.Errorf("freqoracle: OLH state: %w", err)
	}
	for i, v := range values {
		if v >= a.o.g {
			return fmt.Errorf("freqoracle: OLH state: report %d value %d outside hash range %d", i, v, a.o.g)
		}
	}
	a.seeds, a.values, a.decoded = seeds, values, nil
	return nil
}

// MarshalState serializes the per-row sketch counters; see
// core.Aggregator.
func (a *hcmsAgg) MarshalState() ([]byte, error) {
	e := wire.NewStateEncoder(stateKindHCMS, stateVersion)
	e.Uvarint(uint64(a.n))
	e.Counts(a.users)
	for g := range a.sums {
		e.Int64s(a.sums[g])
		e.Int64s(a.counts[g])
	}
	return e.Bytes(), nil
}

// UnmarshalState replaces the sketch counters; see core.Aggregator.
func (a *hcmsAgg) UnmarshalState(data []byte) error {
	d, err := wire.NewStateDecoder(data, stateKindHCMS, stateVersion)
	if err != nil {
		return fmt.Errorf("freqoracle: HCMS state: %w", err)
	}
	n := d.Count()
	users := d.Counts(a.h.cfg.G)
	sums := make([][]int64, a.h.cfg.G)
	counts := make([][]int64, a.h.cfg.G)
	for g := range sums {
		sums[g] = d.Int64s(a.h.cfg.W)
		counts[g] = d.Int64s(a.h.cfg.W)
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("freqoracle: HCMS state: %w", err)
	}
	var total int
	for _, u := range users {
		total += u
	}
	if total != n {
		return fmt.Errorf("freqoracle: HCMS state: per-row users sum to %d, want %d reports", total, n)
	}
	for g := range sums {
		var rowTotal int64
		for c, cnt := range counts[g] {
			if cnt < 0 || sums[g][c] > cnt || sums[g][c] < -cnt {
				return fmt.Errorf("freqoracle: HCMS state: row %d coefficient %d has sum %d over %d reports", g, c, sums[g][c], cnt)
			}
			rowTotal += cnt
		}
		if rowTotal != int64(users[g]) {
			return fmt.Errorf("freqoracle: HCMS state: row %d coefficient counts sum to %d, want %d users", g, rowTotal, users[g])
		}
	}
	a.n, a.users, a.sums, a.counts = n, users, sums, counts
	return nil
}
