package freqoracle

import (
	"fmt"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/hadamard"
	"ldpmarginals/internal/hashing"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
)

// HCMSConfig parameterizes the InpHTCMS oracle. The paper's experimental
// setting is G = 5 hash functions of width W = 256.
type HCMSConfig struct {
	// D, K, Epsilon as in core.Config.
	D       int
	K       int
	Epsilon float64
	// G is the number of sketch rows (hash functions); default 5.
	G int
	// W is the sketch width; must be a power of two; default 256.
	W int
	// Seed fixes the shared hash family. All clients and the aggregator
	// of one deployment must agree on it.
	Seed uint64
}

func (c HCMSConfig) withDefaults() HCMSConfig {
	if c.G == 0 {
		c.G = 5
	}
	if c.W == 0 {
		c.W = 256
	}
	return c
}

// HCMS is the Hadamard count-min/mean sketch oracle: a shared family of
// g 3-wise-independent hash functions maps items to a width-w sketch
// row. Each user picks one row uniformly, hashes their record into it,
// and releases a single randomized Hadamard coefficient of the one-hot
// hashed vector (the transform reduces communication to one bit of
// payload). The aggregator reconstructs each row by an inverse transform
// and applies the count-mean debiasing to estimate item frequencies.
type HCMS struct {
	cfg    HCMSConfig
	rr     *mech.RR
	family *hashing.Family
}

var _ core.Protocol = (*HCMS)(nil)

// NewHCMS constructs the InpHTCMS oracle.
func NewHCMS(cfg HCMSConfig) (*HCMS, error) {
	cfg = cfg.withDefaults()
	cc := core.Config{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon}
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	if cfg.D > MaxOracleAttributes {
		return nil, fmt.Errorf("freqoracle: HCMS decode enumerates 2^d items; d=%d exceeds limit %d", cfg.D, MaxOracleAttributes)
	}
	if cfg.W < 2 || cfg.W&(cfg.W-1) != 0 {
		return nil, fmt.Errorf("freqoracle: sketch width %d must be a power of two >= 2", cfg.W)
	}
	if cfg.G < 1 {
		return nil, fmt.Errorf("freqoracle: sketch needs at least one row, got %d", cfg.G)
	}
	rr, err := mech.NewRR(cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	family, err := hashing.NewFamily(cfg.Seed^0x48434d53, cfg.G, uint64(cfg.W))
	if err != nil {
		return nil, err
	}
	return &HCMS{cfg: cfg, rr: rr, family: family}, nil
}

// Name returns "InpHTCMS".
func (h *HCMS) Name() string { return "InpHTCMS" }

// Config adapts to the shared core form.
func (h *HCMS) Config() core.Config {
	return core.Config{D: h.cfg.D, K: h.cfg.K, Epsilon: h.cfg.Epsilon}
}

// CommunicationBits counts the row index, the coefficient index
// (log2 w bits) and the single perturbed bit.
func (h *HCMS) CommunicationBits() int {
	return bitsFor(uint64(h.cfg.G)) + bitsFor(uint64(h.cfg.W)) + 1
}

// NewClient returns an HCMS client.
func (h *HCMS) NewClient() core.Client { return &hcmsClient{h: h} }

// NewAggregator returns an empty HCMS aggregator.
func (h *HCMS) NewAggregator() core.Aggregator {
	sums := make([][]int64, h.cfg.G)
	counts := make([][]int64, h.cfg.G)
	for i := range sums {
		sums[i] = make([]int64, h.cfg.W)
		counts[i] = make([]int64, h.cfg.W)
	}
	return &hcmsAgg{h: h, sums: sums, counts: counts, users: make([]int, h.cfg.G)}
}

type hcmsClient struct{ h *HCMS }

// Perturb picks a sketch row (Report.Beta), hashes the record into it,
// and releases the randomized sign of one uniformly chosen Hadamard
// coefficient (Report.Index) of the one-hot hashed vector.
func (c *hcmsClient) Perturb(record uint64, r *rng.RNG) (core.Report, error) {
	if record >= 1<<uint(c.h.cfg.D) {
		return core.Report{}, fmt.Errorf("freqoracle: record %d outside 2^%d domain", record, c.h.cfg.D)
	}
	row := r.Intn(c.h.cfg.G)
	cell := c.h.family.Hash(row, record)
	coeff := r.Uint64n(uint64(c.h.cfg.W))
	sign := c.h.rr.PerturbSign(hadamard.Sign(cell, coeff), r)
	return core.Report{Beta: uint64(row), Index: coeff, Sign: int8(sign)}, nil
}

type hcmsAgg struct {
	h      *HCMS
	sums   [][]int64 // per row, per coefficient: sum of reported signs
	counts [][]int64 // per row, per coefficient: report counts
	users  []int     // per row: users assigned
	n      int
}

func (a *hcmsAgg) N() int { return a.n }

func (a *hcmsAgg) Consume(rep core.Report) error {
	row := int(rep.Beta)
	if row < 0 || row >= a.h.cfg.G {
		return fmt.Errorf("freqoracle: HCMS report row %d out of range", row)
	}
	if rep.Index >= uint64(a.h.cfg.W) {
		return fmt.Errorf("freqoracle: HCMS report coefficient %d out of range", rep.Index)
	}
	if rep.Sign != 1 && rep.Sign != -1 {
		return fmt.Errorf("freqoracle: HCMS report sign %d is not +-1", rep.Sign)
	}
	a.sums[row][rep.Index] += int64(rep.Sign)
	a.counts[row][rep.Index]++
	a.users[row]++
	a.n++
	return nil
}

// ConsumeBatch incorporates a batch of reports; see core.Aggregator.
func (a *hcmsAgg) ConsumeBatch(reps []core.Report) error {
	return core.ConsumeAll(a, reps)
}

func (a *hcmsAgg) Merge(other core.Aggregator) error {
	o, ok := other.(*hcmsAgg)
	if !ok {
		return fmt.Errorf("freqoracle: merging %T into HCMS aggregator", other)
	}
	for i := range a.sums {
		for j := range a.sums[i] {
			a.sums[i][j] += o.sums[i][j]
			a.counts[i][j] += o.counts[i][j]
		}
		a.users[i] += o.users[i]
	}
	a.n += o.n
	return nil
}

// rowDistribution reconstructs the normalized cell distribution of one
// sketch row from its estimated Hadamard coefficients.
func (a *hcmsAgg) rowDistribution(row int) ([]float64, error) {
	cells := make([]float64, a.h.cfg.W)
	cells[0] = 1
	for c := 1; c < a.h.cfg.W; c++ {
		if a.counts[row][c] == 0 {
			continue
		}
		mean := float64(a.sums[row][c]) / float64(a.counts[row][c])
		cells[c] = a.h.rr.UnbiasSign(mean)
	}
	if err := hadamard.InverseWHT(cells); err != nil {
		return nil, err
	}
	return cells, nil
}

// EstimateAll estimates the frequency of every item with the count-mean
// debiasing: for each row, E[row[h(x)]] = f_x + (1 - f_x)/w, so each row
// yields an unbiased estimate (row[h(x)] - 1/w) * w/(w-1); rows are
// averaged.
func (a *hcmsAgg) EstimateAll() ([]float64, error) {
	if a.n == 0 {
		return nil, fmt.Errorf("freqoracle: HCMS aggregator has no reports")
	}
	w := float64(a.h.cfg.W)
	rows := make([][]float64, a.h.cfg.G)
	for g := 0; g < a.h.cfg.G; g++ {
		dist, err := a.rowDistribution(g)
		if err != nil {
			return nil, err
		}
		rows[g] = dist
	}
	size := uint64(1) << uint(a.h.cfg.D)
	est := make([]float64, size)
	for x := uint64(0); x < size; x++ {
		var sum float64
		var used int
		for g := 0; g < a.h.cfg.G; g++ {
			if a.users[g] == 0 {
				continue
			}
			cell := a.h.family.Hash(g, x)
			sum += (rows[g][cell] - 1/w) * w / (w - 1)
			used++
		}
		if used > 0 {
			est[x] = sum / float64(used)
		}
	}
	return est, nil
}

// EstimateFrequency returns the estimated frequency of a single item.
func (a *hcmsAgg) EstimateFrequency(x uint64) (float64, error) {
	if x >= 1<<uint(a.h.cfg.D) {
		return 0, fmt.Errorf("freqoracle: item %d outside domain", x)
	}
	if a.n == 0 {
		return 0, fmt.Errorf("freqoracle: HCMS aggregator has no reports")
	}
	w := float64(a.h.cfg.W)
	var sum float64
	var used int
	for g := 0; g < a.h.cfg.G; g++ {
		if a.users[g] == 0 {
			continue
		}
		dist, err := a.rowDistribution(g)
		if err != nil {
			return 0, err
		}
		cell := a.h.family.Hash(g, x)
		sum += (dist[cell] - 1/w) * w / (w - 1)
		used++
	}
	if used == 0 {
		return 0, nil
	}
	return sum / float64(used), nil
}

// Estimate materializes the marginal over beta from the estimated item
// frequencies.
func (a *hcmsAgg) Estimate(beta uint64) (*marginal.Table, error) {
	if err := checkBeta(beta, a.h.cfg.D, a.h.cfg.K); err != nil {
		return nil, err
	}
	est, err := a.EstimateAll()
	if err != nil {
		return nil, err
	}
	return tableFromFrequencies(est, beta)
}
