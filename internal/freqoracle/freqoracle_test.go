package freqoracle

import (
	"bytes"
	"math"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
)

const ln3 = 1.0986122886681098

func TestNewOLHValidation(t *testing.T) {
	if _, err := NewOLH(OLHConfig{D: 0, K: 1, Epsilon: 1}); err == nil {
		t.Error("d=0 should error")
	}
	if _, err := NewOLH(OLHConfig{D: 20, K: 2, Epsilon: 1}); err == nil {
		t.Error("d over oracle limit should error")
	}
	o, err := NewOLH(OLHConfig{D: 8, K: 2, Epsilon: ln3})
	if err != nil {
		t.Fatal(err)
	}
	// g = round(e^eps) + 1 = 4 at eps = ln 3.
	if o.G() != 4 {
		t.Errorf("g = %d, want 4", o.G())
	}
	if o.Name() != "InpOLH" {
		t.Errorf("name = %q", o.Name())
	}
	if o.CommunicationBits() != 64+2 {
		t.Errorf("comm bits = %d, want 66", o.CommunicationBits())
	}
}

func TestOLHEndToEnd(t *testing.T) {
	ds, err := dataset.NewSkewed(60000, 6, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOLH(OLHConfig{D: 6, K: 2, Epsilon: ln3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(o, ds.Records, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := marginal.MeanTV(res.Agg, ds.Records, marginal.AllKWay(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.06 {
		t.Errorf("OLH mean 2-way TV = %v, want < 0.06", tv)
	}
	// Frequency point query agrees with the decoded vector.
	agg := res.Agg.(*olhAgg)
	all, err := agg.EstimateAll()
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.EstimateFrequency(5)
	if err != nil {
		t.Fatal(err)
	}
	if f != all[5] {
		t.Errorf("point query %v != vector entry %v", f, all[5])
	}
	if _, err := agg.EstimateFrequency(1 << 20); err == nil {
		t.Error("out-of-domain item should error")
	}
}

func TestOLHFrequencySums(t *testing.T) {
	// Unbiased frequency estimates over the whole domain should sum to
	// approximately 1.
	ds, err := dataset.NewSkewed(40000, 5, 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOLH(OLHConfig{D: 5, K: 1, Epsilon: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(o, ds.Records, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	all, err := res.Agg.(*olhAgg).EstimateAll()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range all {
		sum += f
	}
	if math.Abs(sum-1) > 0.1 {
		t.Errorf("estimated frequencies sum to %v, want ~1", sum)
	}
}

func TestOLHAggregatorValidation(t *testing.T) {
	o, _ := NewOLH(OLHConfig{D: 4, K: 2, Epsilon: 1, G: 4})
	agg := o.NewAggregator()
	if err := agg.Consume(core.Report{Beta: 1, Index: 99}); err == nil {
		t.Error("out-of-range value should error")
	}
	if _, err := agg.Estimate(0b11); err == nil {
		t.Error("empty aggregator should error")
	}
	if _, err := agg.(*olhAgg).EstimateAll(); err == nil {
		t.Error("empty EstimateAll should error")
	}
	c, _ := core.New(core.InpHT, core.Config{D: 4, K: 2, Epsilon: 1})
	if err := agg.Merge(c.NewAggregator()); err == nil {
		t.Error("foreign merge should error")
	}
	if _, err := o.NewClient().Perturb(1<<5, rng.New(1)); err == nil {
		t.Error("out-of-domain record should error")
	}
}

func TestOLHCacheInvalidation(t *testing.T) {
	o, _ := NewOLH(OLHConfig{D: 3, K: 1, Epsilon: 2})
	agg := o.NewAggregator().(*olhAgg)
	client := o.NewClient()
	r := rng.New(9)
	rep, _ := client.Perturb(3, r)
	if err := agg.Consume(rep); err != nil {
		t.Fatal(err)
	}
	first, err := agg.EstimateAll()
	if err != nil {
		t.Fatal(err)
	}
	_ = first
	rep2, _ := client.Perturb(5, r)
	if err := agg.Consume(rep2); err != nil {
		t.Fatal(err)
	}
	if agg.decoded != nil {
		t.Error("cache should be invalidated by Consume")
	}
}

func TestNewHCMSValidation(t *testing.T) {
	if _, err := NewHCMS(HCMSConfig{D: 8, K: 2, Epsilon: 1, W: 100}); err == nil {
		t.Error("non-power-of-two width should error")
	}
	if _, err := NewHCMS(HCMSConfig{D: 8, K: 2, Epsilon: 1, G: -1}); err == nil {
		t.Error("negative g should error")
	}
	if _, err := NewHCMS(HCMSConfig{D: 20, K: 2, Epsilon: 1}); err == nil {
		t.Error("d over oracle limit should error")
	}
	h, err := NewHCMS(HCMSConfig{D: 8, K: 2, Epsilon: ln3})
	if err != nil {
		t.Fatal(err)
	}
	if h.cfg.G != 5 || h.cfg.W != 256 {
		t.Errorf("defaults not applied: g=%d w=%d", h.cfg.G, h.cfg.W)
	}
	if h.Name() != "InpHTCMS" {
		t.Errorf("name = %q", h.Name())
	}
	// 3 bits rows (g=5), 8 bits coefficient (w=256), 1 bit payload.
	if h.CommunicationBits() != 3+8+1 {
		t.Errorf("comm bits = %d, want 12", h.CommunicationBits())
	}
}

func TestHCMSEndToEnd(t *testing.T) {
	ds, err := dataset.NewSkewed(200000, 6, 0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHCMS(HCMSConfig{D: 6, K: 2, Epsilon: ln3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(h, ds.Records, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := marginal.MeanTV(res.Agg, ds.Records, marginal.AllKWay(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	// The sketch is designed for heavy hitters, not low-frequency cells:
	// it should be in the right ballpark but is not expected to match
	// the direct protocols (Figure 10's observation).
	if tv > 0.15 {
		t.Errorf("HCMS mean 2-way TV = %v, want < 0.15", tv)
	}
}

func TestHCMSHeavyHitter(t *testing.T) {
	// A dominant item should be detected with roughly the right
	// frequency.
	r := rng.New(11)
	records := make([]uint64, 100000)
	for i := range records {
		if r.Bernoulli(0.4) {
			records[i] = 13
		} else {
			records[i] = r.Uint64n(256)
		}
	}
	h, err := NewHCMS(HCMSConfig{D: 8, K: 1, Epsilon: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(h, records, 13, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := res.Agg.(*hcmsAgg).EstimateFrequency(13)
	if err != nil {
		t.Fatal(err)
	}
	// True frequency is 0.4 + 0.6/256.
	if math.Abs(f-0.4) > 0.05 {
		t.Errorf("heavy hitter estimate = %v, want ~0.4", f)
	}
}

func TestHCMSAggregatorValidation(t *testing.T) {
	h, _ := NewHCMS(HCMSConfig{D: 4, K: 2, Epsilon: 1, G: 3, W: 16})
	agg := h.NewAggregator()
	if err := agg.Consume(core.Report{Beta: 7, Index: 0, Sign: 1}); err == nil {
		t.Error("row out of range should error")
	}
	if err := agg.Consume(core.Report{Beta: 0, Index: 99, Sign: 1}); err == nil {
		t.Error("coefficient out of range should error")
	}
	if err := agg.Consume(core.Report{Beta: 0, Index: 1, Sign: 0}); err == nil {
		t.Error("sign 0 should error")
	}
	if _, err := agg.Estimate(0b11); err == nil {
		t.Error("empty aggregator should error")
	}
	if _, err := agg.(*hcmsAgg).EstimateFrequency(1 << 10); err == nil {
		t.Error("out-of-domain item should error")
	}
	c, _ := core.New(core.InpHT, core.Config{D: 4, K: 2, Epsilon: 1})
	if err := agg.Merge(c.NewAggregator()); err == nil {
		t.Error("foreign merge should error")
	}
}

func TestHCMSMergeMatchesSequential(t *testing.T) {
	h, _ := NewHCMS(HCMSConfig{D: 5, K: 2, Epsilon: 2, Seed: 5})
	client := h.NewClient()
	r := rng.New(17)
	var reports []core.Report
	for i := 0; i < 2000; i++ {
		rep, err := client.Perturb(uint64(i%32), r)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	whole := h.NewAggregator()
	left := h.NewAggregator()
	right := h.NewAggregator()
	for i, rep := range reports {
		_ = whole.Consume(rep)
		if i%2 == 0 {
			_ = left.Consume(rep)
		} else {
			_ = right.Consume(rep)
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	a, err := whole.Estimate(0b11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := left.Estimate(0b11)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := a.TVDistance(b)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 1e-12 {
		t.Errorf("merged estimate differs from sequential (TV=%v)", tv)
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct {
		m    uint64
		want int
	}{{2, 1}, {3, 2}, {4, 2}, {5, 3}, {256, 8}}
	for _, c := range cases {
		if got := bitsFor(c.m); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

// stateRoundTrip drives one oracle's state codec: populate, marshal,
// restore into a fresh aggregator, and require canonical bytes plus
// bit-identical frequency estimates.
func stateRoundTrip(t *testing.T, p core.Protocol) {
	t.Helper()
	agg := p.NewAggregator()
	client := p.NewClient()
	r := rng.New(9)
	for i := 0; i < 400; i++ {
		rep, err := client.Perturb(uint64(i%32), r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := agg.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored := p.NewAggregator()
	if err := restored.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if restored.N() != agg.N() {
		t.Fatalf("restored N = %d, want %d", restored.N(), agg.N())
	}
	again, err := restored.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("re-marshaled state differs")
	}
	want, err := agg.Estimate(0b11)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Estimate(0b11)
	if err != nil {
		t.Fatal(err)
	}
	for c := range want.Cells {
		if math.Float64bits(got.Cells[c]) != math.Float64bits(want.Cells[c]) {
			t.Fatalf("cell %d: %v vs %v", c, got.Cells[c], want.Cells[c])
		}
	}
}

func TestOLHStateRoundTrip(t *testing.T) {
	p, err := NewOLH(OLHConfig{D: 5, K: 2, Epsilon: ln3})
	if err != nil {
		t.Fatal(err)
	}
	stateRoundTrip(t, p)
}

func TestHCMSStateRoundTrip(t *testing.T) {
	p, err := NewHCMS(HCMSConfig{D: 5, K: 2, Epsilon: ln3, G: 3, W: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	stateRoundTrip(t, p)
}
