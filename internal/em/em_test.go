package em

import (
	"bytes"
	"math"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/vec"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{D: 0, K: 1, Epsilon: 1}); err == nil {
		t.Error("d=0 should error")
	}
	if _, err := New(Config{D: 4, K: 2, Epsilon: -1}); err == nil {
		t.Error("negative epsilon should error")
	}
	p, err := New(Config{D: 4, K: 2, Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "InpEM" || p.CommunicationBits() != 4 {
		t.Errorf("name/comm wrong: %s, %d", p.Name(), p.CommunicationBits())
	}
	cc := p.Config()
	if cc.D != 4 || cc.K != 2 || cc.Epsilon != 1 {
		t.Errorf("core config adaptation wrong: %+v", cc)
	}
}

func TestFlipProbability(t *testing.T) {
	// eps=4 over d=4 bits: per-bit eps=1, keep = e/(1+e).
	p, _ := New(Config{D: 4, K: 2, Epsilon: 4})
	want := 1 - math.E/(1+math.E)
	if math.Abs(p.FlipProbability()-want) > 1e-12 {
		t.Errorf("flip = %v, want %v", p.FlipProbability(), want)
	}
}

func TestChannelRowsSumToOne(t *testing.T) {
	a := Channel(3, 0.3)
	size := len(a)
	// Columns are distributions over observations: for fixed truth x,
	// sum over y of P(y|x) = 1.
	for x := 0; x < size; x++ {
		var s float64
		for y := 0; y < size; y++ {
			s += a[y][x]
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("column %d sums to %v", x, s)
		}
	}
	// Symmetric channel: A[y][x] depends only on popcount(x^y).
	if a[0b01][0b00] != a[0b00][0b01] {
		t.Error("channel should be symmetric")
	}
}

func TestDecodeNoiselessChannel(t *testing.T) {
	// With flip=0 the channel is the identity and EM must return the
	// observation immediately.
	observed := []float64{0.5, 0.25, 0.125, 0.125}
	theta, iters, err := Decode(observed, Channel(2, 0), 1e-9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range observed {
		if math.Abs(theta[i]-observed[i]) > 1e-6 {
			t.Errorf("theta[%d] = %v, want %v (iters=%d)", i, theta[i], observed[i], iters)
		}
	}
}

func TestDecodeRecoversThroughNoisyChannel(t *testing.T) {
	// Push a known distribution through a moderately noisy channel
	// analytically and check EM inverts it.
	truth := []float64{0.6, 0.2, 0.15, 0.05}
	ch := Channel(2, 0.2)
	observed := make([]float64, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			observed[y] += ch[y][x] * truth[x]
		}
	}
	theta, _, err := Decode(observed, ch, 1e-10, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if tv := vec.TVDist(theta, truth); tv > 0.01 {
		t.Errorf("EM recovery TV = %v, want < 0.01 (theta=%v)", tv, theta)
	}
}

func TestDecodeSizeMismatch(t *testing.T) {
	if _, _, err := Decode([]float64{1}, Channel(2, 0.1), 1e-5, 10); err == nil {
		t.Error("size mismatch should error")
	}
	if _, _, err := Decode(nil, nil, 1e-5, 10); err == nil {
		t.Error("empty observed should error")
	}
}

func TestEndToEndAccuracyGoodBudget(t *testing.T) {
	// With a healthy per-bit budget InpEM should produce a reasonable
	// (if not great) 2-way marginal.
	ds := dataset.NewTaxi(60000, 1)
	p, err := New(Config{D: 8, K: 2, Epsilon: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, ds.Records, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	beta, _ := ds.Mask("CC", "Tip")
	agg := res.Agg.(*Aggregator)
	dec, err := agg.EstimateDetailed(beta)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := ds.Marginal(beta)
	tv, err := dec.Table.TVDistance(exact)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.05 {
		t.Errorf("InpEM TV = %v, want < 0.05 at eps=8", tv)
	}
	if dec.Failed {
		t.Error("should not fail with a generous budget")
	}
	if dec.Iterations < 2 {
		t.Errorf("expected multiple EM iterations, got %d", dec.Iterations)
	}
}

func TestFailureModeAtTinyEpsilon(t *testing.T) {
	// Table 3's regime: eps=0.1, d=16 fails universally — the per-bit
	// flip probability is within ~0.0016 of 1/2 and EM stalls at the
	// uniform prior.
	ds := dataset.NewTaxi(1<<18, 2)
	big, err := dataset.DuplicateColumns(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{D: 16, K: 2, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, big.Records, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Agg.(*Aggregator)
	failures := 0
	betas := marginal.AllKWay(16, 2)[:20]
	for _, beta := range betas {
		dec, err := agg.EstimateDetailed(beta)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Failed {
			failures++
		}
	}
	if failures < len(betas)*3/4 {
		t.Errorf("expected near-universal failure at eps=0.1 d=16, got %d/%d", failures, len(betas))
	}
}

func TestAggregatorValidation(t *testing.T) {
	p, _ := New(Config{D: 4, K: 2, Epsilon: 1})
	agg := p.NewAggregator().(*Aggregator)
	if err := agg.Consume(core.Report{Index: 1 << 6}); err == nil {
		t.Error("out-of-domain report should error")
	}
	if _, err := agg.EstimateDetailed(0b11); err == nil {
		t.Error("empty aggregator should error")
	}
	if err := agg.Consume(core.Report{Index: 0b1010}); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.EstimateDetailed(0); err == nil {
		t.Error("empty beta should error")
	}
	if _, err := agg.EstimateDetailed(0b111); err == nil {
		t.Error("beta larger than k should error")
	}
	// Merging a foreign aggregator fails.
	cp, _ := core.New(core.InpHT, core.Config{D: 4, K: 2, Epsilon: 1})
	if err := agg.Merge(cp.NewAggregator()); err == nil {
		t.Error("foreign merge should error")
	}
}

func TestMergeCombinesReports(t *testing.T) {
	p, _ := New(Config{D: 4, K: 2, Epsilon: 1})
	a := p.NewAggregator().(*Aggregator)
	b := p.NewAggregator().(*Aggregator)
	r := rng.New(1)
	c := p.NewClient()
	for i := 0; i < 10; i++ {
		rep, _ := c.Perturb(uint64(i%16), r)
		if i < 5 {
			_ = a.Consume(rep)
		} else {
			_ = b.Consume(rep)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 10 {
		t.Errorf("merged N = %d, want 10", a.N())
	}
}

func TestClientRejectsOutOfDomain(t *testing.T) {
	p, _ := New(Config{D: 4, K: 2, Epsilon: 1})
	if _, err := p.NewClient().Perturb(1<<5, rng.New(1)); err == nil {
		t.Error("out-of-domain record should error")
	}
}

func BenchmarkEMDecode2Way(b *testing.B) {
	ch := Channel(2, 0.3)
	observed := []float64{0.3, 0.3, 0.2, 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(observed, ch, 1e-6, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	p, err := New(Config{D: 4, K: 2, Epsilon: 4})
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator()
	client := p.NewClient()
	r := rng.New(5)
	for i := 0; i < 300; i++ {
		rep, err := client.Perturb(uint64(i%16), r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := agg.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored := p.NewAggregator()
	if err := restored.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if restored.N() != agg.N() {
		t.Fatalf("restored N = %d, want %d", restored.N(), agg.N())
	}
	again, err := restored.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("re-marshaled state differs")
	}
	want, err := agg.Estimate(0b11)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Estimate(0b11)
	if err != nil {
		t.Fatal(err)
	}
	for c := range want.Cells {
		if math.Float64bits(got.Cells[c]) != math.Float64bits(want.Cells[c]) {
			t.Fatalf("cell %d: %v vs %v", c, got.Cells[c], want.Cells[c])
		}
	}
	// A mask outside the domain must be rejected and leave the receiver
	// untouched.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] = 0x7F
	dirty := p.NewAggregator()
	if err := dirty.UnmarshalState(bad); err == nil {
		t.Fatal("out-of-domain report mask accepted")
	}
	if dirty.N() != 0 {
		t.Fatalf("failed restore left N = %d", dirty.N())
	}
}
