// Package em implements the InpEM baseline of Section 4.4 (Fanti et
// al.): every user perturbs each of their d attribute bits independently
// with (eps/d)-randomized response (budget splitting), and the aggregator
// decodes a target marginal with expectation maximization over the
// observed reported-bit combinations.
//
// The method has no worst-case accuracy guarantee. For small eps or large
// d the per-bit flip probability approaches 1/2, the EM update becomes a
// fixed point at the uniform prior, and the procedure "fails" by
// terminating immediately — the behaviour quantified in the paper's
// Table 3. The aggregator exposes the iteration count and failure flag so
// experiments can reproduce that table.
package em

import (
	"fmt"
	"math"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/mech"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/vec"
	"ldpmarginals/internal/wire"
)

// DefaultOmega is the paper's EM convergence threshold (Section 5.4).
const DefaultOmega = 1e-5

// DefaultMaxIterations bounds the EM loop; the paper reports convergence
// within thousands to tens of thousands of iterations.
const DefaultMaxIterations = 100000

// Config parameterizes the InpEM protocol.
type Config struct {
	// D, K, Epsilon as in core.Config: attributes, largest marginal
	// queried, and the total privacy budget (split as eps/d per bit).
	D       int
	K       int
	Epsilon float64
	// Omega is the convergence threshold (L-infinity change between EM
	// iterations); DefaultOmega if zero.
	Omega float64
	// MaxIterations bounds the EM loop; DefaultMaxIterations if zero.
	MaxIterations int
}

func (c Config) withDefaults() Config {
	if c.Omega == 0 {
		c.Omega = DefaultOmega
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = DefaultMaxIterations
	}
	return c
}

// Result is a decoded marginal along with EM diagnostics.
type Result struct {
	// Table is the decoded marginal distribution.
	Table *marginal.Table
	// Iterations is the number of EM update steps performed.
	Iterations int
	// Failed records the paper's failure mode: the procedure converged
	// after at most one step, returning (essentially) the uniform prior.
	Failed bool
}

// Protocol is the InpEM baseline. It satisfies core.Protocol so the
// shared runner and experiment harness can drive it alongside the paper's
// six protocols.
type Protocol struct {
	cfg Config
	rr  *mech.RR // per-bit (eps/d)-randomized response
}

var _ core.Protocol = (*Protocol)(nil)

// New constructs the InpEM protocol.
func New(cfg Config) (*Protocol, error) {
	cfg = cfg.withDefaults()
	cc := core.Config{D: cfg.D, K: cfg.K, Epsilon: cfg.Epsilon}
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	if cfg.Omega <= 0 || cfg.MaxIterations <= 0 {
		return nil, fmt.Errorf("em: omega and max iterations must be positive")
	}
	perBit, err := mech.SplitEpsilon(cfg.Epsilon, cfg.D)
	if err != nil {
		return nil, err
	}
	rr, err := mech.NewRR(perBit)
	if err != nil {
		return nil, err
	}
	return &Protocol{cfg: cfg, rr: rr}, nil
}

// Name returns "InpEM".
func (p *Protocol) Name() string { return "InpEM" }

// Config adapts the EM configuration to the shared core form.
func (p *Protocol) Config() core.Config {
	return core.Config{D: p.cfg.D, K: p.cfg.K, Epsilon: p.cfg.Epsilon}
}

// CommunicationBits is d: one randomized bit per attribute.
func (p *Protocol) CommunicationBits() int { return p.cfg.D }

// FlipProbability returns the probability that a single reported bit is
// flipped, 1 - e^{eps/d}/(1+e^{eps/d}).
func (p *Protocol) FlipProbability() float64 { return 1 - p.rr.P }

// NewClient returns the budget-splitting client.
func (p *Protocol) NewClient() core.Client { return &client{p: p} }

// NewAggregator returns an empty EM aggregator.
func (p *Protocol) NewAggregator() core.Aggregator { return &Aggregator{p: p} }

type client struct{ p *Protocol }

// Perturb flips every attribute bit independently with the per-bit
// randomized response and reports the resulting mask in Report.Index.
func (c *client) Perturb(record uint64, r *rng.RNG) (core.Report, error) {
	if record >= 1<<uint(c.p.cfg.D) {
		return core.Report{}, fmt.Errorf("em: record %d outside 2^%d domain", record, c.p.cfg.D)
	}
	var out uint64
	for j := 0; j < c.p.cfg.D; j++ {
		bit := record&(1<<uint(j)) != 0
		if c.p.rr.PerturbBit(bit, r) {
			out |= 1 << uint(j)
		}
	}
	return core.Report{Index: out}, nil
}

// Aggregator stores the reported masks and decodes marginals on demand
// with EM. It satisfies core.Aggregator.
type Aggregator struct {
	p       *Protocol
	reports []uint64
}

// N returns the number of reports consumed.
func (a *Aggregator) N() int { return len(a.reports) }

// Consume stores one reported mask.
func (a *Aggregator) Consume(rep core.Report) error {
	if rep.Index >= 1<<uint(a.p.cfg.D) {
		return fmt.Errorf("em: report %d outside 2^%d domain", rep.Index, a.p.cfg.D)
	}
	a.reports = append(a.reports, rep.Index)
	return nil
}

// ConsumeBatch stores a batch of reported masks; see core.Aggregator.
func (a *Aggregator) ConsumeBatch(reps []core.Report) error {
	return core.ConsumeAll(a, reps)
}

// Merge folds another EM aggregator's reports into this one.
func (a *Aggregator) Merge(other core.Aggregator) error {
	o, ok := other.(*Aggregator)
	if !ok {
		return fmt.Errorf("em: merging %T into EM aggregator", other)
	}
	a.reports = append(a.reports, o.reports...)
	return nil
}

// stateKindEM continues the state-kind numbering of internal/core
// (mirroring encoding.TagInpEM); part of the persisted snapshot format.
const (
	stateKindEM  byte = 7
	stateVersion byte = 1
)

// MarshalState serializes the stored report masks; see core.Aggregator.
// Unlike the counter protocols, EM keeps raw reports, so the state
// preserves their arrival order.
func (a *Aggregator) MarshalState() ([]byte, error) {
	e := wire.NewStateEncoder(stateKindEM, stateVersion)
	e.Uint64s(a.reports)
	return e.Bytes(), nil
}

// UnmarshalState replaces the stored reports; see core.Aggregator.
func (a *Aggregator) UnmarshalState(data []byte) error {
	d, err := wire.NewStateDecoder(data, stateKindEM, stateVersion)
	if err != nil {
		return fmt.Errorf("em: state: %w", err)
	}
	reports := d.Uint64s(-1)
	if err := d.Finish(); err != nil {
		return fmt.Errorf("em: state: %w", err)
	}
	for i, rep := range reports {
		if rep >= 1<<uint(a.p.cfg.D) {
			return fmt.Errorf("em: state: report %d mask %d outside 2^%d domain", i, rep, a.p.cfg.D)
		}
	}
	a.reports = reports
	return nil
}

// Estimate decodes the marginal over beta, discarding diagnostics.
func (a *Aggregator) Estimate(beta uint64) (*marginal.Table, error) {
	res, err := a.EstimateDetailed(beta)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// EstimateDetailed decodes the marginal over beta with EM and reports the
// iteration count and the immediate-convergence failure flag.
func (a *Aggregator) EstimateDetailed(beta uint64) (*Result, error) {
	if beta == 0 || beta >= 1<<uint(a.p.cfg.D) {
		return nil, fmt.Errorf("em: marginal %b outside %d attributes", beta, a.p.cfg.D)
	}
	k := bitops.OnesCount(beta)
	if k > a.p.cfg.K {
		return nil, fmt.Errorf("em: marginal has %d attributes but k<=%d supported", k, a.p.cfg.K)
	}
	if len(a.reports) == 0 {
		return nil, fmt.Errorf("em: no reports")
	}
	size := 1 << uint(k)
	// Observed distribution of reported combos over beta's bits.
	observed := make([]float64, size)
	for _, rep := range a.reports {
		observed[bitops.Compress(rep, beta)]++
	}
	vec.Scale(observed, 1/float64(len(a.reports)))

	theta, iters, err := Decode(observed, Channel(k, p2flip(a.p.rr.P)), a.p.cfg.Omega, a.p.cfg.MaxIterations)
	if err != nil {
		return nil, err
	}
	tab, err := marginal.FromCells(beta, theta)
	if err != nil {
		return nil, err
	}
	return &Result{Table: tab, Iterations: iters, Failed: iters <= 1}, nil
}

func p2flip(keep float64) float64 { return 1 - keep }

// Channel builds the 2^k x 2^k observation matrix A[y][x] = P(report y |
// truth x) of k independent bits each flipped with probability flip.
func Channel(k int, flip float64) [][]float64 {
	size := 1 << uint(k)
	a := make([][]float64, size)
	keep := 1 - flip
	for y := 0; y < size; y++ {
		a[y] = make([]float64, size)
		for x := 0; x < size; x++ {
			diff := bitops.OnesCount(uint64(y ^ x))
			a[y][x] = math.Pow(flip, float64(diff)) * math.Pow(keep, float64(k-diff))
		}
	}
	return a
}

// Decode runs expectation maximization: starting from the uniform prior
// over the 2^k true combos, it alternates the posterior (expectation)
// and re-marginalization (maximization) steps until the L-infinity
// change drops below omega or maxIters is reached. It returns the final
// estimate and the number of iterations performed.
func Decode(observed []float64, channel [][]float64, omega float64, maxIters int) ([]float64, int, error) {
	size := len(observed)
	if size == 0 || len(channel) != size {
		return nil, 0, fmt.Errorf("em: observed (%d) and channel (%d) sizes disagree", size, len(channel))
	}
	theta := vec.Uniform(size)
	next := make([]float64, size)
	var iters int
	for iters = 1; iters <= maxIters; iters++ {
		for x := range next {
			next[x] = 0
		}
		for y := 0; y < size; y++ {
			if observed[y] == 0 {
				continue
			}
			// Posterior P(x|y) proportional to theta[x] * A[y][x].
			var norm float64
			for x := 0; x < size; x++ {
				norm += theta[x] * channel[y][x]
			}
			if norm <= 0 {
				continue
			}
			w := observed[y] / norm
			for x := 0; x < size; x++ {
				next[x] += w * theta[x] * channel[y][x]
			}
		}
		vec.Normalize(next)
		delta := vec.MaxAbsDiff(theta, next)
		copy(theta, next)
		if delta < omega {
			break
		}
	}
	if iters > maxIters {
		iters = maxIters
	}
	return theta, iters, nil
}
