package view

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/rng"
)

func testProtocol(t *testing.T) core.Protocol {
	t.Helper()
	p, err := core.New(core.InpHT, core.Config{D: 6, K: 2, Epsilon: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func feed(t *testing.T, p core.Protocol, agg *core.ShardedAggregator, n int, seed uint64) {
	t.Helper()
	client := p.NewClient()
	r := rng.New(seed)
	reps := make([]core.Report, n)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%64), r)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	if err := agg.ConsumeBatch(reps); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestEngineInitialEpochServesImmediately(t *testing.T) {
	p := testProtocol(t)
	eng, err := NewEngine(core.NewSharded(p, 0), p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	v := eng.Current()
	if v == nil || v.Epoch != 1 || v.N != 0 {
		t.Fatalf("initial view %+v, want epoch 1 over 0 reports", v)
	}
	if _, err := v.Marginal(0b11); err != nil {
		t.Fatalf("empty epoch must still answer: %v", err)
	}
}

func TestManualRefreshAdvancesEpochAndAbsorbsBacklog(t *testing.T) {
	p := testProtocol(t)
	agg := core.NewSharded(p, 0)
	eng, err := NewEngine(agg, p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	feed(t, p, agg, 1234, 7)
	if v := eng.Current(); v.N != 0 || v.Staleness(agg.N()) != 1234 {
		t.Fatalf("pre-refresh view N=%d staleness=%d", v.N, v.Staleness(agg.N()))
	}
	v, err := eng.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 2 || v.N != 1234 || eng.Current() != v {
		t.Fatalf("refreshed view epoch=%d N=%d", v.Epoch, v.N)
	}
}

func TestEveryNPolicyRefreshesOnBacklog(t *testing.T) {
	p := testProtocol(t)
	agg := core.NewSharded(p, 0)
	eng, err := NewEngine(agg, p, EngineOptions{
		Refresh: Policy{EveryN: 100, Poll: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	feed(t, p, agg, 99, 1)
	if waitFor(t, 50*time.Millisecond, func() bool { return eng.Current().N > 0 }) {
		t.Fatalf("refreshed below the EveryN threshold (N=%d)", eng.Current().N)
	}
	feed(t, p, agg, 1, 2)
	if !waitFor(t, 2*time.Second, func() bool { return eng.Current().N == 100 }) {
		t.Fatalf("EveryN policy never absorbed the backlog (view N=%d)", eng.Current().N)
	}
}

func TestIntervalPolicyRefreshes(t *testing.T) {
	p := testProtocol(t)
	agg := core.NewSharded(p, 0)
	eng, err := NewEngine(agg, p, EngineOptions{
		Refresh: Policy{Interval: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	feed(t, p, agg, 50, 3)
	if !waitFor(t, 2*time.Second, func() bool { return eng.Current().N == 50 }) {
		t.Fatalf("interval policy never refreshed (view N=%d)", eng.Current().N)
	}
}

// TestIntervalPolicySustainsCadence pins the refresh period to roughly
// the configured Interval: the due-check must not slip a whole period
// (refreshing at 2x Interval) nor rebuild on every wake-up. A feeder
// keeps reports trickling in so every interval has a real delta — an
// unchanged source no longer publishes epochs (the zero-delta fast
// path republishes the serving view instead).
func TestIntervalPolicySustainsCadence(t *testing.T) {
	p := testProtocol(t)
	agg := core.NewSharded(p, 0)
	const interval = 200 * time.Millisecond
	start := time.Now()
	eng, err := NewEngine(agg, p, EngineOptions{Refresh: Policy{Interval: interval}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval / 8)
		defer ticker.Stop()
		for seed := uint64(100); ; seed++ {
			select {
			case <-stop:
				return
			case <-ticker.C:
				feed(t, p, agg, 1, seed)
			}
		}
	}()
	time.Sleep(15 * interval)
	close(stop)
	<-done
	got := eng.Epoch()
	elapsed := time.Since(start)
	// A correctly paced loop publishes ~elapsed/interval epochs. The
	// bounds derive from the measured elapsed time (not the nominal
	// sleep) so a slow CI box widens them: a loop that slips to 2x the
	// interval lands under min, one that rebuilds every tick blows past
	// max.
	min := int64(float64(elapsed) / float64(interval) / 1.5)
	max := int64(elapsed/interval) + 4
	if got < min || got > max {
		t.Fatalf("published %d epochs over %v at interval %v, want within [%d, %d]", got, elapsed, interval, min, max)
	}
}

// slowSource delays every snapshot, widening the window in which
// concurrent Refresh callers pile up on the build mutex.
type slowSource struct {
	src   Source
	delay time.Duration
}

func (s *slowSource) Snapshot() (core.Aggregator, error) {
	time.Sleep(s.delay)
	return s.src.Snapshot()
}

func (s *slowSource) N() int { return s.src.N() }

// TestConcurrentRefreshesCoalesce fires a burst of simultaneous Refresh
// calls and checks single-flight coalescing: callers that waited out
// another build adopt its epoch instead of each running a redundant
// full rebuild, so the burst publishes far fewer epochs than callers.
func TestConcurrentRefreshesCoalesce(t *testing.T) {
	p := testProtocol(t)
	agg := core.NewSharded(p, 0)
	eng, err := NewEngine(&slowSource{src: agg, delay: 20 * time.Millisecond}, p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	before := eng.Epoch()
	const callers = 16
	start := make(chan struct{})
	views := make([]*View, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			views[i], errs[i] = eng.Refresh()
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if views[i] == nil || views[i].Epoch <= before {
			t.Fatalf("caller %d got epoch %v, want a post-burst epoch", i, views[i])
		}
	}
	// Entries racing the first snapshot stamp can still rebuild; the
	// bulk of the burst must coalesce.
	if built := eng.Epoch() - before; built >= callers/2 {
		t.Fatalf("burst of %d refreshes built %d epochs, want most coalesced", callers, built)
	}
}

// failingSource errors on snapshot, proving a failed refresh keeps the
// previous epoch serving.
type failingSource struct {
	src  Source
	fail bool
}

func (f *failingSource) Snapshot() (core.Aggregator, error) {
	if f.fail {
		return nil, errors.New("disk on fire")
	}
	return f.src.Snapshot()
}

func (f *failingSource) N() int { return f.src.N() }

func TestRefreshFailureKeepsServingPreviousEpoch(t *testing.T) {
	p := testProtocol(t)
	agg := core.NewSharded(p, 0)
	src := &failingSource{src: agg}
	eng, err := NewEngine(src, p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	prev := eng.Current()
	src.fail = true
	if _, err := eng.Refresh(); err == nil {
		t.Fatal("refresh over a failing source must error")
	}
	if eng.Current() != prev || eng.Epoch() != prev.Epoch {
		t.Fatal("failed refresh replaced the serving view")
	}
	src.fail = false
	v, err := eng.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != prev.Epoch+1 {
		t.Fatalf("recovered epoch %d, want %d", v.Epoch, prev.Epoch+1)
	}
}

func TestEngineCloseIsIdempotent(t *testing.T) {
	p := testProtocol(t)
	eng, err := NewEngine(core.NewSharded(p, 0), p, EngineOptions{
		Refresh: Policy{Interval: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close()
	if _, err := eng.Refresh(); err != nil {
		t.Fatalf("manual refresh after Close: %v", err)
	}
}
