package view

import (
	"errors"
	"math"
	"testing"
	"time"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/query"
	"ldpmarginals/internal/rng"
)

// perturb generates n deterministic reports for the protocol.
func perturb(t *testing.T, p core.Protocol, n int, seed uint64) []core.Report {
	t.Helper()
	client := p.NewClient()
	r := rng.New(seed)
	d := p.Config().D
	reps := make([]core.Report, n)
	for i := range reps {
		rep, err := client.Perturb(uint64(i)%(1<<uint(d)), r)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	return reps
}

func assertTablesIdentical(t *testing.T, label string, a, b *marginal.Table) {
	t.Helper()
	if a.Beta != b.Beta || len(a.Cells) != len(b.Cells) {
		t.Fatalf("%s: shape mismatch %b/%d vs %b/%d", label, a.Beta, len(a.Cells), b.Beta, len(b.Cells))
	}
	for c := range a.Cells {
		if math.Float64bits(a.Cells[c]) != math.Float64bits(b.Cells[c]) {
			t.Fatalf("%s: cell %d differs: %v vs %v", label, c, a.Cells[c], b.Cells[c])
		}
	}
}

// TestCachedAnswersMatchFreshRebuild is the central equivalence claim of
// the subsystem, across all six protocols: a view built through the
// engine over a sharded pipeline answers every |beta| <= k marginal and
// every conjunction bit-identically to a fresh Build over a sequential
// aggregator fed the same reports — the cached epoch *is* the
// snapshot-reconstruction of that epoch.
func TestCachedAnswersMatchFreshRebuild(t *testing.T) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true}
	for _, kind := range core.AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := core.New(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			reps := perturb(t, p, 3000, uint64(kind)+1)

			sharded := core.NewSharded(p, 4)
			if err := sharded.ConsumeBatch(reps); err != nil {
				t.Fatal(err)
			}
			seq := p.NewAggregator()
			if err := seq.ConsumeBatch(reps); err != nil {
				t.Fatal(err)
			}

			eng, err := NewEngine(sharded, p, EngineOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			cached, err := eng.Refresh()
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Build(seq, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if cached.N != len(reps) || fresh.N != len(reps) {
				t.Fatalf("view N %d/%d, want %d", cached.N, fresh.N, len(reps))
			}

			for _, beta := range bitops.MasksWithAtMostK(cfg.D, 1, cfg.K) {
				got, err := cached.Marginal(beta)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.Marginal(beta)
				if err != nil {
					t.Fatal(err)
				}
				assertTablesIdentical(t, kind.String(), got, want)
			}

			for _, qs := range []string{"a0=1 AND a1=0", "a2=1", "a4=0 AND a5=1"} {
				c, err := query.Parse(qs, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cached.Answer(c)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.Answer(c)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s: conjunction %q: %v vs %v", kind, qs, got, want)
				}
			}
		})
	}
}

// TestBuildIsDeterministic rebuilds from the same snapshot repeatedly —
// the consistency sweep and the parallel reconstruction must not leak
// map-iteration or scheduling order into the cells.
func TestBuildIsDeterministic(t *testing.T) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1}
	p, err := core.New(core.MargPS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator()
	if err := agg.ConsumeBatch(perturb(t, p, 4000, 9)); err != nil {
		t.Fatal(err)
	}
	ref, err := Build(agg, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		v, err := Build(agg, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, beta := range bitops.MasksWithAtMostK(cfg.D, 1, cfg.K) {
			a, err := ref.Marginal(beta)
			if err != nil {
				t.Fatal(err)
			}
			b, err := v.Marginal(beta)
			if err != nil {
				t.Fatal(err)
			}
			assertTablesIdentical(t, "rebuild", a, b)
		}
	}
}

// TestViewTablesAreConsistentDistributions checks the published
// post-processing contract: every k-way table is a probability
// distribution and overlapping tables agree on shared sub-marginals.
func TestViewTablesAreConsistentDistributions(t *testing.T) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1}
	p, err := core.New(core.MargRR, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator()
	if err := agg.ConsumeBatch(perturb(t, p, 20000, 4)); err != nil {
		t.Fatal(err)
	}
	v, err := Build(agg, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range bitops.MasksWithExactlyK(cfg.D, cfg.K) {
		tab, err := v.Marginal(beta)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, c := range tab.Cells {
			if c < -1e-12 {
				t.Fatalf("table %b has negative cell %v after projection", beta, c)
			}
			sum += c
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("table %b mass %v, want 1", beta, sum)
		}
	}
	// A 1-way answer must not depend (much) on which superset served it:
	// the view's weighted average sits within the tiny residual the
	// simplex projection reintroduces after enforcement.
	one, err := v.Marginal(0b1)
	if err != nil {
		t.Fatal(err)
	}
	for _, super := range bitops.MasksWithExactlyK(cfg.D, cfg.K) {
		if !bitops.IsSubset(0b1, super) {
			continue
		}
		tab, err := v.Marginal(super)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := tab.MarginalizeTo(0b1)
		if err != nil {
			t.Fatal(err)
		}
		for c := range one.Cells {
			if math.Abs(one.Cells[c]-sub.Cells[c]) > 0.02 {
				t.Fatalf("superset %b implies P=%v for cell %d, view serves %v", super, sub.Cells[c], c, one.Cells[c])
			}
		}
	}
}

// TestRawCellsSkipsProjection checks the RawCells escape hatch keeps the
// unbiased estimates (matching the aggregator's raw k-way tables when
// consistency is off).
func TestRawCellsSkipsProjection(t *testing.T) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1}
	p, err := core.New(core.InpHT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator()
	if err := agg.ConsumeBatch(perturb(t, p, 500, 2)); err != nil {
		t.Fatal(err)
	}
	v, err := Build(agg, p, Options{ConsistencyRounds: -1, RawCells: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range bitops.MasksWithExactlyK(cfg.D, cfg.K) {
		got, err := v.Marginal(beta)
		if err != nil {
			t.Fatal(err)
		}
		want, err := agg.Estimate(beta)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, "raw", got, want)
	}
}

// TestMarginalValidation checks every out-of-contract query is tagged
// ErrBadQuery (the HTTP layer's 400 contract) with the limit named.
func TestMarginalValidation(t *testing.T) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1}
	p, err := core.New(core.InpHT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Build(p.NewAggregator(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range []uint64{0, 1 << 6, 0b111, ^uint64(0)} {
		_, err := v.Marginal(beta)
		if !errors.Is(err, ErrBadQuery) {
			t.Errorf("beta %b: error %v is not ErrBadQuery", beta, err)
		}
	}
	// Empty deployments still answer in-contract queries (uniformly).
	tab, err := v.Marginal(0b11)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tab.Cells {
		if c != 0.25 {
			t.Fatalf("empty view should serve uniform, got %v", tab.Cells)
		}
	}
}

// TestViewIsImmutable checks a caller mutating a served table cannot
// corrupt the cached epoch.
func TestViewIsImmutable(t *testing.T) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1}
	p, err := core.New(core.InpHT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator()
	if err := agg.ConsumeBatch(perturb(t, p, 1000, 6)); err != nil {
		t.Fatal(err)
	}
	v, err := Build(agg, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := v.Marginal(0b11)
	if err != nil {
		t.Fatal(err)
	}
	for c := range first.Cells {
		first.Cells[c] = math.NaN()
	}
	second, err := v.Marginal(0b11)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range second.Cells {
		if math.IsNaN(c) {
			t.Fatal("mutating a served table corrupted the view")
		}
	}
}

// TestViewAgeClampsAtZero: a BuiltAt stamp stripped of its monotonic
// reading (Round(0)) and sitting in the wall-clock future — the shape a
// stepped-back system clock produces — must report a zero age, never a
// negative one that downstream staleness math would misread.
func TestViewAgeClampsAtZero(t *testing.T) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1}
	p, err := core.New(core.InpHT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator()
	if err := agg.ConsumeBatch(perturb(t, p, 50, 9)); err != nil {
		t.Fatal(err)
	}
	v, err := Build(agg, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Age() < 0 {
		t.Fatalf("fresh view age %v is negative", v.Age())
	}
	v.BuiltAt = time.Now().Add(time.Hour).Round(0)
	if got := v.Age(); got != 0 {
		t.Fatalf("future BuiltAt reported age %v, want 0", got)
	}
}
