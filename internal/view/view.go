// Package view materializes the read side of a marginal-release
// deployment. The paper's central promise is that one round of LDP
// reports answers *all* C(d,k) k-way marginals and every conjunction
// workload built on them — so instead of re-running reconstruction on
// every analyst query, a deployment reconstructs the whole collection
// once per epoch and serves every query from the cached result.
//
// Build turns one aggregator snapshot into an immutable View: all C(d,k)
// k-way tables reconstructed in parallel, cross-marginal consistency
// enforced (overlapping tables are shifted to agree on shared
// sub-marginals, weighted by their per-marginal evidence), and each
// table projected to the probability simplex. A View answers any
// marginal with |beta| <= k by marginalizing cached superset tables —
// O(2^k) work per query instead of a full reconstruction — and any
// conjunction by reading one cell of that answer.
//
// Builds are deterministic: two Builds over equal snapshots produce
// bit-identical Views regardless of GOMAXPROCS, so a cached answer is
// exactly the answer a fresh rebuild of the same epoch would give.
//
// Engine (engine.go) wraps Build with a refresh policy and publishes
// Views through an atomic pointer, so readers never take a lock and
// never block ingestion.
package view

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/consistency"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/query"
	"ldpmarginals/internal/trace"
)

// ErrBadQuery tags query-validation failures (empty beta, beta outside
// the attribute domain, |beta| above the deployment's k). HTTP layers
// map errors.Is(err, ErrBadQuery) to 400; anything else is a server
// fault.
var ErrBadQuery = errors.New("invalid marginal query")

// Options tunes Build's post-processing (the Engine embeds these in its
// refresh options). The zero value is the production default: 3
// consistency rounds, simplex projection on, a full rebuild every 64
// builds.
type Options struct {
	// ConsistencyRounds is the number of consistency-enforcement sweeps
	// across the reconstructed tables; 0 selects the default (3),
	// negative disables enforcement entirely.
	ConsistencyRounds int
	// RawCells skips the final simplex projection, leaving the unbiased
	// (possibly negative) cell estimates in the view.
	RawCells bool
	// FullRebuildEvery is the engine's full-rebuild cadence over a
	// delta-capable source: every FullRebuildEvery-th build re-derives
	// the cached linear sums from scratch and runs the cold Build path
	// (pinned bit-identical to a standalone Build over the same state),
	// bounding any divergence of the incremental fast kernels. 0 selects
	// the default (64), 1 makes every build a full rebuild (disabling
	// incremental refresh), negative disables full rebuilds after the
	// first epoch. Ignored by standalone Build calls and by sources
	// without delta support.
	FullRebuildEvery int
}

// DefaultFullRebuildEvery is the full-rebuild cadence selected by
// Options.FullRebuildEvery = 0.
const DefaultFullRebuildEvery = 64

// View is one immutable materialized epoch: every k-way collection table
// reconstructed from a single snapshot, post-processed, and frozen.
// Views are safe for concurrent use by any number of readers; all
// methods are read-only.
type View struct {
	// Epoch is the 1-based build sequence number assigned by the Engine
	// (0 for standalone Build calls).
	Epoch int64
	// N is the number of reports in the snapshot behind the view.
	N int
	// BuiltAt is the wall-clock completion time of the build.
	BuiltAt time.Time
	// BuildDuration is how long the build took.
	BuildDuration time.Duration
	// SnapshotDuration is how long cutting (full path) or delta-folding
	// (incremental path) the source state took, set by the Engine; zero
	// for standalone Build calls.
	SnapshotDuration time.Duration
	// Incremental reports whether this epoch was built by advancing the
	// engine's cached linear sums with a delta fold rather than a cold
	// rebuild from a full snapshot.
	Incremental bool
	// FoldedComponents is how many source components (shards, and on a
	// coordinator peers) were folded into this epoch's snapshot: only
	// the changed ones on an incremental build, every component on an
	// arena-backed full rebuild, 0 without delta support.
	FoldedComponents int
	// Protocol is the deployment's protocol name.
	Protocol string
	// Components describes the constituents of the epoch's snapshot when
	// the engine's source is Composed (a coordinator's fleet of peer
	// states); nil for plain sources.
	Components []Component
	// Diag is the epoch's accuracy diagnostics (diag.go): the paper's
	// theoretical TV bound at the epoch's parameters, the L1 mass moved
	// by consistency enforcement + projection, and — for engine-built
	// epochs — drift against the previous epoch.
	Diag Diagnostics

	cfg     core.Config
	kWay    int               // count of collection (k-way) tables at the front of tables
	tables  []*marginal.Table // C(d,k) k-way tables (mask-ascending), then the sub-k cube
	weights []float64         // per-table evidence (per-marginal users, or N)
	pos     map[uint64]int    // mask -> position in tables

	// snapshotAt is when the Engine cut the snapshot behind this view
	// (zero for standalone Build calls); Refresh uses it to coalesce
	// concurrent rebuild requests.
	snapshotAt time.Time
}

// Build materializes a view from one aggregator snapshot. The snapshot
// must be private to the caller (e.g. core.ShardedAggregator.Snapshot);
// it is only read. Equal snapshots build bit-identical views.
func Build(snap core.Aggregator, p core.Protocol, opts Options) (*View, error) {
	return buildContext(context.Background(), snap, p, opts)
}

// buildContext is Build with trace propagation: when ctx carries an
// active span, the reconstruction ("view.linear"), consistency sweep
// ("view.consistency"), and projection + sub-cube materialization
// ("view.nonlinear") are recorded as children.
func buildContext(ctx context.Context, snap core.Aggregator, p core.Protocol, opts Options) (*View, error) {
	start := time.Now()
	cfg := p.Config()
	// The enforcement structure is a pure function of (d, k); the
	// memoized plan is bit-identical to a from-scratch Enforce (pinned
	// in internal/consistency) and saves re-deriving the O(T^2) overlap
	// structure on every cold build.
	plan, err := planFor(cfg)
	if err != nil {
		return nil, fmt.Errorf("view: %w", err)
	}
	_, linSpan := trace.StartSpan(ctx, "view.linear")
	kway, err := core.AllKWayTables(snap, cfg)
	if err != nil {
		linSpan.End()
		return nil, fmt.Errorf("view: %w", err)
	}
	linSpan.SetAttr("tables", len(kway))
	linSpan.End()
	v := &View{
		N:        snap.N(),
		Protocol: p.Name(),
		cfg:      cfg,
		kWay:     len(kway),
		tables:   make([]*marginal.Table, len(kway)),
		weights:  make([]float64, len(kway)),
		pos:      make(map[uint64]int, len(kway)),
	}
	for i, kt := range kway {
		v.tables[i] = kt.Table
		v.weights[i] = float64(kt.Users)
		v.pos[kt.Beta] = i
	}
	// Checkpoint the raw reconstruction so the diagnostics can report
	// how much L1 mass the consistency sweep + projection moved.
	before := consistencyCheckpoint(nil, v.tables, v.kWay)
	if opts.ConsistencyRounds >= 0 && len(v.tables) > 1 && v.N > 0 {
		_, consSpan := trace.StartSpan(ctx, "view.consistency")
		if err := plan.cons.Enforce(v.tables, v.weights, consistency.Options{
			Rounds: opts.ConsistencyRounds,
		}); err != nil {
			consSpan.End()
			return nil, fmt.Errorf("view: enforcing consistency: %w", err)
		}
		consSpan.End()
	}
	_, nlSpan := trace.StartSpan(ctx, "view.nonlinear")
	if !opts.RawCells {
		for _, t := range v.tables {
			t.ProjectToSimplex()
		}
	}
	v.Diag.ConsistencyL1 = consistencyL1(before, v.tables, v.kWay)
	// Materialize the sub-k cube: every |beta| < k marginal is
	// deterministic for the life of the epoch, so averaging it out of
	// the supersets once here keeps the read path at O(2^k) for every
	// in-contract mask instead of an all-tables scan per request.
	for _, beta := range bitops.MasksWithAtMostK(cfg.D, 1, cfg.K-1) {
		tab, err := v.averageFromSupersets(beta)
		if err != nil {
			nlSpan.End()
			return nil, fmt.Errorf("view: materializing %b: %w", beta, err)
		}
		v.pos[beta] = len(v.tables)
		v.tables = append(v.tables, tab)
	}
	nlSpan.End()
	v.fillTVBound()
	v.BuildDuration = time.Since(start)
	v.BuiltAt = time.Now()
	return v, nil
}

// averageFromSupersets computes the marginal over beta as the
// evidence-weighted average of every k-way collection table containing
// beta, reduced in mask order (deterministic). Zero total evidence
// yields the uniform table.
func (v *View) averageFromSupersets(beta uint64) (*marginal.Table, error) {
	out, err := marginal.New(beta)
	if err != nil {
		return nil, err
	}
	var weight float64
	for i := 0; i < v.kWay; i++ {
		t := v.tables[i]
		if !bitops.IsSubset(beta, t.Beta) || v.weights[i] == 0 {
			continue
		}
		sub, err := t.MarginalizeTo(beta)
		if err != nil {
			return nil, err
		}
		sub.Scale(v.weights[i])
		if err := out.Add(sub); err != nil {
			return nil, err
		}
		weight += v.weights[i]
	}
	if weight == 0 {
		return marginal.Uniform(beta)
	}
	out.Scale(1 / weight)
	return out, nil
}

// Config returns the deployment parameters of the view.
func (v *View) Config() core.Config { return v.cfg }

// Tables returns the number of materialized tables: the C(d,k)
// collection tables plus the precomputed sub-k cube.
func (v *View) Tables() int { return len(v.tables) }

// checkBeta validates a queried mask against the deployment, wrapping
// every failure in ErrBadQuery with a message naming the violated limit.
func (v *View) checkBeta(beta uint64) error {
	if beta == 0 {
		return fmt.Errorf("%w: empty attribute mask", ErrBadQuery)
	}
	if beta >= 1<<uint(v.cfg.D) {
		return fmt.Errorf("%w: mask %d is outside the deployment's %d attributes (max %d)",
			ErrBadQuery, beta, v.cfg.D, uint64(1)<<uint(v.cfg.D)-1)
	}
	if k := bitops.OnesCount(beta); k > v.cfg.K {
		return fmt.Errorf("%w: mask has %d attributes but the deployment supports at most k=%d",
			ErrBadQuery, k, v.cfg.K)
	}
	return nil
}

// Marginal answers the marginal over beta (|beta| <= k) from the cached
// tables in O(2^k): every in-contract mask — the k-way collection
// tables and the precomputed sub-k cube alike — is a position lookup
// plus a copy. The returned table is the caller's to mutate. Sub-k
// answers are the evidence-weighted average of the cached supersets,
// reduced in mask order at build time, so they are deterministic per
// epoch.
func (v *View) Marginal(beta uint64) (*marginal.Table, error) {
	if err := v.checkBeta(beta); err != nil {
		return nil, err
	}
	if i, ok := v.pos[beta]; ok {
		return v.tables[i].Clone(), nil
	}
	// Unreachable for in-contract masks (the cube covers them all);
	// kept as a correct fallback.
	return v.averageFromSupersets(beta)
}

// Estimate is Marginal under the marginal.Estimator interface, so a View
// drops into every consumer an aggregator fits (query evaluation,
// Chow-Liu fitting, chi-squared testing).
func (v *View) Estimate(beta uint64) (*marginal.Table, error) { return v.Marginal(beta) }

// Answer evaluates one conjunction against the view, returning the
// estimated population fraction matching it.
func (v *View) Answer(c query.Conjunction) (float64, error) {
	return query.Evaluate(v, c, v.cfg.D)
}

// Age returns how long ago the view was built, clamped at zero: a
// BuiltAt stamp whose monotonic reading was stripped (serialized views,
// or a Round(0) anywhere upstream) falls back to wall-clock arithmetic,
// and a wall clock stepped backwards would otherwise yield a negative
// age that consumers feed into staleness alerts and refresh decisions.
func (v *View) Age() time.Duration {
	if d := time.Since(v.BuiltAt); d > 0 {
		return d
	}
	return 0
}

// Staleness returns how many reports have arrived since the view was
// built, given the aggregator's current count.
func (v *View) Staleness(currentN int) int {
	if s := currentN - v.N; s > 0 {
		return s
	}
	return 0
}
