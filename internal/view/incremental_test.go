package view

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/core"
)

// incCfg is the shared shape of the incremental equivalence tests.
func incCfg() core.Config {
	return core.Config{D: 6, K: 3, Epsilon: 1.1, OptimizedPRR: true}
}

func incReports(tb testing.TB, p core.Protocol, n int, seed uint64) []core.Report {
	tb.Helper()
	t, ok := tb.(*testing.T)
	if !ok {
		tb.Fatal("incReports needs a *testing.T")
	}
	return perturb(t, p, n, seed)
}

// maxViewTV returns the largest per-mask total variation distance
// between two views across every in-contract marginal.
func maxViewTV(tb testing.TB, a, b *View, cfg core.Config) float64 {
	tb.Helper()
	var worst float64
	for _, beta := range bitops.MasksWithAtMostK(cfg.D, 1, cfg.K) {
		ta, err := a.Marginal(beta)
		if err != nil {
			tb.Fatal(err)
		}
		tBb, err := b.Marginal(beta)
		if err != nil {
			tb.Fatal(err)
		}
		tv, err := ta.TVDistance(tBb)
		if err != nil {
			tb.Fatal(err)
		}
		if tv > worst {
			worst = tv
		}
	}
	return worst
}

// assertViewsBitIdentical compares every in-contract marginal of two
// views bit for bit.
func assertViewsBitIdentical(tb testing.TB, label string, a, b *View, cfg core.Config) {
	tb.Helper()
	for _, beta := range bitops.MasksWithAtMostK(cfg.D, 1, cfg.K) {
		ta, err := a.Marginal(beta)
		if err != nil {
			tb.Fatal(err)
		}
		tBb, err := b.Marginal(beta)
		if err != nil {
			tb.Fatal(err)
		}
		for c := range ta.Cells {
			if math.Float64bits(ta.Cells[c]) != math.Float64bits(tBb.Cells[c]) {
				tb.Fatalf("%s: marginal %b cell %d: %v vs %v", label, beta, c, ta.Cells[c], tBb.Cells[c])
			}
		}
	}
}

// TestIncrementalBuildsMatchColdBuild drives an engine through
// randomized ingest/refresh interleavings for all six protocols with
// full rebuilds pushed far out, asserting every incremental epoch stays
// within 1e-9 TV of a cold Build over the same state — and bit-identical
// for the four protocols whose incremental kernels are exact.
func TestIncrementalBuildsMatchColdBuild(t *testing.T) {
	cfg := incCfg()
	for _, kind := range core.AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := core.New(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sh := core.NewSharded(p, 4)
			eng, err := NewEngine(sh, p, EngineOptions{
				Build: Options{FullRebuildEvery: 1 << 20},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			if !eng.Incremental() {
				t.Fatal("engine is not incremental over a core protocol")
			}
			reps := incReports(t, p, 5000, uint64(kind)+77)
			r := rand.New(rand.NewSource(int64(kind) + 99))
			exact := kind != core.InpRR && kind != core.InpPS
			lo := 0
			incrementals := 0
			for lo < len(reps) {
				hi := lo + 1 + r.Intn(700)
				if hi > len(reps) {
					hi = len(reps)
				}
				if err := sh.ConsumeBatch(reps[lo:hi]); err != nil {
					t.Fatal(err)
				}
				lo = hi
				v, err := eng.Refresh()
				if err != nil {
					t.Fatal(err)
				}
				if v.Epoch > 1 && !v.Incremental {
					t.Fatalf("epoch %d was not incremental", v.Epoch)
				}
				if v.Epoch > 1 {
					incrementals++
				}
				snap, err := sh.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				cold, err := Build(snap, p, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if v.N != cold.N {
					t.Fatalf("epoch %d N=%d, cold N=%d", v.Epoch, v.N, cold.N)
				}
				if exact {
					assertViewsBitIdentical(t, kind.String(), v, cold, cfg)
				} else if tv := maxViewTV(t, v, cold, cfg); tv > 1e-9 {
					t.Fatalf("%s: incremental epoch %d diverges from cold Build by TV %g", kind, v.Epoch, tv)
				}
			}
			if incrementals == 0 {
				t.Fatal("no incremental epochs were exercised")
			}
			stats := eng.Stats()
			if stats.IncrementalBuilds != int64(incrementals) || stats.FullBuilds != 1 {
				t.Fatalf("stats %+v, want %d incremental and 1 full", stats, incrementals)
			}
		})
	}
}

// TestFullRebuildsBitIdenticalToColdBuild pins the acceptance
// criterion: with FullRebuildEvery = 1 every refresh runs the cold
// path, and each published epoch is bit-identical to a standalone
// Build over the same state, for all six protocols.
func TestFullRebuildsBitIdenticalToColdBuild(t *testing.T) {
	cfg := incCfg()
	for _, kind := range core.AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := core.New(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sh := core.NewSharded(p, 4)
			eng, err := NewEngine(sh, p, EngineOptions{
				Build: Options{FullRebuildEvery: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			reps := incReports(t, p, 3000, uint64(kind)+13)
			for lo := 0; lo < len(reps); lo += 1000 {
				if err := sh.ConsumeBatch(reps[lo : lo+1000]); err != nil {
					t.Fatal(err)
				}
				v, err := eng.Refresh()
				if err != nil {
					t.Fatal(err)
				}
				if v.Incremental {
					t.Fatalf("epoch %d incremental under FullRebuildEvery=1", v.Epoch)
				}
				snap, err := sh.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				cold, err := Build(snap, p, Options{})
				if err != nil {
					t.Fatal(err)
				}
				assertViewsBitIdentical(t, kind.String(), v, cold, cfg)
			}
		})
	}
}

// TestFullRebuildCadence checks the cadence accounting: with
// FullRebuildEvery = 4, epochs 1, 5, 9, ... are full and the rest
// incremental, and a cadence-forced full rebuild re-anchors bit-identity
// with the cold path for every protocol (including the fast-kernel
// ones).
func TestFullRebuildCadence(t *testing.T) {
	cfg := incCfg()
	for _, kind := range []core.Kind{core.InpRR, core.MargHT} {
		t.Run(kind.String(), func(t *testing.T) {
			p, err := core.New(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sh := core.NewSharded(p, 4)
			eng, err := NewEngine(sh, p, EngineOptions{Build: Options{FullRebuildEvery: 4}})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			reps := incReports(t, p, 6000, uint64(kind)+5)
			for lo := 0; lo < len(reps); lo += 500 {
				if err := sh.ConsumeBatch(reps[lo : lo+500]); err != nil {
					t.Fatal(err)
				}
				v, err := eng.Refresh()
				if err != nil {
					t.Fatal(err)
				}
				wantFull := (v.Epoch-1)%4 == 0
				if v.Incremental == wantFull {
					t.Fatalf("epoch %d incremental=%v, want full=%v", v.Epoch, v.Incremental, wantFull)
				}
				if wantFull {
					snap, err := sh.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					cold, err := Build(snap, p, Options{})
					if err != nil {
						t.Fatal(err)
					}
					assertViewsBitIdentical(t, kind.String(), v, cold, cfg)
				}
			}
		})
	}
}

// TestZeroDeltaRefreshRepublishes: a refresh with nothing ingested since
// the serving epoch keeps serving it instead of rebuilding.
func TestZeroDeltaRefreshRepublishes(t *testing.T) {
	cfg := incCfg()
	p, err := core.New(core.InpHT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := core.NewSharded(p, 4)
	eng, err := NewEngine(sh, p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := sh.ConsumeBatch(incReports(t, p, 100, 1)); err != nil {
		t.Fatal(err)
	}
	v2, err := eng.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if v2.Epoch != 2 {
		t.Fatalf("epoch %d after ingest+refresh, want 2", v2.Epoch)
	}
	v3, err := eng.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if v3 != v2 {
		t.Fatalf("zero-delta refresh rebuilt epoch %d", v3.Epoch)
	}
}

// TestIncrementalRefreshStress interleaves concurrent batch ingestion
// with engine refreshes — the assertions are the race detector plus the
// final epoch's equivalence with a cold build.
func TestIncrementalRefreshStress(t *testing.T) {
	cfg := incCfg()
	p, err := core.New(core.MargRR, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := core.NewSharded(p, 4)
	eng, err := NewEngine(sh, p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	reps := incReports(t, p, 8000, 3)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for lo := w * 2000; lo < (w+1)*2000; lo += 200 {
				if err := sh.ConsumeBatch(reps[lo : lo+200]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	refDone := make(chan struct{})
	go func() {
		defer close(refDone)
		for i := 0; i < 30; i++ {
			if _, err := eng.Refresh(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-refDone
	if t.Failed() {
		return
	}
	v, err := eng.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Build(snap, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertViewsBitIdentical(t, "MargRR stress", v, cold, cfg)
}
