package view

import (
	"ldpmarginals/internal/metrics"
)

// viewInstruments is the engine's always-on instrumentation: build-stage
// latency histograms by build kind, updated inside buildNext. Allocated
// at NewEngine so the build path never nil-checks.
type viewInstruments struct {
	buildFull   *metrics.Histogram // cold Build latency
	buildInc    *metrics.Histogram // incremental (delta-fold + nonlinear stage) latency
	snapshotDur *metrics.Histogram // snapshot/fold stage latency
}

func newViewInstruments() *viewInstruments {
	return &viewInstruments{
		buildFull:   metrics.NewHistogram(metrics.DurationBuckets()),
		buildInc:    metrics.NewHistogram(metrics.DurationBuckets()),
		snapshotDur: metrics.NewHistogram(metrics.DurationBuckets()),
	}
}

// RegisterMetrics attaches the engine's instrumentation to r under the
// ldp_view_* families. The epoch/age/staleness gauges read the published
// view through the engine's atomic pointer — no locks at scrape time.
func (e *Engine) RegisterMetrics(r *metrics.Registry) {
	r.MustRegister("ldp_view_build_seconds", "Epoch build latency (snapshot + reconstruction, the root build span's duration).", metrics.Labels{"kind": "full"}, e.ins.buildFull)
	r.MustRegister("ldp_view_build_seconds", "Epoch build latency (snapshot + reconstruction, the root build span's duration).", metrics.Labels{"kind": "incremental"}, e.ins.buildInc)
	r.MustRegister("ldp_view_snapshot_seconds", "Snapshot/delta-fold stage latency of epoch builds.", nil, e.ins.snapshotDur)
	r.MustCounterFunc("ldp_view_builds_total", "Epoch builds by kind.", metrics.Labels{"kind": "full"},
		func() float64 { return float64(e.fullBuilds.Load()) })
	r.MustCounterFunc("ldp_view_builds_total", "Epoch builds by kind.", metrics.Labels{"kind": "incremental"},
		func() float64 { return float64(e.incBuilds.Load()) })
	r.MustGaugeFunc("ldp_view_epoch", "Serving epoch number.", nil,
		func() float64 { return float64(e.Epoch()) })
	r.MustGaugeFunc("ldp_view_age_seconds", "Age of the serving epoch.", nil,
		func() float64 {
			if v := e.Current(); v != nil {
				return v.Age().Seconds()
			}
			return -1
		})
	r.MustGaugeFunc("ldp_view_staleness_reports", "Reports ingested since the serving epoch was built.", nil,
		func() float64 {
			if v := e.Current(); v != nil {
				return float64(v.Staleness(e.src.N()))
			}
			return -1
		})
	r.MustGaugeFunc("ldp_view_tables", "Materialized k-way tables in the serving epoch.", nil,
		func() float64 {
			if v := e.Current(); v != nil {
				return float64(v.Tables())
			}
			return 0
		})
	r.MustGaugeFunc("ldp_view_reports", "Reports contained in the serving epoch.", nil,
		func() float64 {
			if v := e.Current(); v != nil {
				return float64(v.N)
			}
			return 0
		})
	// Accuracy diagnostics (diag.go): the theoretical noise floor next
	// to the observed correction magnitude and inter-epoch drift, so a
	// dashboard can alert on drift > bound without scraping
	// /view/diagnostics.
	r.MustGaugeFunc("ldp_view_tv_bound", "Paper's theoretical per-marginal TV error bound at the serving epoch's parameters (0 when unavailable).", nil,
		func() float64 {
			if v := e.Current(); v != nil {
				return v.Diag.TheoreticalTV
			}
			return 0
		})
	r.MustGaugeFunc("ldp_view_consistency_l1", "L1 cell mass moved by consistency enforcement + projection in the serving epoch.", nil,
		func() float64 {
			if v := e.Current(); v != nil {
				return v.Diag.ConsistencyL1
			}
			return 0
		})
	r.MustGaugeFunc("ldp_view_drift_max_tv", "Maximum per-marginal TV drift of the serving epoch vs the previous epoch.", nil,
		func() float64 {
			if v := e.Current(); v != nil {
				return v.Diag.DriftMaxTV
			}
			return 0
		})
	r.MustGaugeFunc("ldp_view_drift_mean_tv", "Mean per-marginal TV drift of the serving epoch vs the previous epoch.", nil,
		func() float64 {
			if v := e.Current(); v != nil {
				return v.Diag.DriftMeanTV
			}
			return 0
		})
}
