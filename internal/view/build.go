package view

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/consistency"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/trace"
)

// The incremental build pipeline. Build's work splits into a *linear*
// stage — the aggregated counter sums every estimator is a normalization
// of — and a *nonlinear* stage (normalize by n, cross-marginal
// consistency, simplex projection, sub-k cube) that must re-run per
// epoch. The linear stage lives in a core.StateArena owned by the
// engine and advances by folding per-shard (or per-peer) deltas, so its
// cost tracks what changed; the nonlinear stage re-runs over reusable
// reconstruction arenas, so the steady-state refresh allocates only the
// immutable published view. buildPlan memoizes everything about the
// (d, k) collection that is identical across epochs: mask lists, the
// mask->table position map, the sub-cube's superset structure with
// cell index maps, and the consistency plan.

// buildPlan is the per-(d,k) epoch-invariant build structure. Immutable
// and shared: one plan serves every engine (and every published view's
// position lookups) of a deployment shape for the process lifetime.
type buildPlan struct {
	kway []uint64 // the C(d,k) collection masks (shared, read-only)
	sub  []uint64 // the sub-k cube masks, |beta| in [1, k-1]
	pos  map[uint64]int

	// subSupers[si] lists the positions (into kway) of the supersets of
	// sub[si], ascending; subIdx[si][j] maps superset j's cells onto
	// sub[si]'s cells (the precomputed MarginalizeTo index map).
	subSupers [][]int
	subIdx    [][][]int

	cons *consistency.Plan
}

var buildPlans sync.Map // uint64(d)<<8 | uint64(k) -> *buildPlan

// planFor returns the memoized build plan of a deployment shape.
func planFor(cfg core.Config) (*buildPlan, error) {
	key := uint64(cfg.D)<<8 | uint64(cfg.K)
	if p, ok := buildPlans.Load(key); ok {
		return p.(*buildPlan), nil
	}
	kway := core.KWayMasks(cfg.D, cfg.K)
	sub := bitops.MasksWithAtMostK(cfg.D, 1, cfg.K-1)
	p := &buildPlan{
		kway:      kway,
		sub:       sub,
		pos:       make(map[uint64]int, len(kway)+len(sub)),
		subSupers: make([][]int, len(sub)),
		subIdx:    make([][][]int, len(sub)),
	}
	for i, m := range kway {
		p.pos[m] = i
	}
	for i, m := range sub {
		p.pos[m] = len(kway) + i
	}
	for si, sb := range sub {
		for pos, m := range kway {
			if !bitops.IsSubset(sb, m) {
				continue
			}
			idx := make([]int, 1<<uint(cfg.K))
			for c := range idx {
				idx[c] = int(bitops.Compress(bitops.Expand(uint64(c), m), sb))
			}
			p.subSupers[si] = append(p.subSupers[si], pos)
			p.subIdx[si] = append(p.subIdx[si], idx)
		}
	}
	cons, err := consistency.NewPlan(kway)
	if err != nil {
		return nil, err
	}
	p.cons = cons
	actual, _ := buildPlans.LoadOrStore(key, p)
	return actual.(*buildPlan), nil
}

// builder owns the reusable reconstruction arenas of one engine: the
// k-way table arena, the sub-cube arena, the evidence vector, and the
// marginalization scratch. A builder is single-threaded (the engine
// serializes builds); publishing copies the finished values into a
// fresh immutable View, so readers of older epochs are never touched by
// the next build reusing the arena.
type builder struct {
	p    core.Protocol
	cfg  core.Config
	opts Options
	plan *buildPlan

	arena   *core.KWayArena
	weights []float64         // per-kway-table evidence of the current build
	sub     []*marginal.Table // sub-cube arena tables (slab-backed)
	scratch []float64         // marginalization scratch, max 2^(k-1)
	// consBefore checkpoints the raw k-way cells before the nonlinear
	// stage so diagnostics can report the L1 mass consistency +
	// projection moved; reused across epochs.
	consBefore []float64
}

func newBuilder(p core.Protocol, opts Options) (*builder, error) {
	cfg := p.Config()
	plan, err := planFor(cfg)
	if err != nil {
		return nil, err
	}
	arena, err := core.NewKWayArena(cfg)
	if err != nil {
		return nil, err
	}
	b := &builder{
		p:       p,
		cfg:     cfg,
		opts:    opts,
		plan:    plan,
		arena:   arena,
		weights: make([]float64, len(plan.kway)),
		sub:     make([]*marginal.Table, len(plan.sub)),
	}
	var cells int
	for _, m := range plan.sub {
		cells += 1 << uint(bitops.OnesCount(m))
	}
	slab := make([]float64, cells)
	tabs := make([]marginal.Table, len(plan.sub))
	off := 0
	maxSub := 0
	for i, m := range plan.sub {
		size := 1 << uint(bitops.OnesCount(m))
		tabs[i] = marginal.Table{Beta: m, Cells: slab[off : off+size]}
		b.sub[i] = &tabs[i]
		off += size
		if size > maxSub {
			maxSub = size
		}
	}
	b.scratch = make([]float64, maxSub)
	return b, nil
}

// build runs the nonlinear stage over the cached linear state and
// publishes a fresh immutable View. With fast set the input-view
// protocols reconstruct through the single-transform linear kernel
// (within ~1e-12 TV of the cold scan); every other stage is arithmetic-
// identical to the cold Build, so for the remaining protocols the
// result is bit-identical to Build over the same state.
func (b *builder) build(ctx context.Context, state core.Aggregator, fast bool) (*View, error) {
	start := time.Now()
	_, linSpan := trace.StartSpan(ctx, "view.linear")
	if err := core.AllKWayTablesInto(state, b.arena, fast); err != nil {
		linSpan.End()
		return nil, fmt.Errorf("view: %w", err)
	}
	linSpan.SetAttr("tables", len(b.arena.Tables))
	linSpan.End()
	n := state.N()
	for i, u := range b.arena.Users {
		b.weights[i] = float64(u)
	}
	b.consBefore = consistencyCheckpoint(b.consBefore, b.arena.Tables, len(b.arena.Tables))
	if b.opts.ConsistencyRounds >= 0 && len(b.arena.Tables) > 1 && n > 0 {
		_, consSpan := trace.StartSpan(ctx, "view.consistency")
		if err := b.plan.cons.Enforce(b.arena.Tables, b.weights, consistency.Options{
			Rounds: b.opts.ConsistencyRounds,
		}); err != nil {
			consSpan.End()
			return nil, fmt.Errorf("view: enforcing consistency: %w", err)
		}
		consSpan.End()
	}
	_, nlSpan := trace.StartSpan(ctx, "view.nonlinear")
	defer nlSpan.End()
	if !b.opts.RawCells {
		for _, t := range b.arena.Tables {
			t.ProjectToSimplex()
		}
	}
	// Materialize the sub-k cube from the post-processed collection —
	// the same evidence-weighted average, in the same superset and
	// summation order, as View.averageFromSupersets.
	for si := range b.plan.sub {
		out := b.sub[si].Cells
		for c := range out {
			out[c] = 0
		}
		var weight float64
		for j, pos := range b.plan.subSupers[si] {
			w := b.weights[pos]
			if w == 0 {
				continue
			}
			imp := b.scratch[:len(out)]
			for c := range imp {
				imp[c] = 0
			}
			idx := b.plan.subIdx[si][j]
			for c, v := range b.arena.Tables[pos].Cells {
				imp[idx[c]] += v
			}
			for c := range out {
				// Two statements (see consistency.Plan.Enforce): an FMA
				// here would break bit-identity with the cold build's
				// Scale-then-Add.
				v := imp[c] * w
				out[c] += v
			}
			weight += w
		}
		if weight == 0 {
			u := 1 / float64(len(out))
			for c := range out {
				out[c] = u
			}
			continue
		}
		inv := 1 / weight
		for c := range out {
			out[c] *= inv
		}
	}
	return b.publish(n, start), nil
}

// publish freezes the arena's finished values into a fresh immutable
// View: one table-header slab, one cell slab, and the shared position
// map. These are the only per-epoch allocations of an incremental
// refresh — the arenas themselves never escape, so a reader holding any
// older epoch is unaffected by later builds.
func (b *builder) publish(n int, start time.Time) *View {
	total := len(b.arena.Tables) + len(b.sub)
	cells := len(b.arena.Tables) << uint(b.cfg.K)
	for _, t := range b.sub {
		cells += len(t.Cells)
	}
	slab := make([]float64, cells)
	headers := make([]marginal.Table, total)
	ptrs := make([]*marginal.Table, total)
	off := 0
	for i, t := range b.arena.Tables {
		dst := slab[off : off+len(t.Cells)]
		copy(dst, t.Cells)
		headers[i] = marginal.Table{Beta: t.Beta, Cells: dst}
		ptrs[i] = &headers[i]
		off += len(t.Cells)
	}
	for i, t := range b.sub {
		dst := slab[off : off+len(t.Cells)]
		copy(dst, t.Cells)
		headers[len(b.arena.Tables)+i] = marginal.Table{Beta: t.Beta, Cells: dst}
		ptrs[len(b.arena.Tables)+i] = &headers[len(b.arena.Tables)+i]
		off += len(t.Cells)
	}
	v := &View{
		N:           n,
		Protocol:    b.p.Name(),
		Incremental: true,
		cfg:         b.cfg,
		kWay:        len(b.arena.Tables),
		tables:      ptrs,
		weights:     append([]float64(nil), b.weights...),
		pos:         b.plan.pos,
	}
	v.Diag.ConsistencyL1 = consistencyL1(b.consBefore, v.tables, v.kWay)
	v.fillTVBound()
	v.BuildDuration = time.Since(start)
	v.BuiltAt = time.Now()
	return v
}
