package view

import (
	"math"
	"testing"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/marginal"
)

// TestTheoreticalTVBoundPinned pins the diagnostics' theoretical bound
// against a hand computation of Theorem 4.5: for InpHT at d=8, k=2,
// eps=2 the bound is sqrt(|T|) * 2^{k/2} / (eps sqrt(n)) with
// |T| = C(8,1)+C(8,2) = 36, i.e. 6 * 2 / (2 sqrt(n)) = 6/sqrt(n).
func TestTheoreticalTVBoundPinned(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	reps := perturb(t, p, 400, 5)
	agg := p.NewAggregator()
	if err := agg.ConsumeBatch(reps); err != nil {
		t.Fatal(err)
	}
	v, err := Build(agg, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Diag.TVBoundErr != "" {
		t.Fatalf("unexpected TV bound error: %s", v.Diag.TVBoundErr)
	}
	want := 6 / math.Sqrt(float64(len(reps)))
	if got := v.Diag.TheoreticalTV; math.Abs(got-want) > 1e-12*want {
		t.Fatalf("TheoreticalTV = %v, want %v (6/sqrt(%d))", got, want, len(reps))
	}
}

// TestTVBoundEmptyEpoch: the bounds need n > 0; an empty epoch records
// the reason instead of a bogus bound.
func TestTVBoundEmptyEpoch(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 6, K: 2, Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Build(p.NewAggregator(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Diag.TVBoundErr == "" {
		t.Fatal("empty epoch produced no TV bound error")
	}
	if v.Diag.TheoreticalTV != 0 {
		t.Fatalf("empty epoch TheoreticalTV = %v, want 0", v.Diag.TheoreticalTV)
	}
}

// TestConsistencyL1Diagnostic checks the recorded correction magnitude
// against an independent measurement: the summed |cell difference|
// between a raw build (consistency and projection disabled) and the
// default build over the same aggregator state.
func TestConsistencyL1Diagnostic(t *testing.T) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true}
	p, err := core.New(core.MargPS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := perturb(t, p, 2000, 9)
	agg := p.NewAggregator()
	if err := agg.ConsumeBatch(reps); err != nil {
		t.Fatal(err)
	}
	raw, err := Build(agg, p, Options{ConsistencyRounds: -1, RawCells: true})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Build(agg, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, beta := range bitops.MasksWithExactlyK(cfg.D, cfg.K) {
		rt, err := raw.Marginal(beta)
		if err != nil {
			t.Fatal(err)
		}
		dt, err := def.Marginal(beta)
		if err != nil {
			t.Fatal(err)
		}
		for c := range rt.Cells {
			want += math.Abs(dt.Cells[c] - rt.Cells[c])
		}
	}
	if want == 0 {
		t.Fatal("post-processing moved no mass; test is vacuous")
	}
	if got := def.Diag.ConsistencyL1; math.Abs(got-want) > 1e-12*want {
		t.Fatalf("ConsistencyL1 = %v, independent measurement %v", got, want)
	}
	if raw.Diag.ConsistencyL1 != 0 {
		t.Fatalf("raw build ConsistencyL1 = %v, want 0", raw.Diag.ConsistencyL1)
	}
}

// TestMarginalDriftHandComputed pins marginalDrift on synthetic views
// with hand-computed total-variation distances: table beta=1 moves
// from (0.5, 0.5) to (0.7, 0.3) — L1 0.4, TV 0.2 — and table beta=2
// does not move, so max = 0.2 and mean = 0.1.
func TestMarginalDriftHandComputed(t *testing.T) {
	mk := func(c1, c2 []float64) *View {
		t1 := &marginal.Table{Beta: 1, Cells: c1}
		t2 := &marginal.Table{Beta: 2, Cells: c2}
		return &View{
			kWay:   2,
			tables: []*marginal.Table{t1, t2},
			pos:    map[uint64]int{1: 0, 2: 1},
		}
	}
	prev := mk([]float64{0.5, 0.5}, []float64{0.1, 0.9})
	cur := mk([]float64{0.7, 0.3}, []float64{0.1, 0.9})
	maxTV, meanTV := marginalDrift(prev, cur)
	if math.Abs(maxTV-0.2) > 1e-15 {
		t.Errorf("maxTV = %v, want 0.2", maxTV)
	}
	if math.Abs(meanTV-0.1) > 1e-15 {
		t.Errorf("meanTV = %v, want 0.1", meanTV)
	}
	if mx, mn := marginalDrift(nil, cur); mx != 0 || mn != 0 {
		t.Errorf("nil prev drift = (%v, %v), want zero", mx, mn)
	}
}

// TestEngineDriftBetweenEpochs checks the engine's published drift
// against an independent per-table TV computation between two
// consecutive epochs.
func TestEngineDriftBetweenEpochs(t *testing.T) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true}
	p, err := core.New(core.InpHT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded := core.NewSharded(p, 2)
	reps := perturb(t, p, 3000, 21)
	if err := sharded.ConsumeBatch(reps[:1000]); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(sharded, p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	v1, err := eng.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if v1.Diag.DriftMaxTV != 0 || v1.Diag.DriftBaseEpoch != 0 {
		t.Fatalf("first epoch drift = %v base %d, want zero", v1.Diag.DriftMaxTV, v1.Diag.DriftBaseEpoch)
	}
	if err := sharded.ConsumeBatch(reps[1000:]); err != nil {
		t.Fatal(err)
	}
	v2, err := eng.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	var wantMax, sum float64
	n := 0
	for _, beta := range bitops.MasksWithExactlyK(cfg.D, cfg.K) {
		t1, err := v1.Marginal(beta)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := v2.Marginal(beta)
		if err != nil {
			t.Fatal(err)
		}
		var l1 float64
		for c := range t1.Cells {
			l1 += math.Abs(t2.Cells[c] - t1.Cells[c])
		}
		tv := l1 / 2
		if tv > wantMax {
			wantMax = tv
		}
		sum += tv
		n++
	}
	wantMean := sum / float64(n)
	if wantMax == 0 {
		t.Fatal("epochs identical; drift test is vacuous")
	}
	if got := v2.Diag.DriftMaxTV; math.Abs(got-wantMax) > 1e-12 {
		t.Errorf("DriftMaxTV = %v, independent measurement %v", got, wantMax)
	}
	if got := v2.Diag.DriftMeanTV; math.Abs(got-wantMean) > 1e-12 {
		t.Errorf("DriftMeanTV = %v, independent measurement %v", got, wantMean)
	}
	if v2.Diag.DriftBaseEpoch != v1.Epoch {
		t.Errorf("DriftBaseEpoch = %d, want %d", v2.Diag.DriftBaseEpoch, v1.Epoch)
	}
}
