package view

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/trace"
)

// Source is what the engine refreshes from: a live aggregation pipeline
// that can cut a private snapshot and report its current count without
// blocking. core.ShardedAggregator satisfies it.
type Source interface {
	// Snapshot returns a private, queryable copy of the current state.
	Snapshot() (core.Aggregator, error)
	// N returns the current report count; must be cheap (lock-free).
	N() int
}

// Component describes one constituent of a composed source's snapshot:
// a cluster peer (or the local pipeline) whose state was folded into the
// epoch. The engine records the composition on every refresh, so a
// /view/status endpoint can report per-peer staleness — which peer's
// reports the serving epoch actually contains — rather than only the
// fleet total.
type Component struct {
	// ID names the component: a peer's node id, or "local".
	ID string
	// URL is the peer's configured base URL (empty for the local
	// pipeline).
	URL string
	// N is the component's report count inside the snapshot.
	N int
	// Version is the component's state version inside the snapshot.
	Version uint64
	// PulledAt is when the component's state was last fetched (zero for
	// the local pipeline).
	PulledAt time.Time
	// Parts is how many named state components the constituent
	// decomposes into on the wire (shards of an edge, pass-through
	// constituents of a mid-tier coordinator); 0 when the source doesn't
	// track a decomposition.
	Parts int
}

// Composed is optionally implemented by a Source assembled from multiple
// constituents (e.g. a coordinator's fleet of edge states). Composition
// must describe exactly the constituents of the most recent Snapshot
// (or SnapshotDeltaInto) call; the engine copies it into the published
// View right after snapshotting, under the same build lock.
type Composed interface {
	Composition() []Component
}

// DeltaSource is optionally implemented by sources that support
// delta-aware refresh: the engine keeps a core.StateArena holding the
// source's cumulative state and advances it by folding only the
// components that changed since the previous epoch, instead of cutting
// a full O(components × state) snapshot per refresh.
// core.ShardedAggregator and the coordinator's fleet implement it.
type DeltaSource interface {
	Source
	// NewSnapshotArena returns a reusable arena over this source, or nil
	// when the deployment's protocol cannot back exact delta folds (the
	// engine then refreshes through plain Snapshot calls).
	NewSnapshotArena() core.StateArena
	// SnapshotDeltaInto advances the arena to the source's current
	// state, folding only changed components, and returns how many were
	// folded. On a Reset (or fresh) arena it re-derives the cumulative
	// state from scratch, bit-identical to Snapshot.
	SnapshotDeltaInto(core.StateArena) (int, error)
}

// Policy selects when the engine rebuilds the view on its own. The zero
// value disables automatic refresh: the view only advances on explicit
// Refresh calls (e.g. a POST /refresh endpoint).
type Policy struct {
	// Interval rebuilds the view every Interval of wall time; <= 0
	// disables time-based refresh.
	Interval time.Duration
	// EveryN rebuilds the view once at least EveryN new reports have
	// arrived since the last build; <= 0 disables count-based refresh.
	EveryN int
	// Poll is how often the count-based trigger samples Source.N
	// (default 100ms; only used when EveryN > 0 and Interval is not a
	// tighter bound already).
	Poll time.Duration
}

func (p Policy) automatic() bool { return p.Interval > 0 || p.EveryN > 0 }

// tick returns the background loop's wake-up period: a fraction of
// Interval (so a refresh lands within ~Interval/8 of its due time,
// rather than slipping a whole period when a tick narrowly precedes the
// deadline), bounded by Poll when the count-based trigger is on.
func (p Policy) tick() time.Duration {
	var t time.Duration
	if p.Interval > 0 {
		t = p.Interval / 8
		if t < time.Millisecond {
			t = time.Millisecond
		}
	}
	if p.EveryN > 0 {
		poll := p.Poll
		if poll <= 0 {
			poll = 100 * time.Millisecond
		}
		if t <= 0 || poll < t {
			t = poll
		}
	}
	return t
}

// EngineOptions configures NewEngine.
type EngineOptions struct {
	// Refresh is the automatic refresh policy (zero = manual only).
	Refresh Policy
	// Build tunes the per-epoch post-processing.
	Build Options
	// Tracer, when set, roots a "view.refresh" trace for every
	// policy-driven background refresh (request-driven refreshes join
	// their request's trace through RefreshContext instead). Nil
	// disables background-refresh tracing.
	Tracer *trace.Tracer
}

// Engine owns the materialized view of one deployment: it snapshots the
// source, builds a View, and publishes it through an atomic pointer.
// Readers call Current and work with an immutable epoch; they never take
// a lock and never observe a partially built view. Builds (manual or
// policy-driven) are serialized, so at most one reconstruction runs at a
// time and ingestion is never stalled by more than the snapshot's
// one-shard-at-a-time merge.
type Engine struct {
	src  Source
	p    core.Protocol
	opts EngineOptions

	cur atomic.Pointer[View]

	mu    sync.Mutex // serializes builds and guards epoch + incremental state
	epoch int64      // last assigned build number; read the published View's Epoch instead

	// Incremental refresh state, all guarded by mu. deltaSrc and arena
	// are nil when the source (or its protocol) cannot back delta folds;
	// the engine then refreshes through plain Snapshot + Build.
	deltaSrc  DeltaSource
	arena     core.StateArena
	bld       *builder
	sinceFull int // incremental builds since the last full rebuild
	// arenaDirty marks folded-but-unpublished arena state (a build
	// failed after its fold), so the zero-delta fast path below cannot
	// skip the rebuild that would make that state visible.
	arenaDirty bool

	incBuilds  atomic.Int64
	fullBuilds atomic.Int64
	ins        *viewInstruments

	stop  chan struct{}
	close sync.Once
	done  sync.WaitGroup
}

// EngineStats counts the engine's builds by kind, for status endpoints.
type EngineStats struct {
	// IncrementalBuilds is the number of epochs built by folding deltas
	// into the cached linear sums.
	IncrementalBuilds int64
	// FullBuilds is the number of epochs built by the cold path
	// (including the initial epoch and every cadence-forced rebuild).
	FullBuilds int64
}

// Stats returns the engine's build counters. Lock-free.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		IncrementalBuilds: e.incBuilds.Load(),
		FullBuilds:        e.fullBuilds.Load(),
	}
}

// Incremental reports whether the engine refreshes through delta folds
// (a delta-capable source whose protocol supports exact unmerging, and
// a cadence that allows incremental builds).
func (e *Engine) Incremental() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.arena != nil
}

// NewEngine builds epoch 1 synchronously (so Current never returns nil)
// and, if the policy asks for automatic refresh, starts the background
// refresh loop. Close the engine to stop that loop. When the source
// supports delta snapshots the engine refreshes incrementally (see
// Options.FullRebuildEvery); the initial epoch is always a full build.
func NewEngine(src Source, p core.Protocol, opts EngineOptions) (*Engine, error) {
	e := &Engine{src: src, p: p, opts: opts, stop: make(chan struct{}), ins: newViewInstruments()}
	if ds, ok := src.(DeltaSource); ok && opts.Build.FullRebuildEvery != 1 {
		if arena := ds.NewSnapshotArena(); arena != nil {
			bld, err := newBuilder(p, opts.Build)
			if err != nil {
				return nil, fmt.Errorf("view: preparing incremental builder: %w", err)
			}
			e.deltaSrc, e.arena, e.bld = ds, arena, bld
		}
	}
	if _, err := e.Refresh(); err != nil {
		return nil, fmt.Errorf("view: building initial epoch: %w", err)
	}
	if opts.Refresh.automatic() {
		e.done.Add(1)
		go e.loop()
	}
	return e, nil
}

// Current returns the latest published view. Lock-free; never nil.
func (e *Engine) Current() *View { return e.cur.Load() }

// Epoch returns the latest published epoch number. Lock-free. It is
// read from the published view itself — never from the internal build
// counter, which runs ahead of publication for the instant between
// assigning a new view's number and storing it — so Epoch never reports
// an epoch a concurrent Current call could not obtain.
func (e *Engine) Epoch() int64 {
	if v := e.Current(); v != nil {
		return v.Epoch
	}
	return 0
}

// Refresh snapshots the source, builds the next epoch, and publishes it,
// returning the new view. Concurrent calls are serialized and coalesced
// single-flight style: a caller that waited out another build returns
// the epoch published during its wait when that epoch's snapshot was
// taken after the caller asked — it already reflects everything the
// caller could have ingested beforehand, so rebuilding would burn a full
// reconstruction on an indistinguishable answer. On error the previous
// view stays published and keeps serving.
//
// Over a delta-capable source most refreshes are incremental: the
// engine folds only the source components that changed since the last
// epoch into its cached linear sums and re-runs the nonlinear stage
// (normalization, consistency, projection, sub-cube) over reusable
// arenas. Every Options.FullRebuildEvery-th build — and always the
// first — re-derives the sums from scratch and runs the cold Build
// path, bit-identical to a standalone Build over the same state.
func (e *Engine) Refresh() (*View, error) {
	return e.RefreshContext(context.Background())
}

// RefreshContext is Refresh with trace propagation: when ctx carries
// an active span, the whole build is recorded as a "view.build" child
// — covering snapshot acquisition and reconstruction, the same total
// that BuildDuration and the build histograms report — with stage
// children (view.snapshot or view.delta_fold, view.linear,
// view.consistency, view.nonlinear) and the epoch's fold counts and
// accuracy diagnostics as attributes.
func (e *Engine) RefreshContext(ctx context.Context) (*View, error) {
	entry := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.cur.Load(); cur != nil && cur.snapshotAt.After(entry) {
		return cur, nil
	}
	snapshotAt := time.Now()
	ctx, span := trace.StartSpan(ctx, "view.build")
	v, err := e.buildNext(ctx)
	if err != nil {
		span.SetAttr("error", err)
		span.End()
		return nil, err
	}
	if v == nil {
		// Zero-delta fast path: nothing changed since the serving epoch
		// was built, so the previous view already is the rebuild's
		// answer. The epoch does not advance.
		span.SetAttr("zero_delta", true)
		span.End()
		return e.cur.Load(), nil
	}
	// Inter-epoch drift: how far each k-way marginal moved since the
	// epoch currently serving. Compared against Diag.TheoreticalTV
	// this is the anomaly signal — movement beyond the noise floor
	// means the underlying distribution changed.
	if prev := e.cur.Load(); prev != nil {
		v.Diag.DriftMaxTV, v.Diag.DriftMeanTV = marginalDrift(prev, v)
		v.Diag.DriftBaseEpoch = prev.Epoch
	}
	v.snapshotAt = snapshotAt
	e.epoch++
	v.Epoch = e.epoch
	span.SetAttr("epoch", v.Epoch)
	span.SetAttr("n", v.N)
	span.SetAttr("incremental", v.Incremental)
	span.SetAttr("folded_components", v.FoldedComponents)
	span.SetAttr("consistency_l1", v.Diag.ConsistencyL1)
	span.SetAttr("drift_max_tv", v.Diag.DriftMaxTV)
	if v.Diag.TVBoundErr == "" {
		span.SetAttr("theoretical_tv", v.Diag.TheoreticalTV)
	}
	span.End()
	e.cur.Store(v)
	return v, nil
}

// buildNext runs one build — incremental when the cadence and the
// source allow it, the cold full path otherwise. Called under e.mu.
//
// The published BuildDuration (and the build histograms) cover the
// whole operation — snapshot acquisition plus reconstruction, exactly
// the root "view.build" span — so /view/status, the metrics, and the
// traces all report the same number; SnapshotDuration remains as the
// snapshot-stage breakdown.
func (e *Engine) buildNext(ctx context.Context) (*View, error) {
	every := e.opts.Build.FullRebuildEvery
	if every == 0 {
		every = DefaultFullRebuildEvery
	}
	incremental := e.arena != nil && e.epoch > 0 &&
		(every < 0 || e.sinceFull+1 < every)

	var (
		v       *View
		folded  int
		snapDur time.Duration
	)
	start := time.Now()
	if incremental {
		_, foldSpan := trace.StartSpan(ctx, "view.delta_fold")
		t0 := time.Now()
		touched, err := e.deltaSrc.SnapshotDeltaInto(e.arena)
		if err != nil {
			foldSpan.SetAttr("error", err)
			foldSpan.End()
			e.arenaDirty = true
			return nil, fmt.Errorf("view: folding delta snapshot: %w", err)
		}
		snapDur = time.Since(t0)
		folded = touched
		foldSpan.SetAttr("folded_components", touched)
		foldSpan.End()
		if touched == 0 && !e.arenaDirty && e.cur.Load() != nil {
			// No component moved since the last successful build: the
			// serving epoch was built from exactly this state.
			return nil, nil
		}
		comp := e.composition()
		v, err = e.bld.build(ctx, e.arena.State(), true)
		if err != nil {
			e.arenaDirty = true
			return nil, err
		}
		v.BuildDuration = time.Since(start)
		e.ins.buildInc.Observe(v.BuildDuration.Seconds())
		e.arenaDirty = false
		v.Components = comp
		e.sinceFull++
		e.incBuilds.Add(1)
	} else {
		var (
			snap core.Aggregator
			err  error
		)
		_, snapSpan := trace.StartSpan(ctx, "view.snapshot")
		t0 := time.Now()
		if e.arena != nil {
			// Re-derive the cached linear sums from scratch; the arena's
			// cold capture is bit-identical to Snapshot, and later
			// incremental folds advance from this re-anchored state.
			e.arena.Reset()
			if folded, err = e.deltaSrc.SnapshotDeltaInto(e.arena); err != nil {
				snapSpan.SetAttr("error", err)
				snapSpan.End()
				return nil, fmt.Errorf("view: capturing snapshot: %w", err)
			}
			snap = e.arena.State()
		} else if snap, err = e.src.Snapshot(); err != nil {
			snapSpan.SetAttr("error", err)
			snapSpan.End()
			return nil, fmt.Errorf("view: snapshotting source: %w", err)
		}
		snapDur = time.Since(t0)
		snapSpan.SetAttr("folded_components", folded)
		snapSpan.End()
		// Capture the snapshot's composition before the (long) build: the
		// source pins it to its last snapshot call, and builds are
		// serialized under e.mu, so this is exactly the epoch's makeup.
		comp := e.composition()
		v, err = buildContext(ctx, snap, e.p, e.opts.Build)
		if err != nil {
			return nil, err
		}
		v.BuildDuration = time.Since(start)
		e.ins.buildFull.Observe(v.BuildDuration.Seconds())
		v.Components = comp
		e.arenaDirty = false
		e.sinceFull = 0
		e.fullBuilds.Add(1)
	}
	v.SnapshotDuration = snapDur
	e.ins.snapshotDur.Observe(snapDur.Seconds())
	v.FoldedComponents = folded
	return v, nil
}

func (e *Engine) composition() []Component {
	if c, ok := e.src.(Composed); ok {
		return c.Composition()
	}
	return nil
}

// Close stops the automatic refresh loop (if any) and waits for it to
// exit. The last published view keeps serving; Close is idempotent.
func (e *Engine) Close() {
	e.close.Do(func() { close(e.stop) })
	e.done.Wait()
}

// loop drives the automatic refresh policy. Due-ness is measured from
// the published view's build time, so a manual Refresh resets the
// interval cadence instead of racing it into a redundant back-to-back
// rebuild. Build errors are swallowed (the previous epoch keeps serving
// and the next tick retries); deployments that need visibility poll
// /view/status staleness instead.
func (e *Engine) loop() {
	defer e.done.Done()
	pol := e.opts.Refresh
	ticker := time.NewTicker(pol.tick())
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
		}
		cur := e.Current()
		due := pol.Interval > 0 && cur.Age() >= pol.Interval
		if !due && pol.EveryN > 0 {
			due = cur.Staleness(e.src.N()) >= pol.EveryN
		}
		if due {
			// Policy-driven refreshes have no request to join, so root
			// their own trace; a refresh that didn't advance the epoch
			// (zero-delta) is discarded rather than flooding the ring
			// on every interval tick of an idle deployment.
			ctx, root := e.opts.Tracer.StartRoot(context.Background(), "view.refresh")
			before := e.Epoch()
			v, err := e.RefreshContext(ctx)
			if err == nil && v != nil && v.Epoch == before {
				root.Discard()
			} else {
				root.End()
			}
		}
	}
}
