package view

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ldpmarginals/internal/core"
)

// Source is what the engine refreshes from: a live aggregation pipeline
// that can cut a private snapshot and report its current count without
// blocking. core.ShardedAggregator satisfies it.
type Source interface {
	// Snapshot returns a private, queryable copy of the current state.
	Snapshot() (core.Aggregator, error)
	// N returns the current report count; must be cheap (lock-free).
	N() int
}

// Component describes one constituent of a composed source's snapshot:
// a cluster peer (or the local pipeline) whose state was folded into the
// epoch. The engine records the composition on every refresh, so a
// /view/status endpoint can report per-peer staleness — which peer's
// reports the serving epoch actually contains — rather than only the
// fleet total.
type Component struct {
	// ID names the component: a peer's node id, or "local".
	ID string
	// URL is the peer's configured base URL (empty for the local
	// pipeline).
	URL string
	// N is the component's report count inside the snapshot.
	N int
	// Version is the component's state version inside the snapshot.
	Version uint64
	// PulledAt is when the component's state was last fetched (zero for
	// the local pipeline).
	PulledAt time.Time
}

// Composed is optionally implemented by a Source assembled from multiple
// constituents (e.g. a coordinator's fleet of edge states). Composition
// must describe exactly the constituents of the most recent Snapshot
// call; the engine copies it into the published View right after
// snapshotting, under the same build lock.
type Composed interface {
	Composition() []Component
}

// Policy selects when the engine rebuilds the view on its own. The zero
// value disables automatic refresh: the view only advances on explicit
// Refresh calls (e.g. a POST /refresh endpoint).
type Policy struct {
	// Interval rebuilds the view every Interval of wall time; <= 0
	// disables time-based refresh.
	Interval time.Duration
	// EveryN rebuilds the view once at least EveryN new reports have
	// arrived since the last build; <= 0 disables count-based refresh.
	EveryN int
	// Poll is how often the count-based trigger samples Source.N
	// (default 100ms; only used when EveryN > 0 and Interval is not a
	// tighter bound already).
	Poll time.Duration
}

func (p Policy) automatic() bool { return p.Interval > 0 || p.EveryN > 0 }

// tick returns the background loop's wake-up period: a fraction of
// Interval (so a refresh lands within ~Interval/8 of its due time,
// rather than slipping a whole period when a tick narrowly precedes the
// deadline), bounded by Poll when the count-based trigger is on.
func (p Policy) tick() time.Duration {
	var t time.Duration
	if p.Interval > 0 {
		t = p.Interval / 8
		if t < time.Millisecond {
			t = time.Millisecond
		}
	}
	if p.EveryN > 0 {
		poll := p.Poll
		if poll <= 0 {
			poll = 100 * time.Millisecond
		}
		if t <= 0 || poll < t {
			t = poll
		}
	}
	return t
}

// EngineOptions configures NewEngine.
type EngineOptions struct {
	// Refresh is the automatic refresh policy (zero = manual only).
	Refresh Policy
	// Build tunes the per-epoch post-processing.
	Build Options
}

// Engine owns the materialized view of one deployment: it snapshots the
// source, builds a View, and publishes it through an atomic pointer.
// Readers call Current and work with an immutable epoch; they never take
// a lock and never observe a partially built view. Builds (manual or
// policy-driven) are serialized, so at most one reconstruction runs at a
// time and ingestion is never stalled by more than the snapshot's
// one-shard-at-a-time merge.
type Engine struct {
	src  Source
	p    core.Protocol
	opts EngineOptions

	cur atomic.Pointer[View]

	mu    sync.Mutex // serializes builds and guards epoch
	epoch int64      // last assigned build number; read the published View's Epoch instead

	stop  chan struct{}
	close sync.Once
	done  sync.WaitGroup
}

// NewEngine builds epoch 1 synchronously (so Current never returns nil)
// and, if the policy asks for automatic refresh, starts the background
// refresh loop. Close the engine to stop that loop.
func NewEngine(src Source, p core.Protocol, opts EngineOptions) (*Engine, error) {
	e := &Engine{src: src, p: p, opts: opts, stop: make(chan struct{})}
	if _, err := e.Refresh(); err != nil {
		return nil, fmt.Errorf("view: building initial epoch: %w", err)
	}
	if opts.Refresh.automatic() {
		e.done.Add(1)
		go e.loop()
	}
	return e, nil
}

// Current returns the latest published view. Lock-free; never nil.
func (e *Engine) Current() *View { return e.cur.Load() }

// Epoch returns the latest published epoch number. Lock-free. It is
// read from the published view itself — never from the internal build
// counter, which runs ahead of publication for the instant between
// assigning a new view's number and storing it — so Epoch never reports
// an epoch a concurrent Current call could not obtain.
func (e *Engine) Epoch() int64 {
	if v := e.Current(); v != nil {
		return v.Epoch
	}
	return 0
}

// Refresh snapshots the source, builds the next epoch, and publishes it,
// returning the new view. Concurrent calls are serialized and coalesced
// single-flight style: a caller that waited out another build returns
// the epoch published during its wait when that epoch's snapshot was
// taken after the caller asked — it already reflects everything the
// caller could have ingested beforehand, so rebuilding would burn a full
// reconstruction on an indistinguishable answer. On error the previous
// view stays published and keeps serving.
func (e *Engine) Refresh() (*View, error) {
	entry := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.cur.Load(); cur != nil && cur.snapshotAt.After(entry) {
		return cur, nil
	}
	snapshotAt := time.Now()
	snap, err := e.src.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("view: snapshotting source: %w", err)
	}
	// Capture the snapshot's composition before the (long) build: the
	// source pins it to its last Snapshot call, and builds are serialized
	// under e.mu, so this is exactly the epoch's makeup.
	var comp []Component
	if c, ok := e.src.(Composed); ok {
		comp = c.Composition()
	}
	v, err := Build(snap, e.p, e.opts.Build)
	if err != nil {
		return nil, err
	}
	v.snapshotAt = snapshotAt
	v.Components = comp
	e.epoch++
	v.Epoch = e.epoch
	e.cur.Store(v)
	return v, nil
}

// Close stops the automatic refresh loop (if any) and waits for it to
// exit. The last published view keeps serving; Close is idempotent.
func (e *Engine) Close() {
	e.close.Do(func() { close(e.stop) })
	e.done.Wait()
}

// loop drives the automatic refresh policy. Due-ness is measured from
// the published view's build time, so a manual Refresh resets the
// interval cadence instead of racing it into a redundant back-to-back
// rebuild. Build errors are swallowed (the previous epoch keeps serving
// and the next tick retries); deployments that need visibility poll
// /view/status staleness instead.
func (e *Engine) loop() {
	defer e.done.Done()
	pol := e.opts.Refresh
	ticker := time.NewTicker(pol.tick())
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
		}
		cur := e.Current()
		due := pol.Interval > 0 && cur.Age() >= pol.Interval
		if !due && pol.EveryN > 0 {
			due = cur.Staleness(e.src.N()) >= pol.EveryN
		}
		if due {
			_, _ = e.Refresh()
		}
	}
}
