package view

import (
	"ldpmarginals/internal/bounds"
	"ldpmarginals/internal/marginal"
)

// Diagnostics is the per-epoch accuracy telemetry: the paper's
// theoretical error bound at the deployment's parameters next to what
// the build actually observed, so a dashboard can alert when realized
// movement exceeds the noise the theory predicts.
type Diagnostics struct {
	// TheoreticalTV is the paper's per-marginal total-variation error
	// bound (Theorems 4.3–4.5 / Lemma 4.6) at the epoch's
	// (protocol, n, d, k, eps) — the noise floor an alert should
	// compare drift against. Zero when TVBoundErr is set.
	TheoreticalTV float64 `json:"theoretical_tv,omitempty"`
	// TVBoundErr explains a missing bound: an empty epoch (the bounds
	// need n > 0) or a baseline protocol outside the paper's Table 2.
	TVBoundErr string `json:"tv_bound_error,omitempty"`
	// ConsistencyL1 is the total L1 cell mass the post-processing
	// moved across the k-way collection tables — consistency
	// enforcement plus simplex projection, measured against the raw
	// reconstruction. Large persistent values mean the unbiased
	// estimates land far from any consistent distribution, i.e. the
	// deployment is operating deep in its noise.
	ConsistencyL1 float64 `json:"consistency_l1"`
	// DriftMaxTV and DriftMeanTV are the maximum and mean
	// total-variation distance per k-way marginal between this epoch
	// and the previous published epoch. Drift above TheoreticalTV is
	// the anomaly signal: the underlying distribution moved more than
	// sampling noise explains. Zero for the first epoch (and for
	// standalone Build calls), with DriftBaseEpoch 0.
	DriftMaxTV  float64 `json:"drift_max_tv"`
	DriftMeanTV float64 `json:"drift_mean_tv"`
	// DriftBaseEpoch is the epoch the drift was measured against.
	DriftBaseEpoch int64 `json:"drift_base_epoch"`
}

// fillTVBound computes the theoretical bound for the view's published
// parameters. Protocols outside the paper's Table 2 (the evaluation
// baselines) and empty epochs record the reason instead.
func (v *View) fillTVBound() {
	b, err := bounds.ForProtocol(v.Protocol, bounds.Params{
		N: v.N, D: v.cfg.D, K: v.cfg.K, Epsilon: v.cfg.Epsilon,
	})
	if err != nil {
		v.Diag.TVBoundErr = err.Error()
		return
	}
	v.Diag.TheoreticalTV = b
}

// consistencyCheckpoint copies the k-way tables' raw cells into dst
// (grown as needed) before post-processing; consistencyL1 then sums
// the absolute movement. Split so the incremental builder can reuse
// one scratch slab across epochs.
func consistencyCheckpoint(dst []float64, tables []*marginal.Table, kway int) []float64 {
	n := 0
	for _, t := range tables[:kway] {
		n += len(t.Cells)
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	off := 0
	for _, t := range tables[:kway] {
		copy(dst[off:], t.Cells)
		off += len(t.Cells)
	}
	return dst
}

// consistencyL1 returns the summed |after-before| across the k-way
// tables, given the checkpoint taken before post-processing.
func consistencyL1(before []float64, tables []*marginal.Table, kway int) float64 {
	var sum float64
	off := 0
	for _, t := range tables[:kway] {
		for c, v := range t.Cells {
			d := v - before[off+c]
			if d < 0 {
				d = -d
			}
			sum += d
		}
		off += len(t.Cells)
	}
	return sum
}

// marginalDrift measures how far cur's k-way marginals moved from
// prev's: per-table total-variation distance (half the L1 difference
// of the cell vectors), reduced to the max and mean over the C(d,k)
// collection tables. Both views must share a deployment shape; tables
// are matched by attribute mask. A table missing from prev (never the
// case between two epochs of one engine) contributes zero.
func marginalDrift(prev, cur *View) (maxTV, meanTV float64) {
	if prev == nil || cur == nil || cur.kWay == 0 {
		return 0, 0
	}
	var sum float64
	n := 0
	for i := 0; i < cur.kWay; i++ {
		t := cur.tables[i]
		j, ok := prev.pos[t.Beta]
		if !ok || j >= len(prev.tables) {
			continue
		}
		pt := prev.tables[j]
		if len(pt.Cells) != len(t.Cells) {
			continue
		}
		var l1 float64
		for c, v := range t.Cells {
			d := v - pt.Cells[c]
			if d < 0 {
				d = -d
			}
			l1 += d
		}
		tv := l1 / 2
		if tv > maxTV {
			maxTV = tv
		}
		sum += tv
		n++
	}
	if n > 0 {
		meanTV = sum / float64(n)
	}
	return maxTV, meanTV
}
