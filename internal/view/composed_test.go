package view

import (
	"testing"
	"time"

	"ldpmarginals/internal/core"
)

// composedSource wraps a plain source with a fixed composition, the
// shape a coordinator's fleet presents.
type composedSource struct {
	src  Source
	comp []Component
}

func (c *composedSource) Snapshot() (core.Aggregator, error) { return c.src.Snapshot() }
func (c *composedSource) N() int                             { return c.src.N() }
func (c *composedSource) Composition() []Component           { return c.comp }

// TestEngineRecordsComposition pins the per-peer staleness plumbing:
// every epoch built from a Composed source carries that source's
// composition, and epochs from plain sources carry none.
func TestEngineRecordsComposition(t *testing.T) {
	p := testProtocol(t)
	agg := core.NewSharded(p, 2)
	feed(t, p, agg, 50, 4)

	comp := []Component{
		{ID: "edge-1", URL: "http://e1", N: 30, Version: 7, PulledAt: time.Now()},
		{ID: "edge-2", URL: "http://e2", N: 20, Version: 3, PulledAt: time.Now()},
	}
	src := &composedSource{src: agg, comp: comp}
	eng, err := NewEngine(src, p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	v := eng.Current()
	if len(v.Components) != 2 || v.Components[0].ID != "edge-1" || v.Components[1].N != 20 {
		t.Fatalf("epoch components = %+v, want the source's composition", v.Components)
	}

	// The composition updates with the source on the next refresh.
	src.comp = comp[:1]
	v2, err := eng.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Components) != 1 {
		t.Fatalf("refreshed components = %+v, want 1 entry", v2.Components)
	}

	// A plain source yields no components.
	plain, err := NewEngine(agg, p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if got := plain.Current().Components; got != nil {
		t.Fatalf("plain source carries components %+v", got)
	}
}
