package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/fault"
	"ldpmarginals/internal/wire"
)

// Fault-injection sites threaded through the durability layer. Armed
// rules at these names (internal/fault) make the corresponding syscall
// path fail, for chaos tests and the -fault-spec dev flag; disarmed,
// each costs one atomic load.
const (
	// FaultWALAppend fails the committer's coalesced segment write.
	FaultWALAppend = "store.wal.append"
	// FaultWALFsync fails the committer's fsync (group commit, interval
	// tick, and pre-rotation syncs).
	FaultWALFsync = "store.wal.fsync"
	// FaultWALRotate fails opening a fresh segment file.
	FaultWALRotate = "store.wal.rotate"
	// FaultSnapshotWrite fails the atomic snapshot file write.
	FaultSnapshotWrite = "store.snapshot.write"
	// FaultDiskProbe fails ProbeDisk, holding a degraded server down
	// even though the real filesystem is fine.
	FaultDiskProbe = "store.probe.disk"
)

// WAL segment format. A segment is a header followed by length-prefixed
// records, each carrying one ingested group of reports:
//
//	"LDPW", version byte, config block
//	repeat: uvarint record length, then that many bytes of
//	        (batch || crc32c(batch), 4 bytes LE)
//
// where batch is the group's report frames in exactly the
// /report/batch wire layout (length-prefixed frames) — the framing
// logic exists once, in internal/wire, at both nesting levels. One
// record per ingested group keeps the durable path cheap (one CRC and
// one length prefix amortized over the whole group) and groups are
// acked atomically, so a torn tail loses only never-acked reports
// (FsyncAlways) or reports inside the configured durability window.
// The CRC detects torn and bit-flipped records without trusting
// anything beyond the framing. The config block pins the deployment
// (protocol tag, d, k, epsilon, PRR variant): a segment written by a
// different deployment is rejected at recovery instead of silently
// corrupting counters.

const (
	segMagic   = "LDPW"
	snapMagic  = "LDPS"
	formatV1   = 1
	crcBytes   = 4
	segSuffix  = ".seg"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
	// recordLimit bounds one record: an ingested group up to
	// maxGroupBytes of frames, each frame itself bounded by the wire
	// format, plus framing and checksum slack.
	recordLimit = maxGroupBytes + encoding.MaxFrameBytes + 64

	// maxGroupBytes is the target size at which Ingest splits a large
	// group across records.
	maxGroupBytes = 4 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segName(idx uint64) string  { return fmt.Sprintf("wal-%016x%s", idx, segSuffix) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x%s", seq, snapSuffix) }

// parseSeqName extracts the hex sequence number from a wal-/snap- file
// name with the given prefix and suffix; ok is false for foreign files.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	for _, c := range name[len(prefix) : len(prefix)+16] {
		var v uint64
		switch {
		case c >= '0' && c <= '9':
			v = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint64(c-'a') + 10
		default:
			return 0, false
		}
		seq = seq<<4 | v
	}
	return seq, true
}

// appendConfig serializes the deployment identity shared by segment and
// snapshot headers.
func appendConfig(dst []byte, tag encoding.Tag, cfg core.Config) []byte {
	dst = append(dst, byte(tag))
	dst = binary.AppendUvarint(dst, uint64(cfg.D))
	dst = binary.AppendUvarint(dst, uint64(cfg.K))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.Epsilon))
	opt := byte(0)
	if cfg.OptimizedPRR {
		opt = 1
	}
	return append(dst, opt)
}

// checkConfig parses a config block and verifies it names this
// deployment, returning the remaining bytes. Truncated input wraps
// wire.ErrTruncated so the recovery path can classify it as a torn
// write rather than a foreign file.
func checkConfig(buf []byte, tag encoding.Tag, cfg core.Config) ([]byte, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("%w: header config", wire.ErrTruncated)
	}
	if got := encoding.Tag(buf[0]); got != tag {
		return nil, fmt.Errorf("store: written by protocol tag %d, deployment runs %d", got, tag)
	}
	buf = buf[1:]
	d, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, fmt.Errorf("%w: header config", wire.ErrTruncated)
	}
	buf = buf[w:]
	k, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, fmt.Errorf("%w: header config", wire.ErrTruncated)
	}
	buf = buf[w:]
	if len(buf) < 9 {
		return nil, fmt.Errorf("%w: header config", wire.ErrTruncated)
	}
	eps := math.Float64frombits(binary.LittleEndian.Uint64(buf))
	opt := buf[8] != 0
	buf = buf[9:]
	if int(d) != cfg.D || int(k) != cfg.K || eps != cfg.Epsilon || opt != cfg.OptimizedPRR {
		return nil, fmt.Errorf("store: written for d=%d k=%d eps=%v optimized=%v, deployment runs d=%d k=%d eps=%v optimized=%v",
			d, k, eps, opt, cfg.D, cfg.K, cfg.Epsilon, cfg.OptimizedPRR)
	}
	return buf, nil
}

// segHeader builds a fresh segment's header bytes.
func segHeader(tag encoding.Tag, cfg core.Config) []byte {
	return appendConfig(append([]byte(segMagic), formatV1), tag, cfg)
}

// checkSegHeader validates a segment header and returns the records
// that follow it.
func checkSegHeader(buf []byte, tag encoding.Tag, cfg core.Config) ([]byte, error) {
	if len(buf) < len(segMagic)+1 {
		return nil, fmt.Errorf("%w: segment header", wire.ErrTruncated)
	}
	if string(buf[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("store: bad segment magic %q", buf[:len(segMagic)])
	}
	if buf[len(segMagic)] != formatV1 {
		return nil, fmt.Errorf("store: segment format version %d, want %d", buf[len(segMagic)], formatV1)
	}
	return checkConfig(buf[len(segMagic)+1:], tag, cfg)
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendRecord frames one group of report frames as a WAL record: the
// shared length-prefixed framing around batch || crc32c(batch), where
// batch is the group's wire bytes in exactly the /report/batch layout.
// Because the payload is the request body verbatim, the hot path is a
// length prefix, one copy, and one CRC over the group — no per-frame
// work. The record's exact size is computed up front so the
// destination grows at most once.
func appendRecord(dst, batch []byte) []byte {
	payload := len(batch) + crcBytes
	if need := uvarintLen(uint64(payload)) + payload; cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = binary.AppendUvarint(dst, uint64(payload))
	dst = append(dst, batch...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(batch, castagnoli))
}

// appendRecords encodes a batch into records, splitting at frame
// boundaries when a group exceeds maxGroupBytes (the boundary scan only
// runs in that rare case).
func appendRecords(dst, batch []byte) []byte {
	for len(batch) > maxGroupBytes {
		cut := 0
		for {
			_, rest, err := wire.NextFrame(batch[cut:], 0)
			if err != nil {
				// Callers hand over validated bytes; keep any remainder
				// whole rather than splitting mid-frame.
				cut = len(batch)
				break
			}
			next := len(batch) - len(rest)
			if cut > 0 && next > maxGroupBytes {
				break
			}
			cut = next
			if cut >= maxGroupBytes {
				break
			}
		}
		dst = appendRecord(dst, batch[:cut])
		batch = batch[cut:]
	}
	return appendRecord(dst, batch)
}

// errRecordDamaged classifies a record that a torn tail write could have
// produced: a CRC mismatch or a payload too short to carry its CRC.
// Recovery truncates these at the end of the final segment and treats
// them as corruption anywhere else.
var errRecordDamaged = errors.New("store: damaged record")

// nextRecord splits one record off buf and returns its verified batch
// of report frames. Truncation errors wrap wire.ErrTruncated and CRC
// failures wrap errRecordDamaged; anything else is structural
// corruption.
func nextRecord(buf []byte) (batch, rest []byte, err error) {
	payload, rest, err := wire.NextFrame(buf, recordLimit)
	if err != nil {
		return nil, nil, err
	}
	if len(payload) < crcBytes {
		return nil, nil, fmt.Errorf("%w: %d-byte record cannot carry a checksum", errRecordDamaged, len(payload))
	}
	batch = payload[:len(payload)-crcBytes]
	want := binary.LittleEndian.Uint32(payload[len(payload)-crcBytes:])
	if got := crc32.Checksum(batch, castagnoli); got != want {
		return nil, nil, fmt.Errorf("%w: checksum %08x, want %08x", errRecordDamaged, got, want)
	}
	return batch, rest, nil
}

// walReq is one unit of work for the committer goroutine, which owns
// the active segment file exclusively.
type walReq struct {
	// buf holds one group's raw batch payload (length-prefixed report
	// frames); the committer frames it into WAL records as it coalesces
	// writes, so producers never copy or re-encode. nil for a pure
	// flush/rotate.
	buf []byte
	// sync asks for an fsync covering the appended records before done.
	sync bool
	// rotate closes the active segment (synced) and opens the next one.
	rotate bool
	// revive asks a dead committer to abandon its failed segment
	// (repairing any torn tail it left) and resume on a fresh one; see
	// Store.Recover.
	revive bool
	// done, when non-nil, receives the request's outcome. FsyncAlways
	// appends and rotations wait on it; FsyncInterval/FsyncOff appends
	// leave it nil (fire-and-forget — the channel's FIFO order still
	// lands them in the segment a later rotation covers, and write
	// failures surface through Store.walFailure).
	done chan walRes
}

type walRes struct {
	// seg is the index of the segment the request landed in (for rotate
	// requests: the segment that was closed).
	seg uint64
	err error
}

// committer is the single goroutine owning the active WAL segment. All
// appends, fsyncs, and rotations flow through s.reqs, so file state
// needs no locking; consecutive appends coalesce into one write
// syscall, and requests queued behind one fsync share it — the group
// commit that keeps fsync=always from serializing the sharded ingest
// path request-by-request.
func (s *Store) committer(f *os.File, idx uint64, size int64) {
	defer close(s.commitDone)
	cur, curIdx, curSize := f, idx, size
	headerLen := int64(len(segHeader(s.tag, s.cfg)))
	dirty := false
	// A write, sync, or rotation failure kills the committer's file for
	// good: after a failed fsync the kernel may have dropped the dirty
	// pages, so "retry and report success" would be a durability lie.
	// Every subsequent request fails fast with the original error,
	// which is also published for the fire-and-forget ingest path.
	var dead error
	kill := func(err error) error {
		dead = err
		s.setWALFailure(err)
		if cur != nil {
			_ = cur.Close()
			cur = nil
		}
		return err
	}
	finish := func() {
		if cur == nil {
			return
		}
		// Clean shutdown always syncs: a process exit with fsync=interval
		// or off must still leave the tail durable. A failure here is the
		// last chance to learn the tail never landed, so it is recorded
		// like any other flush failure (Close surfaces it) rather than
		// dropped on the floor.
		if err := cur.Sync(); err != nil {
			_ = kill(err)
			return
		}
		if err := cur.Close(); err != nil {
			s.setWALFailure(err)
		}
		cur = nil
	}
	var (
		pending  = make([]*walReq, 0, 64)
		results  []walRes
		scratch  []byte // coalesced bytes of in-flight append requests
		inFlight []int  // their indices in pending
	)
	// flush writes the coalesced appends in one syscall.
	flush := func() {
		if len(scratch) == 0 {
			return
		}
		t0 := time.Now()
		var n int
		err := fault.Hit(FaultWALAppend)
		if err == nil {
			n, err = cur.Write(scratch)
		}
		s.ins.walWrite.Observe(time.Since(t0).Seconds())
		s.ins.walAppended.Add(uint64(n))
		curSize += int64(n)
		if err != nil {
			_ = kill(err)
			for _, i := range inFlight {
				results[i] = walRes{err: err}
			}
		} else {
			dirty = true
		}
		scratch, inFlight = scratch[:0], inFlight[:0]
	}
	// timedSync is cur.Sync with its latency observed — the figure that
	// explains ingest tail latency under fsync=always.
	timedSync := func() error {
		t0 := time.Now()
		err := fault.Hit(FaultWALFsync)
		if err == nil {
			err = cur.Sync()
		}
		s.ins.walFsync.Observe(time.Since(t0).Seconds())
		return err
	}
	stopping := false
	for {
		var first *walReq
		if stopping {
			// Drain what is already queued (barrier ordering guarantees no
			// new senders), then exit.
			select {
			case first = <-s.reqs:
			default:
				finish()
				return
			}
		} else {
			select {
			case first = <-s.reqs:
			case <-s.commitStop:
				stopping = true
				continue
			}
		}
		pending = pending[:0]
		pending = append(pending, first)
		// Yield once before draining: under load this lets producers
		// enqueue their requests, so one batch coalesces many appends
		// into one write (and one fsync for the always policy) instead
		// of issuing a syscall per request.
		runtime.Gosched()
	drainLoop:
		for len(pending) < cap(pending) {
			select {
			case r := <-s.reqs:
				pending = append(pending, r)
			default:
				break drainLoop
			}
		}
		needSync := false
		results = results[:0]
		results = append(results, make([]walRes, len(pending))...)
		for i, r := range pending {
			if r.revive {
				// Bring a dead committer back: the failed segment may hold
				// a torn record from the partial write that killed it, so
				// repair its tail first, then resume on a fresh segment.
				// Ordering is safe because Recover holds the snapshot
				// barrier exclusively — no ingest is in flight.
				if dead == nil {
					results[i] = walRes{seg: curIdx}
					continue
				}
				if cur != nil {
					_ = cur.Close()
					cur = nil
				}
				if err := s.repairSegmentTail(curIdx); err != nil {
					results[i] = walRes{err: err}
					continue
				}
				next, nsize, err := s.createSegment(curIdx + 1)
				if err != nil {
					results[i] = walRes{err: err}
					continue
				}
				cur, curIdx, curSize, dirty = next, curIdx+1, nsize, false
				dead = nil
				s.ins.walRevives.Inc()
				results[i] = walRes{seg: curIdx}
				continue
			}
			if dead != nil {
				results[i] = walRes{err: dead}
				continue
			}
			if r.rotate || (r.buf != nil && curSize+int64(len(scratch)) >= s.opts.SegmentBytes) {
				flush()
				if dead != nil {
					results[i] = walRes{err: dead}
					continue
				}
				if r.rotate && curSize == headerLen {
					// The active segment holds nothing but its header: rotating
					// would just litter the directory with empty files (a
					// windowed deployment rotates on every bucket seal, ingest
					// or not). Report the active segment as already current.
					results[i] = walRes{seg: curIdx}
					continue
				}
				old := curIdx
				if err := timedSync(); err != nil {
					results[i] = walRes{err: kill(err)}
					continue
				}
				if err := cur.Close(); err != nil {
					cur = nil
					results[i] = walRes{err: kill(err)}
					continue
				}
				cur = nil
				next, nsize, err := s.createSegment(curIdx + 1)
				if err != nil {
					results[i] = walRes{err: kill(err)}
					continue
				}
				cur, curIdx, curSize, dirty = next, curIdx+1, nsize, false
				s.ins.walRotations.Inc()
				if r.rotate {
					results[i] = walRes{seg: old}
					continue
				}
			}
			if r.buf != nil {
				scratch = appendRecords(scratch, r.buf)
				inFlight = append(inFlight, i)
			}
			if r.sync {
				needSync = true
			}
			results[i] = walRes{seg: curIdx}
		}
		flush()
		if needSync && dirty && dead == nil {
			if err := timedSync(); err != nil {
				// An fsync failure poisons every durability claim in the
				// batch: report it to all callers still awaiting success.
				_ = kill(err)
				for i := range results {
					if results[i].err == nil {
						results[i].err = err
					}
				}
			} else {
				dirty = false
			}
		}
		for i, r := range pending {
			if r.done != nil {
				r.done <- results[i]
			}
		}
	}
}

// createSegment opens a fresh segment file with its header written.
func (s *Store) createSegment(idx uint64) (*os.File, int64, error) {
	if err := fault.Hit(FaultWALRotate); err != nil {
		return nil, 0, err
	}
	path := filepath.Join(s.dir, segName(idx))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, 0, err
	}
	header := segHeader(s.tag, s.cfg)
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, 0, err
	}
	if s.opts.Fsync != FsyncOff {
		if err := syncDir(s.dir); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	return f, int64(len(header)), nil
}

// syncDir makes a directory entry change (create, rename, remove)
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
