package store

import (
	"os"
	"path/filepath"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
)

// fuzzSeedSegment builds one fully valid segment's bytes for the seed
// corpus.
func fuzzSeedSegment(f *testing.F, p core.Protocol, tag encoding.Tag, n int) []byte {
	f.Helper()
	buf := segHeader(tag, p.Config())
	client := p.NewClient()
	r := rng.New(42)
	var batch []byte
	for i := 0; i < n; i++ {
		rep, err := client.Perturb(uint64(i%64), r)
		if err != nil {
			f.Fatal(err)
		}
		frame, err := encoding.Marshal(p.Name(), rep)
		if err != nil {
			f.Fatal(err)
		}
		batch = encoding.AppendFrame(batch, frame)
		// Half the reports as single-frame records, half grouped, so the
		// corpus seeds both record shapes.
		if i%2 == 1 {
			buf = appendRecords(buf, batch)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		buf = appendRecords(buf, batch)
	}
	return buf
}

// FuzzRecoverSegment writes arbitrary bytes as the sole WAL segment and
// runs a full Open: recovery must never panic — it either reconstructs
// a state (possibly after truncating a torn tail) or reports a clean
// error.
func FuzzRecoverSegment(f *testing.F) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true}
	p, err := core.New(core.InpHT, cfg)
	if err != nil {
		f.Fatal(err)
	}
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		f.Fatal(err)
	}
	valid := fuzzSeedSegment(f, p, tag, 32)
	f.Add(valid)
	// Truncated at various depths: inside the header, inside a record.
	f.Add(valid[:3])
	f.Add(valid[:len(segHeader(tag, cfg))+1])
	f.Add(valid[:len(valid)-3])
	// Bit-flipped in the middle and oversized length prefix.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Add(append(append([]byte(nil), segHeader(tag, cfg)...), 0xFF, 0xFF, 0xFF, 0x7F))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, p, Options{Fsync: FsyncOff})
		if err != nil {
			return // clean rejection
		}
		rec, stats := st.Recovered()
		if rec.N() != stats.Reports || stats.ReportsReplayed != stats.Reports {
			t.Fatalf("inconsistent recovery: n=%d stats=%+v", rec.N(), stats)
		}
		// Whatever was recovered must itself round-trip.
		if _, err := rec.MarshalState(); err != nil {
			t.Fatalf("recovered state does not marshal: %v", err)
		}
		st.Close()
	})
}

// FuzzRecoverSnapshot writes arbitrary bytes as the sole snapshot file
// and runs a full Open: a damaged snapshot must be skipped (recovering
// empty) or rejected cleanly — never panic, never restore a state that
// violates the aggregator's invariants.
func FuzzRecoverSnapshot(f *testing.F) {
	cfg := core.Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true}
	p, err := core.New(core.InpHT, cfg)
	if err != nil {
		f.Fatal(err)
	}
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		f.Fatal(err)
	}
	agg := p.NewAggregator()
	client := p.NewClient()
	r := rng.New(43)
	for i := 0; i < 64; i++ {
		rep, err := client.Perturb(uint64(i%64), r)
		if err != nil {
			f.Fatal(err)
		}
		if err := agg.Consume(rep); err != nil {
			f.Fatal(err)
		}
	}
	state, err := agg.MarshalState()
	if err != nil {
		f.Fatal(err)
	}
	valid := encodeSnapshot(tag, cfg, 0, agg.N(), state)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x04
	f.Add(flipped)
	f.Add(append([]byte(nil), snapMagic...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, p, Options{Fsync: FsyncOff})
		if err != nil {
			return // clean rejection
		}
		rec, stats := st.Recovered()
		if stats.SnapshotReports != 0 && stats.SnapshotReports != rec.N() {
			t.Fatalf("inconsistent recovery: n=%d stats=%+v", rec.N(), stats)
		}
		if _, err := rec.MarshalState(); err != nil {
			t.Fatalf("recovered state does not marshal: %v", err)
		}
		st.Close()
	})
}
