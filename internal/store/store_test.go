package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
)

func testProtocol(t testing.TB) core.Protocol {
	t.Helper()
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// makeFrames generates n deterministic reports and their wire frames.
func makeFrames(t testing.TB, p core.Protocol, n int, seed uint64) ([]core.Report, [][]byte) {
	t.Helper()
	client := p.NewClient()
	r := rng.New(seed)
	reps := make([]core.Report, n)
	frames := make([][]byte, n)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%256), r)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := encoding.Marshal(p.Name(), rep)
		if err != nil {
			t.Fatal(err)
		}
		reps[i], frames[i] = rep, frame
	}
	return reps, frames
}

// batchOf concatenates frames into the /report/batch wire layout — the
// shape Ingest takes.
func batchOf(frames [][]byte) []byte {
	var b []byte
	for _, f := range frames {
		b = encoding.AppendFrame(b, f)
	}
	return b
}

// ingestAll drives reports through st.Ingest into agg in chunks,
// mirroring the server's batch path.
func ingestAll(t testing.TB, st *Store, agg core.Aggregator, reps []core.Report, frames [][]byte) {
	t.Helper()
	const chunk = 64
	for lo := 0; lo < len(reps); lo += chunk {
		hi := min(lo+chunk, len(reps))
		batch := batchOf(frames[lo:hi])
		err := st.Ingest(batch, func() (int, int, error) {
			if err := agg.ConsumeBatch(reps[lo:hi]); err != nil {
				return 0, 0, err
			}
			return hi - lo, len(batch), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// flushWAL waits until the committer has processed everything queued
// ahead of it — Status reads files, and fire-and-forget appends may
// still be in the queue.
func (s *Store) flushWAL() {
	req := &walReq{done: make(chan walRes, 1)}
	s.reqs <- req
	<-req.done
}

// crash stops the store's goroutines without the final snapshot or any
// shutdown bookkeeping — the in-process stand-in for SIGKILL. The WAL
// files are left exactly as the committer last wrote them.
func (s *Store) crash() {
	s.barrier.Lock()
	if s.closed {
		s.barrier.Unlock()
		return
	}
	s.closed = true
	s.barrier.Unlock()
	s.snapWG.Wait()
	close(s.tickStop)
	<-s.tickDone
	close(s.commitStop)
	<-s.commitDone
}

// referenceState is the state of a sequential aggregator fed the
// reports in order — what any recovery must reproduce byte-for-byte.
func referenceState(t testing.TB, p core.Protocol, reps []core.Report) []byte {
	t.Helper()
	agg := p.NewAggregator()
	if err := agg.ConsumeBatch(reps); err != nil {
		t.Fatal(err)
	}
	blob, err := agg.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func recoveredState(t testing.TB, st *Store) []byte {
	t.Helper()
	agg, _ := st.Recovered()
	blob, err := agg.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestCrashRecoveryReplaysWAL(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	reps, frames := makeFrames(t, p, 1000, 1)
	agg := core.NewSharded(p, 4)
	ingestAll(t, st, agg, reps, frames)
	st.crash()

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec, stats := re.Recovered()
	if rec.N() != len(reps) {
		t.Fatalf("recovered %d reports, want %d", rec.N(), len(reps))
	}
	if stats.ReportsReplayed != len(reps) || stats.SegmentsReplayed == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if !bytes.Equal(recoveredState(t, re), referenceState(t, p, reps)) {
		t.Fatal("recovered state differs from sequential reference")
	}
}

func TestCrashRecoveryByteIdenticalToCleanShutdown(t *testing.T) {
	p := testProtocol(t)
	reps, frames := makeFrames(t, p, 1200, 2)
	ref := referenceState(t, p, reps)

	run := func(dir string, clean bool) []byte {
		st, err := Open(dir, p, Options{Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		agg := core.NewSharded(p, 3)
		st.SetSource(agg.Snapshot)
		ingestAll(t, st, agg, reps, frames)
		if clean {
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		} else {
			st.crash()
		}
		re, err := Open(dir, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		return recoveredState(t, re)
	}

	crashed := run(t.TempDir(), false)
	cleaned := run(t.TempDir(), true)
	if !bytes.Equal(crashed, ref) {
		t.Fatal("crash recovery differs from sequential reference")
	}
	if !bytes.Equal(cleaned, ref) {
		t.Fatal("clean-shutdown recovery differs from sequential reference")
	}
	if !bytes.Equal(crashed, cleaned) {
		t.Fatal("crash recovery differs from clean shutdown")
	}
}

func TestCloseSnapshotsAndRecoveryLoadsIt(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, frames := makeFrames(t, p, 700, 3)
	agg := core.NewSharded(p, 2)
	st.SetSource(agg.Snapshot)
	ingestAll(t, st, agg, reps, frames)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	_, stats := re.Recovered()
	if stats.SnapshotReports != len(reps) || stats.ReportsReplayed != 0 {
		t.Fatalf("recovery after clean close replayed WAL: %+v", stats)
	}
	if !bytes.Equal(recoveredState(t, re), referenceState(t, p, reps)) {
		t.Fatal("snapshot recovery differs from sequential reference")
	}
}

func TestRecoverSnapshotPlusTail(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, frames := makeFrames(t, p, 900, 4)
	agg := core.NewSharded(p, 2)
	st.SetSource(agg.Snapshot)
	ingestAll(t, st, agg, reps[:600], frames[:600])
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, st, agg, reps[600:], frames[600:])
	st.crash()

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	_, stats := re.Recovered()
	if stats.SnapshotReports != 600 || stats.ReportsReplayed != 300 || stats.Reports != 900 {
		t.Fatalf("stats = %+v", stats)
	}
	if !bytes.Equal(recoveredState(t, re), referenceState(t, p, reps)) {
		t.Fatal("snapshot+tail recovery differs from sequential reference")
	}
}

// lastSegment returns the path of the highest-index WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	var bestIdx uint64
	for _, e := range entries {
		if idx, ok := parseSeqName(e.Name(), "wal-", segSuffix); ok && idx >= bestIdx {
			best, bestIdx = filepath.Join(dir, e.Name()), idx
		}
	}
	if best == "" {
		t.Fatal("no WAL segments")
	}
	return best
}

func TestTornTailTruncated(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, frames := makeFrames(t, p, 50, 5)
	agg := p.NewAggregator()
	// Two Ingest calls, so the log holds two group records: tearing the
	// second must recover exactly the first.
	ingestAll(t, st, agg, reps[:40], frames[:40])
	ingestAll(t, st, agg, reps[40:], frames[40:])
	st.crash()

	// Tear the final record: chop off its last 2 bytes.
	path := lastSegment(t, dir)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf[:len(buf)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, stats := re.Recovered()
	if stats.TornTailTruncations != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if rec.N() != 40 {
		t.Fatalf("recovered %d reports, want the 40 in the intact record", rec.N())
	}
	if !bytes.Equal(recoveredState(t, re), referenceState(t, p, reps[:40])) {
		t.Fatal("truncated recovery differs from reference over the intact prefix")
	}
	re.crash()

	// A second recovery sees the already-truncated (clean) log.
	re2, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	rec2, stats2 := re2.Recovered()
	if stats2.TornTailTruncations != 0 || rec2.N() != 40 {
		t.Fatalf("second recovery: n=%d stats=%+v", rec2.N(), stats2)
	}
}

func TestMidLogCorruptionFailsRecovery(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	// Tiny segments force several rotations.
	st, err := Open(dir, p, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	reps, frames := makeFrames(t, p, 400, 6)
	agg := p.NewAggregator()
	ingestAll(t, st, agg, reps, frames)
	st.crash()

	// Flip a record byte in the FIRST segment: damage before the final
	// segment is corruption, not a torn tail.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var first string
	firstIdx := ^uint64(0)
	segCount := 0
	for _, e := range entries {
		if idx, ok := parseSeqName(e.Name(), "wal-", segSuffix); ok {
			segCount++
			if idx < firstIdx {
				first, firstIdx = filepath.Join(dir, e.Name()), idx
			}
		}
	}
	if segCount < 3 {
		t.Fatalf("want several segments, got %d", segCount)
	}
	buf, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x01
	if err := os.WriteFile(first, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, p, Options{}); err == nil {
		t.Fatal("mid-log corruption recovered silently")
	}
}

func TestSnapshotFallbackAfterCorruptNewest(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, frames := makeFrames(t, p, 900, 7)
	agg := core.NewSharded(p, 2)
	st.SetSource(agg.Snapshot)
	ingestAll(t, st, agg, reps[:300], frames[:300])
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, st, agg, reps[300:600], frames[300:600])
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, st, agg, reps[600:], frames[600:])
	st.crash()

	// Corrupt the newest snapshot; the fallback generation plus the
	// retained WAL must still reconstruct everything.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	var newestSeq uint64
	for _, e := range entries {
		if seq, ok := parseSeqName(e.Name(), "snap-", snapSuffix); ok && seq >= newestSeq {
			newest, newestSeq = filepath.Join(dir, e.Name()), seq
		}
	}
	if newest == "" {
		t.Fatal("no snapshots written")
	}
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x10
	if err := os.WriteFile(newest, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec, stats := re.Recovered()
	if stats.SnapshotsDiscarded != 1 || stats.SnapshotReports != 300 {
		t.Fatalf("stats = %+v", stats)
	}
	if rec.N() != len(reps) {
		t.Fatalf("recovered %d reports, want %d", rec.N(), len(reps))
	}
	if !bytes.Equal(recoveredState(t, re), referenceState(t, p, reps)) {
		t.Fatal("fallback recovery differs from sequential reference")
	}
}

func TestSnapshotPrunesSegments(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reps, frames := makeFrames(t, p, 600, 8)
	agg := core.NewSharded(p, 2)
	st.SetSource(agg.Snapshot)
	ingestAll(t, st, agg, reps[:300], frames[:300])
	st.flushWAL()
	grown := st.Status().Segments
	if grown < 3 {
		t.Fatalf("want rotation, got %d segments", grown)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, st, agg, reps[300:], frames[300:])
	st.flushWAL()
	preSecond := st.Status().Segments
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// The second snapshot prunes every segment the first one covers (the
	// segments above it stay as the fallback generation's replay tail,
	// and the rotation adds a fresh active segment).
	after := st.Status()
	if after.Segments > preSecond-2 {
		t.Fatalf("pruning kept %d of %d segments", after.Segments, preSecond)
	}
	if after.SnapshotReports != 600 || after.SinceSnapshot != 0 {
		t.Fatalf("status = %+v", after)
	}
}

func TestAutoSnapshotEveryN(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{SnapshotEveryN: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reps, frames := makeFrames(t, p, 250, 9)
	agg := core.NewSharded(p, 2)
	st.SetSource(agg.Snapshot)
	ingestAll(t, st, agg, reps, frames)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st.Status().SnapshotReports > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic snapshot: %+v", st.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestProtocolMismatchFailsRecovery(t *testing.T) {
	inpHT := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, inpHT, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, frames := makeFrames(t, inpHT, 50, 10)
	agg := inpHT.NewAggregator()
	ingestAll(t, st, agg, reps, frames)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	margHT, err := core.New(core.MargHT, core.Config{D: 8, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, margHT, Options{}); err == nil {
		t.Fatal("MargHT opened an InpHT directory")
	}
	otherD, err := core.New(core.InpHT, core.Config{D: 10, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, otherD, Options{}); err == nil {
		t.Fatal("d=10 deployment opened a d=8 directory")
	}
}

func TestIngestPartialBatchLogsAcceptedPrefix(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, frames := makeFrames(t, p, 10, 11)
	agg := p.NewAggregator()
	rejection := errors.New("report 4 rejected")
	batch := batchOf(frames)
	prefix := len(batchOf(frames[:4]))
	err = st.Ingest(batch, func() (int, int, error) {
		if err := agg.ConsumeBatch(reps[:4]); err != nil {
			return 0, 0, err
		}
		return 4, prefix, rejection
	})
	if !errors.Is(err, rejection) {
		t.Fatalf("Ingest error = %v, want the apply rejection", err)
	}
	st.crash()

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec, _ := re.Recovered()
	if rec.N() != 4 {
		t.Fatalf("recovered %d reports, want the 4 accepted", rec.N())
	}
	if !bytes.Equal(recoveredState(t, re), referenceState(t, p, reps[:4])) {
		t.Fatal("recovered state differs from accepted prefix")
	}
}

func TestIngestAfterCloseFails(t *testing.T) {
	p := testProtocol(t)
	st, err := Open(t.TempDir(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	err = st.Ingest([]byte{1, 0}, func() (int, int, error) { return 1, 2, nil })
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
}

func TestConcurrentIngestAndSnapshot(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{Fsync: FsyncAlways, SegmentBytes: 4096, SnapshotEveryN: 500})
	if err != nil {
		t.Fatal(err)
	}
	agg := core.NewSharded(p, 4)
	st.SetSource(agg.Snapshot)
	reps, frames := makeFrames(t, p, 4000, 12)
	const workers = 8
	errc := make(chan error, workers)
	per := len(reps) / workers
	for w := 0; w < workers; w++ {
		go func(lo int) {
			for i := lo; i < lo+per; i += 50 {
				hi := min(i+50, lo+per)
				batch := batchOf(frames[i:hi])
				err := st.Ingest(batch, func() (int, int, error) {
					if err := agg.ConsumeBatch(reps[i:hi]); err != nil {
						return 0, 0, err
					}
					return hi - i, len(batch), nil
				})
				if err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w * per)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec, _ := re.Recovered()
	if rec.N() != len(reps) {
		t.Fatalf("recovered %d reports, want %d", rec.N(), len(reps))
	}
	// Counter aggregation is order-independent, so even the concurrent
	// interleaving recovers to the sequential reference byte-for-byte.
	if !bytes.Equal(recoveredState(t, re), referenceState(t, p, reps)) {
		t.Fatal("concurrent-ingest recovery differs from sequential reference")
	}
}
