package store

import (
	"sync"
	"time"

	"ldpmarginals/internal/metrics"
)

// storeInstruments is the durability layer's always-on instrumentation.
// Allocated unconditionally at Open so the committer and ingest paths
// update plain atomics with no nil checks; a registry attaches later via
// RegisterMetrics (a store that is never registered just counts into
// unexported atomics).
type storeInstruments struct {
	walWrite     *metrics.Histogram // coalesced write syscall latency
	walFsync     *metrics.Histogram // fsync latency (group commit, interval tick, rotation)
	walAppended  *metrics.Counter   // bytes written to segments
	walRotations *metrics.Counter   // completed segment rotations
	walRevives   *metrics.Counter   // successful committer revivals after a failure
	appendWait   *metrics.Histogram // Ingest's hand-off wait (incl. group commit under fsync=always)
	snapshotDur  *metrics.Histogram // full snapshot/compaction latency
	snapshots    *metrics.Counter   // successful snapshots
	compactions  *metrics.Counter   // forced (Compact) snapshots among them
}

func newStoreInstruments() *storeInstruments {
	return &storeInstruments{
		walWrite:     metrics.NewHistogram(metrics.DurationBuckets()),
		walFsync:     metrics.NewHistogram(metrics.DurationBuckets()),
		walAppended:  metrics.NewCounter(),
		walRotations: metrics.NewCounter(),
		walRevives:   metrics.NewCounter(),
		appendWait:   metrics.NewHistogram(metrics.DurationBuckets()),
		snapshotDur:  metrics.NewHistogram(metrics.DurationBuckets()),
		snapshots:    metrics.NewCounter(),
		compactions:  metrics.NewCounter(),
	}
}

// statusCache amortizes Store.Status — which walks the data directory —
// across the several scrape-time gauges derived from it.
type statusCache struct {
	mu   sync.Mutex
	at   time.Time
	st   Status
	once bool
}

func (c *statusCache) get(s *Store) Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.once || time.Since(c.at) > 500*time.Millisecond {
		c.st = s.Status()
		c.at = time.Now()
		c.once = true
	}
	return c.st
}

// WALErr returns the committer's first write/sync failure, or nil while
// the log is healthy. One atomic load — cheap enough for readiness
// probes.
func (s *Store) WALErr() error { return s.walFailure() }

// RegisterMetrics attaches the store's instrumentation to r under the
// ldp_wal_* / ldp_store_* families. Derived gauges read a cached Status
// (the directory walk runs at most twice per second regardless of
// scrape fan-in).
func (s *Store) RegisterMetrics(r *metrics.Registry) {
	ins := s.ins
	r.MustRegister("ldp_wal_write_seconds", "Latency of coalesced WAL write syscalls.", nil, ins.walWrite)
	r.MustRegister("ldp_wal_fsync_seconds", "Latency of WAL fsyncs (group commit, interval tick, rotation).", nil, ins.walFsync)
	r.MustRegister("ldp_wal_appended_bytes_total", "Bytes appended to WAL segments.", nil, ins.walAppended)
	r.MustRegister("ldp_wal_rotations_total", "Completed WAL segment rotations.", nil, ins.walRotations)
	r.MustRegister("ldp_wal_revives_total", "Committer revivals after a sticky WAL failure (Store.Recover).", nil, ins.walRevives)
	r.MustRegister("ldp_wal_append_wait_seconds", "Time an ingest spends handing its group to the committer (includes the shared fsync under fsync=always).", nil, ins.appendWait)
	r.MustRegister("ldp_store_snapshot_seconds", "Latency of counter snapshots (state marshal + rotate + atomic write + prune).", nil, ins.snapshotDur)
	r.MustRegister("ldp_store_snapshots_total", "Successful counter snapshots.", nil, ins.snapshots)
	r.MustRegister("ldp_store_compactions_total", "Forced compactions (window expiry retention) among the snapshots.", nil, ins.compactions)

	cache := new(statusCache)
	r.MustGaugeFunc("ldp_wal_segments", "Live WAL segment files (including the fallback generation).", nil,
		func() float64 { return float64(cache.get(s).Segments) })
	r.MustGaugeFunc("ldp_wal_bytes", "Bytes held by live WAL segments.", nil,
		func() float64 { return float64(cache.get(s).WALBytes) })
	r.MustGaugeFunc("ldp_store_since_snapshot_reports", "Reports appended after the newest snapshot.", nil,
		func() float64 { return float64(s.sinceSnap.Load()) })
	r.MustGaugeFunc("ldp_store_snapshot_reports", "Report count covered by the newest snapshot.", nil,
		func() float64 { return float64(cache.get(s).SnapshotReports) })
	r.MustGaugeFunc("ldp_store_wal_failed", "1 once the WAL committer has hit a sticky write/sync failure.", nil,
		func() float64 {
			if s.walFailure() != nil {
				return 1
			}
			return 0
		})
	// Recovery facts are fixed at Open; exposing them lets dashboards
	// correlate restart cost with WAL length.
	r.MustGaugeFunc("ldp_store_recovered_reports", "Reports reconstructed at Open (snapshot + WAL replay).", nil,
		func() float64 { return float64(s.recStats.Reports) })
	r.MustGaugeFunc("ldp_store_replayed_reports", "Reports replayed from the WAL tail at Open.", nil,
		func() float64 { return float64(s.recStats.ReportsReplayed) })
	r.MustGaugeFunc("ldp_store_torn_truncations", "Torn final records truncated during recovery.", nil,
		func() float64 { return float64(s.recStats.TornTailTruncations) })
}
