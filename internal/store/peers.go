package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/wire"
)

// Coordinator peer-state snapshot. A coordinator's durable artifact is
// deliberately NOT the merged fleet state: edges re-serve their full
// canonical state on every pull, so persisting a merged blob would
// double-count every peer that answers after a restart. What makes a
// coordinator restart exact is the per-peer decomposition — the latest
// (url, node id, version, state) tuple for every configured peer — which
// re-pulls then replace idempotently. The file layout:
//
//	"LDPP", format version byte, config block (shared with WAL/snapshots),
//	uvarint peer count,
//	repeat: uvarint url length, url bytes,
//	        length-prefixed state-exchange frame (wire.EncodeStateFrame)
//	crc32c of everything above (4 bytes LE)
//
// written atomically (temp file, fsync, rename) like counter snapshots.

const peersMagic = "LDPP"

// peersFile is the coordinator snapshot's name inside the cluster
// directory. It deliberately doesn't match the wal-/snap- patterns, so
// a directory shared with an edge store would not confuse recovery.
const peersFile = "cluster.peers"

// PeerState is one peer's last accepted pull, as persisted by a
// coordinator.
type PeerState struct {
	// URL is the configured peer base URL the state was pulled from.
	URL string
	// NodeID, Version, and N identify the pull (wire.StateFrame fields).
	NodeID  string
	Version uint64
	N       int
	// State is the peer's canonical aggregator state blob.
	State []byte
}

// SavePeerStates atomically persists a coordinator's per-peer states to
// dir (creating it if needed), pinned to the deployment identity.
func SavePeerStates(dir string, p core.Protocol, peers []PeerState) error {
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf := appendConfig(append([]byte(peersMagic), formatV1), tag, p.Config())
	buf = binary.AppendUvarint(buf, uint64(len(peers)))
	for _, ps := range peers {
		frame, err := wire.EncodeStateFrame(wire.StateFrame{
			NodeID: ps.NodeID, Version: ps.Version, N: ps.N, State: ps.State,
		})
		if err != nil {
			return fmt.Errorf("store: peer %s: %w", ps.URL, err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(ps.URL)))
		buf = append(buf, ps.URL...)
		buf = wire.AppendFrame(buf, frame)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	path := filepath.Join(dir, peersFile)
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// LoadPeerStates recovers the peer states persisted in dir. A missing
// file is an empty fleet, not an error; a corrupt or foreign file fails
// so a misconfigured coordinator cannot silently serve the wrong
// deployment's counters.
func LoadPeerStates(dir string, p core.Protocol) ([]PeerState, error) {
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		return nil, err
	}
	buf, err := os.ReadFile(filepath.Join(dir, peersFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(buf) < len(peersMagic)+1+crcBytes {
		return nil, fmt.Errorf("store: peer snapshot of %d bytes is too short", len(buf))
	}
	body, sum := buf[:len(buf)-crcBytes], binary.LittleEndian.Uint32(buf[len(buf)-crcBytes:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return nil, fmt.Errorf("store: peer snapshot checksum %08x, want %08x", got, sum)
	}
	if string(body[:len(peersMagic)]) != peersMagic {
		return nil, fmt.Errorf("store: bad peer snapshot magic %q", body[:len(peersMagic)])
	}
	if body[len(peersMagic)] != formatV1 {
		return nil, fmt.Errorf("store: peer snapshot format version %d, want %d", body[len(peersMagic)], formatV1)
	}
	rest, err := checkConfig(body[len(peersMagic)+1:], tag, p.Config())
	if err != nil {
		return nil, err
	}
	count, w := binary.Uvarint(rest)
	if w <= 0 || count > uint64(len(rest)) {
		return nil, fmt.Errorf("store: peer snapshot count malformed")
	}
	rest = rest[w:]
	peers := make([]PeerState, 0, count)
	for i := uint64(0); i < count; i++ {
		urlLen, w := binary.Uvarint(rest)
		if w <= 0 || urlLen > uint64(len(rest)-w) {
			return nil, fmt.Errorf("store: peer %d url malformed", i)
		}
		rest = rest[w:]
		url := string(rest[:urlLen])
		rest = rest[urlLen:]
		frame, next, err := wire.NextFrame(rest, 0)
		if err != nil {
			return nil, fmt.Errorf("store: peer %d (%s): %w", i, url, err)
		}
		sf, err := wire.DecodeStateFrame(frame)
		if err != nil {
			return nil, fmt.Errorf("store: peer %d (%s): %w", i, url, err)
		}
		peers = append(peers, PeerState{
			URL: url, NodeID: sf.NodeID, Version: sf.Version, N: sf.N,
			State: append([]byte(nil), sf.State...),
		})
		rest = next
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("store: peer snapshot has %d trailing bytes", len(rest))
	}
	return peers, nil
}
