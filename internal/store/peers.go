package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/wire"
)

// Coordinator peer-state snapshot. A coordinator's durable artifact is
// deliberately NOT the merged fleet state: edges re-serve their full
// canonical state on every pull, so persisting a merged blob would
// double-count every peer that answers after a restart. What makes a
// coordinator restart exact is the per-peer decomposition — the latest
// (url, node id, version, components) tuple for every configured peer —
// which re-pulls then replace idempotently. Persisting the *components*
// (not a pre-merged blob) also preserves the delta bases: after a
// restart the coordinator still knows each peer's acknowledged version
// label and per-component vector, so the first pull of a surviving peer
// resumes as a delta instead of a full transfer. The file layout:
//
//	"LDPP", format version byte, config block (shared with WAL/snapshots),
//	uvarint peer count,
//	repeat: uvarint url length, url bytes,
//	        length-prefixed exchange frame — a componentized full frame
//	        (wire.EncodeComponentFrame) at formatV2, a legacy v1 frame
//	        (wire.EncodeStateFrame) at formatV1
//	crc32c of everything above (4 bytes LE)
//
// written atomically (temp file, fsync, rename) like counter snapshots.
// formatV1 files (from before componentized exchange) still load: each
// legacy single-blob state lifts to one component named by the node.

const peersMagic = "LDPP"

// formatV2 is the componentized peer-snapshot layout. Defined here (not
// next to formatV1 in wal.go) because only peer snapshots have a second
// format; WAL segments and counter snapshots remain at v1.
const formatV2 = 2

// peersFile is the coordinator snapshot's name inside the cluster
// directory. It deliberately doesn't match the wal-/snap- patterns, so
// a directory shared with an edge store would not confuse recovery.
const peersFile = "cluster.peers"

// peerSnapshotMaxRaw bounds the total decompressed component bytes of
// one persisted peer frame. The file is CRC-guarded and written only by
// this process from already-validated states, so the bound is a
// generous corruption backstop, not an admission limit.
const peerSnapshotMaxRaw = int64(1) << 32

// PeerState is one peer's last accepted pull, as persisted by a
// coordinator.
type PeerState struct {
	// URL is the configured peer base URL the state was pulled from.
	URL string
	// NodeID, Version, and N label the accepted state; Version is the
	// delta base the next pull acknowledges.
	NodeID  string
	Version uint64
	N       int
	// Components are the named state components the peer's state
	// decomposes into, sorted by ID.
	Components []PeerComponent
}

// PeerComponent is one named component of a persisted peer state.
type PeerComponent struct {
	// ID names the component fleet-wide (wire.StateComponent.ID).
	ID string
	// Version labels this component's content.
	Version uint64
	// N is the component's report count.
	N int
	// State is the component's canonical aggregator state blob.
	State []byte
}

// SavePeerStates atomically persists a coordinator's per-peer states to
// dir (creating it if needed), pinned to the deployment identity.
func SavePeerStates(dir string, p core.Protocol, peers []PeerState) error {
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf := appendConfig(append([]byte(peersMagic), formatV2), tag, p.Config())
	buf = binary.AppendUvarint(buf, uint64(len(peers)))
	for _, ps := range peers {
		cf := wire.ComponentFrame{NodeID: ps.NodeID, Version: ps.Version, N: ps.N}
		for _, c := range ps.Components {
			cf.Components = append(cf.Components, wire.StateComponent{
				ID: c.ID, Version: c.Version, N: c.N, State: c.State,
			})
		}
		frame, err := wire.EncodeComponentFrame(cf)
		if err != nil {
			return fmt.Errorf("store: peer %s: %w", ps.URL, err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(ps.URL)))
		buf = append(buf, ps.URL...)
		buf = wire.AppendFrame(buf, frame)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	path := filepath.Join(dir, peersFile)
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// LoadPeerStates recovers the peer states persisted in dir. A missing
// file is an empty fleet, not an error; a corrupt or foreign file fails
// so a misconfigured coordinator cannot silently serve the wrong
// deployment's counters.
func LoadPeerStates(dir string, p core.Protocol) ([]PeerState, error) {
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		return nil, err
	}
	buf, err := os.ReadFile(filepath.Join(dir, peersFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(buf) < len(peersMagic)+1+crcBytes {
		return nil, fmt.Errorf("store: peer snapshot of %d bytes is too short", len(buf))
	}
	body, sum := buf[:len(buf)-crcBytes], binary.LittleEndian.Uint32(buf[len(buf)-crcBytes:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return nil, fmt.Errorf("store: peer snapshot checksum %08x, want %08x", got, sum)
	}
	if string(body[:len(peersMagic)]) != peersMagic {
		return nil, fmt.Errorf("store: bad peer snapshot magic %q", body[:len(peersMagic)])
	}
	format := body[len(peersMagic)]
	if format != formatV1 && format != formatV2 {
		return nil, fmt.Errorf("store: peer snapshot format version %d, want %d or %d", format, formatV1, formatV2)
	}
	rest, err := checkConfig(body[len(peersMagic)+1:], tag, p.Config())
	if err != nil {
		return nil, err
	}
	count, w := binary.Uvarint(rest)
	if w <= 0 || count > uint64(len(rest)) {
		return nil, fmt.Errorf("store: peer snapshot count malformed")
	}
	rest = rest[w:]
	peers := make([]PeerState, 0, count)
	for i := uint64(0); i < count; i++ {
		urlLen, w := binary.Uvarint(rest)
		if w <= 0 || urlLen > uint64(len(rest)-w) {
			return nil, fmt.Errorf("store: peer %d url malformed", i)
		}
		rest = rest[w:]
		url := string(rest[:urlLen])
		rest = rest[urlLen:]
		frame, next, err := wire.NextFrame(rest, 0)
		if err != nil {
			return nil, fmt.Errorf("store: peer %d (%s): %w", i, url, err)
		}
		ps := PeerState{URL: url}
		if format == formatV2 {
			cf, err := wire.DecodeComponentFrame(frame, peerSnapshotMaxRaw)
			if err != nil {
				return nil, fmt.Errorf("store: peer %d (%s): %w", i, url, err)
			}
			if cf.Delta {
				return nil, fmt.Errorf("store: peer %d (%s): snapshot holds a delta frame", i, url)
			}
			ps.NodeID, ps.Version, ps.N = cf.NodeID, cf.Version, cf.N
			for _, c := range cf.Components {
				ps.Components = append(ps.Components, PeerComponent{
					ID: c.ID, Version: c.Version, N: c.N,
					State: append([]byte(nil), c.State...),
				})
			}
		} else {
			// A pre-componentization snapshot: the single blob lifts to
			// one component named by the exporting node, exactly like a
			// live legacy pull.
			sf, err := wire.DecodeStateFrame(frame)
			if err != nil {
				return nil, fmt.Errorf("store: peer %d (%s): %w", i, url, err)
			}
			ps.NodeID, ps.Version, ps.N = sf.NodeID, sf.Version, sf.N
			ps.Components = []PeerComponent{{
				ID: sf.NodeID, Version: sf.Version, N: sf.N,
				State: append([]byte(nil), sf.State...),
			}}
		}
		peers = append(peers, ps)
		rest = next
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("store: peer snapshot has %d trailing bytes", len(rest))
	}
	return peers, nil
}
