// Package store is the durability layer of a marginal-release
// deployment. Under the paper's one-round collection model every report
// is irreplaceable — a user reports once, ever — so losing aggregator
// state loses privacy budget that can never be re-spent. The store
// makes acked reports survive a crash with two artifacts in one data
// directory:
//
//   - A write-ahead log of report frames: append-only segments of
//     CRC-checked, length-prefixed records (the same framing as the
//     /report/batch wire format), rotated by size — or by time, via
//     Rotate: a windowed deployment rotates on every bucket seal so
//     segments line up with its time buckets, and Compact after a
//     bucket expiry re-snapshots the shrunken window so the expired
//     buckets' segments become prunable. The fsync policy trades
//     durability window against throughput: FsyncAlways group-commits
//     every ingest, FsyncInterval batches fsyncs on a timer, FsyncOff
//     leaves flushing to the OS.
//
//   - Counter snapshots: the aggregator's MarshalState blob plus the
//     WAL segment index it covers, written atomically. A snapshot
//     compacts the log — segments at or below the covered index carry
//     no information the snapshot doesn't — so the WAL stays short and
//     recovery stays fast. The two newest snapshots are retained; older
//     snapshots and the segments they make redundant are deleted.
//
// Open recovers: it loads the newest valid snapshot (falling back past
// a corrupt one), replays the WAL tail through Aggregator.Consume, and
// tolerates a torn final record by truncating it. Because aggregation
// is associative integer counting, the recovered state is byte-
// identical to the state that produced the log.
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/fault"
	"ldpmarginals/internal/trace"
	"ldpmarginals/internal/wire"
)

// FsyncPolicy selects when WAL appends are made durable.
type FsyncPolicy int

const (
	// FsyncInterval (the default) fsyncs the active segment on a timer:
	// an ack guarantees the OS has the bytes, and at most
	// Options.FsyncInterval of acked reports are exposed to a power
	// loss. Process crashes lose nothing.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs before every ack, group-committed: concurrent
	// ingests queued behind one fsync share it.
	FsyncAlways
	// FsyncOff never fsyncs during operation (a clean Close still
	// syncs); the OS flushes on its own schedule.
	FsyncOff
)

// String returns the policy's flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsync maps a flag spelling to its policy.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (always, interval, off)", s)
	}
}

// Options tunes a store; the zero value selects the defaults.
type Options struct {
	// Fsync is the WAL durability policy; the zero value is
	// FsyncInterval.
	Fsync FsyncPolicy
	// FsyncInterval is the timer period of FsyncInterval; <= 0 selects
	// 100ms.
	FsyncInterval time.Duration
	// SegmentBytes rotates the active WAL segment once it exceeds this
	// size; <= 0 selects 64 MiB.
	SegmentBytes int64
	// SnapshotEveryN compacts the WAL into a counter snapshot once this
	// many reports have been appended since the last snapshot; <= 0
	// snapshots only on Close (and explicit Snapshot calls).
	SnapshotEveryN int
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// RecoveryStats describes what Open reconstructed from the data
// directory.
type RecoveryStats struct {
	// Reports is the recovered aggregator's total report count.
	Reports int
	// SnapshotSeq and SnapshotReports identify the snapshot the
	// recovery started from (0 reports and seq 0 when none was loaded).
	SnapshotSeq     uint64
	SnapshotReports int
	// SnapshotsDiscarded counts newer snapshot files that failed
	// validation and were skipped.
	SnapshotsDiscarded int
	// SegmentsReplayed and ReportsReplayed describe the WAL tail walked
	// after the snapshot (reports, not group records: one WAL record
	// holds a whole ingested group).
	SegmentsReplayed int
	ReportsReplayed  int
	// TornTailTruncations counts torn final records (or torn final
	// segment headers) dropped during replay — at most one per crash.
	TornTailTruncations int
}

// Store is the durable ingestion log of one deployment. Safe for
// concurrent use.
type Store struct {
	dir  string
	p    core.Protocol
	tag  encoding.Tag
	cfg  core.Config
	opts Options

	// barrier orders ingests against snapshots: Ingest holds it shared
	// around the consume+append pair, Snapshot holds it exclusively, so
	// a snapshot sees a state that matches the WAL exactly.
	barrier sync.RWMutex
	closed  bool

	reqs       chan *walReq
	commitStop chan struct{}
	commitDone chan struct{}
	tickStop   chan struct{}
	tickDone   chan struct{}

	source func() (core.Aggregator, error)

	sinceSnap atomic.Int64
	snapWG    sync.WaitGroup
	snapBusy  atomic.Bool

	statsMu     sync.Mutex
	snaps       []snapMeta // valid snapshots, ascending seq
	lastSnapErr error

	walErr atomic.Pointer[error] // first committer write/sync failure, sticky

	ins *storeInstruments

	recovered core.Aggregator
	recStats  RecoveryStats
}

// Open recovers the deployment state persisted in dir (creating it if
// needed) and starts the write-ahead log. The protocol must match the
// one the directory was written by.
func Open(dir string, p core.Protocol, opts Options) (*Store, error) {
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:        dir,
		p:          p,
		tag:        tag,
		cfg:        p.Config(),
		opts:       opts.withDefaults(),
		reqs:       make(chan *walReq, 128),
		commitStop: make(chan struct{}),
		commitDone: make(chan struct{}),
		tickStop:   make(chan struct{}),
		tickDone:   make(chan struct{}),
		ins:        newStoreInstruments(),
	}
	maxSeg, err := s.recover()
	if err != nil {
		return nil, err
	}
	s.sinceSnap.Store(int64(s.recStats.ReportsReplayed))
	f, size, err := s.createSegment(maxSeg + 1)
	if err != nil {
		return nil, err
	}
	go s.committer(f, maxSeg+1, size)
	go s.syncLoop()
	return s, nil
}

// recover loads the newest valid snapshot and replays the WAL tail,
// leaving the reconstructed aggregator in s.recovered. It returns the
// highest segment index present (0 when none).
func (s *Store) recover() (maxSeg uint64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	var segs, snapSeqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeqName(e.Name(), "wal-", segSuffix); ok {
			segs = append(segs, seq)
		}
		if seq, ok := parseSeqName(e.Name(), "snap-", snapSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })
	if len(segs) > 0 {
		maxSeg = segs[len(segs)-1]
	}

	// Validate every snapshot file; only valid ones enter s.snaps (and
	// with them the pruning schedule). The newest valid one is restored.
	agg := s.p.NewAggregator()
	var covered uint64
	for _, seq := range snapSeqs {
		path := filepath.Join(s.dir, snapName(seq))
		buf, rerr := os.ReadFile(path)
		if rerr != nil {
			return 0, rerr
		}
		cov, n, state, derr := decodeSnapshot(buf, s.tag, s.cfg)
		if derr != nil {
			s.recStats.SnapshotsDiscarded++
			continue
		}
		s.snaps = append(s.snaps, snapMeta{seq: seq, covered: cov, n: n, path: path, state: state})
	}
	for i := len(s.snaps) - 1; i >= 0; i-- {
		m := s.snaps[i]
		if err := agg.UnmarshalState(m.state); err != nil {
			s.recStats.SnapshotsDiscarded++
			s.snaps = append(s.snaps[:i], s.snaps[i+1:]...)
			continue
		}
		if m.n != agg.N() {
			return 0, fmt.Errorf("store: snapshot %s declares %d reports but its state holds %d", m.path, m.n, agg.N())
		}
		covered = m.covered
		s.recStats.SnapshotSeq = m.seq
		s.recStats.SnapshotReports = m.n
		break
	}
	for i := range s.snaps {
		s.snaps[i].state = nil // only needed during recovery
	}

	for i, idx := range segs {
		if idx <= covered {
			continue
		}
		final := i == len(segs)-1
		if err := s.replaySegment(idx, final, agg); err != nil {
			return 0, err
		}
		s.recStats.SegmentsReplayed++
	}
	s.recStats.Reports = agg.N()
	s.recovered = agg
	return maxSeg, nil
}

// replaySegment feeds one segment's records into agg. In the final
// segment a torn tail — an incomplete header, an incomplete record, or
// a record failing its CRC — is truncated away (durably) and replay
// stops there; anywhere else the same damage is corruption and fails
// recovery.
func (s *Store) replaySegment(idx uint64, final bool, agg core.Aggregator) error {
	path := filepath.Join(s.dir, segName(idx))
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	truncateAt := func(off int64) error {
		if err := os.Truncate(path, off); err != nil {
			return fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
		if err := syncFile(path); err != nil {
			return err
		}
		s.recStats.TornTailTruncations++
		return nil
	}
	rest, err := checkSegHeader(buf, s.tag, s.cfg)
	if err != nil {
		if final && errors.Is(err, wire.ErrTruncated) {
			// A crash between segment creation and the header write: the
			// file carries nothing. Drop it entirely.
			if rerr := os.Remove(path); rerr != nil {
				return rerr
			}
			s.recStats.TornTailTruncations++
			return nil
		}
		return fmt.Errorf("store: segment %s: %w", path, err)
	}
	offset := int64(len(buf) - len(rest))
	for len(rest) > 0 {
		batch, next, err := nextRecord(rest)
		if err != nil {
			if final && (errors.Is(err, wire.ErrTruncated) || errors.Is(err, errRecordDamaged)) {
				return truncateAt(offset)
			}
			return fmt.Errorf("store: segment %s at offset %d: %w", path, offset, err)
		}
		// The record's CRC has passed, so its inner batch framing and
		// report frames are exactly the acked bytes: any failure below
		// is corruption the CRC cannot explain (or a code-version
		// mismatch) and fails recovery rather than truncating.
		for len(batch) > 0 {
			frame, nextFrame, err := wire.NextFrame(batch, encoding.MaxFrameBytes)
			if err != nil {
				return fmt.Errorf("store: segment %s report %d: %w", path, s.recStats.ReportsReplayed, err)
			}
			tag, rep, err := encoding.Unmarshal(frame)
			if err != nil {
				return fmt.Errorf("store: segment %s report %d: %w", path, s.recStats.ReportsReplayed, err)
			}
			if tag != s.tag {
				return fmt.Errorf("store: segment %s report %d: protocol tag %d, deployment runs %d", path, s.recStats.ReportsReplayed, tag, s.tag)
			}
			if err := agg.Consume(rep); err != nil {
				return fmt.Errorf("store: segment %s report %d: %w", path, s.recStats.ReportsReplayed, err)
			}
			batch = nextFrame
			s.recStats.ReportsReplayed++
		}
		rest = next
		offset = int64(len(buf) - len(rest))
	}
	return nil
}

// repairSegmentTail truncates a torn tail left in segment idx by the
// partial write that killed the committer, exactly as recovery would
// after a crash: records are walked, the first damaged or truncated one
// is cut off (durably), and a segment whose header never landed is
// removed outright. Damage that a torn write cannot explain is real
// corruption and fails the repair. Runs on the committer goroutine
// during a revive, with the snapshot barrier held by Recover.
func (s *Store) repairSegmentTail(idx uint64) error {
	path := filepath.Join(s.dir, segName(idx))
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	rest, err := checkSegHeader(buf, s.tag, s.cfg)
	if err != nil {
		if errors.Is(err, wire.ErrTruncated) {
			return os.Remove(path)
		}
		return fmt.Errorf("store: repairing segment %s: %w", path, err)
	}
	offset := int64(len(buf) - len(rest))
	for len(rest) > 0 {
		_, next, err := nextRecord(rest)
		if err != nil {
			if errors.Is(err, wire.ErrTruncated) || errors.Is(err, errRecordDamaged) {
				if terr := os.Truncate(path, offset); terr != nil {
					return fmt.Errorf("store: truncating torn tail of %s: %w", path, terr)
				}
				return syncFile(path)
			}
			return fmt.Errorf("store: repairing segment %s at offset %d: %w", path, offset, err)
		}
		rest = next
		offset = int64(len(buf) - len(rest))
	}
	return nil
}

// Recover attempts to bring a store whose WAL has failed back to
// health: it revives the committer on a fresh segment (repairing any
// torn tail the failure left behind), clears the sticky WAL error, and
// forces a snapshot so reports consumed into memory while the log was
// dead become durable again. On a healthy store it is a no-op. If the
// disk is still bad the revive or snapshot fails, the store stays
// failed, and Recover returns the error — callers retry on their probe
// schedule.
func (s *Store) Recover() error {
	s.barrier.Lock()
	defer s.barrier.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.walFailure() == nil {
		return nil
	}
	req := &walReq{revive: true, done: make(chan walRes, 1)}
	s.reqs <- req
	res := <-req.done
	if res.err != nil {
		return fmt.Errorf("store: wal revive: %w", res.err)
	}
	s.walErr.Store(nil)
	// Everything consumed during the failure window lives only in
	// memory; only a forced snapshot makes disk cover memory again. If
	// it fails, re-mark the WAL failed so the caller's state machine
	// does not declare health the durability layer cannot back.
	if s.source != nil {
		if err := s.snapshotLocked(true); err != nil {
			err = fmt.Errorf("store: post-revive snapshot: %w", err)
			s.setWALFailure(err)
			return err
		}
	}
	return nil
}

// ProbeDisk verifies dir accepts durable writes by creating, fsyncing,
// and removing a sentinel file. Degraded-mode health probes call it
// before attempting Recover, so a still-full disk is detected without
// churning the WAL.
func ProbeDisk(dir string) error {
	if err := fault.Hit(FaultDiskProbe); err != nil {
		return err
	}
	path := filepath.Join(dir, "health.probe"+tmpSuffix)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("ldp disk probe\n"))
	serr := f.Sync()
	cerr := f.Close()
	rerr := os.Remove(path)
	for _, e := range []error{werr, serr, cerr, rerr} {
		if e != nil {
			return e
		}
	}
	return nil
}

func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Recovered returns the aggregator reconstructed by Open — the caller
// seeds its live pipeline with it (e.g. ShardedAggregator.Merge) — and
// the recovery statistics. After ReleaseRecovered the aggregator is nil
// (the statistics remain).
func (s *Store) Recovered() (core.Aggregator, RecoveryStats) {
	return s.recovered, s.recStats
}

// ReleaseRecovered drops the store's reference to the recovered
// aggregator once the caller has seeded its live pipeline, so a large
// recovered state (protocols that keep raw reports) is not pinned in
// memory twice for the store's lifetime.
func (s *Store) ReleaseRecovered() { s.recovered = nil }

// SetSource registers the function snapshots read the live state from,
// typically ShardedAggregator.Snapshot. Snapshots (including the final
// one in Close) are skipped while no source is set.
func (s *Store) SetSource(src func() (core.Aggregator, error)) {
	s.source = src
}

// Ingest runs apply — the caller's consume into its live aggregator —
// under the snapshot barrier, then appends the accepted prefix of
// batch to the WAL as one group record before returning. batch holds
// the reports' wire frames in the /report/batch layout (length-
// prefixed frames); apply returns how many reports it accepted and the
// length in bytes of the corresponding prefix of batch, so the logged
// payload is the already-validated wire bytes verbatim — no re-marshal
// and no per-frame re-framing on the hot path.
//
// What "before returning" buys depends on the fsync policy. FsyncAlways
// waits for the write and a (group-committed) fsync: the ack implies
// the reports survive a power loss. FsyncInterval and FsyncOff enqueue
// the write to the committer and return: the record reaches the OS
// within microseconds (the committer is the only queue consumer) and
// the channel's FIFO order still lands it ahead of any later snapshot
// rotation, so crash recovery and snapshots stay exact; only an
// ill-timed power loss can lose it, which is those policies' contract.
// A committer write failure fails every subsequent Ingest.
//
// apply's error is returned after the accepted prefix is logged; a WAL
// failure takes precedence, since an unlogged-but-consumed report must
// not be acked as durable.
func (s *Store) Ingest(batch []byte, apply func() (reports, bytes int, err error)) error {
	return s.IngestContext(context.Background(), batch, apply)
}

// IngestContext is Ingest with trace propagation: when ctx carries an
// active request span, the WAL hand-off is recorded as a "wal.append"
// child (report/byte counts as attrs) and an FsyncAlways group-commit
// wait as a "wal.fsync" child under it.
func (s *Store) IngestContext(ctx context.Context, batch []byte, apply func() (reports, bytes int, err error)) error {
	s.barrier.RLock()
	defer s.barrier.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.walFailure(); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	consumed, nbytes, aerr := apply()
	if consumed > 0 {
		if nbytes <= 0 || nbytes > len(batch) {
			return fmt.Errorf("store: apply reported %d accepted bytes of a %d-byte batch", nbytes, len(batch))
		}
		// The committer frames batch[:nbytes] into records itself; the
		// caller must not modify the bytes after this point (the server
		// hands over per-request bodies, which nothing reuses).
		ctx, span := trace.StartSpan(ctx, "wal.append")
		span.SetAttr("reports", consumed)
		span.SetAttr("bytes", nbytes)
		t0 := time.Now()
		if s.opts.Fsync == FsyncAlways {
			req := &walReq{buf: batch[:nbytes], sync: true, done: make(chan walRes, 1)}
			s.reqs <- req
			_, fsp := trace.StartSpan(ctx, "wal.fsync")
			res := <-req.done
			fsp.End()
			if res.err != nil {
				span.SetAttr("error", res.err)
				span.End()
				return fmt.Errorf("store: wal append: %w", res.err)
			}
		} else {
			s.reqs <- &walReq{buf: batch[:nbytes]}
		}
		span.End()
		s.ins.appendWait.Observe(time.Since(t0).Seconds())
		if n := s.sinceSnap.Add(int64(consumed)); s.opts.SnapshotEveryN > 0 && n >= int64(s.opts.SnapshotEveryN) {
			s.triggerSnapshot()
		}
	}
	return aerr
}

// setWALFailure publishes the committer's first failure.
func (s *Store) setWALFailure(err error) {
	s.walErr.CompareAndSwap(nil, &err)
}

// walFailure is on the ingest hot path: one atomic load.
func (s *Store) walFailure() error {
	if p := s.walErr.Load(); p != nil {
		return *p
	}
	return nil
}

// triggerSnapshot starts one background compaction unless one is
// already running.
func (s *Store) triggerSnapshot() {
	if s.source == nil || !s.snapBusy.CompareAndSwap(false, true) {
		return
	}
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		defer s.snapBusy.Store(false)
		if err := s.Snapshot(); err != nil && !errors.Is(err, ErrClosed) {
			s.statsMu.Lock()
			s.lastSnapErr = err
			s.statsMu.Unlock()
		}
	}()
}

// Snapshot compacts the log now: it stops ingestion momentarily, reads
// the live state through the registered source, writes a snapshot
// covering every completed WAL segment, and prunes snapshots and
// segments made redundant (keeping one fallback generation).
func (s *Store) Snapshot() error {
	s.barrier.Lock()
	defer s.barrier.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.snapshotLocked(false)
}

// Compact is Snapshot without the nothing-new skip: it snapshots even
// when no reports arrived since the last one. A windowed deployment's
// source state *shrinks* when buckets expire, and only a fresh
// snapshot makes the expired buckets' segments redundant so prune can
// drop them — expiry doubles as retention.
func (s *Store) Compact() error {
	s.barrier.Lock()
	defer s.barrier.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.snapshotLocked(true)
}

// Rotate closes the active WAL segment (synced) and opens the next
// one, returning the closed segment's index. A windowed deployment
// rotates on every bucket seal, so segment boundaries line up with
// bucket boundaries: the log becomes time-bucketed, and expiry-time
// compaction prunes whole buckets from disk at once.
func (s *Store) Rotate() (uint64, error) {
	s.barrier.RLock()
	defer s.barrier.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	if err := s.walFailure(); err != nil {
		return 0, fmt.Errorf("store: rotating segment: %w", err)
	}
	req := &walReq{rotate: true, done: make(chan walRes, 1)}
	s.reqs <- req
	res := <-req.done
	if res.err != nil {
		return 0, fmt.Errorf("store: rotating segment: %w", res.err)
	}
	return res.seg, nil
}

func (s *Store) snapshotLocked(force bool) error {
	if s.source == nil {
		return fmt.Errorf("store: no state source registered")
	}
	if !force && s.sinceSnap.Load() == 0 && len(s.snapsCopy()) > 0 {
		// Nothing arrived since the last snapshot: it is still exact.
		return nil
	}
	t0 := time.Now()
	agg, err := s.source()
	if err != nil {
		return fmt.Errorf("store: reading state source: %w", err)
	}
	state, err := agg.MarshalState()
	if err != nil {
		return fmt.Errorf("store: marshaling state: %w", err)
	}
	// Rotate so the snapshot's coverage ends on a segment boundary: with
	// the barrier held the WAL up to the rotated-out segment holds
	// exactly the reports in the state (plus those in older snapshots).
	req := &walReq{rotate: true, done: make(chan walRes, 1)}
	s.reqs <- req
	res := <-req.done
	if res.err != nil {
		return fmt.Errorf("store: rotating segment: %w", res.err)
	}
	s.statsMu.Lock()
	seq := uint64(1)
	if len(s.snaps) > 0 {
		seq = s.snaps[len(s.snaps)-1].seq + 1
	}
	if s.recStats.SnapshotSeq >= seq {
		seq = s.recStats.SnapshotSeq + 1
	}
	s.statsMu.Unlock()
	path, err := s.writeSnapshotFile(seq, encodeSnapshot(s.tag, s.cfg, res.seg, agg.N(), state))
	if err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	s.statsMu.Lock()
	s.snaps = append(s.snaps, snapMeta{seq: seq, covered: res.seg, n: agg.N(), path: path})
	s.lastSnapErr = nil
	s.statsMu.Unlock()
	s.sinceSnap.Store(0)
	s.prune()
	s.ins.snapshotDur.Observe(time.Since(t0).Seconds())
	s.ins.snapshots.Inc()
	if force {
		s.ins.compactions.Inc()
	}
	return nil
}

func (s *Store) snapsCopy() []snapMeta {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return append([]snapMeta(nil), s.snaps...)
}

// prune deletes snapshots beyond the two newest and every WAL segment
// at or below the older retained snapshot's coverage. Keeping one
// fallback generation means a corrupt newest snapshot can still recover
// in full: the previous snapshot plus the segments above its coverage
// reconstruct the same state.
func (s *Store) prune() {
	s.statsMu.Lock()
	var drop []snapMeta
	for len(s.snaps) > 2 {
		drop = append(drop, s.snaps[0])
		s.snaps = s.snaps[1:]
	}
	var covered uint64
	if len(s.snaps) >= 2 {
		covered = s.snaps[0].covered
	}
	s.statsMu.Unlock()
	for _, m := range drop {
		_ = os.Remove(m.path)
	}
	if covered > 0 {
		entries, err := os.ReadDir(s.dir)
		if err != nil {
			return
		}
		for _, e := range entries {
			if idx, ok := parseSeqName(e.Name(), "wal-", segSuffix); ok && idx <= covered {
				_ = os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	if len(drop) > 0 || covered > 0 {
		if s.opts.Fsync != FsyncOff {
			_ = syncDir(s.dir)
		}
	}
}

// Status describes the store's durable footprint for monitoring
// endpoints.
type Status struct {
	// Dir is the data directory.
	Dir string
	// Fsync is the policy's flag spelling.
	Fsync string
	// Segments and WALBytes describe the live write-ahead log
	// (including segments retained only for the fallback snapshot).
	Segments int
	WALBytes int64
	// SnapshotSeq and SnapshotReports identify the newest snapshot (0
	// when none exists yet).
	SnapshotSeq     uint64
	SnapshotReports int
	// SinceSnapshot is the number of reports appended after the newest
	// snapshot.
	SinceSnapshot int
	// LastSnapshotError is the most recent background-compaction
	// failure, cleared by the next success.
	LastSnapshotError string
	// WALError is the committer's first write/sync failure; once set,
	// every further ingest fails.
	WALError string
	// Recovery describes what Open reconstructed.
	Recovery RecoveryStats
}

// Status reports the current durable footprint. The segment walk reads
// the directory; it is meant for status endpoints, not hot paths.
func (s *Store) Status() Status {
	st := Status{
		Dir:           s.dir,
		Fsync:         s.opts.Fsync.String(),
		SinceSnapshot: int(s.sinceSnap.Load()),
		Recovery:      s.recStats,
	}
	s.statsMu.Lock()
	if len(s.snaps) > 0 {
		last := s.snaps[len(s.snaps)-1]
		st.SnapshotSeq = last.seq
		st.SnapshotReports = last.n
	} else {
		st.SnapshotSeq = s.recStats.SnapshotSeq
		st.SnapshotReports = s.recStats.SnapshotReports
	}
	if s.lastSnapErr != nil {
		st.LastSnapshotError = s.lastSnapErr.Error()
	}
	s.statsMu.Unlock()
	if err := s.walFailure(); err != nil {
		st.WALError = err.Error()
	}
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			if _, ok := parseSeqName(e.Name(), "wal-", segSuffix); !ok {
				continue
			}
			st.Segments++
			if info, err := e.Info(); err == nil {
				st.WALBytes += info.Size()
			}
		}
	}
	return st
}

// Fsync returns the configured durability policy.
func (s *Store) Fsync() FsyncPolicy { return s.opts.Fsync }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and fsyncs the WAL, writes a final snapshot (when a
// source is registered and reports arrived since the last one), and
// stops the store. Ingest calls after Close fail with ErrClosed. Close
// is idempotent.
func (s *Store) Close() error {
	s.barrier.Lock()
	if s.closed {
		s.barrier.Unlock()
		return nil
	}
	var err error
	if s.source != nil {
		err = s.snapshotLocked(false)
	}
	s.closed = true
	s.barrier.Unlock()
	// Background compactions blocked on the barrier observe closed and
	// exit without touching the committer.
	s.snapWG.Wait()
	close(s.tickStop)
	<-s.tickDone
	close(s.commitStop)
	<-s.commitDone
	// The committer's final flush runs during the drain above; a
	// failure there (or any earlier sticky WAL failure) means acked
	// writes may not be durable, which Close must not hide.
	if werr := s.walFailure(); err == nil && werr != nil {
		err = werr
	}
	return err
}

// syncLoop drives the FsyncInterval policy; under other policies it
// only waits for shutdown.
func (s *Store) syncLoop() {
	defer close(s.tickDone)
	if s.opts.Fsync != FsyncInterval {
		<-s.tickStop
		return
	}
	ticker := time.NewTicker(s.opts.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-ticker.C:
			req := &walReq{sync: true, done: make(chan walRes, 1)}
			s.reqs <- req
			<-req.done
		}
	}
}
