package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/wire"
)

func peersTestProtocol(t *testing.T) core.Protocol {
	t.Helper()
	p, err := core.New(core.MargHT, core.Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func peerStateBlob(t *testing.T, p core.Protocol, n int, seed uint64) ([]byte, int) {
	t.Helper()
	agg := p.NewAggregator()
	client := p.NewClient()
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		rep, err := client.Perturb(uint64(i%64), r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Consume(rep); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := agg.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	return blob, agg.N()
}

func TestPeerStatesRoundTrip(t *testing.T) {
	p := peersTestProtocol(t)
	dir := t.TempDir()
	blob1, n1 := peerStateBlob(t, p, 40, 1)
	blob2, n2 := peerStateBlob(t, p, 25, 2)
	blob3, n3 := peerStateBlob(t, p, 15, 4)
	in := []PeerState{
		// A multi-component peer (a sharded edge's per-shard states).
		{URL: "http://10.0.0.1:8080", NodeID: "edge-1", Version: 12, N: n1 + n3, Components: []PeerComponent{
			{ID: "edge-1/0", Version: 7, N: n1, State: blob1},
			{ID: "edge-1/1", Version: 12, N: n3, State: blob3},
		}},
		{URL: "http://10.0.0.2:8080", NodeID: "edge-2", Version: 99, N: n2, Components: []PeerComponent{
			{ID: "edge-2", Version: 99, N: n2, State: blob2},
		}},
	}
	if err := SavePeerStates(dir, p, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadPeerStates(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("loaded %d peers, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].URL != in[i].URL || out[i].NodeID != in[i].NodeID ||
			out[i].Version != in[i].Version || out[i].N != in[i].N ||
			len(out[i].Components) != len(in[i].Components) {
			t.Fatalf("peer %d: got %+v, want %+v", i, out[i], in[i])
		}
		for j := range in[i].Components {
			gc, wc := out[i].Components[j], in[i].Components[j]
			if gc.ID != wc.ID || gc.Version != wc.Version || gc.N != wc.N || !bytes.Equal(gc.State, wc.State) {
				t.Fatalf("peer %d component %d: got %+v, want %+v", i, j, gc, wc)
			}
		}
	}
	// Re-save with fewer peers replaces the file wholesale.
	if err := SavePeerStates(dir, p, in[:1]); err != nil {
		t.Fatal(err)
	}
	out, err = LoadPeerStates(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].NodeID != "edge-1" {
		t.Fatalf("re-save: got %+v", out)
	}
}

// TestPeerStatesLoadFormatV1 pins backward compatibility: a peer
// snapshot written by a pre-componentization coordinator (formatV1, one
// legacy state frame per peer) still loads, each blob lifted to a single
// component named by the node — exactly like a live legacy pull.
func TestPeerStatesLoadFormatV1(t *testing.T) {
	p := peersTestProtocol(t)
	dir := t.TempDir()
	blob, n := peerStateBlob(t, p, 30, 5)
	tag, err := encoding.TagForProtocol(p.Name())
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.EncodeStateFrame(wire.StateFrame{NodeID: "edge-1", Version: 42, N: n, State: blob})
	if err != nil {
		t.Fatal(err)
	}
	url := "http://10.0.0.9:8080"
	buf := appendConfig(append([]byte(peersMagic), formatV1), tag, p.Config())
	buf = binary.AppendUvarint(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(len(url)))
	buf = append(buf, url...)
	buf = wire.AppendFrame(buf, frame)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	if err := os.WriteFile(filepath.Join(dir, peersFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := LoadPeerStates(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("loaded %d peers, want 1", len(out))
	}
	ps := out[0]
	if ps.URL != url || ps.NodeID != "edge-1" || ps.Version != 42 || ps.N != n {
		t.Fatalf("v1 peer loaded as %+v", ps)
	}
	if len(ps.Components) != 1 || ps.Components[0].ID != "edge-1" ||
		ps.Components[0].Version != 42 || ps.Components[0].N != n ||
		!bytes.Equal(ps.Components[0].State, blob) {
		t.Fatalf("v1 blob lifted to %+v", ps.Components)
	}
}

func TestPeerStatesMissingFileIsEmptyFleet(t *testing.T) {
	p := peersTestProtocol(t)
	out, err := LoadPeerStates(t.TempDir(), p)
	if err != nil || out != nil {
		t.Fatalf("missing file: got %v, %v; want nil, nil", out, err)
	}
}

func TestPeerStatesRejectCorruptionAndForeignConfig(t *testing.T) {
	p := peersTestProtocol(t)
	dir := t.TempDir()
	blob, n := peerStateBlob(t, p, 30, 3)
	if err := SavePeerStates(dir, p, []PeerState{{URL: "http://e", NodeID: "edge-1", Version: 1, N: n, Components: []PeerComponent{
		{ID: "edge-1", Version: 1, N: n, State: blob},
	}}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, peersFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte mid-file: the trailing CRC must reject it.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x20
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPeerStates(dir, p); err == nil {
		t.Error("corrupt peer snapshot was loaded")
	}
	// Restore, then load under a different deployment config: the
	// config block must reject it.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	other, err := core.New(core.MargHT, core.Config{D: 7, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPeerStates(dir, other); err == nil {
		t.Error("peer snapshot of a different deployment was loaded")
	}
}
