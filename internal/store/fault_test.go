package store

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/fault"
)

// sourceOf adapts a plain aggregator to the snapshot-source contract.
func sourceOf(agg core.Aggregator) func() (core.Aggregator, error) {
	return func() (core.Aggregator, error) { return agg, nil }
}

// ingestExpectErr drives one chunk and returns Ingest's error; the
// apply still consumes into agg first, mirroring the server path.
func ingestChunkErr(st *Store, agg core.Aggregator, reps []core.Report, batch []byte) error {
	return st.Ingest(batch, func() (int, int, error) {
		if err := agg.ConsumeBatch(reps); err != nil {
			return 0, 0, err
		}
		return len(reps), len(batch), nil
	})
}

func TestWALFailureRecoverRestoresDurability(t *testing.T) {
	defer fault.Disarm()
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator()
	st.SetSource(sourceOf(agg))

	reps, frames := makeFrames(t, p, 120, 1)
	ingestAll(t, st, agg, reps[:40], frames[:40])

	// ENOSPC-style persistent append failure: the next ingest consumes
	// into memory but cannot log, and every ingest after that fails
	// fast on the sticky error.
	fault.Arm(fault.Rule{Site: FaultWALAppend, Mode: fault.ModeError, Msg: "no space left on device"})
	if err := ingestChunkErr(st, agg, reps[40:80], batchOf(frames[40:80])); err == nil {
		t.Fatal("ingest with dead WAL succeeded")
	}
	if st.WALErr() == nil {
		t.Fatal("WALErr not sticky after injected append failure")
	}
	if err := ingestChunkErr(st, agg, nil, nil); err == nil {
		t.Fatal("ingest after sticky failure succeeded")
	}

	// Disk "recovers": Recover revives the committer and force-snapshots
	// the memory-only reports back to durability.
	fault.Disarm()
	if err := st.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if st.WALErr() != nil {
		t.Fatalf("WALErr after Recover: %v", st.WALErr())
	}
	ingestAll(t, st, agg, reps[80:], frames[80:])
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Everything consumed — healthy prefix, failure-window chunk, and
	// post-recovery tail — must be recovered bit-identically.
	if got, want := recoveredState(t, re), referenceState(t, p, reps); string(got) != string(want) {
		t.Fatal("recovered state differs from reference after WAL failure + Recover")
	}
}

func TestRecoverIsNoOpWhenHealthy(t *testing.T) {
	p := testProtocol(t)
	st, err := Open(t.TempDir(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Recover(); err != nil {
		t.Fatalf("Recover on healthy store: %v", err)
	}
}

func TestRecoverRepairsTornTail(t *testing.T) {
	defer fault.Disarm()
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewAggregator()
	st.SetSource(sourceOf(agg))

	reps, frames := makeFrames(t, p, 90, 2)
	ingestAll(t, st, agg, reps[:30], frames[:30])

	// The write lands but its fsync fails: the committer dies with
	// valid records already in the segment.
	fault.Arm(fault.Rule{Site: FaultWALFsync, Mode: fault.ModeError, Times: 1, Msg: "I/O error"})
	if err := ingestChunkErr(st, agg, reps[30:60], batchOf(frames[30:60])); err == nil {
		t.Fatal("ingest with failing fsync succeeded")
	}
	fault.Disarm()

	// Simulate the torn tail a partial write leaves: raw garbage after
	// the last complete record of the failed segment.
	seg := newestSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x17, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := st.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ingestAll(t, st, agg, reps[60:], frames[60:])
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, want := recoveredState(t, re), referenceState(t, p, reps); string(got) != string(want) {
		t.Fatal("recovered state differs from reference after torn-tail repair")
	}
}

func TestRecoverFailsWhileDiskStillBad(t *testing.T) {
	defer fault.Disarm()
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	agg := p.NewAggregator()
	st.SetSource(sourceOf(agg))
	reps, frames := makeFrames(t, p, 40, 3)

	fault.Arm(
		fault.Rule{Site: FaultWALAppend, Mode: fault.ModeError, Times: 1},
		fault.Rule{Site: FaultWALRotate, Mode: fault.ModeError},
	)
	if err := ingestChunkErr(st, agg, reps[:20], batchOf(frames[:20])); err == nil {
		t.Fatal("ingest with dead WAL succeeded")
	}
	// The disk is still bad: the revive's fresh segment cannot be
	// created, so Recover fails and the store stays failed.
	if err := st.Recover(); err == nil {
		t.Fatal("Recover succeeded while segment creation still fails")
	}
	if st.WALErr() == nil {
		t.Fatal("store reported healthy after failed Recover")
	}
	fault.Disarm()
	if err := st.Recover(); err != nil {
		t.Fatalf("Recover after disarm: %v", err)
	}
	ingestAll(t, st, agg, reps[20:], frames[20:])
}

func TestProbeDisk(t *testing.T) {
	defer fault.Disarm()
	dir := t.TempDir()
	if err := ProbeDisk(dir); err != nil {
		t.Fatalf("ProbeDisk on writable dir: %v", err)
	}
	// A path that cannot exist (child of a regular file) must fail.
	file := filepath.Join(dir, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ProbeDisk(filepath.Join(file, "sub")); err == nil {
		t.Fatal("ProbeDisk under a regular file succeeded")
	}
	// The probe's own fault site holds a degraded server down.
	fault.Arm(fault.Rule{Site: FaultDiskProbe, Mode: fault.ModeError})
	if err := ProbeDisk(dir); err == nil {
		t.Fatal("ProbeDisk succeeded with probe fault armed")
	}
}

// newestSegment returns the path of the highest-indexed WAL segment.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no WAL segments found")
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1])
}
