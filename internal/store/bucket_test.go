package store

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ldpmarginals/internal/core"
)

// TestRotateAlignsSegmentsWithBuckets: explicit rotation closes the
// active segment so a windowed deployment's WAL is time-bucketed — one
// sealed segment per bucket boundary, each holding only its bucket's
// reports.
func TestRotateAlignsSegmentsWithBuckets(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reps, frames := makeFrames(t, p, 300, 41)
	agg := core.NewSharded(p, 2)
	st.SetSource(agg.Snapshot)

	var sealed []uint64
	for b := 0; b < 3; b++ {
		ingestAll(t, st, agg, reps[b*100:(b+1)*100], frames[b*100:(b+1)*100])
		seg, err := st.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, seg)
	}
	for i := 1; i < len(sealed); i++ {
		if sealed[i] != sealed[i-1]+1 {
			t.Fatalf("bucket seals closed segments %v, want consecutive", sealed)
		}
	}
	if got := st.Status().Segments; got != 4 {
		t.Fatalf("%d segments after 3 bucket seals, want 3 sealed + 1 active", got)
	}
}

// TestRotateSkipsEmptyActiveSegment: a bucket seal with no ingested
// reports must not rotate — a windowed deployment seals a bucket every
// interval whether or not anything arrived, and rotating header-only
// segments would grow the directory without bound on an idle server
// (nothing expires, so nothing ever prunes them).
func TestRotateSkipsEmptyActiveSegment(t *testing.T) {
	p := testProtocol(t)
	st, err := Open(t.TempDir(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	agg := core.NewSharded(p, 2)
	st.SetSource(agg.Snapshot)

	for i := 0; i < 5; i++ {
		if _, err := st.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Status().Segments; got != 1 {
		t.Fatalf("%d segments after 5 idle bucket seals, want the single active segment", got)
	}

	reps, frames := makeFrames(t, p, 10, 45)
	ingestAll(t, st, agg, reps, frames)
	if _, err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	if got := st.Status().Segments; got != 2 {
		t.Fatalf("%d segments after a non-empty seal, want sealed + active", got)
	}
}

// TestCompactAfterShrinkPrunesBucketSegments drives the windowed
// retention flow: buckets seal (Rotate), the window shrinks as a
// bucket expires, and Compact — unlike Snapshot — re-snapshots the
// shrunken state even though no new reports arrived, which is what
// lets prune drop the expired bucket's segments from disk.
func TestCompactAfterShrinkPrunesBucketSegments(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reps, frames := makeFrames(t, p, 200, 42)
	agg := core.NewSharded(p, 2)
	// The source models a sliding window: it reports whatever state the
	// test says is currently inside the window.
	window := agg
	st.SetSource(func() (core.Aggregator, error) { return window.Snapshot() })

	// Bucket A, sealed.
	ingestAll(t, st, agg, reps[:100], frames[:100])
	if _, err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Bucket B, sealed; first snapshot covers both buckets.
	ingestAll(t, st, agg, reps[100:], frames[100:])
	if _, err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	firstSeq := st.Status().SnapshotSeq
	if firstSeq == 0 {
		t.Fatal("no snapshot written")
	}

	// Bucket A expires: the window now holds only bucket B. Snapshot
	// would skip (nothing new since the last one); Compact must not.
	shrunk := core.NewSharded(p, 2)
	if err := shrunk.ConsumeBatch(reps[100:]); err != nil {
		t.Fatal(err)
	}
	window = shrunk
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := st.Status().SnapshotSeq; got != firstSeq {
		t.Fatalf("idle Snapshot advanced the snapshot seq to %d", got)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	after := st.Status()
	if after.SnapshotSeq != firstSeq+1 {
		t.Fatalf("Compact did not write a snapshot: seq %d, want %d", after.SnapshotSeq, firstSeq+1)
	}
	// With two snapshots retained, the buckets covered by the older one
	// are redundant: pruning leaves the fallback tail plus the active
	// segment.
	if after.Segments > 2 {
		t.Fatalf("expired bucket segments not pruned: %d segments", after.Segments)
	}

	// Recovery sees the shrunken window, not the expired bucket.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec, _ := re.Recovered()
	if rec.N() != 100 {
		t.Fatalf("recovered %d reports, want the 100 inside the window", rec.N())
	}
	if !bytes.Equal(recoveredState(t, re), referenceState(t, p, reps[100:])) {
		t.Fatal("recovered window state differs from the surviving bucket's reference")
	}
}

// TestCrashRecoveryAcrossBucketedSegments: a crash (no final snapshot,
// no shutdown bookkeeping) with the WAL spread across bucket-aligned
// segments recovers the full window byte-identically — the durable half
// of the windowed-vs-direct bit-identity contract.
func TestCrashRecoveryAcrossBucketedSegments(t *testing.T) {
	p := testProtocol(t)
	dir := t.TempDir()
	st, err := Open(dir, p, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	reps, frames := makeFrames(t, p, 450, 43)
	agg := core.NewSharded(p, 2)
	for b := 0; b < 3; b++ {
		ingestAll(t, st, agg, reps[b*150:(b+1)*150], frames[b*150:(b+1)*150])
		if _, err := st.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	st.crash()

	re, err := Open(dir, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, stats := re.Recovered(); stats.SegmentsReplayed < 3 {
		t.Fatalf("replayed %d segments, want the 3 bucket segments", stats.SegmentsReplayed)
	}
	if !bytes.Equal(recoveredState(t, re), referenceState(t, p, reps)) {
		t.Fatal("crash recovery across bucketed segments diverges from the reference")
	}
}

// TestWALFailureStickyAcrossIngestAndClose pins the flush-error
// contract: once the committer records a failure, every subsequent
// Ingest fails instead of acking unsynced writes, the status reports
// it, and Close surfaces it rather than returning success.
func TestWALFailureStickyAcrossIngestAndClose(t *testing.T) {
	p := testProtocol(t)
	st, err := Open(t.TempDir(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, frames := makeFrames(t, p, 10, 44)
	agg := p.NewAggregator()
	ingestAll(t, st, agg, reps, frames)

	boom := errors.New("device error: lost flush")
	st.setWALFailure(boom)

	batch := batchOf(frames[:1])
	err = st.Ingest(batch, func() (int, int, error) { return 1, len(batch), nil })
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("ingest after WAL failure: %v, want the recorded flush error", err)
	}
	if got := st.Status().WALError; !strings.Contains(got, "lost flush") {
		t.Fatalf("status WALError = %q", got)
	}
	if _, err := st.Rotate(); !errors.Is(err, boom) {
		t.Fatalf("rotate after WAL failure: %v", err)
	}
	if err := st.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close returned %v, want the recorded flush error", err)
	}
}
