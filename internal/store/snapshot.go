package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/fault"
)

// Snapshot file format. A snapshot is one compacted counter state: the
// deployment identity, the highest WAL segment index it covers, and the
// aggregator's MarshalState blob, all under one trailing CRC:
//
//	"LDPS", version byte, config block,
//	uvarint covered segment index, uvarint report count,
//	uvarint state length, state bytes,
//	crc32c of everything above (4 bytes LE)
//
// Snapshots are written to a temp file, fsynced, and renamed into
// place, so a crash mid-write never shadows the previous snapshot.

// snapMeta is the in-memory identity of one valid snapshot file. state
// is only populated transiently during recovery.
type snapMeta struct {
	seq     uint64
	covered uint64
	n       int
	path    string
	state   []byte
}

// encodeSnapshot builds the snapshot file contents.
func encodeSnapshot(tag encoding.Tag, cfg core.Config, covered uint64, n int, state []byte) []byte {
	buf := appendConfig(append([]byte(snapMagic), formatV1), tag, cfg)
	buf = binary.AppendUvarint(buf, covered)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(len(state)))
	buf = append(buf, state...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// decodeSnapshot validates a snapshot file against the deployment and
// returns its coverage, report count, and state blob.
func decodeSnapshot(buf []byte, tag encoding.Tag, cfg core.Config) (covered uint64, n int, state []byte, err error) {
	if len(buf) < len(snapMagic)+1+crcBytes {
		return 0, 0, nil, fmt.Errorf("store: snapshot of %d bytes is too short", len(buf))
	}
	body, sum := buf[:len(buf)-crcBytes], binary.LittleEndian.Uint32(buf[len(buf)-crcBytes:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return 0, 0, nil, fmt.Errorf("store: snapshot checksum %08x, want %08x", got, sum)
	}
	if string(body[:len(snapMagic)]) != snapMagic {
		return 0, 0, nil, fmt.Errorf("store: bad snapshot magic %q", body[:len(snapMagic)])
	}
	if body[len(snapMagic)] != formatV1 {
		return 0, 0, nil, fmt.Errorf("store: snapshot format version %d, want %d", body[len(snapMagic)], formatV1)
	}
	rest, err := checkConfig(body[len(snapMagic)+1:], tag, cfg)
	if err != nil {
		return 0, 0, nil, err
	}
	covered, w := binary.Uvarint(rest)
	if w <= 0 {
		return 0, 0, nil, fmt.Errorf("store: snapshot covered-segment field malformed")
	}
	rest = rest[w:]
	count, w := binary.Uvarint(rest)
	if w <= 0 || count > uint64(math.MaxInt) {
		return 0, 0, nil, fmt.Errorf("store: snapshot report-count field malformed")
	}
	rest = rest[w:]
	stateLen, w := binary.Uvarint(rest)
	if w <= 0 || stateLen != uint64(len(rest)-w) {
		return 0, 0, nil, fmt.Errorf("store: snapshot state length %d does not match %d remaining bytes", stateLen, len(rest)-w)
	}
	return covered, int(count), rest[w:], nil
}

// writeSnapshotFile persists a snapshot atomically: temp file, fsync,
// rename, directory fsync.
func (s *Store) writeSnapshotFile(seq uint64, contents []byte) (string, error) {
	if err := fault.Hit(FaultSnapshotWrite); err != nil {
		return "", err
	}
	path := filepath.Join(s.dir, snapName(seq))
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(contents); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := syncDir(s.dir); err != nil {
		return "", err
	}
	return path, nil
}
