// Package hashing provides the hash families required by the frequency
// oracle baselines of Appendix B.2: a universal (pairwise-independent)
// family for optimized local hashing (InpOLH), and a 3-wise independent
// polynomial family for the Hadamard count-min sketch (InpHTCMS).
//
// Both families are built on arithmetic modulo the Mersenne prime
// 2^61 - 1, which supports exact modular multiplication of 61-bit values
// using 128-bit intermediate products (math/bits.Mul64).
package hashing

import (
	"fmt"
	"math/bits"

	"ldpmarginals/internal/rng"
)

// MersennePrime61 is the modulus 2^61 - 1 used by both families.
const MersennePrime61 = (1 << 61) - 1

// mulMod61 returns a*b mod 2^61-1 using a 128-bit intermediate.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// Split the 128-bit product into 61-bit chunks: the product equals
	// lo + hi*2^64 = lo + hi*8*2^61; since 2^61 ≡ 1 (mod p), fold chunks.
	res := (lo & MersennePrime61) + ((lo >> 61) | (hi << 3 & MersennePrime61)) + (hi >> 58)
	for res >= MersennePrime61 {
		res -= MersennePrime61
	}
	return res
}

// addMod61 returns a+b mod 2^61-1 for a, b < 2^61-1.
func addMod61(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// Universal is a pairwise-independent hash function h(x) = ((a*x + b) mod
// p) mod m mapping uint64 keys to [0, m). The (a, b) coefficients are the
// per-user random "hash choice" communicated to the aggregator in OLH; the
// whole function is identified by its Seed.
type Universal struct {
	a, b uint64
	m    uint64
	seed uint64
}

// NewUniversal draws a function uniformly from the universal family with
// range [0, m), deterministically from seed. It returns an error when
// m == 0.
func NewUniversal(seed uint64, m uint64) (*Universal, error) {
	if m == 0 {
		return nil, fmt.Errorf("hashing: universal hash range must be positive")
	}
	r := rng.New(seed ^ 0x5bf03635)
	a := r.Uint64n(MersennePrime61-1) + 1 // a in [1, p-1]
	b := r.Uint64n(MersennePrime61)       // b in [0, p-1]
	return &Universal{a: a, b: b, m: m, seed: seed}, nil
}

// Seed returns the seed identifying this function within the family.
func (u *Universal) Seed() uint64 { return u.seed }

// Range returns m, the size of the hash codomain.
func (u *Universal) Range() uint64 { return u.m }

// Hash returns h(x) in [0, m).
func (u *Universal) Hash(x uint64) uint64 {
	// Reduce x into the field first (2^61-1 < 2^64).
	x %= MersennePrime61
	return addMod61(mulMod61(u.a, x), u.b) % u.m
}

// ThreeWise is a 3-wise independent hash function h(x) = ((a*x^2 + b*x +
// c) mod p) mod m. Degree-2 polynomials over a field are exactly 3-wise
// independent, which is the guarantee the count-min sketch analysis needs.
type ThreeWise struct {
	a, b, c uint64
	m       uint64
}

// NewThreeWise draws a function from the 3-wise independent family with
// range [0, m), deterministically from seed. It returns an error when
// m == 0.
func NewThreeWise(seed uint64, m uint64) (*ThreeWise, error) {
	if m == 0 {
		return nil, fmt.Errorf("hashing: 3-wise hash range must be positive")
	}
	r := rng.New(seed ^ 0x9d2c5680)
	return &ThreeWise{
		a: r.Uint64n(MersennePrime61-1) + 1,
		b: r.Uint64n(MersennePrime61),
		c: r.Uint64n(MersennePrime61),
		m: m,
	}, nil
}

// Range returns m, the size of the hash codomain.
func (h *ThreeWise) Range() uint64 { return h.m }

// Hash returns h(x) in [0, m).
func (h *ThreeWise) Hash(x uint64) uint64 {
	x %= MersennePrime61
	x2 := mulMod61(x, x)
	v := addMod61(addMod61(mulMod61(h.a, x2), mulMod61(h.b, x)), h.c)
	return v % h.m
}

// Family is a fixed collection of g independent 3-wise hash functions
// sharing a range, as used by the count-min sketch (one row per function).
type Family struct {
	fns []*ThreeWise
}

// NewFamily builds g independent ThreeWise functions with range [0, m)
// from a base seed.
func NewFamily(seed uint64, g int, m uint64) (*Family, error) {
	if g <= 0 {
		return nil, fmt.Errorf("hashing: family size must be positive, got %d", g)
	}
	fns := make([]*ThreeWise, g)
	base := rng.New(seed)
	for i := range fns {
		fn, err := NewThreeWise(base.Uint64(), m)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	return &Family{fns: fns}, nil
}

// Size returns the number of functions in the family.
func (f *Family) Size() int { return len(f.fns) }

// Hash applies the i-th function to x.
func (f *Family) Hash(i int, x uint64) uint64 { return f.fns[i].Hash(x) }
