package hashing

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestMulMod61MatchesBigInt(t *testing.T) {
	p := big.NewInt(MersennePrime61)
	f := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		want := new(big.Int).Mul(big.NewInt(int64(a)), big.NewInt(int64(b)))
		want.Mod(want, p)
		return mulMod61(a, b) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAddMod61(t *testing.T) {
	if got := addMod61(MersennePrime61-1, 1); got != 0 {
		t.Errorf("addMod61 wraparound = %d, want 0", got)
	}
	if got := addMod61(5, 7); got != 12 {
		t.Errorf("addMod61(5,7) = %d", got)
	}
}

func TestUniversalRange(t *testing.T) {
	u, err := NewUniversal(1, 17)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 10000; x++ {
		if h := u.Hash(x); h >= 17 {
			t.Fatalf("Hash(%d) = %d out of range", x, h)
		}
	}
}

func TestUniversalZeroRangeErr(t *testing.T) {
	if _, err := NewUniversal(1, 0); err == nil {
		t.Error("expected error for m=0")
	}
	if _, err := NewThreeWise(1, 0); err == nil {
		t.Error("expected error for m=0")
	}
}

func TestUniversalDeterministic(t *testing.T) {
	u1, _ := NewUniversal(99, 64)
	u2, _ := NewUniversal(99, 64)
	for x := uint64(0); x < 100; x++ {
		if u1.Hash(x) != u2.Hash(x) {
			t.Fatal("same seed should give same function")
		}
	}
	if u1.Seed() != 99 || u1.Range() != 64 {
		t.Error("accessor mismatch")
	}
}

func TestUniversalUniformity(t *testing.T) {
	// Average over many functions: each bucket should receive ~1/m of keys.
	const m, keys, funcs = 8, 64, 500
	counts := make([]int, m)
	for s := uint64(0); s < funcs; s++ {
		u, _ := NewUniversal(s, m)
		for x := uint64(0); x < keys; x++ {
			counts[u.Hash(x)]++
		}
	}
	total := float64(keys * funcs)
	for b, c := range counts {
		got := float64(c) / total
		if math.Abs(got-1.0/m) > 0.01 {
			t.Errorf("bucket %d load %v, want ~%v", b, got, 1.0/m)
		}
	}
}

func TestUniversalPairwiseCollisions(t *testing.T) {
	// Pairwise independence: Pr[h(x)=h(y)] should be ~1/m for x != y.
	const m, funcs = 16, 4000
	pairs := [][2]uint64{{0, 1}, {3, 77}, {1 << 20, 1<<20 + 5}, {12345, 54321}}
	for _, pr := range pairs {
		coll := 0
		for s := uint64(0); s < funcs; s++ {
			u, _ := NewUniversal(s*7+1, m)
			if u.Hash(pr[0]) == u.Hash(pr[1]) {
				coll++
			}
		}
		got := float64(coll) / funcs
		if math.Abs(got-1.0/m) > 0.02 {
			t.Errorf("collision rate for %v = %v, want ~%v", pr, got, 1.0/m)
		}
	}
}

func TestThreeWiseRangeAndDeterminism(t *testing.T) {
	h1, _ := NewThreeWise(5, 256)
	h2, _ := NewThreeWise(5, 256)
	for x := uint64(0); x < 5000; x++ {
		v := h1.Hash(x)
		if v >= 256 {
			t.Fatalf("out of range: %d", v)
		}
		if v != h2.Hash(x) {
			t.Fatal("determinism violated")
		}
	}
	if h1.Range() != 256 {
		t.Error("Range accessor wrong")
	}
}

func TestThreeWiseTripleIndependenceSpot(t *testing.T) {
	// For three fixed distinct keys, the joint distribution of hash values
	// over random functions should be close to uniform over m^3 — we spot
	// check the first two marginals and one joint cell with m=2 so that
	// the 8 joint cells each get mass ~1/8.
	const m, funcs = 2, 8000
	keys := [3]uint64{11, 222, 3333}
	jointCounts := map[[3]uint64]int{}
	for s := uint64(0); s < funcs; s++ {
		h, _ := NewThreeWise(s*13+7, m)
		var j [3]uint64
		for i, k := range keys {
			j[i] = h.Hash(k)
		}
		jointCounts[j]++
	}
	for cell, c := range jointCounts {
		got := float64(c) / funcs
		if math.Abs(got-1.0/8) > 0.03 {
			t.Errorf("joint cell %v mass %v, want ~0.125", cell, got)
		}
	}
	if len(jointCounts) != 8 {
		t.Errorf("expected all 8 joint cells to be hit, got %d", len(jointCounts))
	}
}

func TestFamily(t *testing.T) {
	f, err := NewFamily(1, 5, 256)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 5 {
		t.Fatalf("Size = %d", f.Size())
	}
	// Functions should differ from one another.
	same := 0
	for x := uint64(0); x < 100; x++ {
		if f.Hash(0, x) == f.Hash(1, x) {
			same++
		}
	}
	if same > 20 {
		t.Errorf("rows 0 and 1 agree on %d of 100 keys; expected ~1/256 collisions", same)
	}
	if _, err := NewFamily(1, 0, 4); err == nil {
		t.Error("expected error for g=0")
	}
}
