// Package mech implements the basic local-differential-privacy mechanisms
// of Section 3.1 of the paper, together with their unbiased estimators
// (Section 4.1) and exact privacy accounting:
//
//   - RR: binary randomized response (Warner).
//   - PRR: parallel randomized response over a bit vector (BasicRAPPOR /
//     unary encoding), in both the vanilla e^{eps/2} form and the Wang et
//     al. optimized (OUE) form used by the paper's experiments.
//   - GRR: preferential sampling / generalized randomized response /
//     direct encoding over m categories.
//   - RRS: randomized response with sampling — sample one of m positions
//     uniformly and release its bit through RR.
//
// Each mechanism reports the epsilon it provides so tests can verify the
// privacy claims of Facts 3.1 and 3.2 directly from the probabilities.
package mech

import (
	"fmt"
	"math"

	"ldpmarginals/internal/rng"
)

// PFromEpsilon returns the keep probability p = e^eps / (1 + e^eps) that
// makes binary randomized response eps-LDP.
func PFromEpsilon(eps float64) float64 {
	return math.Exp(eps) / (1 + math.Exp(eps))
}

// SplitEpsilon returns the per-piece budget eps/m of the budget-splitting
// (BS) composition strategy for m pieces.
func SplitEpsilon(eps float64, m int) (float64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("mech: budget split over %d pieces", m)
	}
	if eps <= 0 {
		return 0, fmt.Errorf("mech: epsilon must be positive, got %v", eps)
	}
	return eps / float64(m), nil
}

// RR is binary randomized response: report the true bit with probability
// P > 1/2, the opposite otherwise.
type RR struct {
	// P is the probability of reporting the truth.
	P float64
}

// NewRR returns the eps-LDP binary randomized response mechanism.
func NewRR(eps float64) (*RR, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mech: epsilon must be positive, got %v", eps)
	}
	return &RR{P: PFromEpsilon(eps)}, nil
}

// Epsilon returns the privacy parameter ln(P / (1-P)) this instance
// provides.
func (m *RR) Epsilon() float64 { return math.Log(m.P / (1 - m.P)) }

// PerturbBit reports b truthfully with probability P.
func (m *RR) PerturbBit(b bool, r *rng.RNG) bool {
	if r.Bernoulli(m.P) {
		return b
	}
	return !b
}

// PerturbSign applies randomized response to a +-1 value: the sign is
// kept with probability P and flipped otherwise.
func (m *RR) PerturbSign(s float64, r *rng.RNG) float64 {
	if r.Bernoulli(m.P) {
		return s
	}
	return -s
}

// UnbiasSign converts a single +-1 report into an unbiased estimate of
// the true sign: E[y/(2P-1)] = s.
func (m *RR) UnbiasSign(y float64) float64 { return y / (2*m.P - 1) }

// UnbiasMean converts the observed frequency of 1-reports into an
// unbiased estimate of the true frequency of 1s:
// E[F] = f*P + (1-f)*(1-P)  =>  f = (F - (1-P)) / (2P - 1).
func (m *RR) UnbiasMean(observed float64) float64 {
	return (observed - (1 - m.P)) / (2*m.P - 1)
}

// PRR is parallel randomized response over a bit vector: every position
// is perturbed independently. P1 is the probability of reporting 1 when
// the true bit is 1; P0 the probability of reporting 1 when it is 0.
type PRR struct {
	P1, P0 float64
	// Optimized records whether the Wang et al. (OUE) probabilities are
	// in use; retained for reporting.
	Optimized bool
}

// NewPRR returns a parallel randomized response mechanism that is eps-LDP
// on one-hot (sparse) input vectors. With optimized=false it uses the
// symmetric probabilities of Fact 3.2 (each bit gets eps/2-RR); with
// optimized=true it uses the Wang et al. asymmetric setting P1 = 1/2,
// P0 = 1/(e^eps + 1), which slightly improves variance at the same eps.
func NewPRR(eps float64, optimized bool) (*PRR, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mech: epsilon must be positive, got %v", eps)
	}
	if optimized {
		return &PRR{P1: 0.5, P0: 1 / (math.Exp(eps) + 1), Optimized: true}, nil
	}
	p := PFromEpsilon(eps / 2)
	return &PRR{P1: p, P0: 1 - p}, nil
}

// EpsilonSparse returns the privacy parameter this instance provides on
// one-hot inputs. Adjacent inputs differ in exactly two positions; the
// worst-case likelihood ratio is
// max_y P(y|1)/P(y|0) * max_y P(y|0)/P(y|1).
func (m *PRR) EpsilonSparse() float64 {
	up := math.Max(m.P1/m.P0, (1-m.P1)/(1-m.P0))
	down := math.Max(m.P0/m.P1, (1-m.P0)/(1-m.P1))
	return math.Log(up * down)
}

// PerturbBit reports a (possibly flipped) version of b.
func (m *PRR) PerturbBit(b bool, r *rng.RNG) bool {
	if b {
		return r.Bernoulli(m.P1)
	}
	return r.Bernoulli(m.P0)
}

// PerturbOneHot perturbs the one-hot vector of length size with signal
// position signal, returning the set of positions reported as 1 as a
// bitmap packed into uint64 words. size must be at most 1<<20 to bound
// the per-user work (the paper advises against InpRR beyond small d for
// exactly this reason).
func (m *PRR) PerturbOneHot(signal uint64, size int, r *rng.RNG) ([]uint64, error) {
	const maxSize = 1 << 20
	if size <= 0 || size > maxSize {
		return nil, fmt.Errorf("mech: one-hot size %d out of range (1..%d)", size, maxSize)
	}
	if signal >= uint64(size) {
		return nil, fmt.Errorf("mech: signal %d outside vector of size %d", signal, size)
	}
	words := (size + 63) / 64
	out := make([]uint64, words)
	for i := 0; i < size; i++ {
		if m.PerturbBit(uint64(i) == signal, r) {
			out[i/64] |= 1 << uint(i%64)
		}
	}
	return out, nil
}

// UnbiasFrequency converts the observed fraction of 1-reports at a
// position into an unbiased estimate of the true frequency of 1s there:
// E[F] = f*P1 + (1-f)*P0  =>  f = (F - P0) / (P1 - P0).
func (m *PRR) UnbiasFrequency(observed float64) float64 {
	return (observed - m.P0) / (m.P1 - m.P0)
}

// GRR is generalized randomized response over m categories (the paper's
// preferential sampling, PS): report the true category with probability
// Ps, otherwise one of the remaining m-1 uniformly.
type GRR struct {
	M  uint64  // number of categories
	Ps float64 // probability of reporting the true category
}

// NewGRR returns the eps-LDP generalized randomized response over m >= 2
// categories, with Ps = e^eps / (e^eps + m - 1) (Fact 3.1 rearranged).
func NewGRR(eps float64, m uint64) (*GRR, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mech: epsilon must be positive, got %v", eps)
	}
	if m < 2 {
		return nil, fmt.Errorf("mech: GRR needs at least 2 categories, got %d", m)
	}
	e := math.Exp(eps)
	return &GRR{M: m, Ps: e / (e + float64(m) - 1)}, nil
}

// Epsilon returns the privacy parameter ln(Ps/(1-Ps) * (m-1)) this
// instance provides (Fact 3.1).
func (g *GRR) Epsilon() float64 {
	return math.Log(g.Ps / (1 - g.Ps) * float64(g.M-1))
}

// Perturb reports the true category with probability Ps and a uniformly
// random different category otherwise.
func (g *GRR) Perturb(truth uint64, r *rng.RNG) uint64 {
	if r.Bernoulli(g.Ps) {
		return truth
	}
	// Uniform over the other m-1 categories.
	v := r.Uint64n(g.M - 1)
	if v >= truth {
		v++
	}
	return v
}

// UnbiasFrequency converts the observed report fraction F_j of category j
// into an unbiased estimate of the true fraction f_j (Section 4.1):
// f_j = (D*F_j + Ps - 1) / (D*Ps + Ps - 1), with D = m-1.
func (g *GRR) UnbiasFrequency(observed float64) float64 {
	d := float64(g.M - 1)
	return (d*observed + g.Ps - 1) / (d*g.Ps + g.Ps - 1)
}

// UnbiasAll applies UnbiasFrequency to per-category report counts,
// returning estimated true fractions. total must be positive.
func (g *GRR) UnbiasAll(counts []uint64, total uint64) ([]float64, error) {
	if uint64(len(counts)) != g.M {
		return nil, fmt.Errorf("mech: got %d counts for %d categories", len(counts), g.M)
	}
	if total == 0 {
		return nil, fmt.Errorf("mech: cannot unbias zero reports")
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = g.UnbiasFrequency(float64(c) / float64(total))
	}
	return out, nil
}

// RRS is randomized response with sampling: the user samples one of M
// positions of their (sparse) bit vector uniformly and releases that bit
// through eps-RR. It is the generic primitive behind Theorem 4.2.
type RRS struct {
	M  uint64
	RR *RR
}

// NewRRS returns the eps-LDP sampled randomized response over m
// positions.
func NewRRS(eps float64, m uint64) (*RRS, error) {
	if m == 0 {
		return nil, fmt.Errorf("mech: RRS needs at least 1 position")
	}
	rr, err := NewRR(eps)
	if err != nil {
		return nil, err
	}
	return &RRS{M: m, RR: rr}, nil
}

// Perturb samples a position uniformly and reports (position, perturbed
// bit), where the true bit is 1 exactly at the signal position.
func (s *RRS) Perturb(signal uint64, r *rng.RNG) (pos uint64, bit bool) {
	pos = r.Uint64n(s.M)
	return pos, s.RR.PerturbBit(pos == signal, r)
}

// UnbiasFrequency converts the observed fraction of 1-reports among the
// users that sampled a given position into an unbiased frequency
// estimate for that position.
func (s *RRS) UnbiasFrequency(observed float64) float64 {
	return s.RR.UnbiasMean(observed)
}
