package mech

import (
	"math"
	"testing"

	"ldpmarginals/internal/rng"
)

const ln3 = 1.0986122886681098

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPFromEpsilon(t *testing.T) {
	// e^eps = 3 => p = 3/4.
	if got := PFromEpsilon(ln3); !almostEq(got, 0.75, 1e-12) {
		t.Errorf("PFromEpsilon(ln 3) = %v, want 0.75", got)
	}
}

func TestSplitEpsilon(t *testing.T) {
	got, err := SplitEpsilon(1.0, 4)
	if err != nil || got != 0.25 {
		t.Errorf("SplitEpsilon(1,4) = %v, %v", got, err)
	}
	if _, err := SplitEpsilon(1.0, 0); err == nil {
		t.Error("expected error for m=0")
	}
	if _, err := SplitEpsilon(-1, 2); err == nil {
		t.Error("expected error for negative epsilon")
	}
}

func TestRRPrivacy(t *testing.T) {
	for _, eps := range []float64{0.1, 0.5, ln3, 2.0} {
		m, err := NewRR(eps)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(m.Epsilon(), eps, 1e-9) {
			t.Errorf("RR(%v).Epsilon() = %v", eps, m.Epsilon())
		}
		if m.P <= 0.5 || m.P >= 1 {
			t.Errorf("RR keep probability %v out of (1/2, 1)", m.P)
		}
	}
	if _, err := NewRR(0); err == nil {
		t.Error("expected error for eps=0")
	}
}

func TestRRUnbiasedness(t *testing.T) {
	m, _ := NewRR(ln3)
	r := rng.New(1)
	const n = 200000
	// True frequency of 1s: 0.3.
	ones := 0
	for i := 0; i < n; i++ {
		truth := r.Bernoulli(0.3)
		if m.PerturbBit(truth, r) {
			ones++
		}
	}
	est := m.UnbiasMean(float64(ones) / n)
	if !almostEq(est, 0.3, 0.01) {
		t.Errorf("RR unbiased estimate = %v, want ~0.3", est)
	}
}

func TestRRSignUnbiasedness(t *testing.T) {
	m, _ := NewRR(1.0)
	r := rng.New(2)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.UnbiasSign(m.PerturbSign(-1, r))
	}
	if !almostEq(sum/n, -1, 0.03) {
		t.Errorf("mean unbiased sign = %v, want ~-1", sum/n)
	}
}

func TestPRRProbabilities(t *testing.T) {
	vanilla, err := NewPRR(ln3, false)
	if err != nil {
		t.Fatal(err)
	}
	// eps/2-RR keep probability: e^{eps/2}/(1+e^{eps/2}) with e^eps=3
	// => sqrt(3)/(1+sqrt(3)).
	want := math.Sqrt(3) / (1 + math.Sqrt(3))
	if !almostEq(vanilla.P1, want, 1e-12) || !almostEq(vanilla.P0, 1-want, 1e-12) {
		t.Errorf("vanilla PRR probabilities = (%v, %v)", vanilla.P1, vanilla.P0)
	}
	oue, err := NewPRR(ln3, true)
	if err != nil {
		t.Fatal(err)
	}
	if oue.P1 != 0.5 || !almostEq(oue.P0, 0.25, 1e-12) {
		t.Errorf("OUE probabilities = (%v, %v), want (0.5, 0.25)", oue.P1, oue.P0)
	}
}

func TestPRRPrivacySparse(t *testing.T) {
	// Fact 3.2: both variants must provide exactly eps on one-hot inputs.
	for _, eps := range []float64{0.2, 1.1, 2.0} {
		for _, opt := range []bool{false, true} {
			m, _ := NewPRR(eps, opt)
			if got := m.EpsilonSparse(); !almostEq(got, eps, 1e-9) {
				t.Errorf("PRR(eps=%v, optimized=%v).EpsilonSparse() = %v", eps, opt, got)
			}
		}
	}
}

func TestPRRUnbiasedness(t *testing.T) {
	for _, opt := range []bool{false, true} {
		m, _ := NewPRR(ln3, opt)
		r := rng.New(3)
		const n = 300000
		ones := 0
		for i := 0; i < n; i++ {
			truth := r.Bernoulli(0.2)
			if m.PerturbBit(truth, r) {
				ones++
			}
		}
		est := m.UnbiasFrequency(float64(ones) / n)
		if !almostEq(est, 0.2, 0.01) {
			t.Errorf("PRR(optimized=%v) estimate = %v, want ~0.2", opt, est)
		}
	}
}

func TestPRRPerturbOneHot(t *testing.T) {
	m, _ := NewPRR(2.0, true)
	r := rng.New(4)
	out, err := m.PerturbOneHot(5, 128, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("expected 2 words for 128 bits, got %d", len(out))
	}
	if _, err := m.PerturbOneHot(128, 128, r); err == nil {
		t.Error("signal out of range should error")
	}
	if _, err := m.PerturbOneHot(0, 0, r); err == nil {
		t.Error("size 0 should error")
	}
	if _, err := m.PerturbOneHot(0, 1<<21, r); err == nil {
		t.Error("oversized vector should error")
	}
}

func TestGRRPrivacy(t *testing.T) {
	for _, m := range []uint64{2, 16, 256} {
		for _, eps := range []float64{0.3, 1.1} {
			g, err := NewGRR(eps, m)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEq(g.Epsilon(), eps, 1e-9) {
				t.Errorf("GRR(m=%d, eps=%v).Epsilon() = %v", m, eps, g.Epsilon())
			}
		}
	}
	if _, err := NewGRR(1.0, 1); err == nil {
		t.Error("expected error for m=1")
	}
	if _, err := NewGRR(0, 4); err == nil {
		t.Error("expected error for eps=0")
	}
}

func TestGRREqualsRRForTwoCategories(t *testing.T) {
	// Paper: "When m = 2 this mechanism is equivalent to 1 bit randomized
	// response."
	g, _ := NewGRR(ln3, 2)
	r, _ := NewRR(ln3)
	if !almostEq(g.Ps, r.P, 1e-12) {
		t.Errorf("GRR(2).Ps = %v, RR.P = %v", g.Ps, r.P)
	}
}

func TestGRRPerturbDistribution(t *testing.T) {
	g, _ := NewGRR(ln3, 4)
	r := rng.New(5)
	const n = 200000
	counts := make([]uint64, 4)
	for i := 0; i < n; i++ {
		counts[g.Perturb(2, r)]++
	}
	gotTrue := float64(counts[2]) / n
	if !almostEq(gotTrue, g.Ps, 0.01) {
		t.Errorf("true category frequency = %v, want ~%v", gotTrue, g.Ps)
	}
	other := (1 - g.Ps) / 3
	for _, j := range []int{0, 1, 3} {
		got := float64(counts[j]) / n
		if !almostEq(got, other, 0.01) {
			t.Errorf("category %d frequency = %v, want ~%v", j, got, other)
		}
	}
}

func TestGRRUnbiasedness(t *testing.T) {
	g, _ := NewGRR(1.0, 8)
	r := rng.New(6)
	const n = 400000
	// Skewed truth: category 0 with prob 0.5, category 7 with prob 0.5.
	counts := make([]uint64, 8)
	for i := 0; i < n; i++ {
		truth := uint64(0)
		if r.Bernoulli(0.5) {
			truth = 7
		}
		counts[g.Perturb(truth, r)]++
	}
	est, err := g.UnbiasAll(counts, n)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(est[0], 0.5, 0.02) || !almostEq(est[7], 0.5, 0.02) {
		t.Errorf("estimates = %v, want ~0.5 at 0 and 7", est)
	}
	for _, j := range []int{1, 2, 3, 4, 5, 6} {
		if !almostEq(est[j], 0, 0.02) {
			t.Errorf("estimate[%d] = %v, want ~0", j, est[j])
		}
	}
}

func TestGRRUnbiasAllErrors(t *testing.T) {
	g, _ := NewGRR(1.0, 4)
	if _, err := g.UnbiasAll(make([]uint64, 3), 10); err == nil {
		t.Error("wrong count length should error")
	}
	if _, err := g.UnbiasAll(make([]uint64, 4), 0); err == nil {
		t.Error("zero total should error")
	}
}

func TestRRS(t *testing.T) {
	s, err := NewRRS(ln3, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	const n = 500000
	onesAt := make([]int, 16)
	totalAt := make([]int, 16)
	// All users have signal at position 3.
	for i := 0; i < n; i++ {
		pos, bit := s.Perturb(3, r)
		totalAt[pos]++
		if bit {
			onesAt[pos]++
		}
	}
	est3 := s.UnbiasFrequency(float64(onesAt[3]) / float64(totalAt[3]))
	if !almostEq(est3, 1, 0.02) {
		t.Errorf("estimate at signal = %v, want ~1", est3)
	}
	est0 := s.UnbiasFrequency(float64(onesAt[0]) / float64(totalAt[0]))
	if !almostEq(est0, 0, 0.02) {
		t.Errorf("estimate off signal = %v, want ~0", est0)
	}
	if _, err := NewRRS(1.0, 0); err == nil {
		t.Error("expected error for m=0")
	}
}

func TestGRRUnbiasMatchesPaperFormula(t *testing.T) {
	// Cross-check the paper's closed form f = (D F + ps - 1)/(D ps + ps - 1)
	// against the derivation from first principles used in UnbiasFrequency.
	g, _ := NewGRR(0.7, 32)
	d := float64(31)
	for _, f := range []float64{0, 0.1, 0.5, 1} {
		observed := f*g.Ps + (1-f)*(1-g.Ps)/d
		if got := g.UnbiasFrequency(observed); !almostEq(got, f, 1e-9) {
			t.Errorf("round trip for f=%v gave %v", f, got)
		}
	}
}

func BenchmarkRRPerturb(b *testing.B) {
	m, _ := NewRR(1.1)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = m.PerturbBit(i&1 == 0, r)
	}
}

func BenchmarkGRRPerturb(b *testing.B) {
	g, _ := NewGRR(1.1, 256)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = g.Perturb(uint64(i)&255, r)
	}
}

func BenchmarkPRROneHot256(b *testing.B) {
	m, _ := NewPRR(1.1, true)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := m.PerturbOneHot(uint64(i)&255, 256, r); err != nil {
			b.Fatal(err)
		}
	}
}
