// Package rng implements the deterministic pseudo-random number generator
// used by every randomized component in this repository.
//
// The generator is xoshiro256** seeded through splitmix64, which gives
// high-quality 64-bit streams from a single word seed and supports cheap
// forking of independent streams for parallel simulation. All experiment
// code takes explicit seeds so results are reproducible run-to-run.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; fork one per goroutine with Fork.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for Gaussian (Marsaglia polar method)
	spare    float64
	hasSpare bool
}

// splitmix64 advances *x and returns the next output of the splitmix64
// sequence. It is used for seeding only.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	s := seed
	for i := range r.s {
		r.s[i] = splitmix64(&s)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives an independent generator from r. The child stream is a
// deterministic function of r's current state, and forking advances r, so
// successive forks are distinct.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64() ^ 0xd3833e804f4c574b)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching the
// contract of math/rand.Intn.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to avoid modulo bias.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Bernoulli returns true with probability p. Probabilities outside [0,1]
// are clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// PlusMinusOne returns +1 with probability p and -1 otherwise.
func (r *RNG) PlusMinusOne(p float64) int {
	if r.Bernoulli(p) {
		return 1
	}
	return -1
}

// Normal returns a standard normal deviate via the Marsaglia polar method.
func (r *RNG) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			factor := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * factor
			r.hasSpare = true
			return u * factor
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Binomial samples the number of successes in n independent Bernoulli(p)
// trials. Small cases are sampled exactly; when n*p*(1-p) is large the
// normal approximation (rounded and clamped to [0, n]) is used, which
// preserves the mean and variance that the protocol simulations rely on.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if variance := float64(n) * p * (1 - p); variance > 100 {
		mean := float64(n) * p
		k := int(math.Round(mean + r.Normal()*math.Sqrt(variance)))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
	k := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			k++
		}
	}
	return k
}

// Categorical samples an index proportionally to the non-negative weights.
// It panics if weights is empty or sums to zero.
func (r *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: Categorical with empty or zero-mass weights")
	}
	u := r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return 0
}
