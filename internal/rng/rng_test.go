package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Errorf("seed 0 produced only %d distinct values of 100", len(seen))
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork()
	c2 := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("sibling forks produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, buckets = 120000, 6
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(17)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.75} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 4*math.Sqrt(p*(1-p)/n) {
			t.Errorf("Bernoulli(%v) frequency = %v", p, got)
		}
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	if r.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) should clamp to false")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) should clamp to true")
	}
}

func TestPlusMinusOne(t *testing.T) {
	r := New(19)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.PlusMinusOne(0.75)
	}
	// E[sum] = n*(2*0.75-1) = n/2
	if math.Abs(float64(sum)-float64(n)/2) > 4*math.Sqrt(float64(n)) {
		t.Errorf("PlusMinusOne(0.75) sum = %d, want ~%d", sum, n/2)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := New(29)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 8)
	for _, v := range xs {
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("value %d missing after shuffle", i)
		}
	}
}

func TestBinomialSmall(t *testing.T) {
	r := New(41)
	const trials = 50000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(r.Binomial(10, 0.3))
	}
	mean := sum / trials
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Binomial(10,0.3) mean = %v, want ~3", mean)
	}
}

func TestBinomialLargeNormalApprox(t *testing.T) {
	r := New(43)
	const n, p = 100000, 0.25
	const trials = 2000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		k := float64(r.Binomial(n, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	if math.Abs(mean-wantMean) > 0.01*wantMean {
		t.Errorf("Binomial mean = %v, want ~%v", mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 0.15*wantVar {
		t.Errorf("Binomial variance = %v, want ~%v", variance, wantVar)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(47)
	if r.Binomial(0, 0.5) != 0 {
		t.Error("n=0 should give 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Error("p=0 should give 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("p=1 should give n")
	}
	for i := 0; i < 100; i++ {
		if k := r.Binomial(5, 0.5); k < 0 || k > 5 {
			t.Fatalf("Binomial out of range: %d", k)
		}
	}
}

func TestCategorical(t *testing.T) {
	r := New(37)
	weights := []float64{1, 0, 3}
	const n = 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	got := float64(counts[2]) / n
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("index 2 frequency = %v, want ~0.75", got)
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Categorical with zero mass should panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkBernoulli(b *testing.B) {
	r := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if r.Bernoulli(0.3) {
			n++
		}
	}
	_ = n
}
