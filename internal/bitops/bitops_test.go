package bitops

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestOnesCount(t *testing.T) {
	cases := []struct {
		m    uint64
		want int
	}{
		{0, 0}, {1, 1}, {0b1011, 3}, {1 << 39, 1}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := OnesCount(c.m); got != c.want {
			t.Errorf("OnesCount(%#x) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestParity(t *testing.T) {
	if Parity(0b101) != 0 {
		t.Errorf("Parity(0b101) = %d, want 0", Parity(0b101))
	}
	if Parity(0b111) != 1 {
		t.Errorf("Parity(0b111) = %d, want 1", Parity(0b111))
	}
}

func TestInnerProductSign(t *testing.T) {
	if got := InnerProductSign(0b11, 0b01); got != -1 {
		t.Errorf("sign(0b11,0b01) = %d, want -1", got)
	}
	if got := InnerProductSign(0b11, 0b11); got != 1 {
		t.Errorf("sign(0b11,0b11) = %d, want 1", got)
	}
	if got := InnerProductSign(0, 0xfff); got != 1 {
		t.Errorf("sign(0,...) = %d, want 1", got)
	}
}

func TestInnerProductSignMultiplicative(t *testing.T) {
	// (-1)^<i,j1 xor j2 restricted...> is not multiplicative in general,
	// but the sign is multiplicative over disjoint splits of i.
	f := func(i1, i2, j uint64) bool {
		i1 &= 0x0f0f
		i2 &= 0xf0f0 // disjoint supports
		return InnerProductSign(i1|i2, j) == InnerProductSign(i1, j)*InnerProductSign(i2, j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsSubset(t *testing.T) {
	if !IsSubset(0b0101, 0b1101) {
		t.Error("0101 should be subset of 1101")
	}
	if IsSubset(0b0011, 0b0101) {
		t.Error("0011 should not be subset of 0101")
	}
	if !IsSubset(0, 0) || !IsSubset(0, 0b111) {
		t.Error("0 is a subset of everything")
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want uint64
	}{
		{0, 0, 1}, {4, 2, 6}, {8, 2, 28}, {16, 2, 120}, {24, 2, 276},
		{8, 3, 56}, {10, 5, 252}, {40, 20, 137846528820},
		{5, -1, 0}, {5, 6, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n % 41)
		kk := int(k % 41)
		return Binomial(nn, kk) == Binomial(nn, nn-kk) || kk > nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountAtMostK(t *testing.T) {
	// Paper Section 3.2 example: d=4, k=2 needs C(4,0)+C(4,1)+C(4,2) = 11
	// coefficients; CountAtMostK excludes the constant, so 10.
	if got := CountAtMostK(4, 2); got != 10 {
		t.Errorf("CountAtMostK(4,2) = %d, want 10", got)
	}
	if got := CountAtMostK(8, 2); got != 8+28 {
		t.Errorf("CountAtMostK(8,2) = %d, want 36", got)
	}
	if got := CountAtMostK(3, 5); got != 7 {
		t.Errorf("CountAtMostK(3,5) = %d, want 7 (clamped at d)", got)
	}
}

func TestMasksWithExactlyK(t *testing.T) {
	got := MasksWithExactlyK(4, 2)
	want := []uint64{0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %04b, want %04b", i, got[i], want[i])
		}
	}
}

func TestMasksWithExactlyKCounts(t *testing.T) {
	for d := 1; d <= 16; d++ {
		for k := 0; k <= d; k++ {
			masks := MasksWithExactlyK(d, k)
			if uint64(len(masks)) != Binomial(d, k) {
				t.Fatalf("d=%d k=%d: %d masks, want C=%d", d, k, len(masks), Binomial(d, k))
			}
			for _, m := range masks {
				if bits.OnesCount64(m) != k {
					t.Fatalf("mask %b has wrong popcount", m)
				}
				if m >= 1<<uint(d) {
					t.Fatalf("mask %b out of d=%d range", m, d)
				}
			}
		}
	}
}

func TestMasksWithExactlyKEdge(t *testing.T) {
	if got := MasksWithExactlyK(5, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("k=0 should yield [0], got %v", got)
	}
	if got := MasksWithExactlyK(5, 6); got != nil {
		t.Errorf("k>d should yield nil, got %v", got)
	}
	if got := MasksWithExactlyK(3, 3); len(got) != 1 || got[0] != 0b111 {
		t.Errorf("k=d should yield the full mask, got %v", got)
	}
}

func TestMasksWithAtMostK(t *testing.T) {
	got := MasksWithAtMostK(4, 1, 2)
	if uint64(len(got)) != Binomial(4, 1)+Binomial(4, 2) {
		t.Fatalf("len = %d, want 10", len(got))
	}
	// Sorted by popcount: first four have 1 bit.
	for i := 0; i < 4; i++ {
		if OnesCount(got[i]) != 1 {
			t.Errorf("element %d should have popcount 1", i)
		}
	}
}

func TestSubMasks(t *testing.T) {
	beta := uint64(0b0101)
	got := SubMasks(beta)
	want := []uint64{0b0000, 0b0001, 0b0100, 0b0101}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SubMasks[%d] = %04b, want %04b", i, got[i], want[i])
		}
	}
}

func TestCompressExpandExample(t *testing.T) {
	// Paper Example 3.1: d=4, beta=0101 selects attributes 0 and 2
	// (reading masks with bit 0 = first attribute).
	beta := uint64(0b0101)
	if got := Compress(0b0111, beta); got != 0b11 {
		t.Errorf("Compress(0111, 0101) = %b, want 11", got)
	}
	if got := Expand(0b10, beta); got != 0b0100 {
		t.Errorf("Expand(10, 0101) = %04b, want 0100", got)
	}
}

func TestCompressExpandRoundTrip(t *testing.T) {
	f := func(compact, beta uint64) bool {
		beta &= (1 << 24) - 1
		k := OnesCount(beta)
		compact &= (1 << uint(k)) - 1
		return Compress(Expand(compact, beta), beta) == compact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpandIsSubset(t *testing.T) {
	f := func(compact, beta uint64) bool {
		return IsSubset(Expand(compact, beta), beta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompressIgnoresOutsideBits(t *testing.T) {
	f := func(eta, beta uint64) bool {
		return Compress(eta, beta) == Compress(eta&beta, beta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitPositions(t *testing.T) {
	got := BitPositions(0b101001)
	want := []int{0, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pos[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMaskFromPositions(t *testing.T) {
	if got := MaskFromPositions(0, 3, 5); got != 0b101001 {
		t.Errorf("MaskFromPositions = %b, want 101001", got)
	}
	if got := MaskFromPositions(2, 2); got != 0b100 {
		t.Errorf("duplicates should be idempotent, got %b", got)
	}
	if got := MaskFromPositions(); got != 0 {
		t.Errorf("empty should be 0, got %b", got)
	}
}

func TestMaskFromPositionsRoundTrip(t *testing.T) {
	f := func(m uint64) bool {
		m &= (1 << 40) - 1
		return MaskFromPositions(BitPositions(m)...) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
