// Package bitops provides bit-level utilities over attribute index masks.
//
// Throughout this module a "mask" is a uint64 whose low d bits identify a
// subset of d binary attributes. A user record is likewise a uint64 whose
// bit a holds the value of attribute a, so a record is simultaneously an
// index into the 2^d cell contingency table. The paper's index set {0,1}^d
// maps directly onto these masks.
package bitops

import "math/bits"

// MaxAttributes is the largest attribute count supported by the mask
// representation. Masks are uint64, and several enumeration helpers build
// slices indexed by masks of up to MaxAttributes bits.
const MaxAttributes = 40

// OnesCount returns |m|, the number of set bits in m.
func OnesCount(m uint64) int { return bits.OnesCount64(m) }

// Parity returns the parity (0 or 1) of the number of set bits of m.
func Parity(m uint64) int { return bits.OnesCount64(m) & 1 }

// InnerProductSign returns (-1)^<i,j> where <i,j> counts the bit positions
// on which i and j are both 1. This is the sign of the Hadamard matrix
// entry phi_{i,j} (Definition 3.5 of the paper).
func InnerProductSign(i, j uint64) int {
	if bits.OnesCount64(i&j)&1 == 1 {
		return -1
	}
	return 1
}

// IsSubset reports whether every set bit of a is also set in b, i.e.
// a is a sub-mask of b. This is the paper's relation a ⪯ b.
func IsSubset(a, b uint64) bool { return a&b == a }

// Binomial returns C(n, k), the number of k-element subsets of an n-set.
// It returns 0 when k < 0 or k > n. Results are exact for the parameter
// ranges supported by MaxAttributes (values fit easily in uint64).
func Binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := 0; i < k; i++ {
		c = c * uint64(n-i) / uint64(i+1)
	}
	return c
}

// CountAtMostK returns the number of masks over d bits with between 1 and
// k set bits inclusive: sum_{l=1..k} C(d, l). This is |T|, the size of the
// Hadamard coefficient set needed for full k-way marginal reconstruction
// (Section 4.2), excluding the constant alpha = 0 coefficient.
func CountAtMostK(d, k int) uint64 {
	var total uint64
	for l := 1; l <= k && l <= d; l++ {
		total += Binomial(d, l)
	}
	return total
}

// MasksWithExactlyK returns all masks over d bits that have exactly k set
// bits, in increasing numeric order. It returns an empty slice when k > d
// or k < 0.
func MasksWithExactlyK(d, k int) []uint64 {
	if k < 0 || k > d {
		return nil
	}
	if k == 0 {
		return []uint64{0}
	}
	out := make([]uint64, 0, Binomial(d, k))
	// Gosper's hack: iterate k-subsets in increasing order.
	v := uint64(1)<<k - 1
	limit := uint64(1) << d
	for v < limit {
		out = append(out, v)
		c := v & -v
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
		if r == 0 { // overflow guard for k == d at word edge
			break
		}
	}
	return out
}

// MasksWithAtMostK returns all masks over d bits with between minK and
// maxK set bits inclusive, ordered by popcount then numerically.
func MasksWithAtMostK(d, minK, maxK int) []uint64 {
	if minK < 0 {
		minK = 0
	}
	if maxK > d {
		maxK = d
	}
	var out []uint64
	for k := minK; k <= maxK; k++ {
		out = append(out, MasksWithExactlyK(d, k)...)
	}
	return out
}

// SubMasks returns all 2^|beta| sub-masks of beta (including 0 and beta
// itself) in increasing compact order: the i-th element is Expand(i, beta).
func SubMasks(beta uint64) []uint64 {
	k := OnesCount(beta)
	out := make([]uint64, 0, 1<<k)
	for c := uint64(0); c < 1<<uint(k); c++ {
		out = append(out, Expand(c, beta))
	}
	return out
}

// Compress maps a full-domain index eta to its compact index within the
// marginal identified by beta: the bits of eta at beta's set positions are
// packed, in order of increasing position, into the low |beta| bits of the
// result. Bits of eta outside beta are ignored, so Compress(eta, beta) ==
// Compress(eta&beta, beta).
func Compress(eta, beta uint64) uint64 {
	var out, outBit uint64
	outBit = 1
	for b := beta; b != 0; b &= b - 1 {
		low := b & -b
		if eta&low != 0 {
			out |= outBit
		}
		outBit <<= 1
	}
	return out
}

// Expand is the inverse of Compress: it scatters the low |beta| bits of
// compact back to beta's set positions, producing a full-domain mask that
// is a sub-mask of beta.
func Expand(compact, beta uint64) uint64 {
	var out uint64
	bit := uint64(1)
	for b := beta; b != 0; b &= b - 1 {
		low := b & -b
		if compact&bit != 0 {
			out |= low
		}
		bit <<= 1
	}
	return out
}

// BitPositions returns the positions (ascending) of the set bits of m.
func BitPositions(m uint64) []int {
	out := make([]int, 0, OnesCount(m))
	for b := m; b != 0; b &= b - 1 {
		out = append(out, bits.TrailingZeros64(b))
	}
	return out
}

// MaskFromPositions builds a mask with the given bit positions set.
// Duplicate positions are idempotent.
func MaskFromPositions(positions ...int) uint64 {
	var m uint64
	for _, p := range positions {
		m |= 1 << uint(p)
	}
	return m
}
