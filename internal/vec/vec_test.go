package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestUniform(t *testing.T) {
	u := Uniform(4)
	for _, x := range u {
		if x != 0.25 {
			t.Fatalf("Uniform(4) = %v", u)
		}
	}
	if !almostEq(Sum(u), 1, 1e-12) {
		t.Errorf("uniform should sum to 1")
	}
}

func TestL1AndTV(t *testing.T) {
	a := []float64{0.5, 0.5, 0, 0}
	b := []float64{0.25, 0.25, 0.25, 0.25}
	if !almostEq(L1Dist(a, b), 1.0, 1e-12) {
		t.Errorf("L1Dist = %v, want 1.0", L1Dist(a, b))
	}
	if !almostEq(TVDist(a, b), 0.5, 1e-12) {
		t.Errorf("TVDist = %v, want 0.5", TVDist(a, b))
	}
}

func TestTVProperties(t *testing.T) {
	sanitize := func(v []float64) []float64 {
		out := make([]float64, len(v))
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			out[i] = math.Mod(x, 1e6)
		}
		return out
	}
	symmetric := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = sanitize(a[:n]), sanitize(b[:n])
		return almostEq(TVDist(a, b), TVDist(b, a), 1e-9)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	identity := func(a []float64) bool { return TVDist(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
}

func TestL1DistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	L1Dist([]float64{1}, []float64{1, 2})
}

func TestMaxAbsDiff(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 5, 2}
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestScaleAddClone(t *testing.T) {
	v := []float64{1, 2}
	c := Clone(v)
	Scale(v, 2)
	if v[0] != 2 || v[1] != 4 {
		t.Errorf("Scale failed: %v", v)
	}
	if c[0] != 1 || c[1] != 2 {
		t.Errorf("Clone should be independent: %v", c)
	}
	Add(v, c)
	if v[0] != 3 || v[1] != 6 {
		t.Errorf("Add failed: %v", v)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{2, 2, 4}
	Normalize(v)
	if !almostEq(v[2], 0.5, 1e-12) || !almostEq(Sum(v), 1, 1e-12) {
		t.Errorf("Normalize = %v", v)
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0.5 || z[1] != 0.5 {
		t.Errorf("Normalize of zero vector should be uniform, got %v", z)
	}
	neg := []float64{-1, -1}
	Normalize(neg)
	if !almostEq(Sum(neg), 1, 1e-12) {
		t.Errorf("Normalize of negative-sum vector should reset to uniform, got %v", neg)
	}
}

func TestClampNonNegative(t *testing.T) {
	v := []float64{-1, 0.5, -0.2, 1}
	ClampNonNegative(v)
	for i, x := range v {
		if x < 0 {
			t.Errorf("entry %d still negative: %v", i, x)
		}
	}
	if v[1] != 0.5 || v[3] != 1 {
		t.Errorf("positive entries changed: %v", v)
	}
}

func TestProjectToSimplexAlreadyValid(t *testing.T) {
	v := []float64{0.25, 0.25, 0.5}
	got := Clone(v)
	ProjectToSimplex(got)
	for i := range v {
		if !almostEq(got[i], v[i], 1e-9) {
			t.Errorf("projection changed a valid distribution: %v", got)
		}
	}
}

func TestProjectToSimplexProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			// keep magnitudes sane
			v[i] = math.Mod(x, 100)
		}
		ProjectToSimplex(v)
		var s float64
		for _, x := range v {
			if x < -1e-9 {
				return false
			}
			s += x
		}
		return almostEq(s, 1, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectToSimplexKnown(t *testing.T) {
	// Projection of (1.2, -0.2) onto the simplex is (1, 0) after
	// thresholding: theta solves the KKT conditions.
	v := []float64{1.2, -0.2}
	ProjectToSimplex(v)
	if !almostEq(v[0], 1, 1e-9) || !almostEq(v[1], 0, 1e-9) {
		t.Errorf("projection = %v, want [1 0]", v)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 3, 2}) != 1 {
		t.Error("ArgMax failed")
	}
	if ArgMax([]float64{5, 5}) != 0 {
		t.Error("ArgMax should return first on tie")
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) should be -1")
	}
}

func TestDotMeanStdDev(t *testing.T) {
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constant = %v", got)
	}
	if got := StdDev([]float64{-1, 1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("StdDev = %v, want 1", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice moments should be 0")
	}
}
