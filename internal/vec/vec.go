// Package vec provides dense float64 vector and probability-distribution
// helpers shared by the estimators, aggregators, and applications.
package vec

import (
	"fmt"
	"math"
	"sort"
)

// Uniform returns the uniform distribution over n cells.
func Uniform(n int) []float64 {
	u := make([]float64, n)
	for i := range u {
		u[i] = 1 / float64(n)
	}
	return u
}

// Sum returns the sum of the entries of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// L1 returns the L1 norm of v.
func L1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// L1Dist returns the L1 distance between a and b. It panics if lengths
// differ, which always indicates a programming error in this repository.
func L1Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: L1Dist length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// TVDist returns the total variation distance 0.5*||a-b||_1 (Definition
// 3.4 of the paper).
func TVDist(a, b []float64) float64 {
	return 0.5 * L1Dist(a, b)
}

// MaxAbsDiff returns the L-infinity distance between a and b.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: MaxAbsDiff length mismatch %d vs %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Scale multiplies every entry of v by c in place and returns v.
func Scale(v []float64, c float64) []float64 {
	for i := range v {
		v[i] *= c
	}
	return v
}

// Add adds b into a element-wise in place and returns a.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Add length mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Normalize scales v in place so its entries sum to 1. If the sum is not
// positive it resets v to uniform. Returns v.
func Normalize(v []float64) []float64 {
	s := Sum(v)
	if s <= 0 {
		copy(v, Uniform(len(v)))
		return v
	}
	return Scale(v, 1/s)
}

// ClampNonNegative zeroes negative entries in place and returns v.
func ClampNonNegative(v []float64) []float64 {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
	return v
}

// ProjectToSimplex projects v in place onto the probability simplex
// (non-negative, sums to 1) in Euclidean distance, using the standard
// sort-and-threshold algorithm. This is the post-processing step used
// before feeding estimated marginals to chi-squared or mutual-information
// computations, which require genuine distributions.
func ProjectToSimplex(v []float64) []float64 {
	n := len(v)
	if n == 0 {
		return v
	}
	sorted := Clone(v)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var cumulative, theta float64
	k := 0
	for i := 0; i < n; i++ {
		cumulative += sorted[i]
		t := (cumulative - 1) / float64(i+1)
		if sorted[i]-t > 0 {
			theta = t
			k = i + 1
		}
	}
	if k == 0 {
		copy(v, Uniform(n))
		return v
	}
	for i := range v {
		v[i] = math.Max(0, v[i]-theta)
	}
	return v
}

// ArgMax returns the index of the maximum entry (first on ties). It
// returns -1 for an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(v)))
}
