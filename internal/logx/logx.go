// Package logx is the deployment's leveled key=value logger: a thin,
// zero-dependency replacement for ad-hoc log.Printf lines that makes
// log output greppable (level=warn component=server msg=...) and lets
// request logging carry the trace id so log lines and traces
// correlate.
//
// It deliberately stays small: four levels, key=value formatting with
// quoting only when needed, a mutex-serialized writer, and child
// loggers that pre-bind context fields (component=..., node=...).
// Anything fancier belongs in the metrics and tracing layers.
package logx

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

const (
	// Debug is per-request noise: one line per HTTP request, per pull
	// round, per epoch build. Off by default.
	Debug Level = iota
	// Info is lifecycle news: startup, shutdown, recovery, rotation.
	Info
	// Warn is degraded-but-running: a failed peer pull, a slow trace,
	// a 5xx served.
	Warn
	// Error is broken: WAL failure, listener error.
	Error
	// Off disables all output.
	Off
)

// ParseLevel maps a -log-level flag value to a Level. Unknown values
// return an error naming the accepted set.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return Debug, nil
	case "info", "":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	case "off", "none":
		return Off, nil
	}
	return Info, fmt.Errorf("unknown log level %q (want debug, info, warn, error, or off)", s)
}

func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	case Off:
		return "off"
	}
	return "unknown"
}

// Logger writes leveled key=value lines. A nil *Logger is valid and
// discards everything, so components can hold one unconditionally.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	min    Level
	bound  string // pre-rendered "k=v k=v " context fields
	stamps bool
}

// Options configures New.
type Options struct {
	// Writer receives the log lines; required.
	Writer io.Writer
	// Min is the lowest level that is emitted.
	Min Level
	// Timestamps prefixes each line with ts=RFC3339; off in tests
	// keeps golden output stable.
	Timestamps bool
}

// New builds a logger.
func New(opts Options) *Logger {
	return &Logger{
		mu:     &sync.Mutex{},
		w:      opts.Writer,
		min:    opts.Min,
		stamps: opts.Timestamps,
	}
}

// With returns a child logger whose lines all carry the given
// key=value pairs (args alternate key, value). The child shares the
// parent's writer and level.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	var b strings.Builder
	appendPairs(&b, args)
	child := *l
	// appendPairs renders " k=v k=v"; the bound prefix wants
	// "k=v k=v " so log() can splice it before msg=.
	if pairs := b.String(); pairs != "" {
		child.bound = l.bound + pairs[1:] + " "
	}
	return &child
}

// Enabled reports whether lines at lv would be emitted — a cheap guard
// for callers that build expensive values only when logging.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && l.w != nil && lv >= l.min
}

// Debugf and friends emit one line: `level=<lv> <bound> msg=<msg> k=v...`.
// args alternate key, value; a trailing odd arg is rendered under the
// key "arg".
func (l *Logger) Debug(msg string, args ...any) { l.log(Debug, msg, args) }
func (l *Logger) Info(msg string, args ...any)  { l.log(Info, msg, args) }
func (l *Logger) Warn(msg string, args ...any)  { l.log(Warn, msg, args) }
func (l *Logger) Error(msg string, args ...any) { l.log(Error, msg, args) }

func (l *Logger) log(lv Level, msg string, args []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	if l.stamps {
		b.WriteString("ts=")
		b.WriteString(time.Now().UTC().Format(time.RFC3339))
		b.WriteByte(' ')
	}
	b.WriteString("level=")
	b.WriteString(lv.String())
	b.WriteByte(' ')
	b.WriteString(l.bound)
	b.WriteString("msg=")
	b.WriteString(quote(msg))
	appendPairs(&b, args)
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// appendPairs renders alternating key/value args as " k=v" pairs.
func appendPairs(b *strings.Builder, args []any) {
	for i := 0; i < len(args); i += 2 {
		b.WriteByte(' ')
		if i+1 >= len(args) {
			b.WriteString("arg=")
			b.WriteString(quote(render(args[i])))
			break
		}
		key, ok := args[i].(string)
		if !ok {
			key = render(args[i])
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quote(render(args[i+1])))
	}
	// With() binds pairs into the prefix, which needs a trailing space
	// instead of a leading one; the caller fixes that up.
}

func render(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprint(v)
}

// quote wraps v in Go quoting only when it contains whitespace,
// quotes, or control characters — bare tokens stay grep-friendly.
func quote(v string) string {
	if v == "" {
		return `""`
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(v)
		}
	}
	return v
}
