package logx

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestLevelsAndFormat pins the line format — level=<lv> <bound>
// msg=<msg> k=v — and the level gate.
func TestLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Writer: &buf, Min: Info})

	l.Debug("dropped")
	l.Info("starting", "addr", "127.0.0.1:8080", "protocol", "InpHT")
	l.Warn("pull failed", "peer", "http://edge-1", "err", errors.New("connection refused"))
	l.Error("wal broken", "dur", 1500*time.Millisecond)

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want := []string{
		`level=info msg=starting addr=127.0.0.1:8080 protocol=InpHT`,
		`level=warn msg="pull failed" peer=http://edge-1 err="connection refused"`,
		`level=error msg="wal broken" dur=1.5s`,
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %q, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d:\n got %q\nwant %q", i, lines[i], want[i])
		}
	}
}

// TestWithBindsContext pins child loggers: bound pairs appear on every
// line, before the message, and chain across With calls.
func TestWithBindsContext(t *testing.T) {
	var buf bytes.Buffer
	root := New(Options{Writer: &buf, Min: Debug})
	child := root.With("component", "server", "node", "edge-1")
	grand := child.With("role", "edge")

	grand.Debug("request", "path", "/report", "status", 204)
	got := strings.TrimRight(buf.String(), "\n")
	want := `level=debug component=server node=edge-1 role=edge msg=request path=/report status=204`
	if got != want {
		t.Fatalf("\n got %q\nwant %q", got, want)
	}
	// The parent stays unpolluted.
	buf.Reset()
	root.Info("plain")
	if got := strings.TrimRight(buf.String(), "\n"); got != "level=info msg=plain" {
		t.Fatalf("parent line %q gained bound fields", got)
	}
}

// TestNilLoggerSafety pins the nil contract: every method on a nil
// *Logger, including With, is a safe no-op.
func TestNilLoggerSafety(t *testing.T) {
	var l *Logger
	l.Debug("a")
	l.Info("b", "k", "v")
	l.Warn("c")
	l.Error("d")
	if l.With("k", "v") != nil {
		t.Fatal("With on nil returned non-nil")
	}
	if l.Enabled(Error) {
		t.Fatal("nil logger claims enabled")
	}
}

// TestParseLevel pins the flag mapping, including the error naming
// unknown values.
func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": Debug, "info": Info, "": Info, "warn": Warn,
		"warning": Warn, "error": Error, "off": Off, "NONE": Off,
		" Info ": Info,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil || !strings.Contains(err.Error(), "loud") {
		t.Errorf("ParseLevel(loud) err = %v, want error naming the value", err)
	}
}

// TestQuoting pins when values get quoted: whitespace, '=', quotes,
// and empties do; bare tokens don't.
func TestQuoting(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Writer: &buf, Min: Debug})
	l.Info("m", "a", "bare", "b", "two words", "c", "", "d", `has"quote`, "e", "k=v")
	got := strings.TrimRight(buf.String(), "\n")
	want := `level=info msg=m a=bare b="two words" c="" d="has\"quote" e="k=v"`
	if got != want {
		t.Fatalf("\n got %q\nwant %q", got, want)
	}
}

// TestOddArgs pins the trailing-odd-arg rendering under key "arg".
func TestOddArgs(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Writer: &buf, Min: Debug})
	l.Info("m", "k1", "v1", "dangling")
	got := strings.TrimRight(buf.String(), "\n")
	if got != `level=info msg=m k1=v1 arg=dangling` {
		t.Fatalf("line %q", got)
	}
}

// TestConcurrentWrites races writers on a shared logger; under -race
// this pins the mutex discipline, and every line must arrive whole.
func TestConcurrentWrites(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Writer: &buf, Min: Debug})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("tick", "k", "v")
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("%d lines, want 800", len(lines))
	}
	for _, ln := range lines {
		if ln != "level=info msg=tick k=v" {
			t.Fatalf("torn line %q", ln)
		}
	}
}

// TestTimestamps pins the ts= prefix shape without pinning the clock.
func TestTimestamps(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Writer: &buf, Min: Info, Timestamps: true})
	l.Info("m")
	got := strings.TrimRight(buf.String(), "\n")
	if !strings.HasPrefix(got, "ts=") || !strings.Contains(got, " level=info msg=m") {
		t.Fatalf("line %q, want ts=<rfc3339> level=info msg=m", got)
	}
	ts := strings.TrimPrefix(strings.Fields(got)[0], "ts=")
	if _, err := time.Parse(time.RFC3339, ts); err != nil {
		t.Fatalf("timestamp %q: %v", ts, err)
	}
}
