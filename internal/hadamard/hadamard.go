// Package hadamard implements the discrete Fourier transform over the
// Boolean hypercube (the Walsh-Hadamard transform) and the marginal
// reconstruction identity of Barak et al. used by the paper's
// Hadamard-based protocols (Lemma 3.7 / equation 4).
//
// Convention. The paper's transform is theta = phi * t with
// phi_{i,j} = 2^{-d/2} * (-1)^{<i,j>}. Individual user inputs are one-hot,
// so each coefficient theta_alpha of a record j is +-2^{-d/2}. To keep all
// arithmetic independent of 2^{d/2} (which overflows quickly), this
// package works throughout with *scaled* coefficients
//
//	m_alpha = 2^{d/2} * theta_alpha = E_j[ (-1)^{<j, alpha>} ] in [-1, 1].
//
// With that scaling, the marginal identity collapses to an inverse
// transform over the k-dimensional subcube of beta:
//
//	C_beta[gamma] = 2^{-k} * sum_{alpha ⪯ beta} m_alpha * (-1)^{<alpha, gamma>}.
package hadamard

import (
	"fmt"
	"runtime"
	"sync"

	"ldpmarginals/internal/bitops"
)

// Sign returns (-1)^{<j, alpha>}, the scaled Hadamard coefficient m_alpha
// of the one-hot record j. This is the single value a user computes in
// the InpHT and MargHT protocols (Algorithm 1, line 4).
func Sign(j, alpha uint64) float64 {
	return float64(bitops.InnerProductSign(j, alpha))
}

// parallelThreshold is the vector length from which WHT fans each
// butterfly stage out across goroutines. Below it (marginal-sized
// subcubes, 2^k cells) the goroutine overhead dwarfs the arithmetic;
// above it (full-domain transforms at d >= 13) the stages are long
// enough to saturate the cores.
const parallelThreshold = 1 << 13

// WHT performs the in-place unnormalized Walsh-Hadamard transform of v,
// whose length must be a power of two. Applying it twice multiplies by
// len(v). The scaled-coefficient vector of a distribution t over 2^d
// cells is exactly WHT(t): m_alpha = sum_eta t[eta] * (-1)^{<alpha,eta>}.
//
// Large transforms run each butterfly stage in parallel across
// goroutines. Every element is written by exactly one goroutine per
// stage and stages are barriers, so the result is bit-identical to the
// sequential transform regardless of GOMAXPROCS.
func WHT(v []float64) error {
	n := len(v)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("hadamard: length %d is not a power of two", n)
	}
	if n >= parallelThreshold {
		if workers := runtime.GOMAXPROCS(0); workers > 1 {
			whtParallel(v, workers)
			return nil
		}
	}
	whtSequential(v)
	return nil
}

func whtSequential(v []float64) {
	n := len(v)
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := v[j], v[j+h]
				v[j], v[j+h] = x+y, x-y
			}
		}
	}
}

// whtParallel runs the same butterfly network with each stage's n/2
// independent pairs partitioned across workers. Pair t of stage h is
// (j, j+h) with j = (t/h)*2h + t%h; the partition touches disjoint
// elements, and the WaitGroup barrier between stages orders the
// dependent reads.
func whtParallel(v []float64, workers int) {
	n := len(v)
	pairs := n / 2
	if workers > pairs {
		workers = pairs
	}
	per := (pairs + workers - 1) / workers
	var wg sync.WaitGroup
	for h := 1; h < n; h <<= 1 {
		for w := 0; w < workers; w++ {
			lo, hi := w*per, min((w+1)*per, pairs)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi, h int) {
				defer wg.Done()
				for t := lo; t < hi; t++ {
					j := (t/h)*(h<<1) + t%h
					x, y := v[j], v[j+h]
					v[j], v[j+h] = x+y, x-y
				}
			}(lo, hi, h)
		}
		wg.Wait()
	}
}

// InverseWHT performs the in-place inverse of WHT (WHT followed by
// division by len(v)).
func InverseWHT(v []float64) error {
	if err := WHT(v); err != nil {
		return err
	}
	inv := 1 / float64(len(v))
	for i := range v {
		v[i] *= inv
	}
	return nil
}

// ScaledCoefficients returns the full vector of scaled coefficients
// m_alpha (indexed by alpha) for a distribution t over 2^d cells. For
// testing and small-d reference computations; protocols never call this
// per user.
func ScaledCoefficients(t []float64) ([]float64, error) {
	m := make([]float64, len(t))
	copy(m, t)
	if err := WHT(m); err != nil {
		return nil, err
	}
	return m, nil
}

// CoefficientSource yields the scaled coefficient estimate m_alpha for a
// coefficient index alpha. Implementations may return estimates (from an
// LDP aggregator) or exact values (from a reference transform).
type CoefficientSource interface {
	// ScaledCoefficient returns the estimate of m_alpha. alpha = 0 must
	// return exactly 1 (the 0th coefficient of any distribution).
	ScaledCoefficient(alpha uint64) float64
}

// MapSource is a CoefficientSource backed by a map, with the alpha = 0
// convention built in.
type MapSource map[uint64]float64

// ScaledCoefficient implements CoefficientSource. Missing coefficients
// estimate to 0 (the unbiased prior for an unobserved coefficient).
func (m MapSource) ScaledCoefficient(alpha uint64) float64 {
	if alpha == 0 {
		return 1
	}
	return m[alpha]
}

// ReconstructMarginal evaluates the k-way marginal identified by beta from
// scaled Hadamard coefficients, returning a dense vector of 2^k cell
// values indexed compactly (cell c corresponds to full-domain index
// bitops.Expand(c, beta)). Only the 2^k coefficients alpha ⪯ beta are
// consulted, per Lemma 3.7.
func ReconstructMarginal(src CoefficientSource, beta uint64) []float64 {
	cells := make([]float64, 1<<uint(bitops.OnesCount(beta)))
	ReconstructMarginalInto(cells, src, beta)
	return cells
}

// ReconstructMarginalInto is ReconstructMarginal writing into the
// caller's cell buffer (len 2^|beta|) — the allocation-free kernel the
// epoch-refresh arenas reuse. The arithmetic is identical to
// ReconstructMarginal: gather the subcube's coefficients, then one
// inverse transform produces all 2^k cells in O(k 2^k).
func ReconstructMarginalInto(cells []float64, src CoefficientSource, beta uint64) {
	size := 1 << uint(bitops.OnesCount(beta))
	if len(cells) != size {
		panic("hadamard: cell buffer does not match |beta|")
	}
	for c := 0; c < size; c++ {
		cells[c] = src.ScaledCoefficient(bitops.Expand(uint64(c), beta))
	}
	// InverseWHT cannot fail: size is a power of two by construction.
	if err := InverseWHT(cells); err != nil {
		panic("hadamard: impossible: " + err.Error())
	}
}

// CoefficientSet returns the indices T of the scaled coefficients that a
// k-way-marginal protocol must collect: all alpha with 1 <= |alpha| <= k
// (the alpha = 0 coefficient is always known to be 1). The order is by
// popcount then numeric, matching bitops.MasksWithAtMostK.
func CoefficientSet(d, k int) []uint64 {
	return bitops.MasksWithAtMostK(d, 1, k)
}
