package hadamard

import "sync"

// Pooled scratch vectors. Reconstruction kernels need power-of-two
// float64 workspaces — up to 2^d elements for a full-domain transform —
// on every epoch refresh; pooling them keeps the steady-state refresh
// path allocation-free. Pools are segregated by exact length (the
// lengths in play are the handful of 2^k and 2^d sizes of one
// deployment), so a Get never returns a shorter vector than asked for.

var vecPools sync.Map // int -> *sync.Pool of []float64

func poolFor(n int) *sync.Pool {
	if p, ok := vecPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := vecPools.LoadOrStore(n, &sync.Pool{
		New: func() any { return make([]float64, n) },
	})
	return p.(*sync.Pool)
}

// GetVec returns a length-n scratch vector from the pool. Contents are
// arbitrary; callers must overwrite (or ZeroVec) before reading.
func GetVec(n int) []float64 {
	return poolFor(n).Get().([]float64)
}

// PutVec returns a vector obtained from GetVec to its pool. The caller
// must not use v afterwards.
func PutVec(v []float64) {
	if len(v) == 0 {
		return
	}
	poolFor(len(v)).Put(v) //nolint:staticcheck // slices share a pool per length
}

// ZeroVec clears v in place.
func ZeroVec(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
