package hadamard

import (
	"math"
	"testing"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/rng"
)

func TestWHTRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, 3, 6, 12} {
		if err := WHT(make([]float64, n)); err == nil {
			t.Errorf("WHT accepted length %d", n)
		}
	}
}

func TestWHTInvolution(t *testing.T) {
	r := rng.New(1)
	v := make([]float64, 32)
	for i := range v {
		v[i] = r.Float64()
	}
	orig := append([]float64(nil), v...)
	if err := WHT(v); err != nil {
		t.Fatal(err)
	}
	if err := InverseWHT(v); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if math.Abs(v[i]-orig[i]) > 1e-12 {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, v[i], orig[i])
		}
	}
}

func TestWHTParseval(t *testing.T) {
	r := rng.New(2)
	v := make([]float64, 64)
	var sumSq float64
	for i := range v {
		v[i] = r.Normal()
		sumSq += v[i] * v[i]
	}
	if err := WHT(v); err != nil {
		t.Fatal(err)
	}
	var coefSq float64
	for _, x := range v {
		coefSq += x * x
	}
	// Unnormalized transform: ||WHT v||^2 = n ||v||^2.
	if math.Abs(coefSq-64*sumSq) > 1e-8*coefSq {
		t.Errorf("Parseval violated: %v vs %v", coefSq, 64*sumSq)
	}
}

func TestWHTMatchesDirectDefinition(t *testing.T) {
	// m_alpha = sum_eta t[eta] * (-1)^{<alpha, eta>}
	r := rng.New(3)
	const d = 5
	v := make([]float64, 1<<d)
	for i := range v {
		v[i] = r.Float64()
	}
	coeffs := append([]float64(nil), v...)
	if err := WHT(coeffs); err != nil {
		t.Fatal(err)
	}
	for alpha := uint64(0); alpha < 1<<d; alpha++ {
		var want float64
		for eta := uint64(0); eta < 1<<d; eta++ {
			want += v[eta] * Sign(eta, alpha)
		}
		if math.Abs(coeffs[alpha]-want) > 1e-10 {
			t.Fatalf("coefficient %d: got %v, want %v", alpha, coeffs[alpha], want)
		}
	}
}

func TestSign(t *testing.T) {
	if Sign(0b11, 0b01) != -1 {
		t.Error("Sign(11,01) should be -1")
	}
	if Sign(0b11, 0b11) != 1 {
		t.Error("Sign(11,11) should be +1")
	}
	if Sign(0, 0b1011) != 1 {
		t.Error("Sign(0, x) should be +1")
	}
}

func TestScaledCoefficientsOfUniform(t *testing.T) {
	const d = 4
	u := make([]float64, 1<<d)
	for i := range u {
		u[i] = 1.0 / (1 << d)
	}
	m, err := ScaledCoefficients(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0]-1) > 1e-12 {
		t.Errorf("m_0 = %v, want 1", m[0])
	}
	for alpha := 1; alpha < 1<<d; alpha++ {
		if math.Abs(m[alpha]) > 1e-12 {
			t.Errorf("m_%d = %v, want 0 for uniform", alpha, m[alpha])
		}
	}
}

func TestScaledCoefficientsOfPointMass(t *testing.T) {
	// One-hot input at j: every coefficient is (-1)^{<j,alpha>}.
	const d = 4
	const j = uint64(0b1010)
	v := make([]float64, 1<<d)
	v[j] = 1
	m, err := ScaledCoefficients(v)
	if err != nil {
		t.Fatal(err)
	}
	for alpha := uint64(0); alpha < 1<<d; alpha++ {
		if got, want := m[alpha], Sign(j, alpha); got != want {
			t.Errorf("m_%04b = %v, want %v", alpha, got, want)
		}
	}
}

func TestMapSource(t *testing.T) {
	src := MapSource{0b01: 0.5}
	if src.ScaledCoefficient(0) != 1 {
		t.Error("alpha=0 must be 1")
	}
	if src.ScaledCoefficient(0b01) != 0.5 {
		t.Error("stored coefficient lost")
	}
	if src.ScaledCoefficient(0b10) != 0 {
		t.Error("missing coefficient should be 0")
	}
}

// bruteMarginal computes C_beta directly from the distribution by
// summation (equation 3 of the paper).
func bruteMarginal(t []float64, beta uint64, d int) []float64 {
	k := bitops.OnesCount(beta)
	out := make([]float64, 1<<uint(k))
	for eta := uint64(0); eta < 1<<uint(d); eta++ {
		out[bitops.Compress(eta, beta)] += t[eta]
	}
	return out
}

func TestReconstructMarginalMatchesDirect(t *testing.T) {
	// Lemma 3.7: reconstruction from exact coefficients must equal the
	// directly-computed marginal for every beta.
	r := rng.New(7)
	const d = 6
	dist := make([]float64, 1<<d)
	var sum float64
	for i := range dist {
		dist[i] = r.Float64()
		sum += dist[i]
	}
	for i := range dist {
		dist[i] /= sum
	}
	coeffs, err := ScaledCoefficients(dist)
	if err != nil {
		t.Fatal(err)
	}
	src := MapSource{}
	for alpha, m := range coeffs {
		src[uint64(alpha)] = m
	}
	for _, beta := range bitops.MasksWithAtMostK(d, 1, 3) {
		got := ReconstructMarginal(src, beta)
		want := bruteMarginal(dist, beta, d)
		for c := range want {
			if math.Abs(got[c]-want[c]) > 1e-10 {
				t.Fatalf("beta=%06b cell %d: got %v, want %v", beta, c, got[c], want[c])
			}
		}
	}
}

func TestReconstructMarginalPaperExample(t *testing.T) {
	// Paper Example 3.1 (d=4, beta=0101): check the four cells against
	// the explicit sums listed in the paper.
	r := rng.New(11)
	dist := make([]float64, 16)
	var sum float64
	for i := range dist {
		dist[i] = r.Float64()
		sum += dist[i]
	}
	for i := range dist {
		dist[i] /= sum
	}
	coeffs, _ := ScaledCoefficients(dist)
	src := MapSource{}
	for alpha, m := range coeffs {
		src[uint64(alpha)] = m
	}
	beta := uint64(0b0101)
	got := ReconstructMarginal(src, beta)
	// Compact cell ordering: bits of (attr0, attr2).
	wants := map[uint64]float64{
		0b0000: dist[0b0000] + dist[0b0010] + dist[0b1000] + dist[0b1010],
		0b0001: dist[0b0001] + dist[0b0011] + dist[0b1001] + dist[0b1011],
		0b0100: dist[0b0100] + dist[0b0110] + dist[0b1100] + dist[0b1110],
		0b0101: dist[0b0101] + dist[0b0111] + dist[0b1101] + dist[0b1111],
	}
	for gamma, want := range wants {
		c := bitops.Compress(gamma, beta)
		if math.Abs(got[c]-want) > 1e-12 {
			t.Errorf("gamma=%04b: got %v, want %v", gamma, got[c], want)
		}
	}
}

func TestReconstructMarginalSumsToOne(t *testing.T) {
	// With exact coefficients of a distribution, each marginal sums to 1.
	r := rng.New(13)
	const d = 5
	dist := make([]float64, 1<<d)
	var sum float64
	for i := range dist {
		dist[i] = r.Float64()
		sum += dist[i]
	}
	for i := range dist {
		dist[i] /= sum
	}
	coeffs, _ := ScaledCoefficients(dist)
	src := MapSource{}
	for alpha, m := range coeffs {
		src[uint64(alpha)] = m
	}
	for _, beta := range bitops.MasksWithExactlyK(d, 2) {
		got := ReconstructMarginal(src, beta)
		var s float64
		for _, x := range got {
			s += x
		}
		if math.Abs(s-1) > 1e-10 {
			t.Errorf("beta=%05b: marginal sums to %v", beta, s)
		}
	}
}

func TestCoefficientSet(t *testing.T) {
	// Paper: d=4, k=2 needs 11 coefficients including alpha=0; the set
	// here excludes alpha=0, so 10.
	set := CoefficientSet(4, 2)
	if len(set) != 10 {
		t.Fatalf("|T| = %d, want 10", len(set))
	}
	for _, alpha := range set {
		if alpha == 0 {
			t.Error("alpha=0 must not be in the set")
		}
		if bitops.OnesCount(alpha) > 2 {
			t.Errorf("alpha=%b has more than k bits", alpha)
		}
	}
	if got := len(CoefficientSet(16, 3)); got != 16+120+560 {
		t.Errorf("|T(16,3)| = %d, want 696", got)
	}
}

func BenchmarkWHT1K(b *testing.B) {
	v := make([]float64, 1024)
	for i := range v {
		v[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WHT(v)
	}
}

func BenchmarkReconstructMarginalK3(b *testing.B) {
	src := MapSource{}
	for _, alpha := range CoefficientSet(16, 3) {
		src[alpha] = 0.01
	}
	beta := uint64(0b111)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReconstructMarginal(src, beta)
	}
}

// TestWHTParallelBitIdentical pins down the parallel transform's
// determinism contract: above parallelThreshold, WHT fans stages across
// goroutines, and the result must be bit-identical to the sequential
// butterfly network for any worker count.
func TestWHTParallelBitIdentical(t *testing.T) {
	const n = 1 << 14 // above parallelThreshold
	r := rng.New(3)
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*r.Float64() - 1
	}
	seq := append([]float64(nil), v...)
	whtSequential(seq)
	for _, workers := range []int{1, 2, 3, 7, 16} {
		par := append([]float64(nil), v...)
		whtParallel(par, workers)
		for i := range par {
			if math.Float64bits(par[i]) != math.Float64bits(seq[i]) {
				t.Fatalf("workers=%d: element %d differs: %v vs %v", workers, i, par[i], seq[i])
			}
		}
	}
	// The public entry point must agree too.
	pub := append([]float64(nil), v...)
	if err := WHT(pub); err != nil {
		t.Fatal(err)
	}
	for i := range pub {
		if math.Float64bits(pub[i]) != math.Float64bits(seq[i]) {
			t.Fatalf("WHT element %d differs from sequential", i)
		}
	}
}
