package bounds

import (
	"math"
	"testing"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/marginal"
	"ldpmarginals/internal/rng"
)

func TestTailBoundsDecreaseInNAndC(t *testing.T) {
	b1, err := BernsteinTail(1000, 0.05, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := BernsteinTail(4000, 0.05, 1, 2)
	b3, _ := BernsteinTail(1000, 0.1, 1, 2)
	if b2 >= b1 || b3 >= b1 {
		t.Errorf("Bernstein tail should shrink with n and c: %v %v %v", b1, b2, b3)
	}
	h1, err := HoeffdingTail(1000, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := HoeffdingTail(4000, 0.05, 1)
	if h2 >= h1 {
		t.Errorf("Hoeffding tail should shrink with n: %v %v", h1, h2)
	}
	if _, err := BernsteinTail(0, 0.1, 1, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := HoeffdingTail(10, -1, 1); err == nil {
		t.Error("c<0 should error")
	}
}

func TestTailBoundsClampToOne(t *testing.T) {
	b, _ := BernsteinTail(1, 1e-9, 1, 1)
	if b != 1 {
		t.Errorf("tiny-deviation bound should clamp to 1, got %v", b)
	}
}

func TestBernsteinHoldsEmpirically(t *testing.T) {
	// Mean of N Rademacher variables: sigma2 = 1, m = 1. The empirical
	// tail must lie below the Bernstein bound.
	const n, trials = 400, 4000
	const c = 0.1
	r := rng.New(1)
	exceed := 0
	for tr := 0; tr < trials; tr++ {
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.PlusMinusOne(0.5)
		}
		if math.Abs(float64(sum))/n >= c {
			exceed++
		}
	}
	bound, err := BernsteinTail(n, c, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(exceed) / trials
	if got > bound {
		t.Errorf("empirical tail %v exceeds Bernstein bound %v", got, bound)
	}
}

func TestMasterTailMatchesTheoremShape(t *testing.T) {
	// Larger ps (less sampling dilution) must give smaller tails; so
	// must larger pr (less response noise).
	p1, err := MasterTail(10000, 0.05, 0.1, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := MasterTail(10000, 0.05, 0.5, 0.75)
	p3, _ := MasterTail(10000, 0.05, 0.1, 0.9)
	if p2 >= p1 || p3 >= p1 {
		t.Errorf("master tail should shrink with ps and pr: %v %v %v", p1, p2, p3)
	}
	if _, err := MasterTail(10, 0.1, 0, 0.75); err == nil {
		t.Error("ps=0 should error")
	}
	if _, err := MasterTail(10, 0.1, 0.5, 0.4); err == nil {
		t.Error("pr<=1/2 should error")
	}
}

func TestMasterTailHoldsForRRS(t *testing.T) {
	// Simulate the exact estimator of Theorem 4.2 on +-1 inputs and
	// check the deviation tail is below the bound.
	const n = 20000
	const ps, pr = 0.25, 0.75
	const c = 0.08
	const trials = 300
	r := rng.New(2)
	exceed := 0
	truth := -1.0 // all users hold -1 at the observed position
	for tr := 0; tr < trials; tr++ {
		var sum float64
		for i := 0; i < n; i++ {
			if !r.Bernoulli(ps) {
				continue // t*_i[j] = 0
			}
			v := truth
			if !r.Bernoulli(pr) {
				v = -v
			}
			sum += v / (ps * (2*pr - 1)) // unbiased per-user estimate
		}
		if math.Abs(sum/n-truth) >= c {
			exceed++
		}
	}
	bound, err := MasterTail(n, c, ps, pr)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(exceed) / trials
	if got > bound {
		t.Errorf("empirical tail %v exceeds master bound %v", got, bound)
	}
}

func TestBoundOrderingMatchesTable2(t *testing.T) {
	// At d=16, k=2 the paper's ranking: InpHT < MargRR < MargPS=MargHT
	// << InpRR < InpPS... actually InpRR and InpPS share 2^d; check the
	// clean separations only.
	p := Params{N: 1 << 18, D: 16, K: 2, Epsilon: 1.1}
	ht, err := InpHT(p)
	if err != nil {
		t.Fatal(err)
	}
	mrr, _ := MargRR(p)
	mps, _ := MargPS(p)
	mht, _ := MargHT(p)
	irr, _ := InpRR(p)
	ips, _ := InpPS(p)
	if !(ht < mrr && mrr < mps && mps <= mht) {
		t.Errorf("bound ordering broken: ht=%v mrr=%v mps=%v mht=%v", ht, mrr, mps, mht)
	}
	if !(mht < irr && irr < ips) {
		t.Errorf("input methods should dominate at d=16: mht=%v irr=%v ips=%v", mht, irr, ips)
	}
}

func TestForProtocolDispatch(t *testing.T) {
	p := Params{N: 1000, D: 8, K: 2, Epsilon: 1}
	for _, name := range []string{"InpRR", "InpPS", "InpHT", "MargRR", "MargPS", "MargHT"} {
		v, err := ForProtocol(name, p)
		if err != nil || v <= 0 {
			t.Errorf("%s: %v, %v", name, v, err)
		}
	}
	if _, err := ForProtocol("InpEM", p); err == nil {
		t.Error("InpEM has no bound and should error")
	}
	if _, err := InpHT(Params{N: 0, D: 8, K: 2, Epsilon: 1}); err == nil {
		t.Error("invalid params should error")
	}
}

func TestInpHTBoundUsesCoefficientCount(t *testing.T) {
	p := Params{N: 10000, D: 8, K: 2, Epsilon: 1}
	got, err := InpHT(p)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(float64(bitops.CountAtMostK(8, 2))) * p.common()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("InpHT bound = %v, want %v", got, want)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 3 x^{-1/2}.
	xs := []float64{100, 400, 1600, 6400}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 / math.Sqrt(x)
	}
	slope, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope+0.5) > 1e-9 {
		t.Errorf("slope = %v, want -0.5", slope)
	}
	if _, err := FitPowerLaw([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitPowerLaw([]float64{1, -1}, []float64{1, 1}); err == nil {
		t.Error("negative data should error")
	}
	if _, err := FitPowerLaw([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x should error")
	}
}

// measureTV runs the protocol and returns mean 2-way TV, for the
// scaling checks below.
func measureTV(t *testing.T, kind core.Kind, n int, d int, eps float64, seed uint64) float64 {
	t.Helper()
	r := rng.New(seed)
	records := make([]uint64, n)
	for i := range records {
		base := r.Bernoulli(0.5)
		var rec uint64
		for j := 0; j < d; j++ {
			p := 0.25
			if base {
				p = 0.6
			}
			if r.Bernoulli(p) {
				rec |= 1 << uint(j)
			}
		}
		records[i] = rec
	}
	p, err := core.New(kind, core.Config{D: d, K: 2, Epsilon: eps, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(p, records, seed+77, 4)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := marginal.MeanTV(res.Agg, records, bitops.MasksWithExactlyK(d, 2))
	if err != nil {
		t.Fatal(err)
	}
	return tv
}

func TestInpHTErrorScalesAsRootN(t *testing.T) {
	// The paper's headline confirmation: measured error follows
	// N^{-1/2}. Average over a few repeats per point to stabilize the
	// slope, then require it within [-0.75, -0.3].
	ns := []float64{1 << 14, 1 << 16, 1 << 18}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		var sum float64
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			sum += measureTV(t, core.InpHT, int(n), 8, 1.1, uint64(1000*i+rep))
		}
		ys[i] = sum / reps
	}
	slope, err := FitPowerLaw(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if slope < -0.75 || slope > -0.3 {
		t.Errorf("InpHT error-vs-N slope = %v, want ~-0.5 (ys=%v)", slope, ys)
	}
}

func TestMeasuredErrorBelowScaledBound(t *testing.T) {
	// The O~ bounds suppress constants; sanity-check that measured
	// errors sit below the bound value itself at realistic parameters
	// (the bounds are loose, so this is a weak but real invariant).
	for _, kind := range []core.Kind{core.InpHT, core.MargPS} {
		p := Params{N: 1 << 16, D: 8, K: 2, Epsilon: 1.1}
		bound, err := ForProtocol(kind.String(), p)
		if err != nil {
			t.Fatal(err)
		}
		got := measureTV(t, kind, p.N, p.D, p.Epsilon, 5)
		if got > bound {
			t.Errorf("%v measured TV %v above theoretical bound %v", kind, got, bound)
		}
	}
}
