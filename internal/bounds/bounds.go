// Package bounds implements the paper's theoretical accuracy machinery
// as executable code: the Bernstein and Hoeffding tail inequalities of
// Definition 4.1, the master theorem tail of Theorem 4.2, and the
// per-protocol total-variation error bounds of Theorems 4.3-4.5 and
// Lemma 4.6 (up to their suppressed logarithmic factors). Tests use
// these to confirm empirically measured errors scale as the theory
// predicts — the paper's goal (1) for its own evaluation.
package bounds

import (
	"fmt"
	"math"

	"ldpmarginals/internal/bitops"
)

// BernsteinTail bounds P[|sum X_i|/N >= c] for independent zero-mean
// variables with common variance sigma2 and |X_i| <= m (Definition 4.1).
func BernsteinTail(n int, c, sigma2, m float64) (float64, error) {
	if n <= 0 || c <= 0 || sigma2 < 0 || m <= 0 {
		return 0, fmt.Errorf("bounds: invalid Bernstein parameters n=%d c=%v sigma2=%v m=%v", n, c, sigma2, m)
	}
	exponent := -float64(n) * c * c / (2*sigma2 + 2*c*m/3)
	return clampProb(2 * math.Exp(exponent)), nil
}

// HoeffdingTail bounds P[|sum X_i|/N >= c] for independent zero-mean
// variables with |X_i| <= m (Definition 4.1, identical bounds m_i = m).
func HoeffdingTail(n int, c, m float64) (float64, error) {
	if n <= 0 || c <= 0 || m <= 0 {
		return 0, fmt.Errorf("bounds: invalid Hoeffding parameters n=%d c=%v m=%v", n, c, m)
	}
	exponent := -float64(n) * c * c / (2 * m * m)
	return clampProb(2 * math.Exp(exponent)), nil
}

func clampProb(p float64) float64 {
	if p > 1 {
		return 1
	}
	return p
}

// MasterTail is Theorem 4.2: the tail probability of the sampled
// randomized-response estimator with sampling probability ps and
// response probability pr at deviation c.
//
// Note: the theorem's printed "simplified form" drops a factor in its
// own variance computation (the paper's equation (7) has
// 4 pr (1-pr) / (ps (2pr-1)^2), the statement carries only half of it
// through), making the printed constant slightly tighter than
// Bernstein's inequality supports; the empirical tail can exceed it.
// This implementation applies Bernstein with the paper's equation (7)
// variance and M = 2pr/(ps(2pr-1)) exactly; the asymptotics are those
// of the theorem.
func MasterTail(n int, c, ps, pr float64) (float64, error) {
	if n <= 0 || c <= 0 {
		return 0, fmt.Errorf("bounds: invalid master-theorem parameters n=%d c=%v", n, c)
	}
	if ps <= 0 || ps > 1 || pr <= 0.5 || pr >= 1 {
		return 0, fmt.Errorf("bounds: sampling/response probabilities out of range ps=%v pr=%v", ps, pr)
	}
	m := 2 * pr / (ps * (2*pr - 1))
	sigma2 := 4*pr*(1-pr)/(ps*(2*pr-1)*(2*pr-1)) + (1 - ps)
	return BernsteinTail(n, c, sigma2, m)
}

// Params carries the deployment parameters the error bounds depend on.
type Params struct {
	N       int
	D       int
	K       int
	Epsilon float64
}

func (p Params) validate() error {
	if p.N <= 0 || p.D < 1 || p.K < 1 || p.K > p.D || p.Epsilon <= 0 {
		return fmt.Errorf("bounds: invalid parameters %+v", p)
	}
	return nil
}

// common returns the factor 2^{k/2} / (eps sqrt(N)) shared by every
// bound in Table 2.
func (p Params) common() float64 {
	return math.Exp2(float64(p.K)/2) / (p.Epsilon * math.Sqrt(float64(p.N)))
}

// InpRR is Theorem 4.3's bound (up to logarithmic factors):
// 2^{(d+k)/2} / (eps sqrt(N)).
func InpRR(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return math.Exp2(float64(p.D)/2) * p.common(), nil
}

// InpPS is Theorem 4.4's bound: 2^{k/2} 2^d / (eps sqrt(N)).
func InpPS(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return math.Exp2(float64(p.D)) * p.common(), nil
}

// InpHT is Theorem 4.5's bound: 2^{k/2} sqrt(|T|) / (eps sqrt(N)) with
// |T| = sum_{l<=k} C(d,l) = O(d^k).
func InpHT(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	t := float64(bitops.CountAtMostK(p.D, p.K))
	return math.Sqrt(t) * p.common(), nil
}

// MargRR is Lemma 4.6's MargRR bound: 2^k d^{k/2} / (eps sqrt(N)).
func MargRR(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return math.Exp2(float64(p.K)/2) * math.Pow(float64(p.D), float64(p.K)/2) * p.common(), nil
}

// MargPS is Lemma 4.6's bound for MargPS and MargHT:
// 2^{3k/2} d^{k/2} / (eps sqrt(N)).
func MargPS(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return math.Exp2(float64(p.K)) * math.Pow(float64(p.D), float64(p.K)/2) * p.common(), nil
}

// MargHT shares MargPS's asymptotic bound (Lemma 4.6).
func MargHT(p Params) (float64, error) { return MargPS(p) }

// ForProtocol dispatches by the paper's protocol name.
func ForProtocol(name string, p Params) (float64, error) {
	switch name {
	case "InpRR":
		return InpRR(p)
	case "InpPS":
		return InpPS(p)
	case "InpHT":
		return InpHT(p)
	case "MargRR":
		return MargRR(p)
	case "MargPS":
		return MargPS(p)
	case "MargHT":
		return MargHT(p)
	default:
		return 0, fmt.Errorf("bounds: no bound for protocol %q", name)
	}
}

// FitPowerLaw returns the slope of log(y) against log(x) by least
// squares — used by tests to verify measured error scalings (e.g. slope
// -1/2 in N). xs and ys must be positive and of equal length >= 2.
func FitPowerLaw(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("bounds: need >= 2 aligned points, got %d and %d", len(xs), len(ys))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("bounds: power-law fit needs positive data, got (%v, %v)", xs[i], ys[i])
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, fmt.Errorf("bounds: degenerate x values")
	}
	return (n*sxy - sx*sy) / denom, nil
}
