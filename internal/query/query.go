// Package query evaluates conjunction queries over privately estimated
// marginals — the workload the paper's introduction motivates ("the
// fraction of users that use product A, B but not C together"). A
// conjunction fixes the values of up to k attributes; its answer is a
// single cell-sum of the corresponding marginal, so any estimator that
// answers marginal queries answers conjunctions.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/marginal"
)

// Term fixes one attribute to a boolean value.
type Term struct {
	// Attr is the attribute index.
	Attr int
	// Value is the required value.
	Value bool
}

// Conjunction is a set of terms over distinct attributes, interpreted as
// their logical AND.
type Conjunction struct {
	Terms []Term
}

// Validate checks the terms are non-empty, within d attributes, and
// attribute-distinct.
func (c Conjunction) Validate(d int) error {
	if len(c.Terms) == 0 {
		return fmt.Errorf("query: empty conjunction")
	}
	seen := map[int]bool{}
	for _, t := range c.Terms {
		if t.Attr < 0 || t.Attr >= d {
			return fmt.Errorf("query: attribute %d outside %d attributes", t.Attr, d)
		}
		if seen[t.Attr] {
			return fmt.Errorf("query: attribute %d repeated", t.Attr)
		}
		seen[t.Attr] = true
	}
	return nil
}

// Beta returns the attribute mask the conjunction touches.
func (c Conjunction) Beta() uint64 {
	var m uint64
	for _, t := range c.Terms {
		m |= 1 << uint(t.Attr)
	}
	return m
}

// gamma returns the full-domain index of the required values.
func (c Conjunction) gamma() uint64 {
	var g uint64
	for _, t := range c.Terms {
		if t.Value {
			g |= 1 << uint(t.Attr)
		}
	}
	return g
}

// String renders the conjunction in the parseable syntax.
func (c Conjunction) String() string {
	parts := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		v := 0
		if t.Value {
			v = 1
		}
		parts[i] = fmt.Sprintf("a%d=%d", t.Attr, v)
	}
	return strings.Join(parts, " AND ")
}

// Evaluate answers the conjunction from a marginal estimator: it fetches
// the marginal over the touched attributes and reads the single matching
// cell. d bounds the attribute space.
func Evaluate(est marginal.Estimator, c Conjunction, d int) (float64, error) {
	if err := c.Validate(d); err != nil {
		return 0, err
	}
	tab, err := est.Estimate(c.Beta())
	if err != nil {
		return 0, err
	}
	return tab.Cell(c.gamma()), nil
}

// EvaluateCount scales Evaluate by the population size, answering "how
// many users" instead of "what fraction".
func EvaluateCount(est marginal.Estimator, c Conjunction, d int, n int) (float64, error) {
	f, err := Evaluate(est, c, d)
	if err != nil {
		return 0, err
	}
	return f * float64(n), nil
}

// Parse reads a conjunction from text such as
//
//	"CC=1 AND Tip=0"  or  "a0=1 AND a3=0"
//
// resolving attribute names through the resolver (which returns -1 for
// unknown names). Bare "aN" names are always accepted.
func Parse(s string, resolve func(name string) int) (Conjunction, error) {
	var c Conjunction
	if strings.TrimSpace(s) == "" {
		return c, fmt.Errorf("query: empty query string")
	}
	for _, clause := range strings.Split(s, " AND ") {
		clause = strings.TrimSpace(clause)
		eq := strings.SplitN(clause, "=", 2)
		if len(eq) != 2 {
			return c, fmt.Errorf("query: clause %q is not name=value", clause)
		}
		name := strings.TrimSpace(eq[0])
		valStr := strings.TrimSpace(eq[1])
		val, err := strconv.Atoi(valStr)
		if err != nil || (val != 0 && val != 1) {
			return c, fmt.Errorf("query: value %q must be 0 or 1", valStr)
		}
		attr := -1
		if resolve != nil {
			attr = resolve(name)
		}
		if attr < 0 && strings.HasPrefix(name, "a") {
			if idx, err := strconv.Atoi(name[1:]); err == nil {
				attr = idx
			}
		}
		if attr < 0 {
			return c, fmt.Errorf("query: unknown attribute %q", name)
		}
		c.Terms = append(c.Terms, Term{Attr: attr, Value: val == 1})
	}
	return c, nil
}

// Result is the outcome of evaluating one query string from a batch:
// either a parsed conjunction with its estimated fraction, or the parse/
// evaluation error for that query alone.
type Result struct {
	// Query is the original query string.
	Query string
	// Conj is the parsed conjunction (zero when Err is a parse error).
	Conj Conjunction
	// Fraction is the estimated population fraction matching the query.
	Fraction float64
	// Err is the per-query failure, nil on success.
	Err error
}

// EvaluateStrings parses and evaluates a batch of query strings against
// one estimator, isolating failures per query: a malformed or
// out-of-domain query yields a Result with Err set and does not stop the
// rest of the batch. The results align with the input order.
func EvaluateStrings(est marginal.Estimator, d int, resolve func(name string) int, queries []string) []Result {
	out := make([]Result, len(queries))
	for i, q := range queries {
		out[i].Query = q
		c, err := Parse(q, resolve)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Conj = c
		f, err := Evaluate(est, c, d)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Fraction = f
	}
	return out
}

// Cube materializes the full set of j-way marginals for all j <= k — the
// OLAP-datacube slice the paper's related work discusses. Results are
// keyed by attribute mask.
func Cube(est marginal.Estimator, d, k int) (map[uint64]*marginal.Table, error) {
	if k < 1 || k > d {
		return nil, fmt.Errorf("query: k=%d out of range (1..%d)", k, d)
	}
	out := map[uint64]*marginal.Table{}
	for _, beta := range bitops.MasksWithAtMostK(d, 1, k) {
		tab, err := est.Estimate(beta)
		if err != nil {
			return nil, fmt.Errorf("query: materializing %b: %w", beta, err)
		}
		out[beta] = tab
	}
	return out, nil
}
