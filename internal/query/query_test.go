package query

import (
	"math"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/dataset"
	"ldpmarginals/internal/marginal"
)

type exactEstimator struct{ records []uint64 }

func (e exactEstimator) Estimate(beta uint64) (*marginal.Table, error) {
	return marginal.FromRecords(e.records, beta)
}

func TestConjunctionValidate(t *testing.T) {
	good := Conjunction{Terms: []Term{{0, true}, {3, false}}}
	if err := good.Validate(8); err != nil {
		t.Errorf("valid conjunction rejected: %v", err)
	}
	if err := (Conjunction{}).Validate(8); err == nil {
		t.Error("empty conjunction accepted")
	}
	dup := Conjunction{Terms: []Term{{1, true}, {1, false}}}
	if err := dup.Validate(8); err == nil {
		t.Error("duplicate attribute accepted")
	}
	oob := Conjunction{Terms: []Term{{9, true}}}
	if err := oob.Validate(8); err == nil {
		t.Error("out-of-range attribute accepted")
	}
}

func TestBetaAndString(t *testing.T) {
	c := Conjunction{Terms: []Term{{0, true}, {3, false}}}
	if c.Beta() != 0b1001 {
		t.Errorf("Beta = %b", c.Beta())
	}
	if got := c.String(); got != "a0=1 AND a3=0" {
		t.Errorf("String = %q", got)
	}
}

func TestEvaluateAgainstDirectCount(t *testing.T) {
	ds := dataset.NewTaxi(50000, 1)
	est := exactEstimator{ds.Records}
	// Fraction of trips paying by card but not tipping.
	c := Conjunction{Terms: []Term{
		{dataset.TaxiCC, true},
		{dataset.TaxiTip, false},
	}}
	got, err := Evaluate(est, c, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	direct := 0
	for _, rec := range ds.Records {
		if rec&(1<<dataset.TaxiCC) != 0 && rec&(1<<dataset.TaxiTip) == 0 {
			direct++
		}
	}
	want := float64(direct) / float64(ds.N())
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Evaluate = %v, direct = %v", got, want)
	}
	cnt, err := EvaluateCount(est, c, ds.D, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cnt-float64(direct)) > 1e-6 {
		t.Errorf("EvaluateCount = %v, want %v", cnt, direct)
	}
}

func TestEvaluateThreeWayIntroQuery(t *testing.T) {
	// The introduction's query shape: A and B but not C.
	ds := dataset.NewTaxi(40000, 2)
	est := exactEstimator{ds.Records}
	c := Conjunction{Terms: []Term{
		{dataset.TaxiNightPick, true},
		{dataset.TaxiNightDrop, true},
		{dataset.TaxiFar, false},
	}}
	got, err := Evaluate(est, c, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got >= 1 {
		t.Errorf("fraction = %v out of (0,1)", got)
	}
}

func TestEvaluateUnderLDP(t *testing.T) {
	ds := dataset.NewTaxi(200000, 3)
	p, err := core.New(core.InpHT, core.Config{D: ds.D, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := core.Run(p, ds.Records, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := Conjunction{Terms: []Term{
		{dataset.TaxiCC, true},
		{dataset.TaxiTip, true},
	}}
	private, err := Evaluate(run.Agg, c, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Evaluate(exactEstimator{ds.Records}, c, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(private-exact) > 0.03 {
		t.Errorf("private %v vs exact %v", private, exact)
	}
}

func TestParse(t *testing.T) {
	ds := dataset.NewTaxi(10, 1)
	c, err := Parse("CC=1 AND Tip=0", ds.AttributeIndex)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Terms) != 2 || c.Terms[0].Attr != dataset.TaxiCC || c.Terms[0].Value != true {
		t.Errorf("parsed %+v", c)
	}
	if c.Terms[1].Attr != dataset.TaxiTip || c.Terms[1].Value != false {
		t.Errorf("parsed %+v", c)
	}
	// Bare aN names without a resolver.
	c2, err := Parse("a2=1", nil)
	if err != nil || c2.Terms[0].Attr != 2 {
		t.Errorf("bare name parse: %+v, %v", c2, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "CC", "CC=2", "CC=x", "Bogus=1"} {
		if _, err := Parse(s, func(string) int { return -1 }); err == nil {
			t.Errorf("parse %q should error", s)
		}
	}
}

func TestCube(t *testing.T) {
	ds := dataset.NewTaxi(5000, 4)
	est := exactEstimator{ds.Records}
	cube, err := Cube(est, ds.D, 2)
	if err != nil {
		t.Fatal(err)
	}
	// C(8,1) + C(8,2) = 36 tables.
	if len(cube) != 36 {
		t.Fatalf("cube has %d tables, want 36", len(cube))
	}
	for beta, tab := range cube {
		if tab.Beta != beta {
			t.Errorf("mask mismatch: %b vs %b", tab.Beta, beta)
		}
		if math.Abs(tab.Sum()-1) > 1e-9 {
			t.Errorf("cube marginal %b mass %v", beta, tab.Sum())
		}
	}
	if _, err := Cube(est, ds.D, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Cube(est, ds.D, 9); err == nil {
		t.Error("k>d should error")
	}
}
