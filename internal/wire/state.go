package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// State blob layout. Every aggregator state opens with a kind byte
// naming the implementation and a version byte, followed by
// kind-specific fields written through StateEncoder. The encoding is
// canonical — a given logical state has exactly one byte serialization —
// so Marshal(Unmarshal(b)) == b and equal states compare byte-equal.

// StateEncoder builds a canonical state blob. The zero value is not
// usable; construct with NewStateEncoder.
type StateEncoder struct {
	buf []byte
}

// NewStateEncoder starts a state blob with its kind and version header.
func NewStateEncoder(kind, version byte) *StateEncoder {
	return &StateEncoder{buf: []byte{kind, version}}
}

// Uvarint appends one unsigned value.
func (e *StateEncoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends one signed value (zig-zag).
func (e *StateEncoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Uint64s appends a count-prefixed unsigned slice.
func (e *StateEncoder) Uint64s(s []uint64) {
	e.Uvarint(uint64(len(s)))
	for _, v := range s {
		e.Uvarint(v)
	}
}

// Int64s appends a count-prefixed signed slice.
func (e *StateEncoder) Int64s(s []int64) {
	e.Uvarint(uint64(len(s)))
	for _, v := range s {
		e.Varint(v)
	}
}

// Counts appends a count-prefixed slice of non-negative ints — the
// shape of per-marginal user counters.
func (e *StateEncoder) Counts(s []int) {
	e.Uvarint(uint64(len(s)))
	for _, v := range s {
		e.Uvarint(uint64(v))
	}
}

// Bytes returns the finished blob.
func (e *StateEncoder) Bytes() []byte { return e.buf }

// StateDecoder reads a state blob with a sticky error: after the first
// failure every read returns the zero value and Finish reports the
// failure, so aggregator codecs read all fields straight-line and check
// once.
type StateDecoder struct {
	buf []byte
	err error
}

// NewStateDecoder checks the kind/version header and positions the
// decoder after it.
func NewStateDecoder(data []byte, kind, version byte) (*StateDecoder, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("wire: state blob of %d bytes has no header", len(data))
	}
	if data[0] != kind {
		return nil, fmt.Errorf("wire: state kind %d, want %d", data[0], kind)
	}
	if data[1] != version {
		return nil, fmt.Errorf("wire: state version %d, want %d", data[1], version)
	}
	return &StateDecoder{buf: data[2:]}, nil
}

func (d *StateDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Uvarint reads one unsigned value, rejecting non-minimal encodings so
// that every accepted blob is the one canonical serialization of its
// state (MarshalState after UnmarshalState is byte-identity).
func (d *StateDecoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, w := binary.Uvarint(d.buf)
	if w <= 0 {
		d.fail("wire: truncated or malformed uvarint")
		return 0
	}
	if w > 1 && v>>(7*(w-1)) == 0 {
		d.fail("wire: non-minimal uvarint")
		return 0
	}
	d.buf = d.buf[w:]
	return v
}

// Varint reads one signed (zig-zag) value; like Uvarint it rejects
// non-minimal encodings.
func (d *StateDecoder) Varint() int64 {
	u := d.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Count reads an unsigned value that must fit in a non-negative int —
// the shape of report and cell counters.
func (d *StateDecoder) Count() int {
	v := d.Uvarint()
	if v > uint64(math.MaxInt) {
		d.fail("wire: count %d overflows int", v)
		return 0
	}
	return int(v)
}

// Counts reads a count-prefixed slice of non-negative ints; see
// sliceLen for the expect contract.
func (d *StateDecoder) Counts(expect int) []int {
	n := d.sliceLen(expect)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Count()
	}
	return out
}

// sliceLen reads a count prefix and validates it against expect: a
// non-negative expect requires that exact length (the caller knows the
// aggregator's geometry), while expect < 0 accepts any length that the
// remaining bytes could possibly hold (each element is at least one
// byte), bounding allocation on corrupt input.
func (d *StateDecoder) sliceLen(expect int) int {
	n := d.Count()
	if d.err != nil {
		return 0
	}
	if expect >= 0 && n != expect {
		d.fail("wire: slice of %d entries, want %d", n, expect)
		return 0
	}
	if n > len(d.buf) {
		d.fail("wire: slice of %d entries exceeds %d remaining bytes", n, len(d.buf))
		return 0
	}
	return n
}

// Uint64s reads a count-prefixed unsigned slice; see sliceLen for the
// expect contract.
func (d *StateDecoder) Uint64s(expect int) []uint64 {
	n := d.sliceLen(expect)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.Uvarint()
	}
	return out
}

// Int64s reads a count-prefixed signed slice; see sliceLen for the
// expect contract.
func (d *StateDecoder) Int64s(expect int) []int64 {
	n := d.sliceLen(expect)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.Varint()
	}
	return out
}

// Finish reports the first read failure, or an error if undecoded bytes
// remain — a canonical blob is consumed exactly.
func (d *StateDecoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wire: %d trailing state bytes", len(d.buf))
	}
	return nil
}
