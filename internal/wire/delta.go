package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"strings"
)

// Componentized state-exchange frame: the delta-capable successor of the
// LDPX frame. Where LDPX ships one opaque merged blob, LDPD carries the
// exporter's state as named *components* — an edge's per-shard states, a
// windowed edge's single window, or a coordinator's held peer
// contributions passed through unchanged — each labeled with its own
// version. A frame is either *full* (every non-empty component) or a
// *delta* against a base version the puller acknowledged via the
// ?since=/If-None-Match handshake: only the components whose version
// moved since the base, plus the ids that disappeared. Layout:
//
//	"LDPD", format version byte, flags byte (bit0: delta),
//	uvarint node-id length, node-id bytes,
//	uvarint frame version,
//	uvarint base version            (delta frames only),
//	uvarint total report count,
//	uvarint component count,
//	repeat (ids strictly increasing):
//	  uvarint id length, id bytes,
//	  uvarint component version, uvarint component report count,
//	  encoding byte (0 raw, 1 flate), uvarint raw state length,
//	  uvarint payload length, payload bytes,
//	uvarint removed-id count        (delta frames only),
//	repeat (ids strictly increasing): uvarint id length, id bytes,
//	crc32c of everything above (4 bytes LE)
//
// Component ids are globally unique across a fleet: a leaf exporter
// prefixes its own node id ("edge-1/17" for shard 17), and coordinators
// pass ids through unchanged, so a root coordinator can deduplicate and
// cycle-check constituents through any number of mid tiers. Components
// are sorted by id and each blob is flate-compressed only when that
// shrinks it, so an encoded frame is canonical for its logical content.
// Version labels carry the same one-directional guarantee as LDPX (see
// exchange.go): equal labels may rarely hide a racing mutation for one
// pull round, but the exporter's delta bases are recorded conservatively
// (element-wise minimum per label), so a delta never *skips* a mutation
// a holder of that base is missing — at worst it re-ships an unchanged
// component.
const (
	deltaMagic         = "LDPD"
	deltaFormatVersion = 1

	deltaFlagDelta = 0x01

	compEncRaw   = 0
	compEncFlate = 1

	// MaxComponentIDLen bounds one component id: an originating node id
	// plus a "/"-separated local suffix (shard index).
	MaxComponentIDLen = MaxNodeIDLen + 64

	// MaxFrameComponents bounds the component (and removed-id) count of
	// one frame, keeping a hostile header from forcing a huge slice
	// allocation before any payload bytes are validated.
	MaxFrameComponents = 1 << 16
)

// StateComponent is one named, versioned state blob inside a
// componentized frame.
type StateComponent struct {
	// ID names the component fleet-wide: "<origin-node-id>" or
	// "<origin-node-id>/<local-part>". Coordinators pass ids through
	// unchanged across tiers.
	ID string
	// Version labels the component's state with the exporter-side
	// mutation counter (salted per process); equal (ID, Version) implies
	// equal State under the one-directional guarantee above.
	Version uint64
	// N is the component state's report count.
	N int
	// State is the component's canonical Aggregator.MarshalState blob.
	State []byte
}

// ComponentFrame is a componentized state export: full, or a delta
// against BaseVersion.
type ComponentFrame struct {
	// NodeID names the exporting process.
	NodeID string
	// Version labels the whole export (the exporter's top-level state
	// version), read before any component state was captured.
	Version uint64
	// Delta marks a delta frame; BaseVersion is then the export version
	// the shipped components and removals are relative to.
	Delta       bool
	BaseVersion uint64
	// N is the exporter's total report count across all components (not
	// only the shipped ones, for a delta).
	N int
	// Components holds the shipped components, sorted by ID.
	Components []StateComponent
	// Removed lists component ids present at BaseVersion but gone now
	// (delta frames only), sorted.
	Removed []string
}

// ComponentOrigin returns the originating node id of a component id: the
// segment before the first '/', or the whole id.
func ComponentOrigin(id string) string {
	if i := strings.IndexByte(id, '/'); i >= 0 {
		return id[:i]
	}
	return id
}

func validComponentID(id string) error {
	if len(id) == 0 || len(id) > MaxComponentIDLen {
		return fmt.Errorf("wire: component id of %d bytes (want 1..%d)", len(id), MaxComponentIDLen)
	}
	return nil
}

// EncodeComponentFrame serializes one componentized frame, compressing
// each component blob with flate when that shrinks it. Components and
// removed ids must be sorted strictly increasing by id.
func EncodeComponentFrame(f ComponentFrame) ([]byte, error) {
	if len(f.NodeID) == 0 || len(f.NodeID) > MaxNodeIDLen {
		return nil, fmt.Errorf("wire: node id of %d bytes (want 1..%d)", len(f.NodeID), MaxNodeIDLen)
	}
	if f.N < 0 {
		return nil, fmt.Errorf("wire: negative report count %d", f.N)
	}
	if !f.Delta && (f.BaseVersion != 0 || len(f.Removed) != 0) {
		return nil, fmt.Errorf("wire: full frame carries delta fields (base version %d, %d removed ids)", f.BaseVersion, len(f.Removed))
	}
	if len(f.Components) > MaxFrameComponents || len(f.Removed) > MaxFrameComponents {
		return nil, fmt.Errorf("wire: frame of %d components / %d removed ids exceeds %d", len(f.Components), len(f.Removed), MaxFrameComponents)
	}
	flags := byte(0)
	if f.Delta {
		flags |= deltaFlagDelta
	}
	buf := make([]byte, 0, 64+len(f.NodeID))
	buf = append(buf, deltaMagic...)
	buf = append(buf, deltaFormatVersion, flags)
	buf = binary.AppendUvarint(buf, uint64(len(f.NodeID)))
	buf = append(buf, f.NodeID...)
	buf = binary.AppendUvarint(buf, f.Version)
	if f.Delta {
		buf = binary.AppendUvarint(buf, f.BaseVersion)
	}
	buf = binary.AppendUvarint(buf, uint64(f.N))
	buf = binary.AppendUvarint(buf, uint64(len(f.Components)))
	var comp bytes.Buffer
	for i, c := range f.Components {
		if err := validComponentID(c.ID); err != nil {
			return nil, err
		}
		if i > 0 && f.Components[i-1].ID >= c.ID {
			return nil, fmt.Errorf("wire: component ids not strictly increasing (%q then %q)", f.Components[i-1].ID, c.ID)
		}
		if c.N < 0 {
			return nil, fmt.Errorf("wire: component %q: negative report count %d", c.ID, c.N)
		}
		buf = binary.AppendUvarint(buf, uint64(len(c.ID)))
		buf = append(buf, c.ID...)
		buf = binary.AppendUvarint(buf, c.Version)
		buf = binary.AppendUvarint(buf, uint64(c.N))
		payload, enc := c.State, byte(compEncRaw)
		if len(c.State) > 0 {
			comp.Reset()
			zw, err := flate.NewWriter(&comp, flate.BestSpeed)
			if err != nil {
				return nil, fmt.Errorf("wire: component %q: %w", c.ID, err)
			}
			if _, err := zw.Write(c.State); err != nil {
				return nil, fmt.Errorf("wire: component %q: %w", c.ID, err)
			}
			if err := zw.Close(); err != nil {
				return nil, fmt.Errorf("wire: component %q: %w", c.ID, err)
			}
			if comp.Len() < len(c.State) {
				payload, enc = comp.Bytes(), compEncFlate
			}
		}
		buf = append(buf, enc)
		buf = binary.AppendUvarint(buf, uint64(len(c.State)))
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
	}
	if f.Delta {
		buf = binary.AppendUvarint(buf, uint64(len(f.Removed)))
		for i, id := range f.Removed {
			if err := validComponentID(id); err != nil {
				return nil, err
			}
			if i > 0 && f.Removed[i-1] >= id {
				return nil, fmt.Errorf("wire: removed ids not strictly increasing (%q then %q)", f.Removed[i-1], id)
			}
			buf = binary.AppendUvarint(buf, uint64(len(id)))
			buf = append(buf, id...)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, exchangeCRC)), nil
}

// componentReader decodes the sequential fields of a frame body with a
// sticky error, mirroring StateDecoder but over a raw byte cursor.
type componentReader struct {
	rest []byte
	err  error
}

func (r *componentReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, w := binary.Uvarint(r.rest)
	if w <= 0 {
		r.err = fmt.Errorf("wire: component frame %s malformed", what)
		return 0
	}
	r.rest = r.rest[w:]
	return v
}

func (r *componentReader) bytes(n uint64, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.rest)) {
		r.err = fmt.Errorf("wire: component frame %s of %d bytes overruns %d remaining", what, n, len(r.rest))
		return nil
	}
	b := r.rest[:n]
	r.rest = r.rest[n:]
	return b
}

func (r *componentReader) byteVal(what string) byte {
	b := r.bytes(1, what)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *componentReader) id(what string) string {
	n := r.uvarint(what + " length")
	if r.err == nil && (n == 0 || n > MaxComponentIDLen) {
		r.err = fmt.Errorf("wire: component frame %s of %d bytes (want 1..%d)", what, n, MaxComponentIDLen)
		return ""
	}
	return string(r.bytes(n, what))
}

// DecodeComponentFrame parses and CRC-verifies one componentized frame.
// maxRaw bounds the total decompressed component state bytes the decoder
// will materialize, so a hostile frame cannot compress-bomb the puller
// past its configured state budget. Decoded component states are fresh
// allocations (never aliasing buf); ids alias nothing either.
func DecodeComponentFrame(buf []byte, maxRaw int64) (ComponentFrame, error) {
	var f ComponentFrame
	if maxRaw < 0 {
		maxRaw = 0
	}
	if len(buf) < len(deltaMagic)+2+exchangeCRCLen {
		return f, fmt.Errorf("wire: component frame of %d bytes is too short", len(buf))
	}
	body, sum := buf[:len(buf)-exchangeCRCLen], binary.LittleEndian.Uint32(buf[len(buf)-exchangeCRCLen:])
	if got := crc32.Checksum(body, exchangeCRC); got != sum {
		return f, fmt.Errorf("wire: component frame checksum %08x, want %08x", got, sum)
	}
	if string(body[:len(deltaMagic)]) != deltaMagic {
		return f, fmt.Errorf("wire: bad component frame magic %q", body[:len(deltaMagic)])
	}
	if body[len(deltaMagic)] != deltaFormatVersion {
		return f, fmt.Errorf("wire: component frame format version %d, want %d", body[len(deltaMagic)], deltaFormatVersion)
	}
	flags := body[len(deltaMagic)+1]
	if flags&^deltaFlagDelta != 0 {
		return f, fmt.Errorf("wire: component frame flags %02x unknown", flags)
	}
	f.Delta = flags&deltaFlagDelta != 0
	r := &componentReader{rest: body[len(deltaMagic)+2:]}

	idLen := r.uvarint("node-id length")
	if r.err == nil && (idLen == 0 || idLen > MaxNodeIDLen) {
		return f, fmt.Errorf("wire: component frame node-id length %d (want 1..%d)", idLen, MaxNodeIDLen)
	}
	f.NodeID = string(r.bytes(idLen, "node id"))
	f.Version = r.uvarint("version")
	if f.Delta {
		f.BaseVersion = r.uvarint("base version")
	}
	n := r.uvarint("report count")
	if r.err == nil && n > uint64(math.MaxInt) {
		return f, fmt.Errorf("wire: component frame report count %d overflows int", n)
	}
	f.N = int(n)

	count := r.uvarint("component count")
	if r.err == nil && count > MaxFrameComponents {
		return f, fmt.Errorf("wire: component frame of %d components exceeds %d", count, MaxFrameComponents)
	}
	if r.err != nil {
		return f, r.err
	}
	if count > 0 {
		f.Components = make([]StateComponent, 0, min(count, uint64(len(r.rest))))
	}
	var rawTotal int64
	for i := uint64(0); i < count && r.err == nil; i++ {
		var c StateComponent
		c.ID = r.id("component id")
		ver := r.uvarint("component version")
		cn := r.uvarint("component report count")
		enc := r.byteVal("component encoding")
		rawLen := r.uvarint("component raw length")
		payLen := r.uvarint("component payload length")
		payload := r.bytes(payLen, "component payload")
		if r.err != nil {
			break
		}
		if len(f.Components) > 0 && f.Components[len(f.Components)-1].ID >= c.ID {
			return f, fmt.Errorf("wire: component ids not strictly increasing (%q then %q)", f.Components[len(f.Components)-1].ID, c.ID)
		}
		if cn > uint64(math.MaxInt) {
			return f, fmt.Errorf("wire: component %q report count overflows int", c.ID)
		}
		rawTotal += int64(rawLen)
		if rawTotal < 0 || rawTotal > maxRaw {
			return f, fmt.Errorf("wire: component frame raw state exceeds %d byte budget", maxRaw)
		}
		c.Version, c.N = ver, int(cn)
		switch enc {
		case compEncRaw:
			if payLen != rawLen {
				return f, fmt.Errorf("wire: component %q raw payload of %d bytes declares %d raw", c.ID, payLen, rawLen)
			}
			c.State = append([]byte(nil), payload...)
		case compEncFlate:
			// A flate payload at least as large as the raw state is
			// non-canonical: the encoder would have stored it raw.
			if payLen >= rawLen {
				return f, fmt.Errorf("wire: component %q flate payload of %d bytes for %d raw is non-canonical", c.ID, payLen, rawLen)
			}
			raw := make([]byte, rawLen)
			zr := flate.NewReader(bytes.NewReader(payload))
			if _, err := io.ReadFull(zr, raw); err != nil {
				return f, fmt.Errorf("wire: component %q: inflating: %w", c.ID, err)
			}
			// The stream must end exactly at the declared raw length.
			if n, err := zr.Read(make([]byte, 1)); n != 0 || err != io.EOF {
				return f, fmt.Errorf("wire: component %q inflates past declared %d bytes", c.ID, rawLen)
			}
			c.State = raw
		default:
			return f, fmt.Errorf("wire: component %q encoding %d unknown", c.ID, enc)
		}
		f.Components = append(f.Components, c)
	}
	if f.Delta && r.err == nil {
		rcount := r.uvarint("removed count")
		if r.err == nil && rcount > MaxFrameComponents {
			return f, fmt.Errorf("wire: component frame of %d removed ids exceeds %d", rcount, MaxFrameComponents)
		}
		for i := uint64(0); i < rcount && r.err == nil; i++ {
			id := r.id("removed id")
			if r.err != nil {
				break
			}
			if len(f.Removed) > 0 && f.Removed[len(f.Removed)-1] >= id {
				return f, fmt.Errorf("wire: removed ids not strictly increasing (%q then %q)", f.Removed[len(f.Removed)-1], id)
			}
			f.Removed = append(f.Removed, id)
		}
		// A component both shipped and removed is ambiguous. Both lists
		// are sorted, so one merge scan settles it.
		for i, j := 0, 0; i < len(f.Components) && j < len(f.Removed); {
			switch {
			case f.Components[i].ID == f.Removed[j]:
				return f, fmt.Errorf("wire: component %q both shipped and removed", f.Removed[j])
			case f.Components[i].ID < f.Removed[j]:
				i++
			default:
				j++
			}
		}
	}
	if r.err != nil {
		return f, r.err
	}
	if len(r.rest) != 0 {
		return f, fmt.Errorf("wire: component frame has %d trailing bytes", len(r.rest))
	}
	return f, nil
}

// IsComponentFrame reports whether buf starts with the componentized
// frame magic — the cheap sniff a puller uses to tell an LDPD reply from
// a legacy LDPX one.
func IsComponentFrame(buf []byte) bool {
	return len(buf) >= len(deltaMagic) && string(buf[:len(deltaMagic)]) == deltaMagic
}

// SortComponents orders components canonically (by id) in place.
func SortComponents(cs []StateComponent) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
}
