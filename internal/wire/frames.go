// Package wire holds the byte-level primitives shared by the report
// wire format (internal/encoding) and the durable store
// (internal/store): length-prefixed framing and the deterministic
// counter-state codec behind Aggregator.MarshalState. It is a leaf
// package — internal/core depends on it for state codecs and
// internal/encoding for batch framing — so it must not import either.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated tags framing failures where the buffer ends before the
// frame does — the shape a torn tail write leaves behind. Consumers that
// can repair (the WAL replay truncates at the last whole record)
// distinguish it from structural corruption with errors.Is.
var ErrTruncated = errors.New("wire: truncated frame")

// AppendFrame appends one length-prefixed frame to dst and returns the
// extended buffer.
func AppendFrame(dst, frame []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(frame)))
	return append(dst, frame...)
}

// NextFrame splits one length-prefixed frame off the front of buf,
// returning the frame and the remainder. maxFrame bounds the declared
// frame length (0 means no bound) so a hostile length prefix cannot
// force unbounded reads. Incomplete input — a length prefix or frame
// body cut short — fails with an error wrapping ErrTruncated; an
// over-limit or malformed length prefix is structural corruption and
// does not.
func NextFrame(buf []byte, maxFrame int) (frame, rest []byte, err error) {
	n, w := binary.Uvarint(buf)
	if w == 0 {
		return nil, nil, fmt.Errorf("%w: incomplete length prefix", ErrTruncated)
	}
	if w < 0 {
		return nil, nil, fmt.Errorf("wire: malformed length prefix")
	}
	buf = buf[w:]
	if maxFrame > 0 && n > uint64(maxFrame) {
		return nil, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	if uint64(len(buf)) < n {
		return nil, nil, fmt.Errorf("%w: frame body (%d of %d bytes)", ErrTruncated, len(buf), n)
	}
	return buf[:n], buf[n:], nil
}
