package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestStateFrameRoundTrip(t *testing.T) {
	in := StateFrame{
		NodeID:  "edge-07",
		Version: 0xdeadbeefcafe,
		N:       123456,
		State:   []byte{1, 1, 9, 3, 0, 255, 42},
	}
	buf, err := EncodeStateFrame(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeStateFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.NodeID != in.NodeID || out.Version != in.Version || out.N != in.N || !bytes.Equal(out.State, in.State) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	// Empty state (a fresh node) is a valid frame.
	empty, err := EncodeStateFrame(StateFrame{NodeID: "n", State: nil})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := DecodeStateFrame(empty); err != nil || len(out.State) != 0 {
		t.Fatalf("empty state: %v %+v", err, out)
	}
}

func TestStateFrameRejectsCorruption(t *testing.T) {
	buf, err := EncodeStateFrame(StateFrame{NodeID: "edge-1", Version: 7, N: 3, State: []byte{1, 1, 3, 1, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Every single-bit flip anywhere in the frame must be caught.
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x10
		if _, err := DecodeStateFrame(bad); err == nil {
			t.Fatalf("bit flip at byte %d was accepted", i)
		}
	}
	// Every truncation must be caught.
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeStateFrame(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes was accepted", cut)
		}
	}
}

func TestStateFrameRejectsBadNodeIDs(t *testing.T) {
	if _, err := EncodeStateFrame(StateFrame{NodeID: ""}); err == nil {
		t.Error("empty node id was accepted")
	}
	long := strings.Repeat("x", MaxNodeIDLen+1)
	if _, err := EncodeStateFrame(StateFrame{NodeID: long}); err == nil {
		t.Error("oversized node id was accepted")
	}
	if _, err := EncodeStateFrame(StateFrame{NodeID: "ok", N: -1}); err == nil {
		t.Error("negative report count was accepted")
	}
}

func FuzzDecodeStateFrame(f *testing.F) {
	seed, _ := EncodeStateFrame(StateFrame{NodeID: "edge-1", Version: 9, N: 2, State: []byte{3, 1, 2, 7}})
	f.Add(seed)
	f.Add([]byte("LDPX"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := DecodeStateFrame(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode to the identical bytes: the
		// frame, like the state codec, is canonical.
		again, err := EncodeStateFrame(sf)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("re-encode differs:\n in: %x\nout: %x", data, again)
		}
	})
}
