package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// State-exchange frame: the unit a cluster node serves from GET /state
// and a coordinator pulls to assemble fleet-wide aggregation state.
// The frame wraps one canonical Aggregator.MarshalState blob with the
// identity a coordinator needs for idempotent re-pulls:
//
//	"LDPX", format version byte,
//	uvarint node-id length, node-id bytes,
//	uvarint state version, uvarint report count,
//	uvarint state length, state bytes,
//	crc32c of everything above (4 bytes LE)
//
// The node id names the exporting process (a coordinator rejects two
// peer URLs resolving to the same node, which would double-count its
// reports); the state version is the exporter's mutation counter read
// immediately before the state was snapshotted, so an unchanged
// (id, version) pair lets the importer skip re-merging. The skip is an
// optimization, not an exactness guarantee: the counter advances only
// after a mutation is visible, so two exports racing one mutation can
// carry the same label around different states — an importer may then
// sit out one pull round, and the next round (which sees the advanced
// counter) re-transfers the full state, so the window self-heals within
// one pull interval. The report count is the snapshot's N, letting the
// importer cross-check the decoded blob. The CRC detects transfer
// truncation and bit rot without trusting the transport.

const (
	exchangeMagic   = "LDPX"
	exchangeVersion = 1
	exchangeCRCLen  = 4

	// MaxNodeIDLen bounds the exporter-chosen node id, keeping frame
	// headers small and hostile ids from forcing large allocations.
	MaxNodeIDLen = 256
)

var exchangeCRC = crc32.MakeTable(crc32.Castagnoli)

// StateFrame is one node's exported aggregation state.
type StateFrame struct {
	// NodeID names the exporting node (stable for the process lifetime).
	NodeID string
	// Version is the exporter's state-mutation counter, read before the
	// state was snapshotted: equal (NodeID, Version) implies equal State.
	Version uint64
	// N is the report count of the snapshot behind State.
	N int
	// State is the canonical Aggregator.MarshalState blob.
	State []byte
}

// EncodeStateFrame serializes one state-exchange frame.
func EncodeStateFrame(f StateFrame) ([]byte, error) {
	if len(f.NodeID) == 0 || len(f.NodeID) > MaxNodeIDLen {
		return nil, fmt.Errorf("wire: node id of %d bytes (want 1..%d)", len(f.NodeID), MaxNodeIDLen)
	}
	if f.N < 0 {
		return nil, fmt.Errorf("wire: negative report count %d", f.N)
	}
	buf := make([]byte, 0, len(exchangeMagic)+1+2*binary.MaxVarintLen64+len(f.NodeID)+len(f.State)+32)
	buf = append(buf, exchangeMagic...)
	buf = append(buf, exchangeVersion)
	buf = binary.AppendUvarint(buf, uint64(len(f.NodeID)))
	buf = append(buf, f.NodeID...)
	buf = binary.AppendUvarint(buf, f.Version)
	buf = binary.AppendUvarint(buf, uint64(f.N))
	buf = binary.AppendUvarint(buf, uint64(len(f.State)))
	buf = append(buf, f.State...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, exchangeCRC)), nil
}

// DecodeStateFrame parses and CRC-verifies one state-exchange frame.
// The returned frame's fields alias buf.
func DecodeStateFrame(buf []byte) (StateFrame, error) {
	var f StateFrame
	if len(buf) < len(exchangeMagic)+1+exchangeCRCLen {
		return f, fmt.Errorf("wire: state frame of %d bytes is too short", len(buf))
	}
	body, sum := buf[:len(buf)-exchangeCRCLen], binary.LittleEndian.Uint32(buf[len(buf)-exchangeCRCLen:])
	if got := crc32.Checksum(body, exchangeCRC); got != sum {
		return f, fmt.Errorf("wire: state frame checksum %08x, want %08x", got, sum)
	}
	if string(body[:len(exchangeMagic)]) != exchangeMagic {
		return f, fmt.Errorf("wire: bad state frame magic %q", body[:len(exchangeMagic)])
	}
	if body[len(exchangeMagic)] != exchangeVersion {
		return f, fmt.Errorf("wire: state frame format version %d, want %d", body[len(exchangeMagic)], exchangeVersion)
	}
	rest := body[len(exchangeMagic)+1:]
	idLen, w := binary.Uvarint(rest)
	if w <= 0 || idLen == 0 || idLen > MaxNodeIDLen || idLen > uint64(len(rest)-w) {
		return f, fmt.Errorf("wire: state frame node-id length malformed")
	}
	rest = rest[w:]
	f.NodeID = string(rest[:idLen])
	rest = rest[idLen:]
	if f.Version, w = binary.Uvarint(rest); w <= 0 {
		return f, fmt.Errorf("wire: state frame version malformed")
	}
	rest = rest[w:]
	n, w := binary.Uvarint(rest)
	if w <= 0 || n > uint64(math.MaxInt) {
		return f, fmt.Errorf("wire: state frame report count malformed")
	}
	f.N = int(n)
	rest = rest[w:]
	stateLen, w := binary.Uvarint(rest)
	if w <= 0 || stateLen != uint64(len(rest)-w) {
		return f, fmt.Errorf("wire: state frame state length %d does not match %d remaining bytes", stateLen, len(rest)-w)
	}
	f.State = rest[w:]
	return f, nil
}
