package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"
)

const testMaxRaw = 1 << 24

// reseal recomputes the trailing CRC after a deliberate body mutation,
// so tests reach the structural validation behind the checksum.
func reseal(buf []byte) []byte {
	body := buf[:len(buf)-exchangeCRCLen]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.Checksum(body, exchangeCRC))
}

func TestComponentFrameRoundTrip(t *testing.T) {
	compressible := bytes.Repeat([]byte{0, 0, 0, 1}, 4096)
	cases := []ComponentFrame{
		{NodeID: "edge-1", Version: 42, N: 10, Components: []StateComponent{
			{ID: "edge-1/0", Version: 7, N: 4, State: []byte{9, 8, 7}},
			{ID: "edge-1/1", Version: 9, N: 6, State: compressible},
		}},
		{NodeID: "coord-a", Version: 3, N: 0, Components: nil},
		{NodeID: "edge-1", Version: 50, Delta: true, BaseVersion: 42, N: 12, Components: []StateComponent{
			{ID: "edge-1/1", Version: 11, N: 8, State: []byte{1, 2, 3, 4}},
		}, Removed: []string{"edge-1/5", "edge-1/9"}},
		{NodeID: "root", Version: 1, Delta: true, BaseVersion: 0, N: 0,
			Removed: []string{"edge-2/0"}},
		// A component with an empty state blob (n=0 placeholder).
		{NodeID: "e", Version: 1, N: 0, Components: []StateComponent{{ID: "e/0", Version: 5}}},
	}
	for i, in := range cases {
		buf, err := EncodeComponentFrame(in)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		if !IsComponentFrame(buf) {
			t.Fatalf("case %d: encoded frame not sniffed as componentized", i)
		}
		out, err := DecodeComponentFrame(buf, testMaxRaw)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		// Normalize nil-vs-empty state slices for the comparison.
		for j := range out.Components {
			if len(out.Components[j].State) == 0 {
				out.Components[j].State = nil
			}
		}
		norm := in
		norm.Components = append([]StateComponent(nil), in.Components...)
		for j := range norm.Components {
			if len(norm.Components[j].State) == 0 {
				norm.Components[j].State = nil
			}
		}
		if len(norm.Components) == 0 {
			norm.Components = nil
		}
		if !reflect.DeepEqual(out, norm) {
			t.Fatalf("case %d: round trip:\n got %+v\nwant %+v", i, out, norm)
		}
	}
}

func TestComponentFrameCompresses(t *testing.T) {
	// A sparse counter blob (mostly zero bytes) must ship flate-packed:
	// the whole point of the delta frame is that O(2^d) dense states with
	// few occupied cells cost little on the wire.
	state := make([]byte, 1<<16)
	for i := 0; i < len(state); i += 97 {
		state[i] = byte(i)
	}
	buf, err := EncodeComponentFrame(ComponentFrame{
		NodeID: "e", Version: 1, N: 1,
		Components: []StateComponent{{ID: "e/0", Version: 1, N: 1, State: state}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) >= len(state)/2 {
		t.Fatalf("frame of %d bytes for a %d-byte sparse state did not compress", len(buf), len(state))
	}
	out, err := DecodeComponentFrame(buf, testMaxRaw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Components[0].State, state) {
		t.Fatal("compressed state did not round-trip")
	}
}

func TestComponentFrameEncodeRejects(t *testing.T) {
	okComp := []StateComponent{{ID: "n/0", Version: 1, N: 1, State: []byte{1}}}
	cases := []struct {
		name string
		f    ComponentFrame
	}{
		{"empty node id", ComponentFrame{NodeID: "", Components: okComp}},
		{"oversized node id", ComponentFrame{NodeID: strings.Repeat("x", MaxNodeIDLen+1)}},
		{"negative n", ComponentFrame{NodeID: "n", N: -1}},
		{"negative component n", ComponentFrame{NodeID: "n", Components: []StateComponent{{ID: "n/0", N: -1}}}},
		{"empty component id", ComponentFrame{NodeID: "n", Components: []StateComponent{{ID: ""}}}},
		{"oversized component id", ComponentFrame{NodeID: "n", Components: []StateComponent{{ID: strings.Repeat("y", MaxComponentIDLen+1)}}}},
		{"unsorted components", ComponentFrame{NodeID: "n", Components: []StateComponent{{ID: "n/1"}, {ID: "n/0"}}}},
		{"duplicate components", ComponentFrame{NodeID: "n", Components: []StateComponent{{ID: "n/0"}, {ID: "n/0"}}}},
		{"unsorted removed", ComponentFrame{NodeID: "n", Delta: true, Removed: []string{"b", "a"}}},
		{"full frame with base version", ComponentFrame{NodeID: "n", BaseVersion: 3}},
		{"full frame with removals", ComponentFrame{NodeID: "n", Removed: []string{"a"}}},
	}
	for _, tc := range cases {
		if _, err := EncodeComponentFrame(tc.f); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestComponentFrameRejectsCorruption(t *testing.T) {
	buf, err := EncodeComponentFrame(ComponentFrame{
		NodeID: "edge-1", Version: 5, Delta: true, BaseVersion: 3, N: 4,
		Components: []StateComponent{
			{ID: "edge-1/0", Version: 2, N: 1, State: []byte{4, 4, 4}},
			{ID: "edge-1/2", Version: 3, N: 3, State: bytes.Repeat([]byte{0}, 512)},
		},
		Removed: []string{"edge-1/1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x10
		if _, err := DecodeComponentFrame(bad, testMaxRaw); err == nil {
			t.Fatalf("bit flip at byte %d was accepted", i)
		}
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeComponentFrame(buf[:cut], testMaxRaw); err == nil {
			t.Fatalf("truncation to %d bytes was accepted", cut)
		}
	}
}

func TestComponentFrameDecodeRejectsHostileBodies(t *testing.T) {
	// Structural attacks that survive a valid CRC: each case mutates the
	// body of a valid frame and reseals the checksum.
	base, err := EncodeComponentFrame(ComponentFrame{
		NodeID: "n", Version: 1, N: 2,
		Components: []StateComponent{{ID: "n/0", Version: 1, N: 2, State: bytes.Repeat([]byte{7}, 64)}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Shipped-and-removed overlap.
	both, err := EncodeComponentFrame(ComponentFrame{
		NodeID: "n", Version: 2, Delta: true, BaseVersion: 1, N: 2,
		Components: []StateComponent{{ID: "n/0", Version: 1, N: 2, State: []byte{1}}},
		Removed:    []string{"n/0"},
	})
	if err == nil {
		if _, err := DecodeComponentFrame(both, testMaxRaw); err == nil {
			t.Error("component both shipped and removed was accepted")
		}
	}

	// Unknown flags bit.
	bad := append([]byte(nil), base...)
	bad[len(deltaMagic)+1] |= 0x80
	if _, err := DecodeComponentFrame(reseal(bad), testMaxRaw); err == nil {
		t.Error("unknown flags were accepted")
	}

	// Trailing bytes after a structurally complete frame.
	bad = append(append([]byte(nil), base[:len(base)-exchangeCRCLen]...), 0xAA)
	if _, err := DecodeComponentFrame(reseal(bad), testMaxRaw); err == nil {
		t.Error("trailing bytes were accepted")
	}

	// Raw budget: a frame whose declared raw state exceeds maxRaw must be
	// refused before the decoder materializes it (compression bomb).
	big, err := EncodeComponentFrame(ComponentFrame{
		NodeID: "n", Version: 1, N: 1,
		Components: []StateComponent{{ID: "n/0", Version: 1, N: 1, State: make([]byte, 4096)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeComponentFrame(big, 100); err == nil {
		t.Error("raw state over the byte budget was accepted")
	}
	if _, err := DecodeComponentFrame(base, testMaxRaw); err != nil {
		t.Fatalf("control frame rejected: %v", err)
	}
}

func TestComponentOrigin(t *testing.T) {
	cases := map[string]string{
		"edge-1/17":  "edge-1",
		"edge-1":     "edge-1",
		"a/b/c":      "a",
		"/leading":   "",
		"windowed-3": "windowed-3",
	}
	for id, want := range cases {
		if got := ComponentOrigin(id); got != want {
			t.Errorf("ComponentOrigin(%q) = %q, want %q", id, got, want)
		}
	}
}

func FuzzDecodeComponentFrame(f *testing.F) {
	full, _ := EncodeComponentFrame(ComponentFrame{
		NodeID: "edge-1", Version: 9, N: 5,
		Components: []StateComponent{
			{ID: "edge-1/0", Version: 3, N: 2, State: []byte{3, 1, 2, 7}},
			{ID: "edge-1/3", Version: 4, N: 3, State: bytes.Repeat([]byte{0, 1}, 300)},
		},
	})
	delta, _ := EncodeComponentFrame(ComponentFrame{
		NodeID: "edge-1", Version: 12, Delta: true, BaseVersion: 9, N: 6,
		Components: []StateComponent{{ID: "edge-1/0", Version: 5, N: 3, State: []byte{8}}},
		Removed:    []string{"edge-1/3"},
	})
	f.Add(full)
	f.Add(delta)
	f.Add([]byte("LDPD"))
	f.Add([]byte{})
	// Hand-corrupted seeds: truncated compressed payload, stale base
	// version field, mangled component list length.
	if len(full) > 20 {
		f.Add(append([]byte(nil), full[:len(full)-12]...))
	}
	if len(delta) > 8 {
		d := append([]byte(nil), delta...)
		d[8] ^= 0xFF
		f.Add(d)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cf, err := DecodeComponentFrame(data, testMaxRaw)
		if err != nil {
			return
		}
		// Anything accepted must survive a re-encode/re-decode cycle with
		// identical logical content. (Byte identity is not required: a
		// hostile frame may store a compressible blob raw, or use a
		// different flate packing, and still be structurally valid.)
		again, err := EncodeComponentFrame(cf)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		cf2, err := DecodeComponentFrame(again, testMaxRaw)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if cf.NodeID != cf2.NodeID || cf.Version != cf2.Version || cf.Delta != cf2.Delta ||
			cf.BaseVersion != cf2.BaseVersion || cf.N != cf2.N ||
			len(cf.Components) != len(cf2.Components) || len(cf.Removed) != len(cf2.Removed) {
			t.Fatalf("re-decode differs:\n got %+v\nwant %+v", cf2, cf)
		}
		for i := range cf.Components {
			a, b := cf.Components[i], cf2.Components[i]
			if a.ID != b.ID || a.Version != b.Version || a.N != b.N || !bytes.Equal(a.State, b.State) {
				t.Fatalf("component %d differs after re-decode", i)
			}
		}
		for i := range cf.Removed {
			if cf.Removed[i] != cf2.Removed[i] {
				t.Fatalf("removed id %d differs after re-decode", i)
			}
		}
	})
}
