package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{0xAB}, 300)}
	var buf []byte
	for _, f := range frames {
		buf = AppendFrame(buf, f)
	}
	for i, want := range frames {
		frame, rest, err := NextFrame(buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(frame, want) {
			t.Fatalf("frame %d: got %v want %v", i, frame, want)
		}
		buf = rest
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestNextFrameTruncation(t *testing.T) {
	whole := AppendFrame(nil, []byte("durable"))
	for cut := 0; cut < len(whole); cut++ {
		_, _, err := NextFrame(whole[:cut], 0)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestNextFrameOversized(t *testing.T) {
	buf := AppendFrame(nil, bytes.Repeat([]byte{1}, 64))
	if _, _, err := NextFrame(buf, 16); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("oversized frame: err = %v, want non-truncation error", err)
	}
	if _, _, err := NextFrame(buf, 64); err != nil {
		t.Fatalf("frame at the limit rejected: %v", err)
	}
}

func TestNextFrameMalformedLength(t *testing.T) {
	// An 11-byte maximal varint overflows uint64: structural corruption,
	// not truncation.
	buf := bytes.Repeat([]byte{0xFF}, 11)
	if _, _, err := NextFrame(buf, 0); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("overflowing length: err = %v, want non-truncation error", err)
	}
}

func TestStateRoundTrip(t *testing.T) {
	e := NewStateEncoder(7, 1)
	e.Uvarint(42)
	e.Varint(-17)
	e.Uint64s([]uint64{0, 1, 1 << 60})
	e.Int64s([]int64{-5, 0, 5})
	blob := e.Bytes()

	d, err := NewStateDecoder(blob, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Uvarint(); v != 42 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Varint(); v != -17 {
		t.Fatalf("varint = %d", v)
	}
	if got := d.Uint64s(3); len(got) != 3 || got[2] != 1<<60 {
		t.Fatalf("uint64s = %v", got)
	}
	if got := d.Int64s(-1); len(got) != 3 || got[0] != -5 {
		t.Fatalf("int64s = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}

	// Re-encoding the decoded values is byte-identical (canonical form).
	e2 := NewStateEncoder(7, 1)
	e2.Uvarint(42)
	e2.Varint(-17)
	e2.Uint64s([]uint64{0, 1, 1 << 60})
	e2.Int64s([]int64{-5, 0, 5})
	if !bytes.Equal(blob, e2.Bytes()) {
		t.Fatal("re-encoding differs")
	}
}

func TestStateDecoderRejectsHeaderMismatch(t *testing.T) {
	blob := NewStateEncoder(3, 1).Bytes()
	if _, err := NewStateDecoder(blob, 4, 1); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := NewStateDecoder(blob, 3, 2); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := NewStateDecoder([]byte{3}, 3, 1); err == nil {
		t.Fatal("headerless blob accepted")
	}
}

func TestStateDecoderBoundsSliceAllocation(t *testing.T) {
	// A count prefix claiming more entries than bytes remain must fail
	// before allocating.
	e := NewStateEncoder(1, 1)
	e.Uvarint(1 << 40)
	d, err := NewStateDecoder(e.Bytes(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Uint64s(-1); got != nil {
		t.Fatalf("oversized slice decoded: %d entries", len(got))
	}
	if err := d.Finish(); err == nil {
		t.Fatal("oversized slice count not reported")
	}
}

func TestStateDecoderTrailingBytes(t *testing.T) {
	e := NewStateEncoder(1, 1)
	e.Uvarint(9)
	blob := append(e.Bytes(), 0xFF)
	d, err := NewStateDecoder(blob, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Uvarint()
	if err := d.Finish(); err == nil {
		t.Fatal("trailing bytes not reported")
	}
}
