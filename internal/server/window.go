package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The continual-release driver. A windowed deployment's bucket
// lifecycle — sealing the live bucket, expiring state that slid out of
// the window, recovering ledger budget, and keeping the WAL's segment
// boundaries aligned with bucket boundaries — is advanced by one
// background goroutine per server, ticking at a fraction of the bucket
// span so boundaries are honored promptly without per-bucket timers.

// rotator drives Ring.Advance (and its store/ledger side effects) on a
// ticker for the server's lifetime.
type rotator struct {
	s *Server

	stop      chan struct{}
	closeOnce sync.Once
	done      sync.WaitGroup

	lastErr atomic.Value // string: most recent advance failure, for /status
}

func newRotator(s *Server) *rotator {
	return &rotator{s: s, stop: make(chan struct{})}
}

func (ro *rotator) start() {
	ro.done.Add(1)
	go ro.loop()
}

// Close stops the rotation loop and joins it; idempotent.
func (ro *rotator) Close() {
	ro.closeOnce.Do(func() { close(ro.stop) })
	ro.done.Wait()
}

// loop wakes at a quarter of the bucket span, so a bucket boundary is
// acted on within ~bucket/4 of passing. A late tick only defers
// rotation — the ring seals by elapsed time, never by tick count.
func (ro *rotator) loop() {
	defer ro.done.Done()
	tick := ro.s.win.Bucket() / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-ro.stop:
			return
		case <-ticker.C:
			// Each advance roots its own lifecycle trace; the common
			// no-boundary-crossed tick is abandoned so the ~bucket/4
			// cadence doesn't flood the trace ring.
			ctx, root := ro.s.tracer.StartRoot(context.Background(), "window.advance")
			rotated, expired, err := ro.s.advanceWindowContext(ctx, time.Now())
			if err != nil {
				ro.lastErr.Store(err.Error())
				root.SetAttr("error", err.Error())
				ro.s.log.Warn("window advance failed", "err", err)
			}
			if err == nil && rotated == 0 && expired == 0 {
				root.Discard()
			} else {
				root.SetAttr("rotated", rotated)
				root.SetAttr("expired", expired)
				root.End()
			}
		}
	}
}

// advanceWindow rotates the ring up to now and propagates the
// lifecycle: sealed buckets recover ledger budget and close the active
// WAL segment (so segments stay bucket-aligned), and expired buckets
// trigger a store compaction — the forced snapshot of the shrunken
// window is what lets the store prune the expired buckets' segments,
// making window expiry double as disk retention.
func (s *Server) advanceWindow(now time.Time) error {
	_, _, err := s.advanceWindowContext(context.Background(), now)
	return err
}

func (s *Server) advanceWindowContext(ctx context.Context, now time.Time) (rotated, expired int, err error) {
	rotated, expired, err = s.win.AdvanceContext(ctx, now)
	if err != nil {
		return rotated, expired, err
	}
	if rotated > 0 && s.ledger != nil {
		s.ledger.Rotate(rotated)
	}
	st := s.Store()
	if st == nil {
		return rotated, expired, nil
	}
	if rotated > 0 {
		if _, err := st.Rotate(); err != nil {
			return rotated, expired, fmt.Errorf("rotating WAL segment at bucket seal: %w", err)
		}
	}
	if expired > 0 {
		if err := st.Compact(); err != nil {
			return rotated, expired, fmt.Errorf("compacting store after bucket expiry: %w", err)
		}
	}
	return rotated, expired, nil
}

// WindowStatus is the continual-release section of a /status and
// /view/status reply (windowed deployments only).
type WindowStatus struct {
	// WindowSeconds and BucketSeconds echo the configured spans.
	WindowSeconds float64 `json:"window_seconds"`
	BucketSeconds float64 `json:"bucket_seconds"`
	// Buckets is the window capacity in buckets, including the live one.
	Buckets int `json:"buckets"`
	// SealedBuckets is the number of retained non-empty sealed buckets.
	SealedBuckets int `json:"sealed_buckets"`
	// SealedReports and LiveReports split the window's report count
	// between sealed buckets and the live one.
	SealedReports int `json:"sealed_reports"`
	LiveReports   int `json:"live_reports"`
	// Rotations counts bucket boundaries crossed since startup; Expired
	// counts buckets retired from the window.
	Rotations uint64 `json:"rotations"`
	Expired   uint64 `json:"expired_buckets"`
	// RoundEps is the per-token epsilon budget per window (0 when no
	// budget is enforced); BudgetTokens and BudgetRejected describe the
	// ledger.
	RoundEps       float64 `json:"round_eps,omitempty"`
	BudgetTokens   int     `json:"budget_tokens,omitempty"`
	BudgetRejected uint64  `json:"budget_rejected,omitempty"`
	// LastRotateError is the most recent background rotation failure, if
	// any.
	LastRotateError string `json:"last_rotate_error,omitempty"`
}

// windowStatus assembles the window block, or nil for a cumulative
// deployment.
func (s *Server) windowStatus() *WindowStatus {
	if s.win == nil {
		return nil
	}
	rs := s.win.Status()
	ws := &WindowStatus{
		WindowSeconds: rs.Window.Seconds(),
		BucketSeconds: rs.Bucket.Seconds(),
		Buckets:       rs.Buckets,
		SealedBuckets: rs.SealedBuckets,
		SealedReports: rs.SealedN,
		LiveReports:   rs.LiveN,
		Rotations:     rs.Rotations,
		Expired:       rs.Expired,
	}
	if s.ledger != nil {
		ls := s.ledger.Stats()
		ws.RoundEps = ls.Budget
		ws.BudgetTokens = ls.Tokens
		ws.BudgetRejected = ls.Rejected
	}
	if s.rotor != nil {
		if e, ok := s.rotor.lastErr.Load().(string); ok {
			ws.LastRotateError = e
		}
	}
	return ws
}
