package server

import (
	"net/http"
	"sync/atomic"
	"time"

	"ldpmarginals/internal/fault"
	"ldpmarginals/internal/logx"
	"ldpmarginals/internal/metrics"
	"ldpmarginals/internal/trace"
)

// The observability layer. Every server assembles its own
// metrics.Registry at construction: the HTTP middleware's per-endpoint
// latency histograms and status-class counters, the ingest pipeline's
// throughput and shed counters, and the per-layer instrumentation that
// store, view, window, privacy, and the cluster tier register
// themselves. GET /metrics renders it in Prometheus text format on
// every role; all hot-path updates are single atomic operations (see
// internal/metrics).

// codeClasses are the status classes counted per endpoint (1xx is not
// worth a series; 429s additionally surface through the shed and ledger
// counters).
var codeClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// pathInstruments is one route's request metrics.
type pathInstruments struct {
	latency *metrics.Histogram
	codes   [4]*metrics.Counter // indexed by class-2
}

// httpInstruments is the middleware's instrument table: one entry per
// registered route plus a catch-all, built once at construction so the
// per-request path is a read-only map lookup.
type httpInstruments struct {
	paths    map[string]*pathInstruments
	other    *pathInstruments
	inflight *metrics.Gauge
}

// serverInstruments is the server's own always-on instrumentation.
type serverInstruments struct {
	http *httpInstruments

	ingestReports   *metrics.Counter // reports accepted into the aggregator
	ingestBatches   *metrics.Counter // /report/batch requests fully accepted
	rejectedReports *metrics.Counter // reports refused by protocol validation
	shedReport      *metrics.Counter // /report requests shed by admission control
	shedBatch       *metrics.Counter // /report/batch requests shed by admission control
}

// metricRoutes is the fixed set of endpoint paths instrumented
// per-route; anything else (typos, probes) lands in the "other" bucket
// so request cardinality cannot grow unboundedly.
var metricRoutes = []string{
	"/report", "/report/batch", "/marginal", "/query", "/refresh",
	"/view/status", "/view/diagnostics", "/state", "/pull", "/status",
	"/healthz", "/readyz", "/metrics", "/debug/traces",
}

func newServerInstruments() *serverInstruments {
	h := &httpInstruments{
		paths:    make(map[string]*pathInstruments, len(metricRoutes)),
		inflight: metrics.NewGauge(),
	}
	newPath := func() *pathInstruments {
		pi := &pathInstruments{latency: metrics.NewHistogram(metrics.DurationBuckets())}
		for i := range pi.codes {
			pi.codes[i] = metrics.NewCounter()
		}
		return pi
	}
	for _, p := range metricRoutes {
		h.paths[p] = newPath()
	}
	h.other = newPath()
	return &serverInstruments{
		http:            h,
		ingestReports:   metrics.NewCounter(),
		ingestBatches:   metrics.NewCounter(),
		rejectedReports: metrics.NewCounter(),
		shedReport:      metrics.NewCounter(),
		shedBatch:       metrics.NewCounter(),
	}
}

// buildRegistry assembles the server's registry: its own HTTP/ingest
// instruments plus every constructed layer's RegisterMetrics. Called
// once at the end of construction, when all layers exist.
func (s *Server) buildRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	r.RegisterGoRuntime()

	register := func(path string, pi *pathInstruments) {
		r.MustRegister("ldp_http_request_seconds", "Request latency by endpoint.", metrics.Labels{"path": path}, pi.latency)
		for i, class := range codeClasses {
			r.MustRegister("ldp_http_requests_total", "Requests by endpoint and status class.", metrics.Labels{"path": path, "code": class}, pi.codes[i])
		}
	}
	for _, p := range metricRoutes {
		register(p, s.ins.http.paths[p])
	}
	register("other", s.ins.http.other)
	r.MustRegister("ldp_http_inflight_requests", "Requests currently being served.", nil, s.ins.http.inflight)

	r.MustRegister("ldp_ingest_reports_total", "Reports accepted into the aggregation state.", nil, s.ins.ingestReports)
	r.MustRegister("ldp_ingest_batches_total", "Batch requests fully accepted.", nil, s.ins.ingestBatches)
	r.MustRegister("ldp_ingest_rejected_reports_total", "Reports not ingested from rejected requests (validation failures and the undispatched remainder of a failed batch).", nil, s.ins.rejectedReports)
	r.MustRegister("ldp_ingest_shed_total", "Ingest requests shed by admission control (429).", metrics.Labels{"path": "/report"}, s.ins.shedReport)
	r.MustRegister("ldp_ingest_shed_total", "Ingest requests shed by admission control (429).", metrics.Labels{"path": "/report/batch"}, s.ins.shedBatch)
	r.MustGaugeFunc("ldp_reports", "Reports behind this node (fleet-wide on a coordinator, in-window on a windowed deployment).", nil,
		func() float64 { return float64(s.N()) })
	if s.adm != nil {
		r.MustGaugeFunc("ldp_ingest_queued_requests", "Ingest requests waiting for an admission slot.", nil,
			func() float64 { return float64(s.adm.queued.Load()) })
	}

	if s.deg != nil {
		r.MustGaugeFunc("ldp_health_state", "Durability health state machine (0 healthy, 1 degraded, 2 recovering).", nil,
			func() float64 { return float64(s.deg.state.Load()) })
		r.MustRegister("ldp_degraded_transitions_total", "Transitions into degraded read-only mode.", nil, s.deg.transitions)
		r.MustRegister("ldp_recoveries_total", "Recoveries from degraded mode back to healthy.", nil, s.deg.recoveries)
		r.MustRegister("ldp_disk_probe_failures_total", "Failed disk probes or WAL revives while degraded.", nil, s.deg.probeFails)
		r.MustRegister("ldp_ingest_shed_degraded_total", "Ingest requests shed with 503 while degraded.", nil, s.deg.shedded)
	}
	// Fault-injection visibility: zero in production (nothing armed), and
	// the chaos harness asserts its schedule actually fired.
	r.MustCounterFunc("ldp_fault_injections_total", "Fault-injection rules fired (internal/fault; 0 unless armed).", nil,
		func() float64 { return float64(fault.Default.Fired()) })

	r.MustCounterFunc("ldp_trace_spans_total", "Spans recorded by the tracer.", nil,
		func() float64 { return float64(s.tracer.Stats().Spans) })
	r.MustCounterFunc("ldp_trace_traces_total", "Completed traces published to the /debug/traces ring.", nil,
		func() float64 { return float64(s.tracer.Stats().Traces) })
	r.MustCounterFunc("ldp_trace_dropped_spans_total", "Spans dropped by the per-trace cap.", nil,
		func() float64 { return float64(s.tracer.Stats().DroppedSpans) })

	if st := s.Store(); st != nil {
		st.RegisterMetrics(r)
	}
	if s.reads != nil {
		s.reads.engine.RegisterMetrics(r)
	}
	if s.win != nil {
		s.win.RegisterMetrics(r)
	}
	if s.ledger != nil {
		s.ledger.RegisterMetrics(r)
	}
	if s.fleet != nil {
		s.registerClusterMetrics(r)
	}
	return r
}

// registerClusterMetrics attaches the coordinator's per-peer pull
// instrumentation: latency/bytes/result counters the puller maintains,
// and scrape-time gauges over the fleet's accepted states.
func (s *Server) registerClusterMetrics(r *metrics.Registry) {
	r.MustCounterFunc("ldp_cluster_pull_rounds_total", "Completed pull rounds (scheduled and forced).", nil,
		func() float64 { return float64(s.puller.rounds.Value()) })
	r.MustGaugeFunc("ldp_cluster_fleet_reports", "Fleet-wide report count (local plus every accepted peer state).", nil,
		func() float64 { return float64(s.fleet.N()) })
	r.MustGaugeFunc("ldp_cluster_peers_with_state", "Configured peers whose state has been accepted (pulled or recovered).", nil,
		func() float64 { return float64(s.fleet.peersWithState()) })

	for _, pe := range s.fleet.peers {
		pe := pe
		labels := metrics.Labels{"peer": pe.url}
		ins := s.puller.ins[pe.url]
		r.MustRegister("ldp_cluster_pull_seconds", "One peer pull's wall time (fetch + validate + accept).", labels, ins.latency)
		r.MustRegister("ldp_cluster_pull_bytes_total", "State bytes fetched from the peer.", labels, ins.bytes)
		r.MustRegister("ldp_cluster_pulls_total", "Pulls by outcome.", metrics.Labels{"peer": pe.url, "result": "changed"}, ins.changed)
		r.MustRegister("ldp_cluster_pulls_total", "Pulls by outcome.", metrics.Labels{"peer": pe.url, "result": "unchanged"}, ins.unchanged)
		r.MustRegister("ldp_cluster_pulls_total", "Pulls by outcome.", metrics.Labels{"peer": pe.url, "result": "error"}, ins.failed)
		r.MustRegister("ldp_cluster_pull_delta_total", "Successful pulls answered with a delta frame.", labels, ins.deltaPulls)
		r.MustRegister("ldp_cluster_pull_full_total", "Successful pulls answered with a full frame.", labels, ins.fullPulls)
		r.MustRegister("ldp_cluster_pull_not_modified_total", "Successful pulls answered 304 Not Modified (version handshake hit).", labels, ins.notModified)
		r.MustRegister("ldp_cluster_pull_bytes_saved_total", "Estimated bytes the delta/304 path avoided transferring, vs re-fetching the peer's last full frame.", labels, ins.bytesSaved)
		r.MustGaugeFunc("ldp_cluster_peer_components", "Named state components in the peer's latest accepted state.", labels,
			func() float64 {
				s.fleet.mu.Lock()
				defer s.fleet.mu.Unlock()
				return float64(len(pe.comps))
			})
		r.MustGaugeFunc("ldp_cluster_peer_reports", "Reports in the peer's latest accepted state.", labels,
			func() float64 {
				s.fleet.mu.Lock()
				defer s.fleet.mu.Unlock()
				return float64(pe.n)
			})
		r.MustGaugeFunc("ldp_cluster_peer_pull_age_seconds", "Seconds since the peer's last successful pull (-1 before the first).", labels,
			func() float64 {
				s.fleet.mu.Lock()
				pulledAt := pe.pulledAt
				s.fleet.mu.Unlock()
				if pulledAt.IsZero() {
					return -1
				}
				if age := time.Since(pulledAt).Seconds(); age > 0 {
					return age
				}
				return 0
			})
		r.MustGaugeFunc("ldp_cluster_peer_failures", "Consecutive pull failures (drives exponential backoff).", labels,
			func() float64 {
				s.fleet.mu.Lock()
				defer s.fleet.mu.Unlock()
				return float64(pe.fails)
			})
		r.MustGaugeFunc("ldp_cluster_peer_health", "Peer circuit-breaker state: 0 healthy, 1 backing_off, 2 quarantined.", labels,
			func() float64 {
				s.fleet.mu.Lock()
				defer s.fleet.mu.Unlock()
				return float64(pe.healthLocked())
			})
		r.MustCounterFunc("ldp_cluster_peer_quarantines_total", "Circuit-breaker trips: times the peer entered quarantine after repeated poison pulls.", labels,
			func() float64 {
				s.fleet.mu.Lock()
				defer s.fleet.mu.Unlock()
				return float64(pe.quarantines)
			})
	}
}

// statusRecorder captures the response status for the middleware.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the route mux with the request middleware: in-flight
// gauge, per-endpoint latency histogram, status-class counters, and one
// root trace span per request. A W3C traceparent header joins the
// request to the caller's trace (that is how a coordinator's pull and
// the edge's /state handler become one cross-process trace); otherwise
// a fresh trace starts here. The span's trace id is echoed as
// X-LDP-Trace-Id so clients can quote it, and request logging at debug
// (warn on 5xx) carries the same id so logs and traces correlate.
// /debug/traces itself is exempt from tracing — scraping the ring must
// not fill the ring with scrape traces.
func (s *Server) instrument(next http.Handler) http.Handler {
	h := s.ins.http
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pi := h.paths[r.URL.Path]
		if pi == nil {
			pi = h.other
		}
		traced := r.URL.Path != "/debug/traces"
		var span *trace.Span
		if traced {
			var ctx = r.Context()
			if tid, parent, ok := trace.Extract(r.Header); ok {
				ctx, span = s.tracer.StartRemoteRoot(ctx, "http.request", tid, parent)
			} else {
				ctx, span = s.tracer.StartRoot(ctx, "http.request")
			}
			span.SetAttr("method", r.Method)
			span.SetAttr("path", r.URL.Path)
			w.Header().Set("X-LDP-Trace-Id", span.TraceID().String())
			r = r.WithContext(ctx)
		}
		h.inflight.Inc()
		rec := statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(&rec, r)
		elapsed := time.Since(start)
		pi.latency.Observe(elapsed.Seconds())
		if class := rec.code/100 - 2; class >= 0 && class < len(pi.codes) {
			pi.codes[class].Inc()
		}
		h.inflight.Dec()
		if traced {
			span.SetAttr("status", rec.code)
			if rec.code >= 500 {
				s.log.Warn("request failed", "trace", span.TraceID().String(), "method", r.Method, "path", r.URL.Path, "status", rec.code, "dur", elapsed)
			} else if s.log.Enabled(logx.Debug) {
				s.log.Debug("request", "trace", span.TraceID().String(), "method", r.Method, "path", r.URL.Path, "status", rec.code, "dur", elapsed)
			}
			span.End()
		}
	})
}

// Metrics returns the server's metric registry, so an operator can
// additionally mount it on a side listener (the pprof port) that stays
// reachable when the serving listener is saturated.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// admission is the ingest endpoints' load-shedding gate: a bounded
// in-flight slot pool with a bounded wait queue in front of it. A
// request beyond both bounds is shed immediately with 429 +
// Retry-After instead of piling up another goroutine — under
// overload the server degrades by refusing work it could not finish
// anyway, and the shed counter makes the refusal observable.
type admission struct {
	slots    chan struct{} // capacity = max in-flight ingest requests
	queued   atomic.Int64
	maxQueue int64
}

func newAdmission(inflight, queue int) *admission {
	return &admission{
		slots:    make(chan struct{}, inflight),
		maxQueue: int64(queue),
	}
}

// acquire claims an in-flight slot, waiting in the bounded queue when
// the pool is full. It returns false when the queue is full too (shed)
// or the client gave up while queued.
func (a *admission) acquire(r *http.Request) bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return false
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return true
	case <-r.Context().Done():
		// The client disconnected while queued; nothing to admit.
		return false
	}
}

func (a *admission) release() { <-a.slots }

// shed answers a request refused by admission control: 429 with an
// explicit Retry-After, counted per endpoint.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, counter *metrics.Counter) {
	counter.Inc()
	w.Header().Set("Retry-After", "1")
	httpError(w, r, "ingest at capacity; retry with backoff", http.StatusTooManyRequests)
}

// FaultIngestAdmit is the ingest admission fault-injection site: error
// rules force a 429 shed, latency rules simulate queue pressure.
const FaultIngestAdmit = "server.ingest.admit"

// admit claims an ingest admission slot inside an "ingest.admission"
// span, so time spent waiting in the bounded queue is visible on the
// request's trace. On false the request has already been answered
// (shed with 429); on true the caller must release the slot.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, shedCounter *metrics.Counter) bool {
	_, span := trace.StartSpan(r.Context(), "ingest.admission")
	ok := fault.Hit(FaultIngestAdmit) == nil && s.adm.acquire(r)
	span.SetAttr("admitted", ok)
	span.End()
	if !ok {
		s.shed(w, r, shedCounter)
	}
	return ok
}

// ReadyResponse is the JSON shape of a /readyz reply.
type ReadyResponse struct {
	Ready bool   `json:"ready"`
	Role  string `json:"role"`
	// Health is the durability state machine's state (healthy, degraded,
	// recovering); always "healthy" for roles without a durable ingest
	// path.
	Health string `json:"health"`
	// Reasons lists what is not ready; empty when Ready.
	Reasons []string `json:"reasons,omitempty"`
	// PeerHealth maps each configured peer URL to healthy, backing_off,
	// or quarantined; coordinators only.
	PeerHealth map[string]string `json:"peer_health,omitempty"`
	// TraceID joins a 503 reply to the server's traces and logs; set
	// only on not-ready replies.
	TraceID string `json:"trace_id,omitempty"`
}

// readiness computes the node's readiness. Liveness (/healthz) answers
// "is the process serving"; readiness answers "should a load balancer
// route traffic here": an ingesting role must have completed WAL
// recovery (implied by construction) and kept the log healthy, a
// serving role must have a published epoch, and a coordinator must hold
// at least one peer's state (pulled this run or recovered from its
// cluster directory) so it has something real to serve.
func (s *Server) readiness() ReadyResponse {
	resp := ReadyResponse{Ready: true, Role: s.role.String(), Health: s.Health()}
	fail := func(reason string) {
		resp.Ready = false
		resp.Reasons = append(resp.Reasons, reason)
	}
	if st := s.Store(); st != nil {
		if err := st.WALErr(); err != nil {
			fail("wal_failed: " + err.Error())
		}
	}
	if s.deg != nil && s.deg.health() != healthHealthy {
		// Mid-recovery the WAL error may already be cleared; the state
		// machine keeps the node unready until durability is restored.
		if s.deg.health() == healthRecovering {
			fail("recovering")
		} else if s.deg.st.WALErr() == nil {
			fail("degraded: " + s.deg.lastErrString())
		}
	}
	if s.reads != nil && s.reads.engine.Current() == nil {
		fail("no_epoch")
	}
	if s.fleet != nil {
		if s.fleet.peersWithState() == 0 {
			fail("no_peer_state")
		}
		// Peer health is surfaced but does not gate readiness: a
		// quarantined peer's held contribution keeps serving, which is
		// the point of quarantine.
		resp.PeerHealth = s.fleet.peerHealth()
	}
	return resp
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	resp := s.readiness()
	if !resp.Ready {
		// Like every 503 this server emits: an explicit retry hint and a
		// trace id the probe's failure report can be joined on.
		resp.TraceID = traceID(r)
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, resp)
}
