package server

import "fmt"

// Role selects which stages of the deployment pipeline a node runs. The
// three roles compose the same building blocks — the sharded aggregation
// pipeline, the durable store, the materialized-view engine, and the
// canonical state exchange — into the topologies a real LDP fleet needs:
//
//   - RoleSingle wires everything into one process: ingest, durability,
//     and serving, exactly the pre-cluster behavior. The default.
//   - RoleEdge runs ingest and durability only: it accepts /report and
//     /report/batch, WAL-logs them, and exports its canonical aggregator
//     state on GET /state for a coordinator to pull. It serves no
//     estimates (no view engine is built, so an edge never pays
//     reconstruction cost).
//   - RoleCoordinator runs the read side over fleet-wide state: it
//     ingests nothing itself, periodically pulls GET /state from its
//     configured peers (merging the canonical blobs through the same
//     Merge path a single node uses), and serves /marginal, /query, and
//     the materialized view over the merged result.
type Role int

const (
	// RoleSingle is the monolithic deployment: ingest + durability +
	// serving in one process.
	RoleSingle Role = iota
	// RoleEdge ingests and WAL-logs reports and exports state; it serves
	// no estimates.
	RoleEdge
	// RoleCoordinator pulls peer states and serves estimates over the
	// merged fleet; it ingests no reports.
	RoleCoordinator
)

// String returns the role's flag spelling.
func (r Role) String() string {
	switch r {
	case RoleSingle:
		return "single"
	case RoleEdge:
		return "edge"
	case RoleCoordinator:
		return "coordinator"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// ParseRole maps a flag spelling to its role.
func ParseRole(s string) (Role, error) {
	switch s {
	case "single", "":
		return RoleSingle, nil
	case "edge":
		return RoleEdge, nil
	case "coordinator":
		return RoleCoordinator, nil
	default:
		return 0, fmt.Errorf("server: unknown role %q (single, edge, coordinator)", s)
	}
}

// ingests reports whether the role runs the ingestion pipeline.
func (r Role) ingests() bool { return r != RoleCoordinator }

// serves reports whether the role runs the materialized-view read side.
func (r Role) serves() bool { return r != RoleEdge }
