package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/fault"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/view"
)

// TestChaosAllProtocols drives every protocol through two scripted
// fault schedules and pins both halves of the graceful-degradation
// contract:
//
//   - wal: a durable node's disk dies mid-stream. The batch in flight
//     is answered 500 (consumed into memory, not acked durable), every
//     ingest after it is shed 503, reads keep serving, and once the
//     disk heals the background probe auto-recovers the node — whose
//     final state, across a full process restart, is bit-identical to
//     a never-faulted twin fed exactly the non-shed batches.
//
//   - peer: a coordinator's edge starts serving corrupt frames. Three
//     poisoned pulls quarantine it; the held contribution serves
//     unchanged; a clean pull after the edge heals lifts the
//     quarantine and converges the merged view bit-identically to a
//     single node that consumed the whole stream.
//
// The fault registry is process-global, so these subtests must not run
// in parallel with anything.
func TestChaosAllProtocols(t *testing.T) {
	for _, kind := range core.AllKinds() {
		kind := kind
		t.Run(kind.String()+"/wal", func(t *testing.T) { chaosWAL(t, kind) })
		t.Run(kind.String()+"/peer", func(t *testing.T) { chaosPeer(t, kind) })
	}
}

// chaosBatch posts one batch and returns the HTTP status and reply.
func chaosBatch(t *testing.T, url string, p core.Protocol, reps []core.Report) (int, BatchResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/report/batch", "application/octet-stream", bytes.NewReader(mustBatch(t, p, reps...)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var br BatchResponse
	if len(body) > 0 {
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatalf("batch reply %q: %v", body, err)
		}
	}
	return resp.StatusCode, br, resp.Header
}

// nodeHealth reads the health field of GET /status.
func nodeHealth(t *testing.T, url string) string {
	t.Helper()
	status, body := getBody(t, url+"/status")
	if status != http.StatusOK {
		t.Fatalf("/status: %d", status)
	}
	var sr StatusResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr.Health
}

// chaosMarginals fingerprints the serving view like marginalBytes, but
// epoch-independently: the faulted node and its never-faulted twin
// refresh a different number of times, and the epoch counter is build
// lineage, not state.
func chaosMarginals(t *testing.T, url string) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	for beta, raw := range marginalBytes(t, url) {
		var mr MarginalResponse
		if err := json.Unmarshal(raw, &mr); err != nil {
			t.Fatalf("marginal beta=%d: %v", beta, err)
		}
		mr.Epoch = 0
		b, err := json.Marshal(mr)
		if err != nil {
			t.Fatal(err)
		}
		out[beta] = string(b)
	}
	return out
}

// awaitReady polls /readyz until it answers 200 or the deadline lapses.
func awaitReady(t *testing.T, url string, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return
		}
		if time.Now().After(end) {
			t.Fatalf("node not ready within %v", deadline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func chaosWAL(t *testing.T, kind core.Kind) {
	defer fault.Disarm()
	p, err := core.New(kind, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ten single-chunk batches: each is consumed atomically (all or
	// nothing), so the accepted set stays deterministic through the
	// fault window.
	reps := makeClusterReports(t, p, 1000, uint64(37+kind))
	batch := func(i int) []core.Report { return reps[100*i : 100*(i+1)] }

	// Cold rebuilds on every refresh pin the float-exact comparison:
	// incremental builds fold deltas into cached reconstruction tables,
	// whose float summation order legitimately differs with build
	// lineage (ULP-level), and the faulted node, its restart, and the
	// twin all have different lineages.
	full := view.Options{FullRebuildEvery: 1}

	// The never-faulted twin consumes exactly the batches the faulted
	// node consumed (everything but the two shed while degraded).
	_, twinTS := newClusterNode(t, p, Options{NodeID: "chaos-twin", View: full})

	dir := t.TempDir()
	st := openEdgeStore(t, dir, p)
	srv, ts := newClusterNode(t, p, Options{
		NodeID: "chaos-wal", Store: st, View: full,
		DegradedProbeInterval: 25 * time.Millisecond,
	})

	for i := 0; i < 5; i++ {
		postBatchOK(t, ts.URL, p, batch(i))
		postBatchOK(t, twinTS.URL, p, batch(i))
	}
	if h := nodeHealth(t, ts.URL); h != "healthy" {
		t.Fatalf("pre-fault health %q", h)
	}

	// The disk dies — appends AND the sentinel probe, so the node stays
	// pinned degraded until the disk heals (probe-only success would let
	// the 25ms probe revive the node mid-window and race the shed
	// assertions). Batch 5 is in flight when the WAL fails: consumed
	// into memory, answered 500 — the twin consumes it too, because the
	// recovery snapshot makes it durable again.
	fault.Arm(
		fault.Rule{Site: store.FaultWALAppend, Mode: fault.ModeError, Msg: "no space left on device"},
		fault.Rule{Site: store.FaultDiskProbe, Mode: fault.ModeError, Msg: "no space left on device"},
	)
	status, br, _ := chaosBatch(t, ts.URL, p, batch(5))
	if status != http.StatusInternalServerError || br.Accepted != 100 {
		t.Fatalf("batch into dead WAL: status %d accepted %d, want 500/100", status, br.Accepted)
	}
	postBatchOK(t, twinTS.URL, p, batch(5))

	// Batches 6 and 7 are shed 503 + Retry-After: not consumed, so the
	// twin never sees them.
	for i := 6; i < 8; i++ {
		status, _, hdr := chaosBatch(t, ts.URL, p, batch(i))
		if status != http.StatusServiceUnavailable {
			t.Fatalf("batch %d while degraded: status %d, want 503", i, status)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("batch %d: degraded shed without Retry-After", i)
		}
	}
	if h := nodeHealth(t, ts.URL); h != "degraded" {
		t.Fatalf("health %q during fault window, want degraded", h)
	}
	// Reads keep serving from memory.
	postRefresh(t, ts.URL)
	if srv.N() != 600 {
		t.Fatalf("degraded node holds %d reports, want 600", srv.N())
	}

	// The disk heals; the background probe revives the WAL,
	// re-snapshots the memory state, and flips the node back within a
	// few probe ticks.
	fault.Disarm()
	awaitReady(t, ts.URL, 5*time.Second)
	if h := nodeHealth(t, ts.URL); h != "healthy" {
		t.Fatalf("health %q after recovery, want healthy", h)
	}

	for i := 8; i < 10; i++ {
		postBatchOK(t, ts.URL, p, batch(i))
		postBatchOK(t, twinTS.URL, p, batch(i))
	}

	// Live bit-identity: the recovered node serves exactly the twin's
	// marginals.
	postRefresh(t, ts.URL)
	postRefresh(t, twinTS.URL)
	want := chaosMarginals(t, twinTS.URL)
	got := chaosMarginals(t, ts.URL)
	for beta, w := range want {
		if got[beta] != w {
			t.Fatalf("beta=%d: recovered node differs from never-faulted twin", beta)
		}
	}

	// Restart bit-identity: everything the node consumed — including
	// batch 5, logged only by the post-recovery snapshot — survives a
	// full process restart.
	ts.Close()
	_ = srv.Close()
	st2, err := store.Open(dir, p, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewWithOptions(p, Options{NodeID: "chaos-wal", Store: st2, View: full})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv2.Close() })
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	if srv2.N() != 800 {
		t.Fatalf("restart recovered %d reports, want 800", srv2.N())
	}
	postRefresh(t, ts2.URL)
	got = chaosMarginals(t, ts2.URL)
	for beta, w := range want {
		if got[beta] != w {
			t.Fatalf("beta=%d: restarted node differs from never-faulted twin", beta)
		}
	}
}

func chaosPeer(t *testing.T, kind core.Kind) {
	defer fault.Disarm()
	p, err := core.New(kind, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 400, uint64(41+kind))

	// Single-node twin: the reference the healed cluster must match.
	_, twinTS := newClusterNode(t, p, Options{NodeID: "peer-twin"})
	postBatchOK(t, twinTS.URL, p, reps)
	postRefresh(t, twinTS.URL)
	want := chaosMarginals(t, twinTS.URL)

	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "chaos-edge"})
	coord, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "chaos-coord",
		Peers:        []string{edgeTS.URL},
		PullInterval: time.Minute, QuarantineInterval: time.Hour,
	})

	postBatchOK(t, edgeTS.URL, p, reps[:250])
	postPull(t, coordTS.URL)
	postRefresh(t, coordTS.URL)
	held := chaosMarginals(t, coordTS.URL)

	// The edge starts serving corrupt frames; three poisoned pulls (each
	// against fresh edge state, so none is a 304) quarantine it.
	fault.Arm(fault.Rule{Site: FaultClusterBody, Mode: fault.ModeCorrupt, Seed: uint64(5 + kind)})
	var cs ClusterStatus
	for i := 0; i < 3; i++ {
		postBatchOK(t, edgeTS.URL, p, reps[250+50*i:250+50*(i+1)])
		cs = postPull(t, coordTS.URL)
	}
	if cs.Peers[0].Health != "quarantined" {
		t.Fatalf("after poisoned pulls: %+v, want quarantined", cs.Peers[0])
	}
	// The held contribution keeps serving, bit-identical to the last
	// good pull.
	if coord.N() != 250 {
		t.Fatalf("quarantine changed coordinator N to %d", coord.N())
	}
	postRefresh(t, coordTS.URL)
	for beta, w := range held {
		if got := chaosMarginals(t, coordTS.URL)[beta]; got != w {
			t.Fatalf("beta=%d: quarantined view drifted from held contribution", beta)
		}
	}

	// The edge heals; one clean (forced, half-open) pull lifts the
	// quarantine and converges the merged view onto the twin's.
	fault.Disarm()
	cs = postPull(t, coordTS.URL)
	if cs.Peers[0].Health != "healthy" {
		t.Fatalf("after healing pull: %+v, want healthy", cs.Peers[0])
	}
	if coord.N() != len(reps) {
		t.Fatalf("after recovery coordinator N=%d, want %d", coord.N(), len(reps))
	}
	postRefresh(t, coordTS.URL)
	got := chaosMarginals(t, coordTS.URL)
	for beta, w := range want {
		if got[beta] != w {
			t.Fatalf("beta=%d: healed cluster differs from single-node twin", beta)
		}
	}
}
