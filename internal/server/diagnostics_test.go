package server

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/rng"
)

// TestViewDiagnosticsEndpoint pins the /view/diagnostics contract
// end to end against the hand computation for the test deployment's
// parameters (InpHT, d=8, k=2, eps=2): |T| = C(8,1)+C(8,2) = 36, so
// the theoretical TV bound is sqrt(36)*2^{k/2}/(eps*sqrt(n)) =
// 6/sqrt(n).
func TestViewDiagnosticsEndpoint(t *testing.T) {
	_, ts, p := newTestServer(t)
	client := p.NewClient()
	const n = 4
	for i := 0; i < n; i++ {
		rep, err := client.Perturb(uint64(i), rng.New(uint64(40+i)))
		if err != nil {
			t.Fatal(err)
		}
		if resp := postReport(t, ts.URL, p, rep); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("report %d: %d", i, resp.StatusCode)
		}
	}
	postRefresh(t, ts.URL)

	resp, err := http.Get(ts.URL + "/view/diagnostics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /view/diagnostics: status %d", resp.StatusCode)
	}
	var dr ViewDiagnosticsResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.Epoch < 1 {
		t.Errorf("epoch = %d, want >= 1", dr.Epoch)
	}
	if dr.N != n {
		t.Errorf("n = %d, want %d", dr.N, n)
	}
	if dr.Protocol != p.Name() {
		t.Errorf("protocol = %q, want %q", dr.Protocol, p.Name())
	}
	if dr.TVBoundErr != "" {
		t.Errorf("tv_bound_error = %q, want empty", dr.TVBoundErr)
	}
	want := 6 / math.Sqrt(float64(n))
	if math.Abs(dr.TheoreticalTV-want) > 1e-12*want {
		t.Errorf("theoretical_tv = %v, want %v (6/sqrt(%d))", dr.TheoreticalTV, want, n)
	}
	if dr.ConsistencyL1 < 0 {
		t.Errorf("consistency_l1 = %v, want >= 0", dr.ConsistencyL1)
	}
}

// TestViewDiagnosticsEdgeRejected: an edge node has no serving view, so
// the diagnostics route is a role error, not a panic or an empty 200.
func TestViewDiagnosticsEdgeRejected(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "diag-edge"})
	resp, err := http.Get(ts.URL + "/view/diagnostics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("edge /view/diagnostics: status %d, want 403", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error == "" || er.TraceID == "" {
		t.Errorf("error reply = %+v, want message and trace id", er)
	}
}
