package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
)

// TestCrashRecoveryE2E is the process-level durability proof: it builds
// the real ldpserver binary, SIGKILLs it mid-ingest, restarts it from
// the same -data-dir, and requires every acked report (and a /marginal
// answer over them) to survive. The in-process equivalents live in
// internal/store; this one exercises the actual deployment artifact.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "ldpserver")
	build := exec.Command("go", "build", "-o", bin, "ldpmarginals/cmd/ldpserver")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ldpserver: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	addr := freeAddr(t)
	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr,
			"-protocol", "InpHT", "-d", "8", "-k", "2", "-eps", "1.1",
			"-data-dir", dataDir, "-fsync", "always",
			"-refresh-interval", "0", "-refresh-every-n", "0",
		)
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting ldpserver: %v", err)
		}
		waitHealthy(t, addr)
		return cmd
	}
	srv := start()
	defer func() { _ = srv.Process.Kill() }()

	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(99)
	makeBatch := func(n int) []byte {
		reps := make([]core.Report, n)
		for i := range reps {
			rep, err := client.Perturb(uint64(i%256), r)
			if err != nil {
				t.Fatal(err)
			}
			reps[i] = rep
		}
		body, err := encoding.MarshalBatch(p.Name(), reps)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// Phase 1: a batch acked before the kill — these reports MUST
	// survive (fsync=always means the ack implies durability).
	var acked atomic.Int64
	post := func(body []byte) bool {
		resp, err := http.Post("http://"+addr+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return false // the kill raced the request: not acked
		}
		defer resp.Body.Close()
		var br BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil || resp.StatusCode != http.StatusOK {
			return false
		}
		acked.Add(int64(br.Accepted))
		return true
	}
	if !post(makeBatch(2000)) {
		t.Fatal("pre-kill batch not acked")
	}

	// Phase 2: keep ingesting from the background while the server is
	// SIGKILLed mid-stream; only acked batches count.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if !post(makeBatch(200)) {
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := srv.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	<-done
	_ = srv.Wait()
	mustAcked := acked.Load()

	// Phase 3: restart from the same directory; every acked report is
	// recovered and a marginal over the recovered state is servable.
	srv2 := start()
	defer func() {
		_ = srv2.Process.Kill()
		_, _ = srv2.Process.Wait()
	}()
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var sr StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if int64(sr.N) < mustAcked {
		t.Fatalf("recovered %d reports, but %d were acked before the kill", sr.N, mustAcked)
	}
	if sr.Durability == nil || sr.Durability.RecoveredReports != sr.N {
		t.Fatalf("durability status = %+v (n=%d)", sr.Durability, sr.N)
	}
	mresp, err := http.Get("http://" + addr + "/marginal?beta=3")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mr MarginalResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("marginal after recovery: status %d err %v", mresp.StatusCode, err)
	}
	if len(mr.Cells) != 4 || mr.N != sr.N {
		t.Fatalf("marginal response = %+v", mr)
	}
}

// TestWindowedCrashRecoveryE2E is the continual-release durability
// proof: a windowed deployment whose WAL is spread across bucket-
// rotated segments is SIGKILLed mid-ingest and restarted from the same
// -data-dir. Every acked report must be recovered into the window
// (seeded as a sealed bucket, retained a full window), the deployment
// must report its windowed shape, and a windowed marginal must be
// servable over the recovered state.
func TestWindowedCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "ldpserver")
	build := exec.Command("go", "build", "-o", bin, "ldpmarginals/cmd/ldpserver")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ldpserver: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	addr := freeAddr(t)
	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr,
			"-protocol", "InpHT", "-d", "8", "-k", "2", "-eps", "1.1",
			"-data-dir", dataDir, "-fsync", "always",
			"-window", "30s", "-bucket", "500ms",
			"-refresh-interval", "0", "-refresh-every-n", "0",
		)
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting ldpserver: %v", err)
		}
		waitHealthy(t, addr)
		return cmd
	}
	srv := start()
	defer func() { _ = srv.Process.Kill() }()

	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 1.1, OptimizedPRR: true})
	if err != nil {
		t.Fatal(err)
	}
	client := p.NewClient()
	r := rng.New(101)
	makeBatch := func(n int) []byte {
		reps := make([]core.Report, n)
		for i := range reps {
			rep, err := client.Perturb(uint64(i%256), r)
			if err != nil {
				t.Fatal(err)
			}
			reps[i] = rep
		}
		body, err := encoding.MarshalBatch(p.Name(), reps)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	var acked atomic.Int64
	post := func(body []byte) bool {
		resp, err := http.Post("http://"+addr+"/report/batch", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var br BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil || resp.StatusCode != http.StatusOK {
			return false
		}
		acked.Add(int64(br.Accepted))
		return true
	}

	// Phase 1: ingest across several bucket boundaries so the WAL
	// rotates into multiple bucket-aligned segments before the kill.
	for i := 0; i < 4; i++ {
		if !post(makeBatch(500)) {
			t.Fatal("pre-kill batch not acked")
		}
		time.Sleep(600 * time.Millisecond) // crosses a 500ms bucket boundary
	}
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var mid StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&mid); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mid.Window == nil || mid.Window.Rotations == 0 {
		t.Fatalf("window block before kill = %+v, want rotations", mid.Window)
	}
	if mid.Durability == nil || mid.Durability.WALSegments < 2 {
		t.Fatalf("durability before kill = %+v, want bucket-rotated segments", mid.Durability)
	}

	// Phase 2: SIGKILL mid-ingest; only acked batches count.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if !post(makeBatch(100)) {
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-done
	_ = srv.Wait()
	mustAcked := acked.Load()

	// Phase 3: restart; the recovered state seeds the window as a sealed
	// bucket and every acked report is inside it.
	srv2 := start()
	defer func() {
		_ = srv2.Process.Kill()
		_, _ = srv2.Process.Wait()
	}()
	resp, err = http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var sr StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if int64(sr.N) < mustAcked {
		t.Fatalf("recovered %d reports in the window, but %d were acked before the kill", sr.N, mustAcked)
	}
	if sr.Durability == nil || sr.Durability.RecoveredReports != sr.N {
		t.Fatalf("durability status = %+v (n=%d)", sr.Durability, sr.N)
	}
	if sr.Window == nil || sr.Window.SealedReports < int(mustAcked) {
		t.Fatalf("window status = %+v, want the recovered reports sealed into the window", sr.Window)
	}
	mresp, err := http.Get("http://" + addr + "/marginal?beta=3&window=30s")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mr MarginalResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("windowed marginal after recovery: status %d err %v", mresp.StatusCode, err)
	}
	if len(mr.Cells) != 4 || mr.N != sr.N {
		t.Fatalf("marginal response = %+v", mr)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal(fmt.Errorf("server at %s never became healthy", addr))
}
