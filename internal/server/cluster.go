package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/fault"
	"ldpmarginals/internal/logx"
	"ldpmarginals/internal/metrics"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/trace"
	"ldpmarginals/internal/view"
	"ldpmarginals/internal/wire"
)

// Fault-injection sites on the coordinator's pull path (internal/fault;
// no-ops unless a test or -fault-spec arms them).
const (
	// FaultClusterDial fails the pull before the HTTP request is sent —
	// an unreachable or timing-out peer (transient).
	FaultClusterDial = "cluster.pull.dial"
	// FaultClusterBody corrupts the response body bytes after the read —
	// a peer shipping damaged frames (poison, via the decode failure it
	// causes).
	FaultClusterBody = "cluster.pull.body"
	// FaultClusterDecode fails frame decoding directly (poison).
	FaultClusterDecode = "cluster.pull.decode"
)

// The cluster tier. An edge exports its aggregation state on GET /state;
// a coordinator's fleet holds the latest accepted state per configured
// peer and assembles the fleet-wide aggregation state on demand. The
// exchange is *componentized state transfer with replacement*: a peer's
// state arrives as named components (per-shard states, one window, or a
// mid-tier coordinator's pass-through constituents), each labeled with
// its own version, and accepting a pull replaces exactly the components
// the frame carries. A delta frame (negotiated via the ?since=/
// If-None-Match handshake) carries only the components whose labels
// moved since the base version this coordinator acknowledged; a full
// frame replaces the peer's whole component set. Replacement is what
// makes the protocol idempotent and crash-proof — re-pulling an
// unchanged peer is a 304 (or a label-matched no-op), and an edge that
// crashed and recovered from its WAL re-serves its full recovered state
// under a fresh version salt, which a coordinator detects as an unknown
// delta base and resolves with one full pull. Because aggregation is
// associative integer counting, the assembled fleet state is
// byte-identical to a single aggregator that consumed every edge's
// stream directly — whatever mix of full frames, deltas, and topology
// tiers it arrived through.

// fleet is a coordinator's view.Source: the local (empty) sharded
// aggregator plus the latest accepted components of every configured
// peer.
type fleet struct {
	agg   *core.ShardedAggregator
	p     core.Protocol
	dir   string // peer-state persistence directory; "" disables
	ownID string // this coordinator's node id; accept refuses frames bearing it

	total atomic.Int64  // sum of accepted peer report counts
	ver   atomic.Uint64 // bumps on every accepted peer update

	mu          sync.Mutex
	peers       []*peerEntry
	comp        []view.Component // composition of the engine's latest Snapshot
	lastSaveErr error

	// saveMu serializes persist calls: two concurrent saves would
	// collide on the snapshot's fixed temp path and could rename a
	// partially written file into place, bricking the next restart on a
	// CRC failure. Held across collect+write so the last writer to
	// finish holds the newest data.
	saveMu sync.Mutex
}

// peerComp is one accepted component of a peer's state. The state blob
// is replaced wholesale on accept, never mutated, so references read
// under the fleet lock stay valid after it.
type peerComp struct {
	version uint64
	n       int
	state   []byte
}

// peerEntry is one configured peer and its pull lifecycle state.
type peerEntry struct {
	url string

	// Latest accepted state (comps nil until the first successful pull
	// or recovery). top is the peer's export version label — the delta
	// base the next pull acknowledges.
	nodeID   string
	top      uint64
	comps    map[string]peerComp
	n        int // sum of comps' report counts
	pulledAt time.Time

	// Pull scheduling: consecutive failures drive exponential backoff.
	fails   int
	nextDue time.Time
	lastErr string

	// Circuit breaker: consecutive poison failures (frames that arrived
	// but failed CRC/decode/validation/fold) trip the peer into
	// quarantine — held contribution retained, regular pulls suspended,
	// half-open probes on the quarantine timer. quarantines counts trips
	// over the peer's lifetime.
	poisonFails   int
	quarantined   bool
	quarantinedAt time.Time
	quarantines   int
}

// peerHealthState is a peer's circuit-breaker health as surfaced on
// /view/status, /readyz, and metrics.
type peerHealthState int

const (
	peerHealthy peerHealthState = iota
	peerBackingOff
	peerQuarantined
)

func (h peerHealthState) String() string {
	switch h {
	case peerHealthy:
		return "healthy"
	case peerBackingOff:
		return "backing_off"
	case peerQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// healthLocked derives the peer's health; callers hold fleet.mu.
func (pe *peerEntry) healthLocked() peerHealthState {
	switch {
	case pe.quarantined:
		return peerQuarantined
	case pe.fails > 0:
		return peerBackingOff
	default:
		return peerHealthy
	}
}

// poisonError marks a pull failure caused by the peer's *content* —
// the frame arrived but failed CRC/decode/validation/fold — as opposed
// to a transient transport failure (dial, timeout, non-200). Transient
// failures mean "try again soon"; poison failures mean the peer is
// serving garbage deterministically, and retrying at the backoff
// cadence just re-downloads and re-rejects the same bytes. Consecutive
// poison failures trip the circuit breaker.
type poisonError struct{ err error }

func (e *poisonError) Error() string { return e.err.Error() }
func (e *poisonError) Unwrap() error { return e.err }

// poison wraps a content-level pull failure for breaker classification.
func poison(err error) error {
	if err == nil {
		return nil
	}
	return &poisonError{err: err}
}

func isPoison(err error) bool {
	var pe *poisonError
	return errors.As(err, &pe)
}

// errStaleDeltaBase marks a delta frame that cannot be applied because
// the coordinator no longer holds the base it was computed against
// (peer restarted and re-salted, a crash dropped the persisted top, or
// the fold diverged). The puller resolves it by re-fetching a full
// frame within the same pull.
var errStaleDeltaBase = errors.New("delta base no longer held")

// newFleet builds the fleet over the configured peer URLs, recovering
// persisted peer states from dir when set. ownID is the coordinator's
// own node id, so a misconfigured peer list pointing back at this node
// (directly, or through a coordinator cycle) is refused instead of
// folding the node's own output back in as a "peer" every round.
func newFleet(agg *core.ShardedAggregator, p core.Protocol, urls []string, dir, ownID string) (*fleet, error) {
	f := &fleet{agg: agg, p: p, dir: dir, ownID: ownID}
	for _, u := range urls {
		f.peers = append(f.peers, &peerEntry{url: u})
	}
	if dir == "" {
		return f, nil
	}
	saved, err := store.LoadPeerStates(dir, p)
	if err != nil {
		return nil, fmt.Errorf("server: recovering peer states: %w", err)
	}
	byURL := make(map[string]store.PeerState, len(saved))
	for _, ps := range saved {
		byURL[ps.URL] = ps
	}
	for _, pe := range f.peers {
		ps, ok := byURL[pe.url]
		if !ok || len(ps.Components) == 0 {
			continue
		}
		// Validate every recovered component exactly like a live pull; a
		// peer state that no longer decodes is dropped (the next pull
		// replaces it) rather than poisoning every future snapshot.
		comps := make(map[string]peerComp, len(ps.Components))
		n, bad := 0, false
		for _, c := range ps.Components {
			if err := validateState(p, c.State, c.N); err != nil {
				pe.lastErr = fmt.Sprintf("recovered component %s invalid: %v", c.ID, err)
				bad = true
				break
			}
			comps[c.ID] = peerComp{version: c.Version, n: c.N, state: c.State}
			n += c.N
		}
		if bad {
			continue
		}
		if n != ps.N {
			pe.lastErr = fmt.Sprintf("recovered components hold %d reports but the snapshot declares %d", n, ps.N)
			continue
		}
		// pulledAt stays zero: the state was recovered from disk, not
		// pulled, and /status must not report a fresh pull that never
		// happened (last_pull_age_seconds stays -1 until one does).
		// Keeping the persisted top label means the first pull after a
		// restart can resume as a delta when the peer process survived.
		pe.nodeID, pe.top, pe.comps, pe.n = ps.NodeID, ps.Version, comps, n
		f.total.Add(int64(n))
		f.ver.Add(1)
	}
	return f, nil
}

// validateState decodes a peer's canonical state blob into a fresh
// aggregator of the deployment's protocol and cross-checks the declared
// report count, so a foreign or corrupt blob is rejected before it can
// enter any snapshot.
func validateState(p core.Protocol, state []byte, n int) error {
	probe := p.NewAggregator()
	if err := probe.UnmarshalState(state); err != nil {
		return err
	}
	if got := probe.N(); got != n {
		return fmt.Errorf("state holds %d reports but the frame declares %d", got, n)
	}
	return nil
}

// validateComponents runs the per-blob validation over every component
// of a frame and, for full frames, cross-checks the declared total
// (deltas declare the total *after* the fold; acceptDelta checks it
// there).
func validateComponents(p core.Protocol, cf wire.ComponentFrame) error {
	sum := 0
	for _, c := range cf.Components {
		if err := validateState(p, c.State, c.N); err != nil {
			return fmt.Errorf("component %s: %w", c.ID, err)
		}
		sum += c.N
	}
	if !cf.Delta && sum != cf.N {
		return fmt.Errorf("components hold %d reports but the frame declares %d", sum, cf.N)
	}
	return nil
}

// componentFrameFromState lifts a legacy single-blob frame into the
// componentized shape: one component named by the exporting node,
// carrying the frame's own version label. Mixing legacy and
// componentized peers under one coordinator therefore needs no special
// cases past this point.
func componentFrameFromState(sf wire.StateFrame) wire.ComponentFrame {
	return wire.ComponentFrame{
		NodeID: sf.NodeID, Version: sf.Version, N: sf.N,
		Components: []wire.StateComponent{
			{ID: sf.NodeID, Version: sf.Version, N: sf.N, State: sf.State},
		},
	}
}

// sortedCompIDs returns a peer's component ids in canonical order.
func sortedCompIDs(comps map[string]peerComp) []string {
	ids := make([]string, 0, len(comps))
	for id := range comps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// collect gathers the accepted peer component blobs and the per-peer
// composition under the fleet lock. Blobs are replaced wholesale on
// accept (never mutated in place), so reading them after the unlock is
// safe.
func (f *fleet) collect() (blobs [][]byte, comp []view.Component) {
	f.mu.Lock()
	defer f.mu.Unlock()
	comp = make([]view.Component, 0, len(f.peers))
	for _, pe := range f.peers {
		if pe.comps == nil {
			continue
		}
		for _, id := range sortedCompIDs(pe.comps) {
			blobs = append(blobs, pe.comps[id].state)
		}
		comp = append(comp, view.Component{
			ID: pe.nodeID, URL: pe.url, N: pe.n, Version: pe.top,
			PulledAt: pe.pulledAt, Parts: len(pe.comps),
		})
	}
	return blobs, comp
}

// Snapshot assembles the fleet-wide state: a merged snapshot of the
// local shards plus every accepted peer component, each decoded and
// folded in through the canonical Merge path. It records the snapshot's
// composition for the view engine (view.Composed) — only the engine may
// call it (builds are serialized under the engine's lock); other
// callers use export, which leaves the recorded composition alone.
func (f *fleet) Snapshot() (core.Aggregator, error) {
	blobs, comp := f.collect()
	f.mu.Lock()
	f.comp = comp
	f.mu.Unlock()
	return f.agg.SnapshotWith(blobs)
}

// export assembles the same merged fleet state for GET /state without
// touching the engine's recorded composition, so a concurrent
// tier-stacking pull can never make View.Components misdescribe a
// published epoch.
func (f *fleet) export() (core.Aggregator, error) {
	blobs, _ := f.collect()
	return f.agg.SnapshotWith(blobs)
}

// fleetArena is the coordinator's core.StateArena: the local shard
// arena (whose cumulative aggregator is the single fold target) plus
// the decoded contribution of every peer component currently folded in,
// keyed by peer URL and component id and labeled exactly like the
// accept path. A pull round that moved one component of one edge
// re-folds exactly that component; unchanged components cost one label
// comparison each.
type fleetArena struct {
	local core.StateArena
	peers map[string]*heldPeer
}

// heldPeer is one peer's components folded into the arena's cumulative
// state.
type heldPeer struct {
	nodeID string
	comps  map[string]*heldComp
}

// heldComp is one component contribution folded into the arena.
type heldComp struct {
	version uint64
	n       int
	agg     core.Aggregator
}

func (fa *fleetArena) State() core.Aggregator { return fa.local.State() }
func (fa *fleetArena) Primed() bool           { return fa.local.Primed() }
func (fa *fleetArena) Reset()                 { fa.local.Reset() }

// NewSnapshotArena returns a delta-snapshot arena over the fleet, or
// nil when the deployment's protocol cannot back exact delta folds.
// Implements view.DeltaSource alongside SnapshotDeltaInto.
func (f *fleet) NewSnapshotArena() core.StateArena {
	local := f.agg.NewSnapshotArena()
	if local == nil {
		return nil
	}
	return &fleetArena{local: local, peers: make(map[string]*heldPeer)}
}

// SnapshotDeltaInto advances the arena to the current fleet state:
// local shard deltas fold through the core arena, and each peer
// component whose accepted version label moved since the arena's last
// capture has its old contribution unmerged and its fresh state decoded
// and merged — a delta pull that changed one shard of one edge re-folds
// one component. It records the snapshot's composition for the view
// engine, exactly like Snapshot. Only the engine may call it (builds
// are serialized under the engine's lock).
func (f *fleet) SnapshotDeltaInto(arena core.StateArena) (int, error) {
	fa, ok := arena.(*fleetArena)
	if !ok {
		return 0, fmt.Errorf("server: arena of type %T was not created by this fleet", arena)
	}
	if !fa.local.Primed() {
		// The local arena is about to recapture its cumulative state
		// from scratch (fresh arena, Reset, or a failed fold), which
		// drops every peer contribution folded into it.
		clear(fa.peers)
	}
	touched, err := f.agg.SnapshotDeltaInto(fa.local)
	if err != nil {
		return touched, err
	}
	cum := fa.local.State()

	// Snapshot the accepted peer labels (and blob references — blobs are
	// replaced wholesale on accept, never mutated) under the fleet lock,
	// and record the composition the engine will label this epoch with.
	type compSnap struct {
		id      string
		version uint64
		n       int
		state   []byte
	}
	type peerSnap struct {
		url, nodeID string
		comps       []compSnap
	}
	f.mu.Lock()
	cur := make([]peerSnap, 0, len(f.peers))
	comp := make([]view.Component, 0, len(f.peers))
	for _, pe := range f.peers {
		if pe.comps == nil {
			continue
		}
		snap := peerSnap{url: pe.url, nodeID: pe.nodeID, comps: make([]compSnap, 0, len(pe.comps))}
		for id, c := range pe.comps {
			snap.comps = append(snap.comps, compSnap{id: id, version: c.version, n: c.n, state: c.state})
		}
		cur = append(cur, snap)
		comp = append(comp, view.Component{
			ID: pe.nodeID, URL: pe.url, N: pe.n, Version: pe.top,
			PulledAt: pe.pulledAt, Parts: len(pe.comps),
		})
	}
	f.comp = comp
	f.mu.Unlock()

	// A half-applied fold leaves cum inconsistent; force a cold
	// recapture on the next call.
	fail := func(e error) (int, error) {
		fa.local.Reset()
		return touched, e
	}
	unmergeAll := func(held *heldPeer) error {
		for _, h := range held.comps {
			if err := core.UnmergeAggregators(cum, h.agg); err != nil {
				return err
			}
			touched++
		}
		return nil
	}
	seen := make(map[string]bool, len(cur))
	for _, pe := range cur {
		seen[pe.url] = true
		held := fa.peers[pe.url]
		if held != nil && held.nodeID != pe.nodeID {
			// The URL now resolves to a different node (edge replaced
			// behind a stable address): every old contribution goes.
			if err := unmergeAll(held); err != nil {
				return fail(fmt.Errorf("server: unfolding replaced peer %s: %w", pe.url, err))
			}
			held = nil
		}
		if held == nil {
			held = &heldPeer{nodeID: pe.nodeID, comps: make(map[string]*heldComp, len(pe.comps))}
			fa.peers[pe.url] = held
		}
		curIDs := make(map[string]bool, len(pe.comps))
		for _, c := range pe.comps {
			curIDs[c.id] = true
			h := held.comps[c.id]
			if h != nil && h.version == c.version {
				continue
			}
			if h != nil {
				if err := core.UnmergeAggregators(cum, h.agg); err != nil {
					return fail(fmt.Errorf("server: unfolding stale component %s of peer %s: %w", c.id, pe.url, err))
				}
			}
			dec := f.p.NewAggregator()
			if err := dec.UnmarshalState(c.state); err != nil {
				return fail(fmt.Errorf("server: decoding component %s of peer %s: %w", c.id, pe.url, err))
			}
			if err := core.MergeAggregators(cum, dec); err != nil {
				return fail(fmt.Errorf("server: folding component %s of peer %s: %w", c.id, pe.url, err))
			}
			held.comps[c.id] = &heldComp{version: c.version, n: c.n, agg: dec}
			touched++
		}
		for id, h := range held.comps {
			if curIDs[id] {
				continue
			}
			if err := core.UnmergeAggregators(cum, h.agg); err != nil {
				return fail(fmt.Errorf("server: unfolding dropped component %s of peer %s: %w", id, pe.url, err))
			}
			delete(held.comps, id)
			touched++
		}
	}
	for url, held := range fa.peers {
		if seen[url] {
			continue
		}
		if err := unmergeAll(held); err != nil {
			return fail(fmt.Errorf("server: unfolding dropped peer %s: %w", url, err))
		}
		delete(fa.peers, url)
	}
	return touched, nil
}

// Composition describes the constituents of the latest Snapshot.
func (f *fleet) Composition() []view.Component {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]view.Component(nil), f.comp...)
}

// N is the fleet-wide report count: local ingestion (always zero on a
// coordinator, which rejects reports) plus every accepted peer state.
// Lock-free, so the view engine's staleness polling never contends with
// pulls.
func (f *fleet) N() int { return f.agg.N() + int(f.total.Load()) }

// version labels the coordinator's own exported state: it changes
// whenever any accepted peer state changes.
func (f *fleet) version() uint64 { return f.ver.Load() }

// guardFrame runs the identity checks shared by full and delta accepts,
// under the fleet lock: a frame bearing this coordinator's own node id
// (self-pull or coordinator cycle), a node id already served by another
// peer URL, a component originated by this coordinator (a deeper
// cycle), or a component id already held via another peer (the same
// constituent reachable through two paths — a diamond topology that
// would double-count its reports). Because coordinators pass component
// ids through unchanged, these guards hold through any number of
// mid-tier coordinators, not just one tier deep.
func (f *fleet) guardFrame(target *peerEntry, cf wire.ComponentFrame) error {
	if cf.NodeID == f.ownID {
		// A self-pull (or a coordinator cycle) would re-ingest this
		// node's own merged output as a peer contribution, inflating
		// the fleet without bound: the export's version label changes
		// on every accept, so the idempotency skip would never fire.
		return fmt.Errorf("peer %s answered with this coordinator's own node id %q (self-pull or coordinator cycle)", target.url, cf.NodeID)
	}
	for _, pe := range f.peers {
		if pe != target && pe.comps != nil && pe.nodeID == cf.NodeID {
			return fmt.Errorf("node id %q already served by peer %s", cf.NodeID, pe.url)
		}
	}
	for _, c := range cf.Components {
		if wire.ComponentOrigin(c.ID) == f.ownID {
			return fmt.Errorf("peer %s ships component %q originated by this coordinator (coordinator cycle)", target.url, c.ID)
		}
		for _, pe := range f.peers {
			if pe == target || pe.comps == nil {
				continue
			}
			if _, dup := pe.comps[c.ID]; dup {
				return fmt.Errorf("component %q already held via peer %s (same constituent reachable through two paths)", c.ID, pe.url)
			}
		}
	}
	return nil
}

func (f *fleet) findPeer(url string) *peerEntry {
	for _, pe := range f.peers {
		if pe.url == url {
			return pe
		}
	}
	return nil
}

// acceptFull installs a freshly pulled (and already validated) full
// frame for the peer at url, replacing the peer's whole component set.
// It returns (changed=false) when the frame's (node id, version) label
// matches the stored one — the idempotent re-pull case.
func (f *fleet) acceptFull(url string, cf wire.ComponentFrame) (changed bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	target := f.findPeer(url)
	if target == nil {
		return false, fmt.Errorf("peer %s is not configured", url)
	}
	if err := f.guardFrame(target, cf); err != nil {
		return false, err
	}
	if target.comps != nil && target.nodeID == cf.NodeID && target.top == cf.Version {
		return false, nil
	}
	comps := make(map[string]peerComp, len(cf.Components))
	for _, c := range cf.Components {
		comps[c.ID] = peerComp{version: c.Version, n: c.N, state: c.State}
	}
	f.total.Add(int64(cf.N - target.n))
	target.nodeID, target.top, target.comps, target.n = cf.NodeID, cf.Version, comps, cf.N
	f.ver.Add(1)
	return true, nil
}

// acceptDelta folds a delta frame into the peer's held component set:
// shipped components replace (or add) their ids, removed ids drop, and
// the result must account for exactly the total the frame declares. The
// frame's base version must match the peer's stored top label — the
// base this coordinator acknowledged — else errStaleDeltaBase tells the
// puller to resolve with a full fetch.
func (f *fleet) acceptDelta(url string, cf wire.ComponentFrame) (changed bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	target := f.findPeer(url)
	if target == nil {
		return false, fmt.Errorf("peer %s is not configured", url)
	}
	if err := f.guardFrame(target, cf); err != nil {
		return false, err
	}
	if target.comps == nil || target.nodeID != cf.NodeID || target.top != cf.BaseVersion {
		return false, fmt.Errorf("delta against base %d of node %q: %w", cf.BaseVersion, cf.NodeID, errStaleDeltaBase)
	}
	// Apply onto a copy: a sum mismatch below must leave the held state
	// untouched (the follow-up full fetch replaces it atomically).
	next := make(map[string]peerComp, len(target.comps)+len(cf.Components))
	for id, c := range target.comps {
		next[id] = c
	}
	for _, c := range cf.Components {
		if old, ok := next[c.ID]; !ok || old.version != c.Version {
			changed = true
		}
		next[c.ID] = peerComp{version: c.Version, n: c.N, state: c.State}
	}
	for _, id := range cf.Removed {
		if _, ok := next[id]; ok {
			delete(next, id)
			changed = true
		}
	}
	n := 0
	for _, c := range next {
		n += c.n
	}
	if n != cf.N {
		// The folded set and the exporter's declared total diverged —
		// the base we hold is not what the delta was cut against.
		return false, fmt.Errorf("delta fold holds %d reports but the frame declares %d: %w", n, cf.N, errStaleDeltaBase)
	}
	f.total.Add(int64(n - target.n))
	target.top, target.comps, target.n = cf.Version, next, n
	if changed {
		f.ver.Add(1)
	}
	return changed, nil
}

// peerTop returns the peer's accepted export version label — the delta
// base the next pull acknowledges.
func (f *fleet) peerTop(url string) (uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	pe := f.findPeer(url)
	if pe == nil || pe.comps == nil {
		return 0, false
	}
	return pe.top, true
}

// sameTop reports whether a frame's (node id, version) label matches the
// stored one for the peer — the idempotent re-pull fast path, checked
// before the expensive per-component decode validation.
func (f *fleet) sameTop(url, nodeID string, ver uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	pe := f.findPeer(url)
	return pe != nil && pe.comps != nil && pe.nodeID == nodeID && pe.top == ver
}

// persist writes the current peer states to the cluster directory (when
// configured) so a coordinator restart resumes from the last accepted
// pulls — including the per-component delta bases — instead of an empty
// fleet.
func (f *fleet) persist() {
	if f.dir == "" {
		return
	}
	f.saveMu.Lock()
	defer f.saveMu.Unlock()
	f.mu.Lock()
	states := make([]store.PeerState, 0, len(f.peers))
	for _, pe := range f.peers {
		if pe.comps == nil {
			continue
		}
		ps := store.PeerState{URL: pe.url, NodeID: pe.nodeID, Version: pe.top, N: pe.n}
		for _, id := range sortedCompIDs(pe.comps) {
			c := pe.comps[id]
			ps.Components = append(ps.Components, store.PeerComponent{
				ID: id, Version: c.version, N: c.n, State: c.state,
			})
		}
		states = append(states, ps)
	}
	f.mu.Unlock()
	err := store.SavePeerStates(f.dir, f.p, states)
	f.mu.Lock()
	f.lastSaveErr = err
	f.mu.Unlock()
}

// peersWithState counts configured peers whose state is held — pulled
// this run or recovered from the cluster directory. The readiness probe
// gates on it: a coordinator with zero peer states has nothing real to
// serve.
func (f *fleet) peersWithState() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, pe := range f.peers {
		if pe.comps != nil {
			n++
		}
	}
	return n
}

// peerHealth snapshots every configured peer's circuit-breaker health,
// keyed by peer URL, for /readyz. Quarantined peers do not fail
// readiness — the held contribution keeps serving, which is the point
// of quarantine — they are surfaced so operators and balancers can see
// which constituents are stale.
func (f *fleet) peerHealth() map[string]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := make(map[string]string, len(f.peers))
	for _, pe := range f.peers {
		m[pe.url] = pe.healthLocked().String()
	}
	return m
}

// peerInstruments is one peer's pull metrics, maintained by the puller.
type peerInstruments struct {
	latency     *metrics.Histogram // one pull's wall time
	bytes       *metrics.Counter   // state bytes fetched
	changed     *metrics.Counter   // pulls that installed a new state
	unchanged   *metrics.Counter   // idempotent re-pulls (same version label)
	failed      *metrics.Counter   // pulls that errored
	deltaPulls  *metrics.Counter   // pulls answered with a delta frame
	fullPulls   *metrics.Counter   // pulls answered with a full frame
	notModified *metrics.Counter   // pulls answered 304 (handshake hit)
	bytesSaved  *metrics.Counter   // estimated bytes the delta path avoided

	// lastFullBytes is the wire size of the peer's most recent full
	// frame — the baseline the bytes-saved estimate compares deltas and
	// 304s against.
	lastFullBytes atomic.Uint64
}

// puller drives the periodic state pulls of a coordinator with per-peer
// exponential backoff.
type puller struct {
	f         *fleet
	client    *http.Client
	transport *http.Transport // dedicated; idle conns dropped on Close
	interval  time.Duration
	maxState  int64
	noDelta   bool          // Options.DisableDeltaPull: always fetch legacy full frames
	tracer    *trace.Tracer // roots background rounds; may be nil in tests
	log       *logx.Logger

	// Circuit breaker knobs: quarAfter consecutive poison failures trip
	// a peer into quarantine; quarDelay is the half-open probe cadence
	// while quarantined.
	quarAfter int
	quarDelay time.Duration

	// ins is keyed by peer URL; the peer set is fixed at construction so
	// the map is read-only after newPuller.
	ins    map[string]*peerInstruments
	rounds *metrics.Counter

	stop  chan struct{}
	close sync.Once
	done  sync.WaitGroup

	// roundMu serializes pull rounds (the background ticker and forced
	// POST /pull rounds): interleaved rounds could fetch a peer's state,
	// lose the race to a concurrent round that accepted a *newer* frame,
	// and then install the older one — accept only compares labels for
	// equality, so the regression would stick (and be persisted). Delta
	// application depends on it too: the base acknowledged at fetch time
	// must still be the held top at accept time.
	roundMu sync.Mutex
}

// maxBackoffShift caps the failure backoff at interval << 5 = 32x.
const maxBackoffShift = 5

// Circuit-breaker defaults, selected by Options.QuarantineAfter <= 0
// and Options.QuarantineInterval <= 0 respectively. Three consecutive
// poison failures rule out a single torn response; the half-open probe
// cadence defaults to 16x the pull interval — long enough that a peer
// deterministically serving garbage is not re-downloaded and
// re-rejected every backoff tick, short enough that a repaired peer
// rejoins within a few minutes at the default 5s interval.
const (
	defaultQuarantineAfter = 3
	quarantineIntervalMult = 16
)

// backoffDelay is the wait before retrying a peer that failed fails
// consecutive pulls: exponential in the failure count, capped at
// maxBackoffShift doublings, plus bounded random jitter (up to half the
// base backoff). The jitter decorrelates coordinators restarted
// together — without it, a fleet-wide coordinator restart lands every
// retry of a recovering edge on the same instant, re-synchronizing the
// pull storm the backoff was meant to spread.
func backoffDelay(interval time.Duration, fails int) time.Duration {
	shift := fails - 1
	if shift < 0 {
		shift = 0
	}
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	backoff := interval << shift
	return backoff + rand.N(backoff/2+1)
}

func newPuller(f *fleet, interval, timeout time.Duration, maxState int64, noDelta bool, quarAfter int, quarDelay time.Duration, tracer *trace.Tracer, log *logx.Logger) *puller {
	if quarAfter <= 0 {
		quarAfter = defaultQuarantineAfter
	}
	if quarDelay <= 0 {
		quarDelay = quarantineIntervalMult * interval
	}
	// A dedicated transport, not http.DefaultTransport: the puller's
	// keep-alive connections to its peers must die with the puller.
	// Shared-transport idle connections (two goroutines each) outlive
	// Server.Close by the transport's idle timeout — a connection (and
	// goroutine) leak for every coordinator opened and closed in one
	// process, and for rolling peer replacement in a long-lived one.
	transport := &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConnsPerHost: 2,
		IdleConnTimeout:     90 * time.Second,
	}
	ins := make(map[string]*peerInstruments, len(f.peers))
	for _, pe := range f.peers {
		ins[pe.url] = &peerInstruments{
			latency:     metrics.NewHistogram(metrics.DurationBuckets()),
			bytes:       metrics.NewCounter(),
			changed:     metrics.NewCounter(),
			unchanged:   metrics.NewCounter(),
			failed:      metrics.NewCounter(),
			deltaPulls:  metrics.NewCounter(),
			fullPulls:   metrics.NewCounter(),
			notModified: metrics.NewCounter(),
			bytesSaved:  metrics.NewCounter(),
		}
	}
	return &puller{
		f:         f,
		client:    &http.Client{Timeout: timeout, Transport: transport},
		transport: transport,
		interval:  interval,
		maxState:  maxState,
		noDelta:   noDelta,
		quarAfter: quarAfter,
		quarDelay: quarDelay,
		tracer:    tracer,
		log:       log,
		ins:       ins,
		rounds:    metrics.NewCounter(),
		stop:      make(chan struct{}),
	}
}

func (pl *puller) start() {
	pl.done.Add(1)
	go pl.loop()
}

func (pl *puller) Close() {
	pl.close.Do(func() { close(pl.stop) })
	pl.done.Wait()
	// With the loop joined no new pulls can start; drop the keep-alive
	// connections so their read loops exit now rather than at the idle
	// timeout.
	pl.transport.CloseIdleConnections()
}

// loop wakes at a fraction of the pull interval and pulls every due
// peer, so backoff deadlines are honored within ~interval/4 without
// per-peer goroutines.
func (pl *puller) loop() {
	defer pl.done.Done()
	tick := pl.interval / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-pl.stop:
			return
		case <-ticker.C:
			// Each background round roots its own trace; a round that
			// found no peer due is abandoned so the idle tick cadence
			// doesn't flood the trace ring.
			ctx, root := pl.tracer.StartRoot(context.Background(), "cluster.pull_round")
			if pulled := pl.round(ctx, false); pulled == 0 {
				root.Discard()
			} else {
				root.SetAttr("peers_pulled", pulled)
				root.End()
			}
		}
	}
}

// round pulls every peer that is due (or all of them when force is set,
// the POST /pull path), persisting the fleet once if anything changed.
// It returns the number of peers pulled. Rounds are serialized; see
// roundMu. ctx carries the round's span: background rounds root their
// own trace, forced rounds inherit the POST /pull request's, and the
// per-peer pull spans (with the propagated traceparent) hang off it.
func (pl *puller) round(ctx context.Context, force bool) (pulled int) {
	pl.roundMu.Lock()
	defer pl.roundMu.Unlock()
	now := time.Now()
	pl.f.mu.Lock()
	due := make([]string, 0, len(pl.f.peers))
	for _, pe := range pl.f.peers {
		if force || !now.Before(pe.nextDue) {
			due = append(due, pe.url)
		}
	}
	pl.f.mu.Unlock()
	// Pull due peers concurrently: one unresponsive peer burning its
	// full PullTimeout must not stall the others' staleness bound (or a
	// forced POST /pull) beyond a single timeout.
	var (
		wg         sync.WaitGroup
		anyChanged atomic.Bool
	)
	for _, url := range due {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			if pl.pull(ctx, url) {
				anyChanged.Store(true)
			}
		}(url)
	}
	wg.Wait()
	pl.rounds.Inc()
	if anyChanged.Load() {
		pl.f.persist()
	}
	return len(due)
}

// Pull reply modes, recorded on metrics and the pull span.
const (
	pullModeFull        = "full"
	pullModeDelta       = "delta"
	pullModeNotModified = "not_modified"
)

// pull fetches, verifies, and installs one peer's state, updating that
// peer's schedule: success re-arms the regular interval, failure backs
// off exponentially (with jitter; see backoffDelay).
func (pl *puller) pull(ctx context.Context, url string) (changed bool) {
	ctx, span := trace.StartSpan(ctx, "cluster.pull")
	span.SetAttr("peer", url)
	t0 := time.Now()
	changed, mode, err := pl.fetch(ctx, span, url, !pl.noDelta)
	if ins := pl.ins[url]; ins != nil {
		ins.latency.Observe(time.Since(t0).Seconds())
		switch {
		case err != nil:
			ins.failed.Inc()
		case changed:
			ins.changed.Inc()
		default:
			ins.unchanged.Inc()
		}
		if err == nil {
			switch mode {
			case pullModeDelta:
				ins.deltaPulls.Inc()
			case pullModeNotModified:
				ins.notModified.Inc()
			default:
				ins.fullPulls.Inc()
			}
		}
	}
	if err != nil {
		span.SetAttr("error", err.Error())
		span.SetAttr("poison", isPoison(err))
		pl.log.Warn("pull failed", "peer", url, "poison", isPoison(err), "err", err)
	} else {
		span.SetAttr("changed", changed)
		span.SetAttr("mode", mode)
	}
	health := pl.updateSchedule(url, err)
	span.SetAttr("peer_health", health.String())
	span.End()
	return changed
}

// updateSchedule advances one peer's pull schedule and circuit breaker
// after a pull, returning the peer's resulting health. Transient
// failures back off exponentially; poison failures (see poisonError)
// additionally count toward quarantine, and quarAfter consecutive ones
// trip the breaker: the held contribution is retained, regular pulls
// stop, and the peer is probed half-open every quarDelay. Any clean
// pull — half-open probe or forced round — closes the breaker.
func (pl *puller) updateSchedule(url string, err error) peerHealthState {
	now := time.Now()
	pl.f.mu.Lock()
	defer pl.f.mu.Unlock()
	pe := pl.f.findPeer(url)
	if pe == nil {
		return peerHealthy
	}
	if err == nil {
		if pe.quarantined {
			pe.quarantined = false
			pe.quarantinedAt = time.Time{}
			pl.log.Info("peer recovered from quarantine", "peer", url)
		}
		pe.fails = 0
		pe.poisonFails = 0
		pe.lastErr = ""
		pe.pulledAt = now
		pe.nextDue = now.Add(pl.interval)
		return peerHealthy
	}
	pe.fails++
	pe.lastErr = err.Error()
	if isPoison(err) {
		pe.poisonFails++
		if !pe.quarantined && pe.poisonFails >= pl.quarAfter {
			pe.quarantined = true
			pe.quarantinedAt = now
			pe.quarantines++
			pl.log.Warn("peer quarantined: repeated poison pulls; holding last good contribution",
				"peer", url, "poison_failures", pe.poisonFails,
				"probe_interval", pl.quarDelay, "err", err)
		}
	} else {
		// Only *consecutive* poison failures quarantine: a transient
		// failure in between means the transport, not the content, is
		// the current problem.
		pe.poisonFails = 0
	}
	if pe.quarantined {
		pe.nextDue = now.Add(pl.quarDelay)
	} else {
		pe.nextDue = now.Add(backoffDelay(pl.interval, pe.fails))
	}
	return pe.healthLocked()
}

// fetch performs the HTTP GET, frame validation, and accept for one
// peer. With allowDelta set it negotiates the componentized delta
// exchange: the request acknowledges the held base version (?since=
// plus If-None-Match), and the reply is a 304 (nothing moved), a delta
// frame, or a full frame. A delta whose base no longer matches what
// this coordinator holds (peer restart re-salted the labels, an epoch
// gap, a diverged fold) recurses once with allowDelta=false, which
// forces a clean full-frame fetch. The pull span's trace context rides
// along as a W3C traceparent header, so the edge's request span joins
// this coordinator's trace — one fleet pull is one cross-process trace
// id.
func (pl *puller) fetch(ctx context.Context, span *trace.Span, url string, allowDelta bool) (changed bool, mode string, err error) {
	base, haveBase := pl.f.peerTop(url)
	target := url + "/state"
	if allowDelta {
		target += "?components=1"
		if haveBase {
			target += "&since=" + strconv.FormatUint(base, 10)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return false, "", err
	}
	if haveBase {
		// The handshake rides on both channels: If-None-Match gives
		// intermediaries standard 304 semantics, ?since= names the delta
		// base explicitly.
		req.Header.Set("If-None-Match", stateETag(base))
	}
	trace.Inject(span, req.Header)
	if err := fault.Hit(FaultClusterDial); err != nil {
		return false, "", err
	}
	resp, err := pl.client.Do(req)
	if err != nil {
		return false, "", err
	}
	defer resp.Body.Close()
	ins := pl.ins[url]
	if resp.StatusCode == http.StatusNotModified {
		// The idle-fleet fast path: no body moved at all.
		if ins != nil {
			if last := ins.lastFullBytes.Load(); last > 0 {
				ins.bytesSaved.Add(last)
			}
		}
		return false, pullModeNotModified, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, "", fmt.Errorf("GET /state: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, pl.maxState+1))
	if ins != nil {
		ins.bytes.Add(uint64(len(body)))
	}
	if err != nil {
		return false, "", fmt.Errorf("GET /state: reading body: %w", err)
	}
	if int64(len(body)) > pl.maxState {
		return false, "", poison(fmt.Errorf("GET /state: body exceeds %d bytes", pl.maxState))
	}
	// From here on every failure is *content*: the peer answered, the
	// bytes arrived, and they do not decode/validate/fold. Those count
	// toward quarantine (see poisonError).
	body = fault.Mangle(FaultClusterBody, body)
	if err := fault.Hit(FaultClusterDecode); err != nil {
		return false, "", poison(fmt.Errorf("GET /state: decoding frame: %w", err))
	}
	var cf wire.ComponentFrame
	if wire.IsComponentFrame(body) {
		// maxState bounds the decompressed component total too: flate in
		// a hostile frame must not inflate past the configured budget.
		if cf, err = wire.DecodeComponentFrame(body, pl.maxState); err != nil {
			return false, "", poison(err)
		}
	} else {
		sf, err := wire.DecodeStateFrame(body)
		if err != nil {
			return false, "", poison(err)
		}
		cf = componentFrameFromState(sf)
	}
	if cf.Delta {
		if !allowDelta {
			return false, "", poison(fmt.Errorf("GET /state: peer answered a delta frame to a full-frame request"))
		}
		mode = pullModeDelta
		if ins != nil {
			if last := ins.lastFullBytes.Load(); last > uint64(len(body)) {
				ins.bytesSaved.Add(last - uint64(len(body)))
			}
		}
		if err := validateComponents(pl.f.p, cf); err != nil {
			return false, mode, poison(err)
		}
		changed, err = pl.f.acceptDelta(url, cf)
		if errors.Is(err, errStaleDeltaBase) {
			// The base drifted between our ack and the apply (or the
			// reply raced a restart): one full fetch resolves it within
			// the same pull.
			return pl.fetch(ctx, span, url, false)
		}
		return changed, mode, poison(err)
	}
	mode = pullModeFull
	if ins != nil {
		ins.lastFullBytes.Store(uint64(len(body)))
	}
	// Skip the (expensive) decode validation for an unchanged state: the
	// accept below short-circuits on the (node id, version) label. Peek
	// cheaply first.
	if pl.f.sameTop(url, cf.NodeID, cf.Version) {
		return false, mode, nil
	}
	if err := validateComponents(pl.f.p, cf); err != nil {
		return false, mode, poison(err)
	}
	changed, err = pl.f.acceptFull(url, cf)
	return changed, mode, poison(err)
}

// PeerStatus is one peer's entry in the /status cluster block.
type PeerStatus struct {
	// URL is the configured peer base URL.
	URL string `json:"url"`
	// NodeID is the peer's self-reported node id ("" before the first
	// successful pull).
	NodeID string `json:"node_id,omitempty"`
	// Version and N label the latest accepted state; Version is the
	// delta base the next pull acknowledges.
	Version uint64 `json:"version"`
	N       int    `json:"n"`
	// Components is how many named state components the accepted state
	// decomposes into (shards of an edge, constituents of a mid-tier
	// coordinator; 0 before the first pull).
	Components int `json:"components,omitempty"`
	// LastPullAgeSeconds is how long ago the last successful pull
	// finished (negative when none has succeeded yet).
	LastPullAgeSeconds float64 `json:"last_pull_age_seconds"`
	// ConsecutiveFailures counts pulls failed since the last success;
	// the pull schedule backs off exponentially with it.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastError is the most recent pull failure, cleared on success.
	LastError string `json:"last_error,omitempty"`
	// Health is the peer's circuit-breaker state: healthy, backing_off
	// (consecutive pull failures, exponential backoff), or quarantined
	// (repeated poison frames; held contribution retained, half-open
	// probes only).
	Health string `json:"health"`
	// PoisonFailures counts consecutive content-level failures (CRC,
	// decode, validation, fold) — the quarantine trigger.
	PoisonFailures int `json:"poison_failures,omitempty"`
	// Quarantines counts breaker trips over the peer's lifetime.
	Quarantines int `json:"quarantines,omitempty"`
}

// ClusterStatus is the cluster block of a /status reply.
type ClusterStatus struct {
	// Role is the node's role (single, edge, coordinator).
	Role string `json:"role"`
	// NodeID is this node's id, as exported in its /state frames.
	NodeID string `json:"node_id"`
	// StateVersion is the version this node would label a /state export
	// with right now.
	StateVersion uint64 `json:"state_version"`
	// PullIntervalSeconds is the coordinator's configured pull cadence
	// (0 for other roles).
	PullIntervalSeconds float64 `json:"pull_interval_seconds,omitempty"`
	// Peers describes every configured peer (coordinator only).
	Peers []PeerStatus `json:"peers,omitempty"`
	// PeerStateSaveError is the most recent failure persisting peer
	// states to the cluster directory, if any.
	PeerStateSaveError string `json:"peer_state_save_error,omitempty"`
}

// status snapshots the fleet for the /status cluster block.
func (f *fleet) status() (peers []PeerStatus, saveErr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	peers = make([]PeerStatus, 0, len(f.peers))
	for _, pe := range f.peers {
		ps := PeerStatus{
			URL:                 pe.url,
			NodeID:              pe.nodeID,
			Version:             pe.top,
			N:                   pe.n,
			Components:          len(pe.comps),
			LastPullAgeSeconds:  -1,
			ConsecutiveFailures: pe.fails,
			LastError:           pe.lastErr,
			Health:              pe.healthLocked().String(),
			PoisonFailures:      pe.poisonFails,
			Quarantines:         pe.quarantines,
		}
		if !pe.pulledAt.IsZero() {
			// Clamp at zero: a pulledAt stamp whose monotonic reading was
			// stripped (marshaled status, or a Round(0) anywhere upstream)
			// falls back to wall-clock arithmetic, and a wall clock
			// stepped backwards would otherwise report a negative age —
			// indistinguishable from the "never pulled" -1 sentinel.
			if age := time.Since(pe.pulledAt).Seconds(); age > 0 {
				ps.LastPullAgeSeconds = age
			} else {
				ps.LastPullAgeSeconds = 0
			}
		}
		peers = append(peers, ps)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].URL < peers[j].URL })
	if f.lastSaveErr != nil {
		saveErr = f.lastSaveErr.Error()
	}
	return peers, saveErr
}
