package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/logx"
	"ldpmarginals/internal/metrics"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/trace"
	"ldpmarginals/internal/view"
	"ldpmarginals/internal/wire"
)

// The cluster tier. An edge exports its canonical aggregator state on
// GET /state as a wire.StateFrame; a coordinator's fleet holds the
// latest accepted frame per configured peer and assembles the fleet-wide
// aggregation state on demand. The exchange is *state transfer with
// replacement*, not delta shipping: every pull carries the peer's full
// cumulative counters, and accepting a pull replaces that peer's
// previous contribution. Replacement is what makes the protocol
// idempotent and crash-proof — re-pulling an unchanged peer is a no-op
// (the (node id, version) label is unchanged), and an edge that crashed
// and recovered from its WAL simply re-serves its full recovered state,
// which replaces whatever the coordinator held. Because aggregation is
// associative integer counting, the assembled fleet state is
// byte-identical to a single aggregator that consumed every edge's
// stream directly.

// fleet is a coordinator's view.Source: the local (empty) sharded
// aggregator plus the latest accepted state blob of every configured
// peer.
type fleet struct {
	agg   *core.ShardedAggregator
	p     core.Protocol
	dir   string // peer-state persistence directory; "" disables
	ownID string // this coordinator's node id; accept refuses frames bearing it

	total atomic.Int64  // sum of accepted peer report counts
	ver   atomic.Uint64 // bumps on every accepted peer update

	mu          sync.Mutex
	peers       []*peerEntry
	comp        []view.Component // composition of the engine's latest Snapshot
	lastSaveErr error

	// saveMu serializes persist calls: two concurrent saves would
	// collide on the snapshot's fixed temp path and could rename a
	// partially written file into place, bricking the next restart on a
	// CRC failure. Held across collect+write so the last writer to
	// finish holds the newest data.
	saveMu sync.Mutex
}

// peerEntry is one configured peer and its pull lifecycle state.
type peerEntry struct {
	url string

	// Latest accepted state (zero until the first successful pull).
	nodeID   string
	version  uint64
	n        int
	state    []byte
	pulledAt time.Time

	// Pull scheduling: consecutive failures drive exponential backoff.
	fails   int
	nextDue time.Time
	lastErr string
}

// newFleet builds the fleet over the configured peer URLs, recovering
// persisted peer states from dir when set. ownID is the coordinator's
// own node id, so a misconfigured peer list pointing back at this node
// (directly, or through a coordinator cycle) is refused instead of
// folding the node's own output back in as a "peer" every round.
func newFleet(agg *core.ShardedAggregator, p core.Protocol, urls []string, dir, ownID string) (*fleet, error) {
	f := &fleet{agg: agg, p: p, dir: dir, ownID: ownID}
	for _, u := range urls {
		f.peers = append(f.peers, &peerEntry{url: u})
	}
	if dir == "" {
		return f, nil
	}
	saved, err := store.LoadPeerStates(dir, p)
	if err != nil {
		return nil, fmt.Errorf("server: recovering peer states: %w", err)
	}
	byURL := make(map[string]store.PeerState, len(saved))
	for _, ps := range saved {
		byURL[ps.URL] = ps
	}
	for _, pe := range f.peers {
		ps, ok := byURL[pe.url]
		if !ok {
			continue
		}
		// Validate the recovered blob exactly like a live pull; a peer
		// state that no longer decodes is dropped (the next pull
		// replaces it) rather than poisoning every future snapshot.
		if err := validateState(p, ps.State, ps.N); err != nil {
			pe.lastErr = fmt.Sprintf("recovered state invalid: %v", err)
			continue
		}
		// pulledAt stays zero: the state was recovered from disk, not
		// pulled, and /status must not report a fresh pull that never
		// happened (last_pull_age_seconds stays -1 until one does).
		pe.nodeID, pe.version, pe.n, pe.state = ps.NodeID, ps.Version, ps.N, ps.State
		f.total.Add(int64(ps.N))
		f.ver.Add(1)
	}
	return f, nil
}

// validateState decodes a peer's canonical state blob into a fresh
// aggregator of the deployment's protocol and cross-checks the declared
// report count, so a foreign or corrupt blob is rejected before it can
// enter any snapshot.
func validateState(p core.Protocol, state []byte, n int) error {
	probe := p.NewAggregator()
	if err := probe.UnmarshalState(state); err != nil {
		return err
	}
	if got := probe.N(); got != n {
		return fmt.Errorf("state holds %d reports but the frame declares %d", got, n)
	}
	return nil
}

// collect gathers the accepted peer blobs and their composition under
// the fleet lock. Blobs are replaced wholesale on accept (never mutated
// in place), so reading them after the unlock is safe.
func (f *fleet) collect() (blobs [][]byte, comp []view.Component) {
	f.mu.Lock()
	defer f.mu.Unlock()
	blobs = make([][]byte, 0, len(f.peers))
	comp = make([]view.Component, 0, len(f.peers))
	for _, pe := range f.peers {
		if pe.state == nil {
			continue
		}
		blobs = append(blobs, pe.state)
		comp = append(comp, view.Component{
			ID: pe.nodeID, URL: pe.url, N: pe.n, Version: pe.version, PulledAt: pe.pulledAt,
		})
	}
	return blobs, comp
}

// Snapshot assembles the fleet-wide state: a merged snapshot of the
// local shards plus every accepted peer blob, each decoded and folded in
// through the canonical Merge path. It records the snapshot's
// composition for the view engine (view.Composed) — only the engine may
// call it (builds are serialized under the engine's lock); other
// callers use export, which leaves the recorded composition alone.
func (f *fleet) Snapshot() (core.Aggregator, error) {
	blobs, comp := f.collect()
	f.mu.Lock()
	f.comp = comp
	f.mu.Unlock()
	return f.agg.SnapshotWith(blobs)
}

// export assembles the same merged fleet state for GET /state without
// touching the engine's recorded composition, so a concurrent
// tier-stacking pull can never make View.Components misdescribe a
// published epoch.
func (f *fleet) export() (core.Aggregator, error) {
	blobs, _ := f.collect()
	return f.agg.SnapshotWith(blobs)
}

// fleetArena is the coordinator's core.StateArena: the local shard
// arena (whose cumulative aggregator is the single fold target) plus
// the decoded contribution of every peer currently folded in, keyed by
// peer URL and labeled exactly like fleet.accept — (node id, version).
// A pull round that changed one edge's state re-folds only that edge's
// contribution; unchanged peers cost one label comparison.
type fleetArena struct {
	local core.StateArena
	peers map[string]*heldPeer
}

// heldPeer is one peer contribution folded into the arena's cumulative
// state.
type heldPeer struct {
	nodeID  string
	version uint64
	n       int
	agg     core.Aggregator
}

func (fa *fleetArena) State() core.Aggregator { return fa.local.State() }
func (fa *fleetArena) Primed() bool           { return fa.local.Primed() }
func (fa *fleetArena) Reset()                 { fa.local.Reset() }

// NewSnapshotArena returns a delta-snapshot arena over the fleet, or
// nil when the deployment's protocol cannot back exact delta folds.
// Implements view.DeltaSource alongside SnapshotDeltaInto.
func (f *fleet) NewSnapshotArena() core.StateArena {
	local := f.agg.NewSnapshotArena()
	if local == nil {
		return nil
	}
	return &fleetArena{local: local, peers: make(map[string]*heldPeer)}
}

// SnapshotDeltaInto advances the arena to the current fleet state:
// local shard deltas fold through the core arena, and each peer whose
// accepted (node id, version) label moved since the arena's last
// capture has its old contribution unmerged and its fresh state decoded
// and merged — a pull that changed one edge re-folds one component. It
// records the snapshot's composition for the view engine, exactly like
// Snapshot. Only the engine may call it (builds are serialized under
// the engine's lock).
func (f *fleet) SnapshotDeltaInto(arena core.StateArena) (int, error) {
	fa, ok := arena.(*fleetArena)
	if !ok {
		return 0, fmt.Errorf("server: arena of type %T was not created by this fleet", arena)
	}
	if !fa.local.Primed() {
		// The local arena is about to recapture its cumulative state
		// from scratch (fresh arena, Reset, or a failed fold), which
		// drops every peer contribution folded into it.
		clear(fa.peers)
	}
	touched, err := f.agg.SnapshotDeltaInto(fa.local)
	if err != nil {
		return touched, err
	}
	cum := fa.local.State()

	// Snapshot the accepted peer labels (and blob references — blobs are
	// replaced wholesale on accept, never mutated) under the fleet lock,
	// and record the composition the engine will label this epoch with.
	type peerSnap struct {
		url, nodeID string
		version     uint64
		n           int
		state       []byte
	}
	f.mu.Lock()
	cur := make([]peerSnap, 0, len(f.peers))
	comp := make([]view.Component, 0, len(f.peers))
	for _, pe := range f.peers {
		if pe.state == nil {
			continue
		}
		cur = append(cur, peerSnap{pe.url, pe.nodeID, pe.version, pe.n, pe.state})
		comp = append(comp, view.Component{
			ID: pe.nodeID, URL: pe.url, N: pe.n, Version: pe.version, PulledAt: pe.pulledAt,
		})
	}
	f.comp = comp
	f.mu.Unlock()

	// A half-applied fold leaves cum inconsistent; force a cold
	// recapture on the next call.
	fail := func(e error) (int, error) {
		fa.local.Reset()
		return touched, e
	}
	seen := make(map[string]bool, len(cur))
	for _, pe := range cur {
		seen[pe.url] = true
		held := fa.peers[pe.url]
		if held != nil && held.nodeID == pe.nodeID && held.version == pe.version {
			continue
		}
		if held != nil {
			if err := core.UnmergeAggregators(cum, held.agg); err != nil {
				return fail(fmt.Errorf("server: unfolding stale state of peer %s: %w", pe.url, err))
			}
		}
		dec := f.p.NewAggregator()
		if err := dec.UnmarshalState(pe.state); err != nil {
			return fail(fmt.Errorf("server: decoding state of peer %s: %w", pe.url, err))
		}
		if err := core.MergeAggregators(cum, dec); err != nil {
			return fail(fmt.Errorf("server: folding state of peer %s: %w", pe.url, err))
		}
		fa.peers[pe.url] = &heldPeer{nodeID: pe.nodeID, version: pe.version, n: pe.n, agg: dec}
		touched++
	}
	for url, held := range fa.peers {
		if seen[url] {
			continue
		}
		if err := core.UnmergeAggregators(cum, held.agg); err != nil {
			return fail(fmt.Errorf("server: unfolding dropped peer %s: %w", url, err))
		}
		delete(fa.peers, url)
		touched++
	}
	return touched, nil
}

// Composition describes the constituents of the latest Snapshot.
func (f *fleet) Composition() []view.Component {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]view.Component(nil), f.comp...)
}

// N is the fleet-wide report count: local ingestion (always zero on a
// coordinator, which rejects reports) plus every accepted peer state.
// Lock-free, so the view engine's staleness polling never contends with
// pulls.
func (f *fleet) N() int { return f.agg.N() + int(f.total.Load()) }

// version labels the coordinator's own exported state: it changes
// whenever any accepted peer state changes.
func (f *fleet) version() uint64 { return f.ver.Load() }

// accept installs a freshly pulled (and already validated) frame for the
// peer at url. It returns (changed=false) when the frame's (node id,
// version) matches the stored one — the idempotent re-pull case — and an
// error when another configured peer already serves the same node id
// (two URLs reaching one node would double-count its reports). The
// node-id guards see one tier deep only: a merged frame carries the
// exporting coordinator's id, not its constituents', so in stacked
// topologies the operator must keep peer sets disjoint per tier (see
// the example README's cluster section).
func (f *fleet) accept(url string, sf wire.StateFrame) (changed bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if sf.NodeID == f.ownID {
		// A self-pull (or a coordinator cycle) would re-ingest this
		// node's own merged output as a peer contribution, inflating
		// the fleet without bound: the export's version label changes
		// on every accept, so the idempotency skip would never fire.
		return false, fmt.Errorf("peer %s answered with this coordinator's own node id %q (self-pull or coordinator cycle)", url, sf.NodeID)
	}
	var target *peerEntry
	for _, pe := range f.peers {
		if pe.url == url {
			target = pe
		} else if pe.nodeID == sf.NodeID && pe.state != nil {
			return false, fmt.Errorf("node id %q already served by peer %s", sf.NodeID, pe.url)
		}
	}
	if target == nil {
		return false, fmt.Errorf("peer %s is not configured", url)
	}
	if target.state != nil && target.nodeID == sf.NodeID && target.version == sf.Version {
		return false, nil
	}
	f.total.Add(int64(sf.N - target.n))
	target.nodeID, target.version, target.n, target.state = sf.NodeID, sf.Version, sf.N, sf.State
	f.ver.Add(1)
	return true, nil
}

// persist writes the current peer states to the cluster directory (when
// configured) so a coordinator restart resumes from the last accepted
// pulls instead of an empty fleet.
func (f *fleet) persist() {
	if f.dir == "" {
		return
	}
	f.saveMu.Lock()
	defer f.saveMu.Unlock()
	f.mu.Lock()
	states := make([]store.PeerState, 0, len(f.peers))
	for _, pe := range f.peers {
		if pe.state == nil {
			continue
		}
		states = append(states, store.PeerState{
			URL: pe.url, NodeID: pe.nodeID, Version: pe.version, N: pe.n, State: pe.state,
		})
	}
	f.mu.Unlock()
	err := store.SavePeerStates(f.dir, f.p, states)
	f.mu.Lock()
	f.lastSaveErr = err
	f.mu.Unlock()
}

// peersWithState counts configured peers whose state is held — pulled
// this run or recovered from the cluster directory. The readiness probe
// gates on it: a coordinator with zero peer states has nothing real to
// serve.
func (f *fleet) peersWithState() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, pe := range f.peers {
		if pe.state != nil {
			n++
		}
	}
	return n
}

// peerInstruments is one peer's pull metrics, maintained by the puller.
type peerInstruments struct {
	latency   *metrics.Histogram // one pull's wall time
	bytes     *metrics.Counter   // state bytes fetched
	changed   *metrics.Counter   // pulls that installed a new state
	unchanged *metrics.Counter   // idempotent re-pulls (same version label)
	failed    *metrics.Counter   // pulls that errored
}

// puller drives the periodic state pulls of a coordinator with per-peer
// exponential backoff.
type puller struct {
	f         *fleet
	client    *http.Client
	transport *http.Transport // dedicated; idle conns dropped on Close
	interval  time.Duration
	maxState  int64
	tracer    *trace.Tracer // roots background rounds; may be nil in tests
	log       *logx.Logger

	// ins is keyed by peer URL; the peer set is fixed at construction so
	// the map is read-only after newPuller.
	ins    map[string]*peerInstruments
	rounds *metrics.Counter

	stop  chan struct{}
	close sync.Once
	done  sync.WaitGroup

	// roundMu serializes pull rounds (the background ticker and forced
	// POST /pull rounds): interleaved rounds could fetch a peer's state,
	// lose the race to a concurrent round that accepted a *newer* frame,
	// and then install the older one — accept only compares labels for
	// equality, so the regression would stick (and be persisted).
	roundMu sync.Mutex
}

// maxBackoffShift caps the failure backoff at interval << 5 = 32x.
const maxBackoffShift = 5

func newPuller(f *fleet, interval, timeout time.Duration, maxState int64, tracer *trace.Tracer, log *logx.Logger) *puller {
	// A dedicated transport, not http.DefaultTransport: the puller's
	// keep-alive connections to its peers must die with the puller.
	// Shared-transport idle connections (two goroutines each) outlive
	// Server.Close by the transport's idle timeout — a connection (and
	// goroutine) leak for every coordinator opened and closed in one
	// process, and for rolling peer replacement in a long-lived one.
	transport := &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConnsPerHost: 2,
		IdleConnTimeout:     90 * time.Second,
	}
	ins := make(map[string]*peerInstruments, len(f.peers))
	for _, pe := range f.peers {
		ins[pe.url] = &peerInstruments{
			latency:   metrics.NewHistogram(metrics.DurationBuckets()),
			bytes:     metrics.NewCounter(),
			changed:   metrics.NewCounter(),
			unchanged: metrics.NewCounter(),
			failed:    metrics.NewCounter(),
		}
	}
	return &puller{
		f:         f,
		client:    &http.Client{Timeout: timeout, Transport: transport},
		transport: transport,
		interval:  interval,
		maxState:  maxState,
		tracer:    tracer,
		log:       log,
		ins:       ins,
		rounds:    metrics.NewCounter(),
		stop:      make(chan struct{}),
	}
}

func (pl *puller) start() {
	pl.done.Add(1)
	go pl.loop()
}

func (pl *puller) Close() {
	pl.close.Do(func() { close(pl.stop) })
	pl.done.Wait()
	// With the loop joined no new pulls can start; drop the keep-alive
	// connections so their read loops exit now rather than at the idle
	// timeout.
	pl.transport.CloseIdleConnections()
}

// loop wakes at a fraction of the pull interval and pulls every due
// peer, so backoff deadlines are honored within ~interval/4 without
// per-peer goroutines.
func (pl *puller) loop() {
	defer pl.done.Done()
	tick := pl.interval / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-pl.stop:
			return
		case <-ticker.C:
			// Each background round roots its own trace; a round that
			// found no peer due is abandoned so the idle tick cadence
			// doesn't flood the trace ring.
			ctx, root := pl.tracer.StartRoot(context.Background(), "cluster.pull_round")
			if pulled := pl.round(ctx, false); pulled == 0 {
				root.Discard()
			} else {
				root.SetAttr("peers_pulled", pulled)
				root.End()
			}
		}
	}
}

// round pulls every peer that is due (or all of them when force is set,
// the POST /pull path), persisting the fleet once if anything changed.
// It returns the number of peers pulled. Rounds are serialized; see
// roundMu. ctx carries the round's span: background rounds root their
// own trace, forced rounds inherit the POST /pull request's, and the
// per-peer pull spans (with the propagated traceparent) hang off it.
func (pl *puller) round(ctx context.Context, force bool) (pulled int) {
	pl.roundMu.Lock()
	defer pl.roundMu.Unlock()
	now := time.Now()
	pl.f.mu.Lock()
	due := make([]string, 0, len(pl.f.peers))
	for _, pe := range pl.f.peers {
		if force || !now.Before(pe.nextDue) {
			due = append(due, pe.url)
		}
	}
	pl.f.mu.Unlock()
	// Pull due peers concurrently: one unresponsive peer burning its
	// full PullTimeout must not stall the others' staleness bound (or a
	// forced POST /pull) beyond a single timeout.
	var (
		wg         sync.WaitGroup
		anyChanged atomic.Bool
	)
	for _, url := range due {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			if pl.pull(ctx, url) {
				anyChanged.Store(true)
			}
		}(url)
	}
	wg.Wait()
	pl.rounds.Inc()
	if anyChanged.Load() {
		pl.f.persist()
	}
	return len(due)
}

// pull fetches, verifies, and installs one peer's state, updating that
// peer's schedule: success re-arms the regular interval, failure backs
// off exponentially.
func (pl *puller) pull(ctx context.Context, url string) (changed bool) {
	ctx, span := trace.StartSpan(ctx, "cluster.pull")
	span.SetAttr("peer", url)
	t0 := time.Now()
	changed, err := pl.fetch(ctx, span, url)
	if ins := pl.ins[url]; ins != nil {
		ins.latency.Observe(time.Since(t0).Seconds())
		switch {
		case err != nil:
			ins.failed.Inc()
		case changed:
			ins.changed.Inc()
		default:
			ins.unchanged.Inc()
		}
	}
	if err != nil {
		span.SetAttr("error", err.Error())
		pl.log.Warn("pull failed", "peer", url, "err", err)
	} else {
		span.SetAttr("changed", changed)
	}
	span.End()
	pl.f.mu.Lock()
	defer pl.f.mu.Unlock()
	for _, pe := range pl.f.peers {
		if pe.url != url {
			continue
		}
		if err != nil {
			pe.fails++
			pe.lastErr = err.Error()
			shift := pe.fails - 1
			if shift > maxBackoffShift {
				shift = maxBackoffShift
			}
			pe.nextDue = time.Now().Add(pl.interval << shift)
		} else {
			pe.fails = 0
			pe.lastErr = ""
			pe.pulledAt = time.Now()
			pe.nextDue = time.Now().Add(pl.interval)
		}
	}
	return changed
}

// fetch performs the HTTP GET and frame validation for one peer. The
// pull span's trace context rides along as a W3C traceparent header, so
// the edge's request span joins this coordinator's trace — one fleet
// pull is one cross-process trace id.
func (pl *puller) fetch(ctx context.Context, span *trace.Span, url string) (changed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/state", nil)
	if err != nil {
		return false, err
	}
	trace.Inject(span, req.Header)
	resp, err := pl.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("GET /state: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, pl.maxState+1))
	if ins := pl.ins[url]; ins != nil {
		ins.bytes.Add(uint64(len(body)))
	}
	if err != nil {
		return false, fmt.Errorf("GET /state: reading body: %w", err)
	}
	if int64(len(body)) > pl.maxState {
		return false, fmt.Errorf("GET /state: body exceeds %d bytes", pl.maxState)
	}
	sf, err := wire.DecodeStateFrame(body)
	if err != nil {
		return false, err
	}
	// Skip the (expensive) decode validation for an unchanged state: the
	// accept below short-circuits on the (node id, version) label. Peek
	// cheaply first.
	if pl.f.sameVersion(url, sf) {
		return false, nil
	}
	if err := validateState(pl.f.p, sf.State, sf.N); err != nil {
		return false, err
	}
	return pl.f.accept(url, sf)
}

// sameVersion reports whether the frame matches the stored label for the
// peer — the idempotent re-pull fast path.
func (f *fleet) sameVersion(url string, sf wire.StateFrame) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, pe := range f.peers {
		if pe.url == url {
			return pe.state != nil && pe.nodeID == sf.NodeID && pe.version == sf.Version
		}
	}
	return false
}

// PeerStatus is one peer's entry in the /status cluster block.
type PeerStatus struct {
	// URL is the configured peer base URL.
	URL string `json:"url"`
	// NodeID is the peer's self-reported node id ("" before the first
	// successful pull).
	NodeID string `json:"node_id,omitempty"`
	// Version and N label the latest accepted state.
	Version uint64 `json:"version"`
	N       int    `json:"n"`
	// LastPullAgeSeconds is how long ago the last successful pull
	// finished (negative when none has succeeded yet).
	LastPullAgeSeconds float64 `json:"last_pull_age_seconds"`
	// ConsecutiveFailures counts pulls failed since the last success;
	// the pull schedule backs off exponentially with it.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastError is the most recent pull failure, cleared on success.
	LastError string `json:"last_error,omitempty"`
}

// ClusterStatus is the cluster block of a /status reply.
type ClusterStatus struct {
	// Role is the node's role (single, edge, coordinator).
	Role string `json:"role"`
	// NodeID is this node's id, as exported in its /state frames.
	NodeID string `json:"node_id"`
	// StateVersion is the version this node would label a /state export
	// with right now.
	StateVersion uint64 `json:"state_version"`
	// PullIntervalSeconds is the coordinator's configured pull cadence
	// (0 for other roles).
	PullIntervalSeconds float64 `json:"pull_interval_seconds,omitempty"`
	// Peers describes every configured peer (coordinator only).
	Peers []PeerStatus `json:"peers,omitempty"`
	// PeerStateSaveError is the most recent failure persisting peer
	// states to the cluster directory, if any.
	PeerStateSaveError string `json:"peer_state_save_error,omitempty"`
}

// status snapshots the fleet for the /status cluster block.
func (f *fleet) status() (peers []PeerStatus, saveErr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	peers = make([]PeerStatus, 0, len(f.peers))
	for _, pe := range f.peers {
		ps := PeerStatus{
			URL:                 pe.url,
			NodeID:              pe.nodeID,
			Version:             pe.version,
			N:                   pe.n,
			LastPullAgeSeconds:  -1,
			ConsecutiveFailures: pe.fails,
			LastError:           pe.lastErr,
		}
		if !pe.pulledAt.IsZero() {
			// Clamp at zero: a pulledAt stamp whose monotonic reading was
			// stripped (marshaled status, or a Round(0) anywhere upstream)
			// falls back to wall-clock arithmetic, and a wall clock
			// stepped backwards would otherwise report a negative age —
			// indistinguishable from the "never pulled" -1 sentinel.
			if age := time.Since(pe.pulledAt).Seconds(); age > 0 {
				ps.LastPullAgeSeconds = age
			} else {
				ps.LastPullAgeSeconds = 0
			}
		}
		peers = append(peers, ps)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].URL < peers[j].URL })
	if f.lastSaveErr != nil {
		saveErr = f.lastSaveErr.Error()
	}
	return peers, saveErr
}
