package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/fault"
	"ldpmarginals/internal/store"
)

// openEdgeStore opens a durable store for an edge-role test node.
func openEdgeStore(t *testing.T, dir string, p core.Protocol) *store.Store {
	t.Helper()
	st, err := store.Open(dir, p, store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// Test503Hygiene is the handler-matrix pin of the 503 contract: every
// 503 this server emits — readiness refusals and degraded ingest sheds
// alike — carries an explicit Retry-After, a JSON reason body, and the
// request's trace id, so balancers know when to come back and failure
// reports can be joined against /debug/traces.
func Test503Hygiene(t *testing.T) {
	defer fault.Disarm()
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Row source 1: an unready coordinator (no peer state yet; the
	// configured peer does not exist).
	_, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "h503-coord",
		Peers: []string{"http://127.0.0.1:1"}, PullInterval: time.Hour,
	})

	// Row source 2: a degraded durable edge. A persistent append fault
	// kills the WAL on the first batch (answered 500); every ingest
	// after it is shed 503 by the degradation state machine.
	st := openEdgeStore(t, t.TempDir(), p)
	_, edgeTS := newClusterNode(t, p, Options{
		Role: RoleEdge, NodeID: "h503-edge", Store: st,
		DegradedProbeInterval: time.Hour,
	})
	reps := makeClusterReports(t, p, 8, 17)
	fault.Arm(fault.Rule{Site: store.FaultWALAppend, Mode: fault.ModeError, Msg: "no space left on device"})
	resp, err := http.Post(edgeTS.URL+"/report/batch", "application/octet-stream", bytes.NewReader(mustBatch(t, p, reps...)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("batch onto dead WAL: status %d, want 500", resp.StatusCode)
	}

	rows := []struct {
		name   string
		method string
		url    string
		body   []byte
		reason string // substring the JSON body must carry
	}{
		{"readyz unready", http.MethodGet, coordTS.URL + "/readyz", nil, "no_peer_state"},
		{"degraded shed /report/batch", http.MethodPost, edgeTS.URL + "/report/batch", mustBatch(t, p, reps...), "degraded"},
		{"degraded shed /report", http.MethodPost, edgeTS.URL + "/report", mustSingleFrame(t, p, reps[0]), "degraded"},
		{"degraded readyz", http.MethodGet, edgeTS.URL + "/readyz", nil, "wal_failed"},
	}
	for _, row := range rows {
		var rd io.Reader
		if row.body != nil {
			rd = bytes.NewReader(row.body)
		}
		req, err := http.NewRequest(row.method, row.url, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s: status %d, want 503 (%s)", row.name, resp.StatusCode, body)
			continue
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: 503 without Retry-After", row.name)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", row.name, ct)
		}
		var shape struct {
			Error   string   `json:"error"`
			Reasons []string `json:"reasons"`
			TraceID string   `json:"trace_id"`
		}
		if err := json.Unmarshal(body, &shape); err != nil {
			t.Errorf("%s: 503 body %q is not JSON: %v", row.name, body, err)
			continue
		}
		reason := shape.Error
		for _, r := range shape.Reasons {
			reason += " " + r
		}
		if !strings.Contains(reason, row.reason) {
			t.Errorf("%s: reason %q does not mention %q", row.name, reason, row.reason)
		}
		if shape.TraceID == "" || shape.TraceID != resp.Header.Get("X-LDP-Trace-Id") {
			t.Errorf("%s: body trace_id %q, header %q", row.name, shape.TraceID, resp.Header.Get("X-LDP-Trace-Id"))
		}
	}

	// Reads keep serving from memory while degraded: the consumed (if
	// unlogged) reports answer /status and /state.
	status, _ := getBody(t, edgeTS.URL+"/status")
	if status != http.StatusOK {
		t.Fatalf("/status while degraded: %d", status)
	}
	status, _ = getBody(t, edgeTS.URL+"/state")
	if status != http.StatusOK {
		t.Fatalf("/state while degraded: %d", status)
	}
}

// TestBatchPersistFailureAccurateAck pins the ack contract when the WAL
// dies mid-/report/batch: the reply is a 500 (never a 200 ack for
// reports that may not be durable), Accepted is exactly the number of
// reports consumed into memory, and a crash at that instant loses at
// most the unacked batch — every previously 200-acked report is
// recovered.
func TestBatchPersistFailureAccurateAck(t *testing.T) {
	defer fault.Disarm()
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st := openEdgeStore(t, dir, p)
	srv, ts := newClusterNode(t, p, Options{
		Role: RoleEdge, NodeID: "ack-edge", Store: st,
		DegradedProbeInterval: time.Hour,
	})

	// 50 reports acked 200 under fsync=always: durable by contract.
	acked := makeClusterReports(t, p, 50, 23)
	postBatchOK(t, ts.URL, p, acked)

	// A 3000-report batch (three 1024-report chunks) hits a WAL that
	// dies after its second append syscall: some chunks may have logged,
	// the rest cannot.
	fault.Arm(fault.Rule{Site: store.FaultWALAppend, Mode: fault.ModeError, After: 2, Msg: "I/O error"})
	big := makeClusterReports(t, p, 3000, 29)
	resp, err := http.Post(ts.URL+"/report/batch", "application/octet-stream", bytes.NewReader(mustBatch(t, p, big...)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("mid-batch WAL death: status %d (%s), want 500", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("batch reply %q: %v", body, err)
	}
	if !strings.Contains(br.Error, "persistence failed") {
		t.Fatalf("batch reply error %q does not name the persistence failure", br.Error)
	}
	if br.TraceID == "" {
		t.Fatal("persistence-failure reply carries no trace_id")
	}
	// Accepted must be exactly what entered memory — the server's count
	// moved by precisely that many.
	if got := srv.N() - len(acked); br.Accepted != got {
		t.Fatalf("reply says accepted=%d but memory holds %d of the batch", br.Accepted, got)
	}

	// "Crash" now: copy the data directory as-is (no graceful Close,
	// which would snapshot the memory state and mask the question) and
	// recover from the copy. Every 200-acked report must come back; the
	// failed batch may be partially logged but never beyond what the
	// reply admitted was consumed.
	crash := t.TempDir()
	copyDir(t, dir, crash)
	re, err := store.Open(crash, p, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	_, rec := re.Recovered()
	if rec.Reports < len(acked) {
		t.Fatalf("crash recovery lost acked reports: recovered %d, acked %d", rec.Reports, len(acked))
	}
	if rec.Reports > len(acked)+br.Accepted {
		t.Fatalf("crash recovery found %d reports, more than acked %d + admitted %d", rec.Reports, len(acked), br.Accepted)
	}
}

// mustSingleFrame encodes one report as a single /report frame.
func mustSingleFrame(t *testing.T, p core.Protocol, rep core.Report) []byte {
	t.Helper()
	frame, err := encoding.Marshal(p.Name(), rep)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// copyDir copies every regular file of a flat directory.
func copyDir(t *testing.T, from, to string) {
	t.Helper()
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
