package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
)

func getViewStatus(t *testing.T, url string) ViewStatusResponse {
	t.Helper()
	status, b := getBody(t, url+"/view/status")
	if status != http.StatusOK {
		t.Fatalf("view/status: %d: %s", status, b)
	}
	var vs ViewStatusResponse
	if err := json.Unmarshal(b, &vs); err != nil {
		t.Fatal(err)
	}
	return vs
}

// TestCoordinatorIncrementalSinglePeerRefold is the cluster half of the
// incremental-refresh contract: with two edges behind a coordinator, a
// pull round in which exactly one edge's state changed re-folds only
// that component into the next epoch — and the served estimates remain
// byte-identical to a single node holding the merged stream.
func TestCoordinatorIncrementalSinglePeerRefold(t *testing.T) {
	p, err := core.New(core.MargRR, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 3000, 41)

	_, edge1 := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "e1"})
	_, edge2 := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "e2"})
	coord, coordTS := newClusterNode(t, p, Options{
		Role:   RoleCoordinator,
		NodeID: "c0",
		Peers:  []string{edge1.URL, edge2.URL},
		// Pull only on demand so the test controls the rounds.
		PullInterval: 3600e9,
	})

	// Round 1: both edges receive data -> both components fold.
	postBatchOK(t, edge1.URL, p, reps[:1000])
	postBatchOK(t, edge2.URL, p, reps[1000:2000])
	postPull(t, coordTS.URL)
	vs := postRefresh(t, coordTS.URL)
	if vs.ViewN != 2000 {
		t.Fatalf("epoch over %d reports, want 2000", vs.ViewN)
	}
	if !vs.Incremental || vs.FoldedComponents != 2 {
		t.Fatalf("round 1 status %+v, want incremental with 2 folded peer components", vs)
	}

	// Round 2: only edge1 changes -> exactly one component re-folds.
	postBatchOK(t, edge1.URL, p, reps[2000:])
	postPull(t, coordTS.URL)
	vs = postRefresh(t, coordTS.URL)
	if vs.ViewN != 3000 {
		t.Fatalf("epoch over %d reports, want 3000", vs.ViewN)
	}
	if !vs.Incremental || vs.FoldedComponents != 1 {
		t.Fatalf("round 2 status %+v, want incremental with exactly 1 folded component", vs)
	}
	if vs.IncrementalBuilds < 2 || vs.FullBuilds != 1 {
		t.Fatalf("build counters %+v, want >=2 incremental and 1 full", vs)
	}

	// A pull+refresh with no edge changes republishes the serving epoch.
	prev := vs.Epoch
	postPull(t, coordTS.URL)
	vs = postRefresh(t, coordTS.URL)
	if vs.Epoch != prev {
		t.Fatalf("zero-delta refresh advanced epoch %d -> %d", prev, vs.Epoch)
	}

	// The coordinator's incremental epochs serve the same estimates —
	// bit for bit — as a single node that consumed the whole stream
	// (epoch counters differ; cell values must not).
	_, single := newClusterNode(t, p, Options{})
	postBatchOK(t, single.URL, p, reps)
	postRefresh(t, single.URL)
	got := marginalBytes(t, coordTS.URL)
	want := marginalBytes(t, single.URL)
	for beta, g := range got {
		var gm, wm MarginalResponse
		if err := json.Unmarshal(g, &gm); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want[beta], &wm); err != nil {
			t.Fatal(err)
		}
		if len(gm.Cells) != len(wm.Cells) {
			t.Fatalf("beta=%d: %d cells vs %d", beta, len(gm.Cells), len(wm.Cells))
		}
		for c := range gm.Cells {
			if math.Float64bits(gm.Cells[c]) != math.Float64bits(wm.Cells[c]) {
				t.Fatalf("coordinator incremental epoch diverges from single node on beta=%d cell %d: %v vs %v",
					beta, c, gm.Cells[c], wm.Cells[c])
			}
		}
	}
	_ = coord
}

// TestViewStatusReportsBuildKinds covers the new /view/status fields on
// a single-role node: the initial epoch is a full build, refreshes after
// ingest are incremental, and the counters add up.
func TestViewStatusReportsBuildKinds(t *testing.T) {
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newClusterNode(t, p, Options{})
	vs := getViewStatus(t, ts.URL)
	if vs.Incremental || vs.FullBuilds != 1 || vs.IncrementalBuilds != 0 {
		t.Fatalf("initial status %+v, want one full build", vs)
	}
	postBatchOK(t, ts.URL, p, makeClusterReports(t, p, 500, 7))
	vs = postRefresh(t, ts.URL)
	if !vs.Incremental || vs.IncrementalBuilds != 1 || vs.FoldedComponents < 1 {
		t.Fatalf("post-ingest refresh status %+v, want an incremental build", vs)
	}
	if vs.SnapshotMillis < 0 {
		t.Fatalf("negative snapshot cost %v", vs.SnapshotMillis)
	}
}

// TestBatchDecodeStopsAllocating pins the pooled /report/batch decode
// path: reading the body into a reused buffer and decoding into reused
// record slices allocates nothing at steady state for a Bits-free
// protocol (InpHT).
func TestBatchDecodeStopsAllocating(t *testing.T) {
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 1024, 3)
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	bufs := &batchBuffers{}
	cycle := func() {
		got, err := readBodyInto(bytes.NewReader(body), int64(len(body)), bufs.body)
		if err != nil {
			t.Fatal(err)
		}
		bufs.body = got
		_, reps, ends, err := encoding.UnmarshalBatchEndsInto(got, 1<<20, bufs.reps, bufs.ends)
		if err != nil {
			t.Fatal(err)
		}
		bufs.reps, bufs.ends = reps, ends
	}
	cycle() // warm the buffers to their steady-state capacity
	if allocs := testing.AllocsPerRun(20, cycle); allocs > 1 {
		t.Fatalf("steady-state batch decode allocates %.1f objects per request, want ~0", allocs)
	}
}
