package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/trace"
)

// scrapeTraces fetches and decodes GET /debug/traces from base.
func scrapeTraces(t *testing.T, base string) trace.TracesResponse {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", resp.StatusCode)
	}
	var tr trace.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// findTrace returns the ring entry with the given trace id, or nil.
func findTrace(tr trace.TracesResponse, id string) *trace.TraceJSON {
	for i := range tr.Traces {
		if tr.Traces[i].TraceID == id {
			return &tr.Traces[i]
		}
	}
	return nil
}

func spanNames(tj *trace.TraceJSON) []string {
	names := make([]string, len(tj.Spans))
	for i, sp := range tj.Spans {
		names[i] = sp.Name
	}
	return names
}

// TestCrossProcessPullTrace is the acceptance pin of the tentpole's
// fleet propagation: one coordinator-initiated pull produces a single
// trace id visible in BOTH the coordinator's and the edge's
// /debug/traces — the coordinator's side holding the pull-round and
// per-peer cluster.pull spans, the edge's side a remote-rooted
// http.request span for GET /state carrying the propagated traceparent.
func TestCrossProcessPullTrace(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "tr-edge"})
	_, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "tr-coord",
		Peers: []string{edgeTS.URL}, PullInterval: time.Minute,
	})

	// Seed the edge so the pull transfers real state.
	client := p.NewClient()
	rep, err := client.Perturb(3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if resp := postReport(t, edgeTS.URL, p, rep); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("edge report: %d", resp.StatusCode)
	}

	// One forced pull round, driven by POST /pull: the request's root
	// span covers the round, so the whole fleet exchange is one trace.
	resp, err := http.Post(coordTS.URL+"/pull", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /pull: status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-LDP-Trace-Id")
	if traceID == "" {
		t.Fatal("POST /pull reply carries no X-LDP-Trace-Id")
	}

	coordTrace := findTrace(scrapeTraces(t, coordTS.URL), traceID)
	if coordTrace == nil {
		t.Fatalf("trace %s not in the coordinator's /debug/traces", traceID)
	}
	wantCoord := map[string]bool{"http.request": false, "cluster.pull": false}
	for _, name := range spanNames(coordTrace) {
		if _, ok := wantCoord[name]; ok {
			wantCoord[name] = true
		}
	}
	for name, seen := range wantCoord {
		if !seen {
			t.Errorf("coordinator trace %s lacks a %q span (has %v)", traceID, name, spanNames(coordTrace))
		}
	}

	// The SAME trace id on the edge: its GET /state request span joined
	// the coordinator's trace via the injected traceparent, and is
	// marked remote-rooted.
	edgeTrace := findTrace(scrapeTraces(t, edgeTS.URL), traceID)
	if edgeTrace == nil {
		t.Fatalf("trace %s not in the edge's /debug/traces", traceID)
	}
	if !edgeTrace.Remote {
		t.Errorf("edge trace %s not marked remote", traceID)
	}
	found := false
	for _, sp := range edgeTrace.Spans {
		if sp.Name != "http.request" {
			continue
		}
		found = true
		if sp.ParentID == "" {
			t.Errorf("edge http.request span has no remote parent")
		}
		var path string
		for _, a := range sp.Attrs {
			if a.Key == "path" {
				path = a.Value
			}
		}
		if path != "/state" {
			t.Errorf("edge request span path = %q, want /state", path)
		}
	}
	if !found {
		t.Errorf("edge trace %s has no http.request span (has %v)", traceID, spanNames(edgeTrace))
	}
}

// TestIngestTraceLifecycle pins the single-node span tree of a durable
// windowed ingest: a /report request's trace carries the admission,
// ledger, and WAL spans the handler opened on its context.
func TestIngestTraceLifecycle(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), p, store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(p, Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); _ = s.Close() })

	client := p.NewClient()
	rep, err := client.Perturb(5, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	resp := postReport(t, ts.URL, p, rep)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("report: %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-LDP-Trace-Id")
	if traceID == "" {
		t.Fatal("no X-LDP-Trace-Id on /report reply")
	}
	tj := findTrace(scrapeTraces(t, ts.URL), traceID)
	if tj == nil {
		t.Fatalf("trace %s not retained", traceID)
	}
	want := map[string]bool{"http.request": false, "ingest.admission": false, "wal.append": false}
	for _, name := range spanNames(tj) {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("report trace lacks a %q span (has %v)", name, spanNames(tj))
		}
	}
}

// TestTraceScrapeUnderConcurrentIngest race-stresses the ring: readers
// scrape /debug/traces while writers ingest (each request opening and
// completing spans). Run with -race, the scrape must always decode and
// the dropped-span counter stay zero.
func TestTraceScrapeUnderConcurrentIngest(t *testing.T) {
	_, ts, p := newTestServer(t)
	client := p.NewClient()
	frames := make([][]byte, 8)
	for i := range frames {
		rep, err := client.Perturb(uint64(i%4), rng.New(uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		if frames[i], err = encoding.Marshal(p.Name(), rep); err != nil {
			t.Fatal(err)
		}
	}

	const writers, scrapers, iters = 4, 2, 40
	var wg sync.WaitGroup
	errc := make(chan error, writers+scrapers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frames[(w+i)%len(frames)]))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					errc <- fmt.Errorf("report: status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for sc := 0; sc < scrapers; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + "/debug/traces")
				if err != nil {
					errc <- err
					return
				}
				var tr trace.TracesResponse
				err = json.NewDecoder(resp.Body).Decode(&tr)
				resp.Body.Close()
				if err != nil {
					errc <- fmt.Errorf("decoding scrape: %w", err)
					return
				}
				if tr.DroppedSpans != 0 {
					errc <- fmt.Errorf("dropped spans: %d", tr.DroppedSpans)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	final := scrapeTraces(t, ts.URL)
	if final.Spans == 0 || len(final.Traces) == 0 {
		t.Fatalf("no traces retained after %d requests", writers*iters)
	}
}
