package server

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ldpmarginals/internal/logx"
	"ldpmarginals/internal/metrics"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/trace"
)

// Graceful degradation for durable ingesting roles. A persistent WAL
// failure (disk full, I/O errors) must not turn every ingest into a
// 500 while the node keeps advertising itself as healthy: instead the
// server becomes an explicit state machine —
//
//	healthy ──WAL failure──▶ degraded ──disk probe ok──▶ recovering
//	   ▲                        ▲                            │
//	   │                        └────────revive failed───────┤
//	   └───────────────────────revive + snapshot ok──────────┘
//
// Degraded, the node is read-only: ingest is shed with 503 +
// Retry-After (a load-balancer signal, not a client bug), while reads,
// /state export, and /metrics keep serving from memory. A background
// probe rewrites a sentinel file in the data directory every
// DegradedProbeInterval; once the disk accepts durable writes again it
// runs store.Recover — revive the committer on a fresh segment, then
// force a snapshot so the reports consumed while the log was dead are
// durable once more — and flips back to healthy. Readiness (/readyz)
// reports the node unready for the whole excursion, so routing drains
// away and returns only after durability is restored.
type healthState int32

const (
	healthHealthy healthState = iota
	healthDegraded
	healthRecovering
)

func (h healthState) String() string {
	switch h {
	case healthHealthy:
		return "healthy"
	case healthDegraded:
		return "degraded"
	case healthRecovering:
		return "recovering"
	default:
		return "unknown"
	}
}

// defaultDegradedProbe is the sentinel-probe cadence selected by
// Options.DegradedProbeInterval <= 0.
const defaultDegradedProbe = 2 * time.Second

// degrader owns the health state machine of a durable ingesting node.
type degrader struct {
	st       *store.Store
	log      *logx.Logger
	interval time.Duration

	state   atomic.Int32           // healthState
	lastErr atomic.Pointer[string] // what degraded us / last failed probe

	transitions *metrics.Counter // flips into degraded
	recoveries  *metrics.Counter // flips back to healthy
	probeFails  *metrics.Counter // failed sentinel probes / revives while degraded
	shedded     *metrics.Counter // ingest requests shed 503 while not healthy

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

func newDegrader(st *store.Store, log *logx.Logger, interval time.Duration) *degrader {
	if interval <= 0 {
		interval = defaultDegradedProbe
	}
	return &degrader{
		st:          st,
		log:         log,
		interval:    interval,
		transitions: metrics.NewCounter(),
		recoveries:  metrics.NewCounter(),
		probeFails:  metrics.NewCounter(),
		shedded:     metrics.NewCounter(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
}

func (d *degrader) start() { go d.loop() }

func (d *degrader) Close() {
	d.closeOnce.Do(func() { close(d.stop) })
	<-d.done
}

func (d *degrader) health() healthState { return healthState(d.state.Load()) }

func (d *degrader) lastErrString() string {
	if p := d.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// enterDegraded flips healthy → degraded exactly once per excursion;
// concurrent handlers observing the same WAL failure race benignly on
// the CAS.
func (d *degrader) enterDegraded(cause error) {
	if d.state.CompareAndSwap(int32(healthHealthy), int32(healthDegraded)) {
		msg := cause.Error()
		d.lastErr.Store(&msg)
		d.transitions.Inc()
		d.log.Warn("entering degraded read-only mode", "cause", msg, "probe_interval", d.interval)
	}
}

// ingestAllowed is the ingest handlers' gate: one atomic load while
// healthy. The first handler to observe a WAL failure flips the state
// machine itself, so shedding starts with the very next request rather
// than waiting for a probe tick.
func (d *degrader) ingestAllowed() bool {
	if d.health() == healthHealthy {
		if err := d.st.WALErr(); err != nil {
			d.enterDegraded(err)
			return false
		}
		return true
	}
	return false
}

// shed answers an ingest request refused because the node is degraded:
// 503 (a server condition, unlike the 429 overload shed) with an
// explicit Retry-After spanning one probe cycle.
func (d *degrader) shed(w http.ResponseWriter, r *http.Request) {
	d.shedded.Inc()
	if span := trace.FromContext(r.Context()); span != nil {
		span.SetAttr("degraded", true)
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(d.interval.Seconds())+1))
	httpError(w, r, "degraded: ingest suspended while the write-ahead log is failed; reads continue to serve", http.StatusServiceUnavailable)
}

func (d *degrader) loop() {
	defer close(d.done)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.tick()
		}
	}
}

// tick advances the state machine: a healthy node watches for WAL
// failures that arrive without ingest traffic (interval fsyncs, window
// rotations), a degraded node probes the disk and attempts recovery.
func (d *degrader) tick() {
	switch d.health() {
	case healthHealthy:
		if err := d.st.WALErr(); err != nil {
			d.enterDegraded(err)
		}
	case healthDegraded:
		if err := store.ProbeDisk(d.st.Dir()); err != nil {
			d.probeFails.Inc()
			msg := err.Error()
			d.lastErr.Store(&msg)
			return
		}
		d.state.Store(int32(healthRecovering))
		if err := d.st.Recover(); err != nil {
			d.probeFails.Inc()
			msg := err.Error()
			d.lastErr.Store(&msg)
			d.state.Store(int32(healthDegraded))
			d.log.Warn("disk probe passed but WAL revive failed; staying degraded", "err", msg)
			return
		}
		d.state.Store(int32(healthHealthy))
		d.lastErr.Store(nil)
		d.recoveries.Inc()
		d.log.Info("recovered from degraded mode; WAL revived and memory state re-snapshotted")
	}
}

// Health reports the node's durability health: healthy, degraded, or
// recovering. Roles without a durable ingest path are always healthy.
func (s *Server) Health() string {
	if s.deg == nil {
		return healthHealthy.String()
	}
	return s.deg.health().String()
}

// admitHealthy gates an ingest handler on the degradation state
// machine; on false the request has been answered with the 503 shed.
func (s *Server) admitHealthy(w http.ResponseWriter, r *http.Request) bool {
	if s.deg == nil || s.deg.ingestAllowed() {
		return true
	}
	s.deg.shed(w, r)
	return false
}
