package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/fault"
)

// TestBreakerTransitions unit-tests the circuit breaker's schedule
// logic: transient failures back off but never quarantine, only
// *consecutive* poison failures trip the breaker, and any clean pull
// closes it.
func TestBreakerTransitions(t *testing.T) {
	const url = "http://peer"
	f := &fleet{peers: []*peerEntry{{url: url}}}
	pl := newPuller(f, time.Second, time.Second, 1<<20, false, 3, time.Minute, nil, nil)
	pe := f.peers[0]

	transient := errors.New("dial tcp: connection refused")
	poisoned := poison(errors.New("component frame checksum mismatch"))

	// Transient failures alone never quarantine, however many.
	for i := 0; i < 10; i++ {
		if h := pl.updateSchedule(url, transient); h != peerBackingOff {
			t.Fatalf("transient failure %d: health %v, want backing_off", i, h)
		}
	}
	if pe.quarantined || pe.poisonFails != 0 {
		t.Fatalf("transient failures tripped the breaker: %+v", pe)
	}

	// Two poisons, a transient, two more poisons: the transient breaks
	// the consecutive run, so no quarantine yet.
	pl.updateSchedule(url, poisoned)
	pl.updateSchedule(url, poisoned)
	pl.updateSchedule(url, transient)
	pl.updateSchedule(url, poisoned)
	if h := pl.updateSchedule(url, poisoned); h != peerBackingOff {
		t.Fatalf("after broken poison run: health %v, want backing_off", h)
	}
	if pe.quarantined {
		t.Fatal("non-consecutive poison failures tripped the breaker")
	}

	// The third consecutive poison trips it.
	if h := pl.updateSchedule(url, poisoned); h != peerQuarantined {
		t.Fatalf("after 3 consecutive poisons: health %v, want quarantined", h)
	}
	if pe.quarantines != 1 || pe.quarantinedAt.IsZero() {
		t.Fatalf("quarantine bookkeeping: %+v", pe)
	}
	// Quarantined scheduling runs on the long half-open timer, not the
	// (capped) exponential backoff.
	if wait := time.Until(pe.nextDue); wait < 50*time.Second {
		t.Fatalf("half-open probe due in %v, want ~1m", wait)
	}
	// Further poison probes keep it quarantined without re-tripping.
	pl.updateSchedule(url, poisoned)
	if pe.quarantines != 1 {
		t.Fatalf("failed half-open probe re-counted a trip: %d", pe.quarantines)
	}

	// One clean pull closes the breaker and clears every counter.
	if h := pl.updateSchedule(url, nil); h != peerHealthy {
		t.Fatalf("after clean pull: health %v, want healthy", h)
	}
	if pe.quarantined || pe.fails != 0 || pe.poisonFails != 0 || pe.lastErr != "" {
		t.Fatalf("clean pull did not reset breaker state: %+v", pe)
	}
	if pe.quarantines != 1 {
		t.Fatalf("lifetime trip count lost on recovery: %d", pe.quarantines)
	}
}

// TestPeerQuarantineLifecycle drives the breaker end to end over HTTP:
// an edge whose response bodies are corrupted in flight is quarantined
// after three poisoned pulls, the coordinator keeps serving the held
// contribution unchanged, readiness surfaces (but is not failed by) the
// quarantine, and a clean forced pull lifts it and catches the view up.
func TestPeerQuarantineLifecycle(t *testing.T) {
	defer fault.Disarm()
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 160, 11)
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1"})
	coord, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "coord",
		Peers:        []string{edgeTS.URL},
		PullInterval: time.Minute,
		// A half-open cadence far past the test keeps the breaker shut
		// until the forced pull probes it.
		QuarantineInterval: time.Hour,
	})

	postBatchOK(t, edgeTS.URL, p, reps[:100])
	postPull(t, coordTS.URL)
	if coord.N() != 100 {
		t.Fatalf("after clean pull N=%d, want 100", coord.N())
	}
	postRefresh(t, coordTS.URL)
	want := marginalBytes(t, coordTS.URL)

	// Every response body now arrives damaged. Each pull must carry a
	// body (not a 304), so feed the edge fresh reports between pulls.
	fault.Arm(fault.Rule{Site: FaultClusterBody, Mode: fault.ModeCorrupt, Seed: 9})
	var cs ClusterStatus
	for i := 0; i < 3; i++ {
		postBatchOK(t, edgeTS.URL, p, reps[100+20*i:100+20*(i+1)])
		cs = postPull(t, coordTS.URL)
	}
	pe := cs.Peers[0]
	if pe.Health != "quarantined" || pe.PoisonFailures != 3 || pe.Quarantines != 1 {
		t.Fatalf("after 3 poisoned pulls: %+v, want quarantined/3/1", pe)
	}
	if pe.LastError == "" {
		t.Fatal("quarantined peer carries no last_error")
	}

	// The held contribution keeps serving, bit-identical to the last
	// good pull; none of the 60 poisoned reports leaked in.
	if coord.N() != 100 {
		t.Fatalf("quarantine changed fleet N to %d", coord.N())
	}
	postRefresh(t, coordTS.URL)
	for beta, w := range want {
		got := marginalBytes(t, coordTS.URL)[beta]
		if string(got) != string(w) {
			t.Fatalf("beta=%d: quarantined view drifted from last good pull", beta)
		}
	}

	// /view/status labels the frozen constituent.
	status, body := getBody(t, coordTS.URL+"/view/status")
	if status != http.StatusOK {
		t.Fatalf("view/status: %d", status)
	}
	var vsr ViewStatusResponse
	if err := json.Unmarshal(body, &vsr); err != nil {
		t.Fatal(err)
	}
	if len(vsr.Peers) != 1 || vsr.Peers[0].Health != "quarantined" {
		t.Fatalf("view/status peers = %+v, want one quarantined entry", vsr.Peers)
	}

	// Readiness surfaces the quarantine without going unready: the node
	// still serves its held state.
	status, body = getBody(t, coordTS.URL+"/readyz")
	if status != http.StatusOK {
		t.Fatalf("readyz while peer quarantined: %d: %s", status, body)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || ready.PeerHealth[edgeTS.URL] != "quarantined" {
		t.Fatalf("readyz = %+v, want ready with peer quarantined", ready)
	}

	// The breaker state is scrapeable.
	status, body = getBody(t, coordTS.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	if !strings.Contains(string(body), "ldp_cluster_peer_quarantines_total") {
		t.Fatal("metrics missing ldp_cluster_peer_quarantines_total")
	}

	// The peer heals; a forced pull is the half-open probe, and one
	// clean frame lifts the quarantine and catches the view up.
	fault.Disarm()
	cs = postPull(t, coordTS.URL)
	pe = cs.Peers[0]
	if pe.Health != "healthy" || pe.PoisonFailures != 0 || pe.LastError != "" {
		t.Fatalf("after healing pull: %+v, want healthy", pe)
	}
	if pe.Quarantines != 1 {
		t.Fatalf("lifetime trip count = %d, want 1", pe.Quarantines)
	}
	if coord.N() != 160 {
		t.Fatalf("after recovery N=%d, want 160", coord.N())
	}
}

// TestDialFailuresBackOffWithoutQuarantine pins the transient/poison
// split over HTTP: an unreachable peer backs off but is never
// quarantined, so it rejoins on the regular retry schedule the moment
// the network heals.
func TestDialFailuresBackOffWithoutQuarantine(t *testing.T) {
	defer fault.Disarm()
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 50, 13)
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1"})
	postBatchOK(t, edgeTS.URL, p, reps)
	coord, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "coord",
		Peers: []string{edgeTS.URL}, PullInterval: time.Minute,
	})

	fault.Arm(fault.Rule{Site: FaultClusterDial, Mode: fault.ModeError, Msg: "connection refused"})
	var cs ClusterStatus
	for i := 0; i < 5; i++ {
		cs = postPull(t, coordTS.URL)
	}
	pe := cs.Peers[0]
	if pe.Health != "backing_off" || pe.PoisonFailures != 0 || pe.Quarantines != 0 {
		t.Fatalf("after 5 dial failures: %+v, want backing_off and no quarantine", pe)
	}
	if pe.ConsecutiveFailures != 5 {
		t.Fatalf("consecutive_failures = %d, want 5", pe.ConsecutiveFailures)
	}

	fault.Disarm()
	cs = postPull(t, coordTS.URL)
	if pe = cs.Peers[0]; pe.Health != "healthy" {
		t.Fatalf("after network heals: %+v, want healthy", pe)
	}
	if coord.N() != len(reps) {
		t.Fatalf("after recovery N=%d, want %d", coord.N(), len(reps))
	}
}
