package server

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/wire"
)

// getState fetches /state with the delta handshake: components=1 plus an
// optional acknowledged base. It returns the status, body, ETag, and the
// X-LDP-Frame mode header.
func getState(t *testing.T, url string, base string) (int, []byte, string, string) {
	t.Helper()
	target := url + "/state?components=1"
	req, err := http.NewRequest(http.MethodGet, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base != "" {
		req.Header.Set("If-None-Match", base)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("ETag"), resp.Header.Get("X-LDP-Frame")
}

// TestStateDeltaHandshake pins the exporter side of the delta exchange
// over live HTTP: full componentized frame, 304 on an acknowledged
// unchanged version (for both the componentized and the legacy
// endpoint), a delta that ships only moved shards, and a full-frame
// fallback on an unknown base.
func TestStateDeltaHandshake(t *testing.T) {
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	// One ingest worker keeps a POSTed batch a single ConsumeBatch call,
	// which (round-robin) lands on exactly one shard.
	_, ts := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1", Shards: 8, IngestWorkers: 1})
	postBatchOK(t, ts.URL, p, makeClusterReports(t, p, 160, 21))

	status, body, etag, mode := getState(t, ts.URL, "")
	if status != http.StatusOK || mode != "full" {
		t.Fatalf("componentized state: status %d mode %q", status, mode)
	}
	if !wire.IsComponentFrame(body) {
		t.Fatal("components=1 did not serve a componentized frame")
	}
	full, err := wire.DecodeComponentFrame(body, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if full.Delta || full.NodeID != "edge-1" || full.N != 160 {
		t.Fatalf("full frame = %+v", full)
	}
	if len(full.Components) == 0 || len(full.Components) > 8 {
		t.Fatalf("full frame ships %d components, want 1..8 (per nonempty shard)", len(full.Components))
	}
	if etag != stateETag(full.Version) {
		t.Fatalf("ETag %q does not label the frame version %d", etag, full.Version)
	}

	// Acknowledging the current version short-circuits to 304 with no
	// body — on the componentized endpoint and the legacy one alike.
	status, body, _, _ = getState(t, ts.URL, etag)
	if status != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("acknowledged pull: status %d with %d body bytes, want 304 empty", status, len(body))
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/state", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("legacy endpoint with acknowledged version: status %d, want 304", resp.StatusCode)
	}

	// One more batch moves one shard; a pull acknowledging the old base
	// gets a delta carrying only the moved component(s).
	postBatchOK(t, ts.URL, p, makeClusterReports(t, p, 20, 22))
	status, body, etag2, mode := getState(t, ts.URL, etag)
	if status != http.StatusOK || mode != "delta" {
		t.Fatalf("moved state: status %d mode %q, want 200 delta", status, mode)
	}
	delta, err := wire.DecodeComponentFrame(body, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Delta || delta.BaseVersion != full.Version || delta.N != 180 {
		t.Fatalf("delta frame = %+v (base %d)", delta, full.Version)
	}
	if len(delta.Components) == 0 || len(delta.Components) >= len(full.Components)+1 {
		t.Fatalf("delta ships %d components over a %d-component full frame, want a strict subset of moved shards",
			len(delta.Components), len(full.Components))
	}
	// Folding the delta over the base must reproduce a fresh full pull
	// exactly — the invariant the coordinator's accept path relies on.
	merged := make(map[string]wire.StateComponent)
	for _, c := range full.Components {
		merged[c.ID] = c
	}
	for _, c := range delta.Components {
		merged[c.ID] = c
	}
	for _, id := range delta.Removed {
		delete(merged, id)
	}
	status, body, etag3, _ := getState(t, ts.URL, "")
	if status != http.StatusOK {
		t.Fatalf("fresh full pull: status %d", status)
	}
	fresh, err := wire.DecodeComponentFrame(body, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if etag3 != etag2 {
		t.Fatalf("fresh full pull ETag %q, delta ETag %q", etag3, etag2)
	}
	if len(fresh.Components) != len(merged) {
		t.Fatalf("delta fold yields %d components, fresh full pull has %d", len(merged), len(fresh.Components))
	}
	for _, c := range fresh.Components {
		got, ok := merged[c.ID]
		if !ok || got.Version != c.Version || got.N != c.N || !bytes.Equal(got.State, c.State) {
			t.Fatalf("component %s: delta fold diverges from fresh full pull", c.ID)
		}
	}

	// An unknown base (never served by this process) falls back to a
	// full frame.
	status, body, _, mode = getState(t, ts.URL, `"123456789"`)
	if status != http.StatusOK || mode != "full" {
		t.Fatalf("unknown base: status %d mode %q, want 200 full", status, mode)
	}
	if f, err := wire.DecodeComponentFrame(body, 1<<24); err != nil || f.Delta {
		t.Fatalf("unknown base served delta=%v err=%v, want a full frame", f.Delta, err)
	}
}

// TestClusterDeltaVsFullBitIdentity is the satellite acceptance table:
// for each of the six protocols, a delta-negotiating coordinator and a
// legacy full-pull coordinator track the same two edges through
// incremental rounds — including an edge crash/recovery mid-stream,
// which re-salts the version labels and forces the delta side through
// its full-frame fallback — and must serve byte-identical marginals
// throughout.
func TestClusterDeltaVsFullBitIdentity(t *testing.T) {
	for _, kind := range core.AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			p, err := core.New(kind, clusterCfg)
			if err != nil {
				t.Fatal(err)
			}
			reps := makeClusterReports(t, p, 360, 31)
			var split [2][]core.Report
			for i, rep := range reps {
				split[i%2] = append(split[i%2], rep)
			}
			edge1Dir := t.TempDir()
			st, err := store.Open(edge1Dir, p, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			edge1, edge1TS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1", Store: st, Shards: 4})
			_, edge2TS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-2", Shards: 4})

			peers := []string{edge1TS.URL, edge2TS.URL}
			deltaCoord, deltaTS := newClusterNode(t, p, Options{
				Role: RoleCoordinator, NodeID: "coord-delta",
				Peers: peers, PullInterval: time.Minute,
			})
			_, fullTS := newClusterNode(t, p, Options{
				Role: RoleCoordinator, NodeID: "coord-full",
				Peers: peers, PullInterval: time.Minute,
				DisableDeltaPull: true,
			})

			compare := func(round string, wantN int) {
				t.Helper()
				postPull(t, deltaTS.URL)
				postPull(t, fullTS.URL)
				if vs := postRefresh(t, deltaTS.URL); vs.ViewN != wantN {
					t.Fatalf("%s: delta coordinator epoch holds %d, want %d", round, vs.ViewN, wantN)
				}
				if vs := postRefresh(t, fullTS.URL); vs.ViewN != wantN {
					t.Fatalf("%s: full coordinator epoch holds %d, want %d", round, vs.ViewN, wantN)
				}
				want := marginalBytes(t, fullTS.URL)
				got := marginalBytes(t, deltaTS.URL)
				for beta, w := range want {
					if !bytes.Equal(got[beta], w) {
						t.Fatalf("%s beta=%d: delta-pulled marginal differs from full-pulled", round, beta)
					}
				}
			}

			// Round 1: first full pulls. Rounds 2-3: incremental growth,
			// served as deltas to the delta coordinator.
			postBatchOK(t, edge1TS.URL, p, split[0][:60])
			postBatchOK(t, edge2TS.URL, p, split[1][:60])
			compare("round 1", 120)
			postBatchOK(t, edge1TS.URL, p, split[0][60:90])
			compare("round 2", 150)
			postBatchOK(t, edge2TS.URL, p, split[1][60:120])
			compare("round 3", 210)

			// Edge 1 crashes and recovers from its WAL at the same URL:
			// the new process serves fresh (re-salted) version labels, so
			// the delta coordinator's acknowledged base is unknown and the
			// pull must fall back to one full frame — no 412s, no skew.
			addr := edge1TS.Listener.Addr().String()
			edge1TS.Close()
			if err := edge1.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := store.Open(edge1Dir, p, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			edge1b, err := NewWithOptions(p, Options{Role: RoleEdge, NodeID: "edge-1", Store: st2, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = edge1b.Close() })
			edge1bTS := newServerAt(t, addr, edge1b)
			postBatchOK(t, edge1bTS, p, split[0][90:180])
			compare("post-recovery", 300)
			postBatchOK(t, edge2TS.URL, p, split[1][120:180])
			compare("round 5", 360)

			// The delta path must actually have been exercised: at least
			// one delta-mode pull per edge peer across the rounds.
			for url, ins := range deltaCoord.puller.ins {
				if ins.deltaPulls.Value() == 0 {
					t.Errorf("peer %s: no delta pulls recorded (full=%d, 304=%d)",
						url, ins.fullPulls.Value(), ins.notModified.Value())
				}
				if ins.bytesSaved.Value() == 0 {
					t.Errorf("peer %s: delta pulls saved no bytes", url)
				}
			}
		})
	}
}

// TestClusterTwoTierBitIdentity pins hierarchical fan-in: edges pulled
// through a mid-tier coordinator into a root must serve marginals
// byte-identical to a flat coordinator over the same edges, and the
// root's accepted state must decompose into the edges' true components
// (passed through the mid tier with their original ids).
func TestClusterTwoTierBitIdentity(t *testing.T) {
	p, err := core.New(core.MargHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 300, 41)
	_, edge1TS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1", Shards: 4})
	_, edge2TS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-2", Shards: 4})
	_, midTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "mid",
		Peers: []string{edge1TS.URL, edge2TS.URL}, PullInterval: time.Minute,
	})
	root, rootTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "root",
		Peers: []string{midTS.URL}, PullInterval: time.Minute,
	})
	_, flatTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "flat",
		Peers: []string{edge1TS.URL, edge2TS.URL}, PullInterval: time.Minute,
	})

	converge := func(round string, wantN int) {
		t.Helper()
		postPull(t, midTS.URL)
		postPull(t, rootTS.URL)
		postPull(t, flatTS.URL)
		if vs := postRefresh(t, rootTS.URL); vs.ViewN != wantN {
			t.Fatalf("%s: root epoch holds %d, want %d", round, vs.ViewN, wantN)
		}
		postRefresh(t, flatTS.URL)
		want := marginalBytes(t, flatTS.URL)
		got := marginalBytes(t, rootTS.URL)
		for beta, w := range want {
			if !bytes.Equal(got[beta], w) {
				t.Fatalf("%s beta=%d: two-tier marginal differs from flat coordinator", round, beta)
			}
		}
	}

	postBatchOK(t, edge1TS.URL, p, reps[:100])
	postBatchOK(t, edge2TS.URL, p, reps[100:200])
	converge("round 1", 200)
	// Incremental: the root's second pull of the mid tier is a delta of
	// the mid's pass-through components.
	postBatchOK(t, edge1TS.URL, p, reps[200:300])
	converge("round 2", 300)

	cs := postPull(t, rootTS.URL)
	if len(cs.Peers) != 1 || cs.Peers[0].NodeID != "mid" {
		t.Fatalf("root peers = %+v", cs.Peers)
	}
	// The mid tier passes the edges' shard components through unchanged,
	// so the root can dedup and delta-diff the fleet's true constituents.
	if cs.Peers[0].Components < 2 {
		t.Fatalf("root holds %d components via the mid tier, want the edges' shard decomposition", cs.Peers[0].Components)
	}
	root.fleet.mu.Lock()
	origins := make(map[string]bool)
	for id := range root.fleet.peers[0].comps {
		origins[wire.ComponentOrigin(id)] = true
	}
	root.fleet.mu.Unlock()
	if !origins["edge-1"] || !origins["edge-2"] || len(origins) != 2 {
		t.Fatalf("root component origins = %v, want exactly edge-1 and edge-2", origins)
	}
	ins := root.puller.ins[midTS.URL]
	if ins.deltaPulls.Value() == 0 {
		t.Errorf("root never pulled a delta through the mid tier (full=%d)", ins.fullPulls.Value())
	}
}

// TestClusterDiamondDedup pins the through-tier double-count guard: a
// root configured with both a mid-tier coordinator and one of that
// tier's edges directly sees the same components through two paths, and
// must count them exactly once.
func TestClusterDiamondDedup(t *testing.T) {
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 120, 51)
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1", Shards: 2})
	_, midTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "mid",
		Peers: []string{edgeTS.URL}, PullInterval: time.Minute,
	})
	root, rootTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "root",
		Peers: []string{midTS.URL, edgeTS.URL}, PullInterval: time.Minute,
	})
	postBatchOK(t, edgeTS.URL, p, reps)
	postPull(t, midTS.URL)
	cs := postPull(t, rootTS.URL)
	if root.N() != len(reps) {
		t.Fatalf("diamond fleet N=%d, want %d (edge reachable through two paths must count once)", root.N(), len(reps))
	}
	flagged := 0
	for _, peer := range cs.Peers {
		if peer.LastError != "" {
			flagged++
		}
	}
	if flagged != 1 {
		t.Fatalf("cluster status %+v: want exactly one flagged duplicate path", cs.Peers)
	}
}

// TestBackoffDelayJitterBounds pins the retry schedule: exponential in
// the failure count, capped at maxBackoffShift doublings, with bounded
// non-degenerate jitter.
func TestBackoffDelayJitterBounds(t *testing.T) {
	const interval = time.Second
	for fails := 1; fails <= 10; fails++ {
		shift := fails - 1
		if shift > maxBackoffShift {
			shift = maxBackoffShift
		}
		base := interval << shift
		sawJitter := false
		for i := 0; i < 200; i++ {
			d := backoffDelay(interval, fails)
			if d < base || d > base+base/2 {
				t.Fatalf("fails=%d: delay %v outside [%v, %v]", fails, d, base, base+base/2)
			}
			if d != base {
				sawJitter = true
			}
		}
		if !sawJitter {
			t.Errorf("fails=%d: 200 delays all exactly %v — jitter is degenerate", fails, base)
		}
	}
}

// TestCoordinatorRestartResumesDelta pins persistence of the delta
// bases: a coordinator restarted from its ClusterDir still knows each
// peer's acknowledged version, so its first pull of an unchanged,
// surviving peer is a 304 — not a full re-transfer of the fleet.
func TestCoordinatorRestartResumesDelta(t *testing.T) {
	p, err := core.New(core.InpPS, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 150, 61)
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1", Shards: 4})
	postBatchOK(t, edgeTS.URL, p, reps[:100])

	dir := t.TempDir()
	coordOpts := Options{
		Role: RoleCoordinator, NodeID: "coord",
		Peers: []string{edgeTS.URL}, PullInterval: time.Minute,
		ClusterDir: dir,
	}
	coord1, ts1 := newClusterNode(t, p, coordOpts)
	postPull(t, ts1.URL)
	if coord1.N() != 100 {
		t.Fatalf("first pull N=%d, want 100", coord1.N())
	}
	ts1.Close()
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}

	coord2, ts2 := newClusterNode(t, p, coordOpts)
	if coord2.N() != 100 {
		t.Fatalf("restarted coordinator N=%d, want 100", coord2.N())
	}
	// Unchanged peer: the recovered base matches, so the pull is a 304.
	postPull(t, ts2.URL)
	ins := coord2.puller.ins[edgeTS.URL]
	if ins.notModified.Value() != 1 || ins.fullPulls.Value() != 0 {
		t.Fatalf("restart pull: 304=%d full=%d delta=%d, want exactly one 304",
			ins.notModified.Value(), ins.fullPulls.Value(), ins.deltaPulls.Value())
	}
	// Moved peer: the recovered base still serves, so the pull is a
	// delta, not a full transfer.
	postBatchOK(t, edgeTS.URL, p, reps[100:])
	postPull(t, ts2.URL)
	if coord2.N() != 150 {
		t.Fatalf("post-restart delta pull N=%d, want 150", coord2.N())
	}
	if ins.deltaPulls.Value() != 1 {
		t.Fatalf("moved-peer pull after restart: 304=%d full=%d delta=%d, want a delta",
			ins.notModified.Value(), ins.fullPulls.Value(), ins.deltaPulls.Value())
	}
}

// newServerAt starts an httptest server for s on a specific address —
// how a "recovered" edge comes back at the same URL.
func newServerAt(t *testing.T, addr string, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	t.Cleanup(ts.Close)
	return ts.URL
}
