package server

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/store"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func wantFamilies(t *testing.T, got, who string, families ...string) {
	t.Helper()
	for _, f := range families {
		if !strings.Contains(got, "\n"+f) && !strings.HasPrefix(got, f) {
			t.Errorf("%s /metrics: family %s missing", who, f)
		}
	}
}

// TestMetricsAllRoles pins the tentpole end to end: all three roles
// serve a Prometheus scrape, and the scrape carries the instrumentation
// of every layer the role runs — HTTP/ingest and runtime everywhere,
// store+window+ledger on a durable windowed single, view on serving
// roles, and the cluster tier on a coordinator.
func TestMetricsAllRoles(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), p, store.Options{Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	single, singleTS := newClusterNode(t, p, Options{
		Store:    st,
		Window:   time.Hour,
		Bucket:   time.Minute,
		RoundEps: 100,
	})
	_ = single
	edge, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "met-edge"})
	_ = edge
	_, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "met-coord",
		Peers: []string{edgeTS.URL}, PullInterval: time.Minute,
	})

	// Drive some traffic so counters move: one accepted report on the
	// ingesting roles, one forced pull round on the coordinator.
	rep, err := p.NewClient().Perturb(5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := encoding.Marshal(p.Name(), rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range []string{singleTS.URL, edgeTS.URL} {
		req, err := http.NewRequest(http.MethodPost, ts+"/report", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-LDP-Token", "scrape-test")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("seed report on %s: status %d", ts, resp.StatusCode)
		}
	}
	resp, err := http.Post(coordTS.URL+"/pull", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	everywhere := []string{
		"go_goroutines", "go_heap_alloc_bytes",
		"ldp_http_requests_total", "ldp_http_request_seconds_bucket",
		"ldp_http_inflight_requests", "ldp_ingest_shed_total",
	}

	got := scrape(t, singleTS.URL)
	wantFamilies(t, got, "single", everywhere...)
	wantFamilies(t, got, "single",
		"ldp_ingest_reports_total 1",
		"ldp_wal_segments", "ldp_wal_fsync_seconds", "ldp_store_wal_failed 0",
		"ldp_view_epoch", "ldp_view_builds_total",
		"ldp_window_rotations_total", "ldp_window_live_reports 1",
		"ldp_ledger_charges_total 1", "ldp_ledger_budget_eps 100",
	)
	if strings.Contains(got, "ldp_cluster_") {
		t.Error("single /metrics: unexpected cluster families")
	}

	got = scrape(t, edgeTS.URL)
	wantFamilies(t, got, "edge", everywhere...)
	wantFamilies(t, got, "edge", "ldp_ingest_reports_total 1")
	if strings.Contains(got, "ldp_view_epoch") {
		t.Error("edge /metrics: unexpected view families (edges do not serve)")
	}

	got = scrape(t, coordTS.URL)
	wantFamilies(t, got, "coordinator", everywhere...)
	wantFamilies(t, got, "coordinator",
		"ldp_view_epoch",
		"ldp_cluster_pull_rounds_total",
		"ldp_cluster_peers_with_state 1",
		"ldp_cluster_fleet_reports 1",
		`ldp_cluster_pulls_total{peer="`+edgeTS.URL+`",result="changed"} 1`,
	)
}

// TestAdmissionShed pins satellite 1: with the in-flight slot held and
// the wait queue full, a new ingest request is shed with 429 +
// Retry-After and counted; once the slot frees, the queued request
// completes normally.
func TestAdmissionShed(t *testing.T) {
	s, ts, p := newTestServerWithOptions(t, Options{MaxInflightIngest: 1, MaxIngestQueue: 1})
	rep, err := p.NewClient().Perturb(2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := encoding.Marshal(p.Name(), rep)
	if err != nil {
		t.Fatal(err)
	}
	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/report", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Occupy the only in-flight slot, so the next request queues.
	s.adm.slots <- struct{}{}
	queued := make(chan int, 1)
	go func() {
		resp := post()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		queued <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: this one must shed.
	resp := post()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("shed reply: Retry-After %q, want \"1\"", ra)
	}
	if got := s.ins.shedReport.Value(); got != 1 {
		t.Errorf("shed counter: %d, want 1", got)
	}
	if !strings.Contains(scrape(t, ts.URL), `ldp_ingest_shed_total{path="/report"} 1`) {
		t.Error("shed not visible on /metrics")
	}

	// Free the slot: the queued request goes through.
	<-s.adm.slots
	select {
	case code := <-queued:
		if code != http.StatusNoContent {
			t.Fatalf("queued request: status %d, want 204", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never completed after the slot freed")
	}
	if got := s.ins.ingestReports.Value(); got != 1 {
		t.Errorf("ingest counter: %d, want 1", got)
	}
}

// TestReadyzCoordinator pins satellite 2's coordinator rule: not ready
// before any peer state is held, ready after the first successful pull
// round — while /healthz stays a pure liveness 200 throughout.
func TestReadyzCoordinator(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "rdy-edge"})
	_, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "rdy-coord",
		Peers: []string{edgeTS.URL}, PullInterval: time.Hour,
	})
	get := func(url string) (int, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(coordTS.URL + "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "no_peer_state") {
		t.Fatalf("pre-pull /readyz: status %d body %s, want 503 with no_peer_state", code, body)
	}
	if code, _ := get(coordTS.URL + "/healthz"); code != http.StatusOK {
		t.Fatalf("pre-pull /healthz: status %d, want 200 (liveness is not readiness)", code)
	}

	resp, err := http.Post(coordTS.URL+"/pull", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if code, body := get(coordTS.URL + "/readyz"); code != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("post-pull /readyz: status %d body %s, want 200 ready", code, body)
	}
}
