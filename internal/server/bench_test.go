package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
)

// nopResponseWriter discards the reply so the benchmark measures the
// handler, not a recorder's buffer growth.
type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}

// BenchmarkHandlerBatchIngest drives POST /report/batch through the full
// HTTP handler (admission, decode, chunk fan-out, sharded consume) with
// an in-process ServeHTTP call — the ingest hot path whose overhead the
// observability layer must keep within noise of the uninstrumented
// baseline.
func BenchmarkHandlerBatchIngest(b *testing.B) {
	const batchSize = 256
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewWithOptions(p, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	client := p.NewClient()
	r := rng.New(77)
	reps := make([]core.Report, batchSize)
	for i := range reps {
		rep, err := client.Perturb(uint64(i)%256, r)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = rep
	}
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rd := bytes.NewReader(nil)
		for pb.Next() {
			rd.Reset(body)
			req := httptest.NewRequest(http.MethodPost, "/report/batch", rd)
			w := &nopResponseWriter{h: make(http.Header)}
			h.ServeHTTP(w, req)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batchSize/b.Elapsed().Seconds(), "reports/s")
}

// BenchmarkHandlerSingleIngest is the same measurement for the one-report
// POST /report path.
func BenchmarkHandlerSingleIngest(b *testing.B) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewWithOptions(p, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	client := p.NewClient()
	rep, err := client.Perturb(3, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	frame, err := encoding.Marshal(p.Name(), rep)
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rd := bytes.NewReader(nil)
		for pb.Next() {
			rd.Reset(frame)
			req := httptest.NewRequest(http.MethodPost, "/report", rd)
			w := &nopResponseWriter{h: make(http.Header)}
			h.ServeHTTP(w, req)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N), "requests")
}
