package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ldpmarginals/internal/bitops"
	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/store"
	"ldpmarginals/internal/wire"
)

// clusterCfg keeps the table-driven topology tests fast: small domain,
// every protocol still exercises its full reconstruction path.
var clusterCfg = core.Config{D: 6, K: 2, Epsilon: 1.2, OptimizedPRR: true}

// makeClusterReports perturbs a deterministic record stream.
func makeClusterReports(t *testing.T, p core.Protocol, n int, seed uint64) []core.Report {
	t.Helper()
	client := p.NewClient()
	r := rng.New(seed)
	reps := make([]core.Report, n)
	for i := range reps {
		rep, err := client.Perturb(uint64(i)%(1<<clusterCfg.D), r)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	return reps
}

func postBatchOK(t *testing.T, url string, p core.Protocol, reps []core.Report) {
	t.Helper()
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/report/batch", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch to %s: status %d: %s", url, resp.StatusCode, b)
	}
}

func postPull(t *testing.T, url string) ClusterStatus {
	t.Helper()
	resp, err := http.Post(url+"/pull", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("pull: status %d: %s", resp.StatusCode, b)
	}
	var cs ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	return cs
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// marginalBytes fetches the raw /marginal JSON for every in-contract
// mask, the byte-level fingerprint of the serving view.
func marginalBytes(t *testing.T, url string) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte)
	for _, beta := range bitops.MasksWithAtMostK(clusterCfg.D, 1, clusterCfg.K) {
		status, b := getBody(t, url+"/marginal?beta="+strconv.FormatUint(beta, 10))
		if status != http.StatusOK {
			t.Fatalf("marginal beta=%d: status %d: %s", beta, status, b)
		}
		out[beta] = b
	}
	return out
}

// newClusterNode builds one role-configured in-process node.
func newClusterNode(t *testing.T, p core.Protocol, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewWithOptions(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); _ = s.Close() })
	return s, ts
}

// TestClusterBitIdentityAllProtocols is the acceptance pin of the
// cluster tier: for each of the six protocols, two durable edges
// splitting a report stream — with one edge shut down and recovered from
// its WAL mid-stream — merged by a coordinator must serve a /marginal
// view byte-identical to a single node that consumed the whole stream.
func TestClusterBitIdentityAllProtocols(t *testing.T) {
	for _, kind := range core.AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			p, err := core.New(kind, clusterCfg)
			if err != nil {
				t.Fatal(err)
			}
			const n = 400
			reps := makeClusterReports(t, p, n, 7)

			// Reference: one single-role node consumes the whole stream.
			_, singleTS := newClusterNode(t, p, Options{NodeID: "ref"})
			postBatchOK(t, singleTS.URL, p, reps)
			postRefresh(t, singleTS.URL)
			want := marginalBytes(t, singleTS.URL)

			// Cluster: the stream splits round-robin across two edges.
			var split [2][]core.Report
			for i, rep := range reps {
				split[i%2] = append(split[i%2], rep)
			}
			edge1Dir := t.TempDir()
			openEdge1 := func() (*Server, *httptest.Server) {
				st, err := store.Open(edge1Dir, p, store.Options{})
				if err != nil {
					t.Fatal(err)
				}
				return newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1", Store: st})
			}
			edge1, edge1TS := openEdge1()
			_, edge2TS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-2"})

			// A long pull interval keeps the background loop quiet; the
			// test drives convergence explicitly through POST /pull.
			_, coordTS := newClusterNode(t, p, Options{
				Role:         RoleCoordinator,
				NodeID:       "coord",
				Peers:        []string{edge1TS.URL, edge2TS.URL},
				PullInterval: time.Minute,
			})

			// First half of each edge's stream, then a pull.
			postBatchOK(t, edge1TS.URL, p, split[0][:len(split[0])/2])
			postBatchOK(t, edge2TS.URL, p, split[1])
			postPull(t, coordTS.URL)

			// Edge 1 "crashes": close it (the WAL has every acked
			// report), then bring it back from the same directory at the
			// same URL and ingest the rest of its stream.
			edge1TS.Close()
			_ = edge1.Close()
			st, err := store.Open(edge1Dir, p, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			edge1b, err := NewWithOptions(p, Options{Role: RoleEdge, NodeID: "edge-1", Store: st})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = edge1b.Close() })
			edge1bTS := httptest.NewServer(edge1b.Handler())
			t.Cleanup(edge1bTS.Close)
			if got := edge1b.N(); got != len(split[0])/2 {
				t.Fatalf("edge-1 recovered %d reports, want %d", got, len(split[0])/2)
			}
			postBatchOK(t, edge1bTS.URL, p, split[0][len(split[0])/2:])

			// The coordinator re-pulls: the recovered edge's full state
			// replaces its previous contribution (the restarted process
			// serves a fresh version label, so nothing is skipped).
			_, coord2TS := newClusterNode(t, p, Options{
				Role:         RoleCoordinator,
				NodeID:       "coord",
				Peers:        []string{edge1bTS.URL, edge2TS.URL},
				PullInterval: time.Minute,
			})
			cs := postPull(t, coord2TS.URL)
			for _, peer := range cs.Peers {
				if peer.LastError != "" {
					t.Fatalf("peer %s: pull error %q", peer.URL, peer.LastError)
				}
			}
			vs := postRefresh(t, coord2TS.URL)
			if vs.ViewN != n {
				t.Fatalf("coordinator epoch holds %d reports, want %d", vs.ViewN, n)
			}
			got := marginalBytes(t, coord2TS.URL)
			for beta, w := range want {
				if !bytes.Equal(got[beta], w) {
					t.Errorf("beta=%d: cluster marginal differs from single node\n single: %s\ncluster: %s", beta, w, got[beta])
				}
			}

			// Per-peer staleness: the serving epoch contains both peers
			// in full.
			status, body := getBody(t, coord2TS.URL+"/view/status")
			if status != http.StatusOK {
				t.Fatalf("view/status: %d", status)
			}
			var vsr ViewStatusResponse
			if err := json.Unmarshal(body, &vsr); err != nil {
				t.Fatal(err)
			}
			if len(vsr.Peers) != 2 {
				t.Fatalf("view/status peers = %+v, want 2 entries", vsr.Peers)
			}
			for _, pv := range vsr.Peers {
				if pv.StalenessReports != 0 || pv.ViewN == 0 {
					t.Errorf("peer %s: view_n=%d staleness=%d, want full coverage", pv.URL, pv.ViewN, pv.StalenessReports)
				}
			}
		})
	}
}

// TestClusterRepullIdempotent pins the replacement semantics: pulling an
// unchanged peer again must change nothing — not the fleet count, not
// the state version, not the served view.
func TestClusterRepullIdempotent(t *testing.T) {
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 200, 3)
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1"})
	postBatchOK(t, edgeTS.URL, p, reps)
	coord, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "coord",
		Peers: []string{edgeTS.URL}, PullInterval: time.Minute,
	})
	first := postPull(t, coordTS.URL)
	if coord.N() != len(reps) {
		t.Fatalf("after first pull N=%d, want %d", coord.N(), len(reps))
	}
	for i := 0; i < 3; i++ {
		again := postPull(t, coordTS.URL)
		if coord.N() != len(reps) {
			t.Fatalf("re-pull %d changed N to %d", i, coord.N())
		}
		if again.StateVersion != first.StateVersion {
			t.Fatalf("re-pull %d changed state version %d -> %d", i, first.StateVersion, again.StateVersion)
		}
	}
}

// TestClusterDuplicateNodeID pins the double-count guard: two peer URLs
// resolving to the same node must contribute once, with the duplicate
// flagged in the cluster status.
func TestClusterDuplicateNodeID(t *testing.T) {
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 100, 5)
	edge, err := NewWithOptions(p, Options{Role: RoleEdge, NodeID: "edge-1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = edge.Close() })
	// Two listeners, one node: the misconfiguration the node id exists
	// to catch.
	tsA := httptest.NewServer(edge.Handler())
	t.Cleanup(tsA.Close)
	tsB := httptest.NewServer(edge.Handler())
	t.Cleanup(tsB.Close)
	postBatchOK(t, tsA.URL, p, reps)

	coord, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "coord",
		Peers: []string{tsA.URL, tsB.URL}, PullInterval: time.Minute,
	})
	cs := postPull(t, coordTS.URL)
	if coord.N() != len(reps) {
		t.Fatalf("fleet N=%d, want %d (duplicate must not double-count)", coord.N(), len(reps))
	}
	var dups int
	for _, peer := range cs.Peers {
		if strings.Contains(peer.LastError, "already served") {
			dups++
		}
	}
	if dups != 1 {
		t.Fatalf("cluster status %+v: want exactly one duplicate-node-id error", cs.Peers)
	}
}

// TestClusterSelfPullRejected pins the cycle guard: a coordinator whose
// peer list points back at itself must refuse the frame instead of
// folding its own merged output back in as a "peer" every round.
func TestClusterSelfPullRejected(t *testing.T) {
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	selfURL := "http://" + l.Addr().String()
	coord, err := NewWithOptions(p, Options{
		Role: RoleCoordinator, NodeID: "coord",
		Peers: []string{selfURL}, PullInterval: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close() })
	ts := httptest.NewUnstartedServer(coord.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	t.Cleanup(ts.Close)

	for i := 0; i < 2; i++ {
		cs := postPull(t, selfURL)
		if coord.N() != 0 {
			t.Fatalf("self-pull %d inflated fleet N to %d", i, coord.N())
		}
		if len(cs.Peers) != 1 || !strings.Contains(cs.Peers[0].LastError, "own node id") {
			t.Fatalf("self-pull %d: peer status %+v, want an own-node-id error", i, cs.Peers)
		}
	}
}

// TestCoordinatorPeerStatePersistence pins the coordinator's restart
// story: with a ClusterDir, the latest accepted peer states survive a
// restart and serve immediately, even while every peer is unreachable.
func TestCoordinatorPeerStatePersistence(t *testing.T) {
	p, err := core.New(core.MargPS, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 150, 11)
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1"})
	postBatchOK(t, edgeTS.URL, p, reps)

	dir := t.TempDir()
	coord1, err := NewWithOptions(p, Options{
		Role: RoleCoordinator, NodeID: "coord",
		Peers: []string{edgeTS.URL}, PullInterval: time.Minute,
		ClusterDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(coord1.Handler())
	postPull(t, ts1.URL)
	want := postRefresh(t, ts1.URL)
	if want.ViewN != len(reps) {
		t.Fatalf("pre-restart epoch holds %d, want %d", want.ViewN, len(reps))
	}
	ts1.Close()
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart against the same directory with the peer unreachable: the
	// persisted state must carry the fleet.
	coord2, err := NewWithOptions(p, Options{
		Role: RoleCoordinator, NodeID: "coord",
		Peers: []string{edgeTS.URL}, PullInterval: time.Minute,
		ClusterDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord2.Close() })
	if coord2.N() != len(reps) {
		t.Fatalf("restarted coordinator N=%d, want %d", coord2.N(), len(reps))
	}
	ts2 := httptest.NewServer(coord2.Handler())
	t.Cleanup(ts2.Close)
	vs := postRefresh(t, ts2.URL)
	if vs.ViewN != len(reps) {
		t.Fatalf("restarted epoch holds %d, want %d", vs.ViewN, len(reps))
	}
}

// TestRoleEndpointGating pins which endpoints each role serves: an
// out-of-role request is a 403 naming the role, never a silent wrong
// answer.
func TestRoleEndpointGating(t *testing.T) {
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1"})
	_, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "coord",
		Peers: []string{edgeTS.URL}, PullInterval: time.Minute,
	})
	_, singleTS := newClusterNode(t, p, Options{NodeID: "solo"})

	cases := []struct {
		name, url, method, path string
		want                    int
	}{
		{"edge rejects marginal", edgeTS.URL, http.MethodGet, "/marginal?beta=3", http.StatusForbidden},
		{"edge rejects query", edgeTS.URL, http.MethodPost, "/query", http.StatusForbidden},
		{"edge rejects refresh", edgeTS.URL, http.MethodPost, "/refresh", http.StatusForbidden},
		{"edge rejects view status", edgeTS.URL, http.MethodGet, "/view/status", http.StatusForbidden},
		{"edge rejects pull", edgeTS.URL, http.MethodPost, "/pull", http.StatusForbidden},
		{"edge serves state", edgeTS.URL, http.MethodGet, "/state", http.StatusOK},
		{"edge serves status", edgeTS.URL, http.MethodGet, "/status", http.StatusOK},
		{"edge serves healthz", edgeTS.URL, http.MethodGet, "/healthz", http.StatusOK},
		{"coordinator rejects report", coordTS.URL, http.MethodPost, "/report", http.StatusForbidden},
		{"coordinator rejects batch", coordTS.URL, http.MethodPost, "/report/batch", http.StatusForbidden},
		{"coordinator serves state", coordTS.URL, http.MethodGet, "/state", http.StatusOK},
		{"coordinator serves pull", coordTS.URL, http.MethodPost, "/pull", http.StatusOK},
		{"single rejects pull", singleTS.URL, http.MethodPost, "/pull", http.StatusForbidden},
		{"single serves state", singleTS.URL, http.MethodGet, "/state", http.StatusOK},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, tc.url+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
		if tc.want == http.StatusForbidden && !strings.Contains(string(body), "role") {
			t.Errorf("%s: rejection %q does not name the role", tc.name, body)
		}
	}
}

// TestStateEndpointFrame pins the /state export: a valid CRC'd frame
// whose blob restores into an identical aggregator.
func TestStateEndpointFrame(t *testing.T) {
	p, err := core.New(core.MargHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := makeClusterReports(t, p, 120, 19)
	srv, ts := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-1"})
	postBatchOK(t, ts.URL, p, reps)
	status, body := getBody(t, ts.URL+"/state")
	if status != http.StatusOK {
		t.Fatalf("state: status %d", status)
	}
	sf, err := wire.DecodeStateFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if sf.NodeID != "edge-1" || sf.N != len(reps) {
		t.Fatalf("frame = %q n=%d, want edge-1 n=%d", sf.NodeID, sf.N, len(reps))
	}
	restored := p.NewAggregator()
	if err := restored.UnmarshalState(sf.State); err != nil {
		t.Fatal(err)
	}
	if restored.N() != srv.N() {
		t.Fatalf("restored N=%d, want %d", restored.N(), srv.N())
	}
	// A second export of the unchanged state carries the same label and
	// identical bytes — what makes re-pulls idempotent.
	status2, body2 := getBody(t, ts.URL+"/state")
	if status2 != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatal("unchanged state exported different frames")
	}
}

// TestRoleOptionValidation pins the startup rejection of cross-role
// option mixes.
func TestRoleOptionValidation(t *testing.T) {
	p, err := core.New(core.InpHT, clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithOptions(p, Options{Role: RoleCoordinator}); err == nil {
		t.Error("coordinator without peers was accepted")
	}
	if _, err := NewWithOptions(p, Options{Role: RoleEdge, Peers: []string{"http://x"}}); err == nil {
		t.Error("edge with peers was accepted")
	}
	if _, err := NewWithOptions(p, Options{Peers: []string{"http://x"}}); err == nil {
		t.Error("single with peers was accepted")
	}
	if _, err := NewWithOptions(p, Options{Role: RoleEdge, ClusterDir: t.TempDir()}); err == nil {
		t.Error("edge with ClusterDir was accepted")
	}
	st, err := store.Open(t.TempDir(), p, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithOptions(p, Options{Role: RoleCoordinator, Peers: []string{"http://x"}, Store: st}); err == nil {
		t.Error("coordinator with a Store was accepted")
	}
}
