package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/rng"
	"ldpmarginals/internal/wire"
)

// windowedOptions is the standard windowed deployment tests rotate by
// hand: buckets are long enough that the background rotator never fires
// on real wall time, and tests drive advanceWindow with synthetic
// times instead.
func windowedOptions() Options {
	return Options{Window: time.Hour, Bucket: 10 * time.Minute}
}

// windowReports perturbs n reports for p from a deterministic stream.
func windowReports(t *testing.T, p core.Protocol, n int, seed uint64) []core.Report {
	t.Helper()
	client := p.NewClient()
	r := rng.New(seed)
	reps := make([]core.Report, n)
	for i := range reps {
		rep, err := client.Perturb(uint64(i%64), r)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	return reps
}

// postBatch posts a report batch and requires the whole batch accepted.
func postBatch(t *testing.T, url string, p core.Protocol, reps []core.Report) {
	t.Helper()
	resp, err := http.Post(url+"/report/batch", "application/octet-stream", bytes.NewReader(mustBatch(t, p, reps...)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || br.Accepted != len(reps) {
		t.Fatalf("batch status %d accepted %d/%d: %s", resp.StatusCode, br.Accepted, len(reps), br.Error)
	}
}

// stateBytes pulls GET /state and returns the canonical aggregator
// state blob and its declared report count.
func stateBytes(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /state: status %d err %v", resp.StatusCode, err)
	}
	sf, err := wire.DecodeStateFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	return sf.State, sf.N
}

// referenceBytes is the canonical marshaled state of a fresh aggregator
// fed reps directly — the single-aggregator ground truth windowed
// deployments must stay bit-identical to.
func referenceBytes(t *testing.T, p core.Protocol, reps []core.Report) []byte {
	t.Helper()
	agg := p.NewAggregator()
	if err := agg.ConsumeBatch(reps); err != nil {
		t.Fatal(err)
	}
	blob, err := agg.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestWindowedServerBitIdentityAllProtocols is the acceptance pin of
// the continual-release tier at the HTTP layer: for each of the six
// protocols, a windowed deployment whose window still covers every
// bucket — including across hand-driven bucket rotations — must export
// /state bytes identical to a single cumulative aggregator fed the same
// stream, and serve the same /marginal cells.
func TestWindowedServerBitIdentityAllProtocols(t *testing.T) {
	for _, kind := range core.AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			p, err := core.New(kind, core.Config{D: 6, K: 2, Epsilon: 1.1, OptimizedPRR: true})
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewWithOptions(p, windowedOptions())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = s.Close() })
			ts := httptest.NewServer(s.Handler())
			t.Cleanup(ts.Close)

			reps := windowReports(t, p, 600, 7)
			var all []core.Report
			base := time.Now()
			for chunk := 0; chunk < 3; chunk++ {
				postBatch(t, ts.URL, p, reps[chunk*200:(chunk+1)*200])
				all = reps[:(chunk+1)*200]
				got, n := stateBytes(t, ts.URL)
				if n != len(all) {
					t.Fatalf("chunk %d: /state declares %d reports, want %d", chunk, n, len(all))
				}
				if !bytes.Equal(got, referenceBytes(t, p, all)) {
					t.Fatalf("chunk %d: windowed /state differs from the cumulative reference", chunk)
				}
				// Seal the live bucket; the window (6 buckets) still covers
				// everything, so identity must hold across the rotation too.
				if err := s.advanceWindow(base.Add(time.Duration(chunk+1) * 10 * time.Minute)); err != nil {
					t.Fatal(err)
				}
			}
			if st := s.win.Status(); st.SealedBuckets != 3 || st.Expired != 0 {
				t.Fatalf("ring status after 3 seals: %+v", st)
			}
			got, _ := stateBytes(t, ts.URL)
			if !bytes.Equal(got, referenceBytes(t, p, all)) {
				t.Fatal("windowed /state differs from the cumulative reference after sealing")
			}
			postRefresh(t, ts.URL)
			resp, err := http.Get(ts.URL + "/marginal?beta=3&window=1h")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var mr MarginalResponse
			if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("windowed marginal: status %d err %v", resp.StatusCode, err)
			}
			if mr.N != len(all) || len(mr.Cells) != 4 {
				t.Fatalf("windowed marginal = %+v", mr)
			}
		})
	}
}

// TestWindowedServerExpiryDropsOldReports drives a full slide: reports
// older than the window must leave the estimate, the export, and the
// report count, while surviving buckets stay bit-identical to a
// cumulative aggregator fed only the surviving reports.
func TestWindowedServerExpiryDropsOldReports(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 3 buckets of 10m: chunk A lands in bucket 0, B in bucket 1; by the
	// 3rd rotation A's bucket has slid out.
	s, err := NewWithOptions(p, Options{Window: 30 * time.Minute, Bucket: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	reps := windowReports(t, p, 400, 11)
	base := time.Now()
	postBatch(t, ts.URL, p, reps[:200]) // chunk A
	if err := s.advanceWindow(base.Add(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	postBatch(t, ts.URL, p, reps[200:]) // chunk B
	if err := s.advanceWindow(base.Add(30 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Bucket 0 (chunk A) has seq+buckets == curSeq: expired.
	if st := s.win.Status(); st.Expired != 1 {
		t.Fatalf("ring status after slide: %+v, want 1 expired bucket", st)
	}
	got, n := stateBytes(t, ts.URL)
	if n != 200 {
		t.Fatalf("/state declares %d reports, want the 200 inside the window", n)
	}
	if !bytes.Equal(got, referenceBytes(t, p, reps[200:])) {
		t.Fatal("post-expiry /state differs from the surviving chunk's reference")
	}
	if s.N() != 200 {
		t.Fatalf("server N = %d after expiry, want 200", s.N())
	}
	vs := postRefresh(t, ts.URL)
	if vs.ViewN != 200 || vs.Window == nil || vs.Window.Expired != 1 {
		t.Fatalf("view status after expiry = %+v (window %+v)", vs, vs.Window)
	}
}

// TestWindowParamValidation pins the window= contract on the read
// endpoints: matching span passes, anything else is a 400 naming the
// mismatch, and a cumulative deployment rejects the parameter outright.
func TestWindowParamValidation(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(p, windowedOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, _ := get(ts.URL + "/marginal?beta=3&window=1h"); code != http.StatusOK {
		t.Fatalf("matching window rejected with %d", code)
	}
	if code, _ := get(ts.URL + "/marginal?beta=3&window=60m"); code != http.StatusOK {
		t.Fatalf("equivalent duration spelling rejected with %d", code)
	}
	if code, body := get(ts.URL + "/marginal?beta=3&window=30m"); code != http.StatusBadRequest || !strings.Contains(body, "1h") {
		t.Fatalf("mismatched window: %d %q, want 400 naming the served span", code, body)
	}
	if code, _ := get(ts.URL + "/marginal?beta=3&window=bogus"); code != http.StatusBadRequest {
		t.Fatalf("malformed window accepted with %d", code)
	}
	// /query honors the same parameter.
	resp, err := http.Post(ts.URL+"/query?window=30m", "application/json", strings.NewReader(`{"q":"a0=1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/query with mismatched window: %d", resp.StatusCode)
	}

	// A cumulative deployment cannot answer any windowed question.
	_, cumTS, _ := newTestServer(t)
	if code, body := get(cumTS.URL + "/marginal?beta=3&window=1h"); code != http.StatusBadRequest || !strings.Contains(body, "cumulative") {
		t.Fatalf("cumulative deployment answered window=: %d %q", code, body)
	}
}

// TestRoundEpsBudgetEnforcement pins the per-round ledger at the HTTP
// layer: reports spend the deployment epsilon against the client token,
// over-budget submissions get 429 (with Retry-After), tokens are
// independent, the token header is mandatory, and a full window slide
// recovers the budget.
func TestRoundEpsBudgetEnforcement(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts := windowedOptions()
	opts.RoundEps = 6.1 // three reports at eps=2 per window
	s, err := NewWithOptions(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	reps := windowReports(t, p, 8, 13)
	post := func(token string, rep core.Report) *http.Response {
		t.Helper()
		frame := mustBatch(t, p, rep)
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/report/batch", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set(budgetTokenHeader, token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// No token: rejected before any spend.
	if resp := post("", reps[0]); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tokenless report: %d, want 400", resp.StatusCode)
	}
	for i := 0; i < 3; i++ {
		if resp := post("alice", reps[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("in-budget report %d: %d", i, resp.StatusCode)
		}
	}
	over := post("alice", reps[3])
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget report: %d, want 429", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	var br BatchResponse
	if err := json.NewDecoder(over.Body).Decode(&br); err != nil || br.Accepted != 0 || !strings.Contains(br.Error, "budget") {
		t.Fatalf("429 body = %+v err %v", br, err)
	}
	// The rejected report must not have been ingested.
	if s.N() != 3 {
		t.Fatalf("server N = %d after budget rejection, want 3", s.N())
	}
	// A different token has its own budget.
	if resp := post("bob", reps[4]); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh token: %d", resp.StatusCode)
	}

	// Status surfaces the ledger.
	var sr StatusResponse
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Window == nil || sr.Window.RoundEps != 6.1 || sr.Window.BudgetTokens != 2 || sr.Window.BudgetRejected != 1 {
		t.Fatalf("status window block = %+v", sr.Window)
	}

	// A full window of rotations slides alice's spend out; the budget
	// recovers exactly when her data has left the release.
	if err := s.advanceWindow(time.Now().Add(opts.Window + opts.Bucket)); err != nil {
		t.Fatal(err)
	}
	if resp := post("alice", reps[5]); resp.StatusCode != http.StatusOK {
		t.Fatalf("report after window slide: %d, want budget recovered", resp.StatusCode)
	}

	// The /report single-frame path enforces the same ledger.
	frameResp := postReport(t, ts.URL, p, reps[6])
	if frameResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tokenless /report on budgeted deployment: %d, want 400", frameResp.StatusCode)
	}
}

// TestWindowedOptionValidation pins the configuration contract.
func TestWindowedOptionValidation(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"window without bucket", Options{Window: time.Hour}, "together"},
		{"bucket without window", Options{Bucket: time.Minute}, "together"},
		{"indivisible", Options{Window: time.Hour, Bucket: 7 * time.Minute}, "multiple"},
		{"round-eps without window", Options{RoundEps: 4}, "Window"},
		{"budget below one report", Options{Window: time.Hour, Bucket: 10 * time.Minute, RoundEps: 0.5}, "below one report"},
		{"coordinator window", Options{Role: RoleCoordinator, Peers: []string{"http://x"}, Window: time.Hour, Bucket: time.Minute}, "edge-side"},
	}
	for _, tc := range cases {
		s, err := NewWithOptions(p, tc.opts)
		if err == nil {
			_ = s.Close()
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCoordinatorCloseReleasesPullGoroutines is the satellite-1
// regression pin: Server.Close on a coordinator must tear down the
// puller's keep-alive connections, not leave their transport read/write
// loops running until an idle timeout. Before the dedicated-transport
// fix those goroutines parked on http.DefaultTransport and survived
// Close by 90 seconds.
func TestCoordinatorCloseReleasesPullGoroutines(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	edge, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-leak"})
	reps := windowReports(t, p, 50, 17)
	if err := edge.agg.ConsumeBatch(reps); err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	baseline := runtime.NumGoroutine()

	coord, err := NewWithOptions(p, Options{
		Role:         RoleCoordinator,
		NodeID:       "coord-leak",
		Peers:        []string{edgeTS.URL},
		PullInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until a pull actually transferred state, so a keep-alive
	// connection to the edge exists.
	deadline := time.Now().Add(5 * time.Second)
	for coord.N() != len(reps) {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never pulled the edge (N=%d)", coord.N())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything the coordinator started — puller loop, engine refresher,
	// and the transport's connection goroutines — must wind down promptly.
	deadline = time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines alive 5s after Close, want <= %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestPullAgeNeverNegative is the satellite-2 regression pin: a
// pulledAt stamp stripped of its monotonic reading (Round(0)) and
// sitting in the wall-clock future — the shape a stepped-back clock
// produces — must clamp the reported age at zero, not go negative and
// masquerade as the "never pulled" sentinel.
func TestPullAgeNeverNegative(t *testing.T) {
	p, err := core.New(core.InpHT, core.Config{D: 8, K: 2, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "edge-age"})
	coord, _ := newClusterNode(t, p, Options{
		Role:         RoleCoordinator,
		NodeID:       "coord-age",
		Peers:        []string{edgeTS.URL},
		PullInterval: time.Hour, // no background pulls; we stamp by hand
	})
	coord.fleet.mu.Lock()
	coord.fleet.peers[0].pulledAt = time.Now().Add(time.Hour).Round(0)
	coord.fleet.mu.Unlock()
	peers, _ := coord.fleet.status()
	if len(peers) != 1 {
		t.Fatalf("%d peers", len(peers))
	}
	if got := peers[0].LastPullAgeSeconds; got != 0 {
		t.Fatalf("future pull stamp reported age %v, want clamp at 0", got)
	}
	// The -1 "never pulled" sentinel is preserved.
	coord.fleet.mu.Lock()
	coord.fleet.peers[0].pulledAt = time.Time{}
	coord.fleet.mu.Unlock()
	peers, _ = coord.fleet.status()
	if got := peers[0].LastPullAgeSeconds; got != -1 {
		t.Fatalf("zero pull stamp reported age %v, want -1 sentinel", got)
	}
}
