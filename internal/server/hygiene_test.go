package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ldpmarginals/internal/core"
	"ldpmarginals/internal/encoding"
	"ldpmarginals/internal/rng"
)

// TestHandlerHTTPHygiene is the handler-matrix pin of two RFC 9110
// behaviors across every route: a 405 always names the allowed method
// in the Allow header (§15.5.6), and every JSON reply declares
// Content-Type: application/json.
func TestHandlerHTTPHygiene(t *testing.T) {
	_, singleTS, p := newTestServer(t)
	// A coordinator exercises the /pull route's happy path too.
	_, edgeTS := newClusterNode(t, p, Options{Role: RoleEdge, NodeID: "hyg-edge"})
	_, coordTS := newClusterNode(t, p, Options{
		Role: RoleCoordinator, NodeID: "hyg-coord",
		Peers: []string{edgeTS.URL}, PullInterval: time.Minute,
	})

	// One report so /marginal has an in-contract answer.
	client := p.NewClient()
	rep, err := client.Perturb(3, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := encoding.Marshal(p.Name(), rep)
	if err != nil {
		t.Fatal(err)
	}
	if resp := postReport(t, singleTS.URL, p, rep); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("seed report: %d", resp.StatusCode)
	}
	postRefresh(t, singleTS.URL)

	routes := []struct {
		path   string
		method string   // the one allowed method
		body   []byte   // valid request body for the happy path
		ctype  string   // expected success Content-Type ("" = no body assertion)
		wrong  []string // methods that must 405
	}{
		{"/report", http.MethodPost, frame, "", []string{http.MethodGet, http.MethodDelete, http.MethodPut}},
		{"/report/batch", http.MethodPost, mustBatch(t, p, rep), "application/json", []string{http.MethodGet, http.MethodHead}},
		{"/marginal?beta=3", http.MethodGet, nil, "application/json", []string{http.MethodPost, http.MethodDelete}},
		{"/query", http.MethodPost, []byte(`{"q":"a0=1"}`), "application/json", []string{http.MethodGet, http.MethodPatch}},
		{"/refresh", http.MethodPost, nil, "application/json", []string{http.MethodGet}},
		{"/view/status", http.MethodGet, nil, "application/json", []string{http.MethodPost}},
		{"/view/diagnostics", http.MethodGet, nil, "application/json", []string{http.MethodPost, http.MethodDelete}},
		{"/state", http.MethodGet, nil, "application/octet-stream", []string{http.MethodPost, http.MethodPut}},
		{"/status", http.MethodGet, nil, "application/json", []string{http.MethodPost}},
		{"/healthz", http.MethodGet, nil, "application/json", []string{http.MethodPost, http.MethodDelete}},
		{"/readyz", http.MethodGet, nil, "application/json", []string{http.MethodPost, http.MethodDelete}},
		{"/metrics", http.MethodGet, nil, "text/plain", []string{http.MethodPost, http.MethodDelete}},
		{"/debug/traces", http.MethodGet, nil, "application/json", []string{http.MethodPost, http.MethodDelete}},
	}
	do := func(method, url string, body []byte) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for _, rt := range routes {
		// Wrong methods: 405 with the Allow header — and, for the JSON
		// error shape, the request's trace id matching the X-LDP-Trace-Id
		// echo, so a client-side failure report can be joined against
		// /debug/traces. (/debug/traces itself is exempt from tracing.)
		for _, m := range rt.wrong {
			resp := do(m, singleTS.URL+rt.path, nil)
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", m, rt.path, resp.StatusCode)
				continue
			}
			if got := resp.Header.Get("Allow"); got != rt.method {
				t.Errorf("%s %s: Allow %q, want %q", m, rt.path, got, rt.method)
			}
			// /metrics and /debug/traces answer their own text 405s, and a
			// HEAD response carries no body to assert on.
			if rt.path == "/metrics" || rt.path == "/debug/traces" || m == http.MethodHead {
				continue
			}
			echoed := resp.Header.Get("X-LDP-Trace-Id")
			if echoed == "" {
				t.Errorf("%s %s: no X-LDP-Trace-Id header on error reply", m, rt.path)
				continue
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Errorf("%s %s: error body %q is not ErrorResponse JSON: %v", m, rt.path, body, err)
				continue
			}
			if er.TraceID != echoed {
				t.Errorf("%s %s: body trace_id %q != header %q", m, rt.path, er.TraceID, echoed)
			}
			if er.Error == "" {
				t.Errorf("%s %s: empty error message", m, rt.path)
			}
		}
		// Happy path: correct Content-Type.
		if rt.ctype == "" {
			continue
		}
		resp := do(rt.method, singleTS.URL+rt.path, rt.body)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			t.Errorf("%s %s: status %d (%s)", rt.method, rt.path, resp.StatusCode, body)
			continue
		}
		if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, rt.ctype) {
			t.Errorf("%s %s: Content-Type %q, want %q", rt.method, rt.path, got, rt.ctype)
		}
	}

	// /pull: 405+Allow on the wrong method, JSON on the happy path —
	// on the coordinator, where the role serves it.
	resp := do(http.MethodGet, coordTS.URL+"/pull", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET /pull: status %d Allow %q, want 405 POST", resp.StatusCode, resp.Header.Get("Allow"))
	}
	resp = do(http.MethodPost, coordTS.URL+"/pull", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); resp.StatusCode != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("POST /pull: status %d Content-Type %q, want 200 application/json", resp.StatusCode, ct)
	}

	// Error JSON replies keep the declared type: a rejected batch is a
	// JSON BatchResponse and must say so — and carry the request's trace
	// id like every other error reply.
	bad := mustBatch(t, p, core.Report{Index: 1 << 60, Sign: 1})
	resp = do(http.MethodPost, singleTS.URL+"/report/batch", bad)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); resp.StatusCode != http.StatusBadRequest || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("rejected batch: status %d Content-Type %q, want 400 application/json", resp.StatusCode, ct)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("rejected batch body %q: %v", body, err)
	}
	if br.TraceID == "" || br.TraceID != resp.Header.Get("X-LDP-Trace-Id") {
		t.Errorf("rejected batch: trace_id %q, header %q", br.TraceID, resp.Header.Get("X-LDP-Trace-Id"))
	}
}

// TestMaxQueryBytesOption pins the promoted /query body limit: a body
// over the configured bound is a 400, and the default still admits
// ordinary batches.
func TestMaxQueryBytesOption(t *testing.T) {
	_, ts, _ := newTestServerWithOptions(t, Options{MaxQueryBytes: 64})
	small := []byte(`{"q":"a0=1"}`)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-limit query: status %d", resp.StatusCode)
	}
	big := []byte(`{"queries":["a0=1","a1=1","a2=1","a3=1","a4=1","a5=1","a6=1","a7=1"]}`)
	if len(big) <= 64 {
		t.Fatal("test body not over the limit")
	}
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-limit query: status %d, want 400", resp.StatusCode)
	}
}

func mustBatch(t *testing.T, p core.Protocol, reps ...core.Report) []byte {
	t.Helper()
	body, err := encoding.MarshalBatch(p.Name(), reps)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
