package server

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"ldpmarginals/internal/wire"
)

// Componentized /state exports and the delta handshake, exporter side.
//
// A componentized export (GET /state?components=1) ships the node's
// state as named components: an edge's per-shard states ("<node>/<i>"),
// a windowed edge's single window ("<node>"), or a coordinator's held
// peer components passed through with their original ids. A puller that
// acknowledges its last accepted export version (?since= plus
// If-None-Match) gets either a 304 (nothing moved), a delta frame (only
// the components whose version moved since that base, plus removed ids),
// or a full frame when the base is unknown — too old for the history
// ring, from before a restart (the version salt changed), or never
// served by this process.

// exportHistorySize bounds the per-node ring of remembered export
// labels. A coordinator pulls each peer once per interval, so 64 entries
// cover many minutes of bases even with several pullers; anything older
// falls back to a full frame, which is always correct.
const exportHistorySize = 64

// exportHistory remembers, for recent export labels, the per-component
// version vector the label corresponds to — what a delta against that
// base must be computed from. Labels are recorded conservatively: when
// the same label is recorded twice (two exports racing one mutation can
// share it), the vectors are merged element-wise toward the *minimum*
// and ids missing from either side are dropped. Every frame served under
// a label carries component versions at least as new as its own
// recording, so the merged (older) vector can only classify more
// components as changed — a delta may re-ship an unchanged component,
// but never skips one some holder of that base is missing.
type exportHistory struct {
	mu      sync.Mutex
	entries []histEntry // insertion order; oldest first
}

type histEntry struct {
	top uint64
	vec map[string]uint64
}

func (h *exportHistory) record(top uint64, vec map[string]uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.entries {
		e := &h.entries[i]
		if e.top != top {
			continue
		}
		for id, old := range e.vec {
			now, ok := vec[id]
			if !ok {
				delete(e.vec, id)
				continue
			}
			if now < old {
				e.vec[id] = now
			}
		}
		return
	}
	cp := make(map[string]uint64, len(vec))
	for id, v := range vec {
		cp[id] = v
	}
	h.entries = append(h.entries, histEntry{top: top, vec: cp})
	if len(h.entries) > exportHistorySize {
		h.entries = h.entries[len(h.entries)-exportHistorySize:]
	}
}

// lookup returns a private copy of the vector recorded for base.
func (h *exportHistory) lookup(base uint64) (map[string]uint64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.entries {
		if h.entries[i].top != base {
			continue
		}
		cp := make(map[string]uint64, len(h.entries[i].vec))
		for id, v := range h.entries[i].vec {
			cp[id] = v
		}
		return cp, true
	}
	return nil, false
}

// shardComponentID names one shard of a node's sharded aggregator
// fleet-wide.
func shardComponentID(nodeID string, shard int) string {
	return nodeID + "/" + strconv.Itoa(shard)
}

// exportComponents captures the node's state as components plus the
// version vector a delta base against this export must be diffed with.
// The returned top label is read before any component state is captured,
// so it can only trail the content (re-transfer, never skip). Component
// versions from the local pipeline are offset by the process version
// salt, exactly like the top label; a coordinator's pass-through
// components keep their origin's (already salted) labels.
func (s *Server) exportComponents() (top uint64, comps []wire.StateComponent, vec map[string]uint64, err error) {
	if s.fleet != nil {
		top, comps, vec = s.fleet.exportComponents()
		return s.verSalt + top, comps, vec, nil
	}
	if s.win != nil {
		// The window is one component: expiry shrinks its state, so
		// per-shard deltas would need exact removal tracking; shipping
		// the (already bounded) window whole when it moved is simpler
		// and still skips the transfer entirely when it didn't.
		top = s.verSalt + s.win.Version()
		snap, err := s.win.Snapshot()
		if err != nil {
			return 0, nil, nil, err
		}
		blob, err := snap.MarshalState()
		if err != nil {
			return 0, nil, nil, err
		}
		comps = []wire.StateComponent{{ID: s.nodeID, Version: top, N: snap.N(), State: blob}}
		return top, comps, map[string]uint64{s.nodeID: top}, nil
	}
	top = s.verSalt + s.agg.Version()
	exps, vers, err := s.agg.ExportShards()
	if err != nil {
		return 0, nil, nil, err
	}
	comps = make([]wire.StateComponent, 0, len(exps))
	for _, e := range exps {
		comps = append(comps, wire.StateComponent{
			ID:      shardComponentID(s.nodeID, e.Index),
			Version: s.verSalt + e.Version,
			N:       e.N,
			State:   e.State,
		})
	}
	vec = make(map[string]uint64, len(vers))
	for i, v := range vers {
		vec[shardComponentID(s.nodeID, i)] = s.verSalt + v
	}
	return top, comps, vec, nil
}

// exportComponents passes the coordinator's held peer components through
// with their original ids and labels, so a root coordinator one tier up
// can deduplicate, cycle-check, and delta-diff the fleet's true
// constituents across any number of mid tiers. The top label and the
// component set are read under one lock acquisition, so repeated labels
// always describe identical vectors.
func (f *fleet) exportComponents() (top uint64, comps []wire.StateComponent, vec map[string]uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	top = f.ver.Load()
	vec = make(map[string]uint64)
	for _, pe := range f.peers {
		for id, c := range pe.comps {
			comps = append(comps, wire.StateComponent{ID: id, Version: c.version, N: c.n, State: c.state})
			vec[id] = c.version
		}
	}
	return top, comps, vec
}

// stateETag formats a state version as the ETag GET /state serves and
// If-None-Match echoes back.
func stateETag(ver uint64) string {
	return `"` + strconv.FormatUint(ver, 10) + `"`
}

// parseStateBase extracts the puller's acknowledged base version from an
// If-None-Match header or a ?since= query parameter (the header wins
// when both are present and disagree, being the more standard channel).
func parseStateBase(etag, since string) (uint64, bool) {
	if etag != "" {
		trimmed := strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(etag), `"`), `"`)
		if v, err := strconv.ParseUint(trimmed, 10, 64); err == nil {
			return v, true
		}
	}
	if since != "" {
		if v, err := strconv.ParseUint(since, 10, 64); err == nil {
			return v, true
		}
	}
	return 0, false
}

// deltaAgainst narrows a full componentized export to a delta frame
// against the base vector: only components whose label moved (or are
// new) ship, and ids present at the base but gone now are listed as
// removed. The frame keeps the full export's top label and total count,
// so the importer can cross-check the fold.
func deltaAgainst(full wire.ComponentFrame, baseVec, curVec map[string]uint64) wire.ComponentFrame {
	delta := wire.ComponentFrame{
		NodeID:      full.NodeID,
		Version:     full.Version,
		Delta:       true,
		BaseVersion: 0, // set by caller
		N:           full.N,
	}
	for _, c := range full.Components {
		if v, ok := baseVec[c.ID]; ok && v == c.Version {
			continue
		}
		delta.Components = append(delta.Components, c)
	}
	for id := range baseVec {
		if _, ok := curVec[id]; !ok {
			delta.Removed = append(delta.Removed, id)
		}
	}
	return delta
}

// sumComponentReports totals the report counts of an export's
// components — the frame-level N every componentized export declares.
func sumComponentReports(comps []wire.StateComponent) (int, error) {
	n := 0
	for _, c := range comps {
		if c.N < 0 || n+c.N < n {
			return 0, fmt.Errorf("component %q report count overflows the total", c.ID)
		}
		n += c.N
	}
	return n, nil
}
